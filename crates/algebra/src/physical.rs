//! Mediator-local physical algebra.
//!
//! The paper distinguishes the mediator's *local scope* from wrapper scopes
//! precisely because "the mediator processes local operators using a
//! physical algebra instead of a logical algebra" (§4.1, footnote 1). This
//! module defines that physical algebra: the operators the mediator itself
//! executes to combine wrapper subanswers, each carrying its algorithm
//! choice so local-scope cost rules can price them individually.

use std::fmt;

use disco_common::{QualifiedName, Schema};

use crate::expr::ScalarExpr;
use crate::logical::{AggExpr, LogicalPlan};
use crate::predicate::{JoinPredicate, Predicate};

/// Access-path choice for a base-collection read.
///
/// Shared vocabulary between the generic cost model (which prices
/// sequential vs index scans, §2.3) and the simulated sources (which
/// actually execute them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScanAlgo {
    /// Read every page of the extent in storage order.
    Sequential,
    /// Probe an index on the named attribute, fetching qualifying objects.
    Index,
}

impl fmt::Display for ScanAlgo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScanAlgo::Sequential => f.write_str("seq"),
            ScanAlgo::Index => f.write_str("index"),
        }
    }
}

/// Join algorithm implemented by the mediator executor.
///
/// These are the three cases of the paper's generic model for binary
/// operators: index join, nested loops, sort-merge (§2.3). A hash join is
/// added as the modern default for equi-joins; it participates in the same
/// local-scope costing mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhysicalJoinAlgo {
    NestedLoop,
    SortMerge,
    Hash,
}

impl fmt::Display for PhysicalJoinAlgo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhysicalJoinAlgo::NestedLoop => f.write_str("nested-loop"),
            PhysicalJoinAlgo::SortMerge => f.write_str("sort-merge"),
            PhysicalJoinAlgo::Hash => f.write_str("hash"),
        }
    }
}

/// A physical plan executed by the mediator.
///
/// Leaves are [`PhysicalPlan::SubmitRemote`] nodes that ship a *logical*
/// subplan to a wrapper — the wrapper picks its own access paths, which is
/// why subplan costing relies on wrapper-exported rules.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalPlan {
    /// Issue `plan` to `wrapper` and stream back its subanswer.
    SubmitRemote {
        wrapper: String,
        plan: LogicalPlan,
        /// Schema of the returned tuples.
        schema: Schema,
    },
    /// Mediator-side selection over a subanswer.
    Filter {
        input: Box<PhysicalPlan>,
        predicate: Predicate,
    },
    /// Mediator-side projection.
    Project {
        input: Box<PhysicalPlan>,
        columns: Vec<(String, ScalarExpr)>,
    },
    /// In-memory sort.
    Sort {
        input: Box<PhysicalPlan>,
        keys: Vec<(String, bool)>,
    },
    /// Join with an explicit algorithm.
    Join {
        algo: PhysicalJoinAlgo,
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
        predicate: JoinPredicate,
    },
    /// Bag union of two compatible inputs.
    Union {
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
    },
    /// Hash-based duplicate elimination.
    Dedup { input: Box<PhysicalPlan> },
    /// Hash aggregation.
    Aggregate {
        input: Box<PhysicalPlan>,
        group_by: Vec<String>,
        aggs: Vec<AggExpr>,
    },
}

impl PhysicalPlan {
    /// Child nodes, left to right.
    pub fn children(&self) -> Vec<&PhysicalPlan> {
        match self {
            PhysicalPlan::SubmitRemote { .. } => vec![],
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Dedup { input }
            | PhysicalPlan::Aggregate { input, .. } => vec![input],
            PhysicalPlan::Join { left, right, .. } | PhysicalPlan::Union { left, right } => {
                vec![left, right]
            }
        }
    }

    /// Number of nodes in the tree (remote subplans count as one leaf).
    pub fn node_count(&self) -> usize {
        1 + self
            .children()
            .iter()
            .map(|c| c.node_count())
            .sum::<usize>()
    }

    /// Wrappers contacted by this plan, in leaf order, without duplicates.
    pub fn wrappers(&self) -> Vec<&str> {
        fn walk<'a>(p: &'a PhysicalPlan, out: &mut Vec<&'a str>) {
            if let PhysicalPlan::SubmitRemote { wrapper, .. } = p {
                if !out.contains(&wrapper.as_str()) {
                    out.push(wrapper);
                }
            }
            for c in p.children() {
                walk(c, out);
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }

    /// All collections read by remote subplans.
    pub fn collections(&self) -> Vec<&QualifiedName> {
        fn walk<'a>(p: &'a PhysicalPlan, out: &mut Vec<&'a QualifiedName>) {
            if let PhysicalPlan::SubmitRemote { plan, .. } = p {
                for c in plan.collections() {
                    if !out.contains(&c) {
                        out.push(c);
                    }
                }
            }
            for c in p.children() {
                walk(c, out);
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_common::{AttributeDef, DataType};

    fn remote(wrapper: &str, coll: &str) -> PhysicalPlan {
        let schema = Schema::new(vec![AttributeDef::new("id", DataType::Long)]);
        PhysicalPlan::SubmitRemote {
            wrapper: wrapper.into(),
            plan: LogicalPlan::Scan {
                collection: QualifiedName::new(wrapper, coll),
                schema: schema.clone(),
            },
            schema,
        }
    }

    #[test]
    fn wrappers_deduplicated_in_leaf_order() {
        let plan = PhysicalPlan::Join {
            algo: PhysicalJoinAlgo::Hash,
            left: Box::new(remote("a", "X")),
            right: Box::new(PhysicalPlan::Union {
                left: Box::new(remote("b", "Y")),
                right: Box::new(remote("a", "Z")),
            }),
            predicate: JoinPredicate::equi("id", "id"),
        };
        assert_eq!(plan.wrappers(), vec!["a", "b"]);
        assert_eq!(plan.collections().len(), 3);
        assert_eq!(plan.node_count(), 5);
    }

    #[test]
    fn algo_display() {
        assert_eq!(PhysicalJoinAlgo::SortMerge.to_string(), "sort-merge");
        assert_eq!(ScanAlgo::Index.to_string(), "index");
    }
}

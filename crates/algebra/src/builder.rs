//! Fluent construction of logical plans.
//!
//! The mediator's decomposer and the test/bench suites build many plans by
//! hand; [`PlanBuilder`] keeps that terse without hiding the tree shape.

use disco_common::{QualifiedName, Schema, Value};

use crate::expr::{AggFunc, ScalarExpr};
use crate::logical::{AggExpr, JoinKind, LogicalPlan};
use crate::predicate::{CompareOp, JoinPredicate, Predicate, SelectPredicate};

/// Builder wrapping a [`LogicalPlan`] under construction.
#[derive(Debug, Clone)]
pub struct PlanBuilder {
    plan: LogicalPlan,
}

impl PlanBuilder {
    /// Start from a collection scan.
    pub fn scan(collection: QualifiedName, schema: Schema) -> Self {
        PlanBuilder {
            plan: LogicalPlan::Scan { collection, schema },
        }
    }

    /// Start from an existing plan.
    pub fn from_plan(plan: LogicalPlan) -> Self {
        PlanBuilder { plan }
    }

    /// Add a selection with a single `attr op value` conjunct.
    pub fn select(self, attr: impl Into<String>, op: CompareOp, value: impl Into<Value>) -> Self {
        self.select_pred(Predicate::single(SelectPredicate::new(
            attr,
            op,
            value.into(),
        )))
    }

    /// Add a selection with an arbitrary predicate.
    pub fn select_pred(self, predicate: Predicate) -> Self {
        PlanBuilder {
            plan: LogicalPlan::Select {
                input: Box::new(self.plan),
                predicate,
            },
        }
    }

    /// Project to plain attribute references.
    pub fn project_attrs(self, attrs: &[&str]) -> Self {
        let columns = attrs
            .iter()
            .map(|a| ((*a).to_string(), ScalarExpr::attr(*a)))
            .collect();
        PlanBuilder {
            plan: LogicalPlan::Project {
                input: Box::new(self.plan),
                columns,
            },
        }
    }

    /// Project to named expressions.
    pub fn project(self, columns: Vec<(String, ScalarExpr)>) -> Self {
        PlanBuilder {
            plan: LogicalPlan::Project {
                input: Box::new(self.plan),
                columns,
            },
        }
    }

    /// Sort ascending by the given attributes.
    pub fn sort_asc(self, attrs: &[&str]) -> Self {
        let keys = attrs.iter().map(|a| ((*a).to_string(), true)).collect();
        PlanBuilder {
            plan: LogicalPlan::Sort {
                input: Box::new(self.plan),
                keys,
            },
        }
    }

    /// Inner equi-join with another plan.
    pub fn join(
        self,
        other: PlanBuilder,
        left_attr: impl Into<String>,
        right_attr: impl Into<String>,
    ) -> Self {
        PlanBuilder {
            plan: LogicalPlan::Join {
                left: Box::new(self.plan),
                right: Box::new(other.plan),
                predicate: JoinPredicate::equi(left_attr, right_attr),
                kind: JoinKind::Inner,
            },
        }
    }

    /// Union with another plan.
    pub fn union(self, other: PlanBuilder) -> Self {
        PlanBuilder {
            plan: LogicalPlan::Union {
                left: Box::new(self.plan),
                right: Box::new(other.plan),
            },
        }
    }

    /// Duplicate elimination.
    pub fn dedup(self) -> Self {
        PlanBuilder {
            plan: LogicalPlan::Dedup {
                input: Box::new(self.plan),
            },
        }
    }

    /// Group and aggregate.
    pub fn aggregate(self, group_by: &[&str], aggs: Vec<(&str, AggFunc, Option<&str>)>) -> Self {
        PlanBuilder {
            plan: LogicalPlan::Aggregate {
                input: Box::new(self.plan),
                group_by: group_by.iter().map(|s| (*s).to_string()).collect(),
                aggs: aggs
                    .into_iter()
                    .map(|(name, func, arg)| AggExpr {
                        name: name.to_string(),
                        func,
                        arg: arg.map(str::to_string),
                    })
                    .collect(),
            },
        }
    }

    /// Wrap in a `submit` to the given wrapper.
    pub fn submit(self, wrapper: impl Into<String>) -> Self {
        PlanBuilder {
            plan: LogicalPlan::Submit {
                wrapper: wrapper.into(),
                input: Box::new(self.plan),
            },
        }
    }

    /// Finish, yielding the plan.
    pub fn build(self) -> LogicalPlan {
        self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::OperatorKind;
    use disco_common::{AttributeDef, DataType};

    fn emp() -> PlanBuilder {
        PlanBuilder::scan(
            QualifiedName::new("hr", "Employee"),
            Schema::new(vec![
                AttributeDef::new("id", DataType::Long),
                AttributeDef::new("salary", DataType::Long),
            ]),
        )
    }

    #[test]
    fn chained_plan_shape() {
        let plan = emp()
            .select("salary", CompareOp::Gt, 1000i64)
            .project_attrs(&["id"])
            .submit("hr")
            .build();
        assert_eq!(plan.kind(), OperatorKind::Submit);
        assert_eq!(plan.node_count(), 4);
        assert_eq!(plan.output_schema().unwrap().arity(), 1);
    }

    #[test]
    fn join_and_aggregate() {
        let plan = emp()
            .join(emp(), "id", "id")
            .aggregate(&[], vec![("n", AggFunc::Count, None)])
            .build();
        assert_eq!(plan.kind(), OperatorKind::Aggregate);
        let s = plan.output_schema().unwrap();
        assert_eq!(s.attribute("n").unwrap().ty, DataType::Long);
    }
}

//! Scalar expressions and aggregate function descriptors.
//!
//! Projection lists and aggregate operators need a small expression
//! vocabulary: attribute references, constants, and arithmetic. This stays
//! deliberately minimal — the paper's algebra projects attributes and
//! computes classical aggregates (`sum`, `average`, …); anything richer
//! belongs to the data sources themselves.

use std::fmt;

use disco_common::{DiscoError, Result, Schema, Tuple, Value};

/// Aggregate functions of the paper's aggregate operator (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggFunc {
    /// Lower-case SQL-ish name.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A scalar expression over the attributes of one input schema.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    /// Reference to an attribute by name.
    Attr(String),
    /// Literal constant.
    Const(Value),
    /// Arithmetic on two numeric subexpressions.
    Binary {
        op: ArithOp,
        left: Box<ScalarExpr>,
        right: Box<ScalarExpr>,
    },
}

/// Arithmetic operators available in projection expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

impl ArithOp {
    fn symbol(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        }
    }
}

impl ScalarExpr {
    /// Attribute reference.
    pub fn attr(name: impl Into<String>) -> Self {
        ScalarExpr::Attr(name.into())
    }

    /// Constant.
    pub fn constant(v: impl Into<Value>) -> Self {
        ScalarExpr::Const(v.into())
    }

    /// Attribute names referenced by this expression, appended to `out`.
    pub fn collect_attrs<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            ScalarExpr::Attr(n) => out.push(n),
            ScalarExpr::Const(_) => {}
            ScalarExpr::Binary { left, right, .. } => {
                left.collect_attrs(out);
                right.collect_attrs(out);
            }
        }
    }

    /// Evaluate against a tuple with the given schema.
    ///
    /// Arithmetic is numeric: non-numeric operands are an [`DiscoError::Exec`]
    /// error, as is division by zero.
    pub fn eval(&self, schema: &Schema, tuple: &Tuple) -> Result<Value> {
        match self {
            ScalarExpr::Attr(name) => {
                let idx = schema
                    .index_of(name)
                    .ok_or_else(|| DiscoError::Exec(format!("unknown attribute `{name}`")))?;
                Ok(tuple.get(idx).cloned().unwrap_or(Value::Null))
            }
            ScalarExpr::Const(v) => Ok(v.clone()),
            ScalarExpr::Binary { op, left, right } => {
                let l = left.eval(schema, tuple)?;
                let r = right.eval(schema, tuple)?;
                if l.is_null() || r.is_null() {
                    return Ok(Value::Null);
                }
                let (a, b) = match (l.as_f64(), r.as_f64()) {
                    (Some(a), Some(b)) => (a, b),
                    _ => {
                        return Err(DiscoError::Exec(format!(
                            "arithmetic on non-numeric values {l} {} {r}",
                            op.symbol()
                        )))
                    }
                };
                let out = match op {
                    ArithOp::Add => a + b,
                    ArithOp::Sub => a - b,
                    ArithOp::Mul => a * b,
                    ArithOp::Div => {
                        if b == 0.0 {
                            return Err(DiscoError::Exec("division by zero".into()));
                        }
                        a / b
                    }
                };
                // Keep integral results integral when both inputs were Longs.
                if matches!(
                    (&l, &r, op),
                    (Value::Long(_), Value::Long(_), ArithOp::Add)
                        | (Value::Long(_), Value::Long(_), ArithOp::Sub)
                        | (Value::Long(_), Value::Long(_), ArithOp::Mul)
                ) {
                    Ok(Value::Long(out as i64))
                } else {
                    Ok(Value::Double(out))
                }
            }
        }
    }
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Attr(n) => f.write_str(n),
            ScalarExpr::Const(v) => write!(f, "{v}"),
            ScalarExpr::Binary { op, left, right } => {
                write!(f, "({left} {} {right})", op.symbol())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_common::{AttributeDef, DataType};

    fn schema() -> Schema {
        Schema::new(vec![
            AttributeDef::new("x", DataType::Long),
            AttributeDef::new("y", DataType::Double),
        ])
    }

    fn tuple() -> Tuple {
        Tuple::new(vec![Value::Long(4), Value::Double(2.5)])
    }

    #[test]
    fn attr_and_const() {
        let s = schema();
        let t = tuple();
        assert_eq!(ScalarExpr::attr("x").eval(&s, &t).unwrap(), Value::Long(4));
        assert_eq!(
            ScalarExpr::constant(7i64).eval(&s, &t).unwrap(),
            Value::Long(7)
        );
    }

    #[test]
    fn integer_arithmetic_stays_integral() {
        let e = ScalarExpr::Binary {
            op: ArithOp::Mul,
            left: Box::new(ScalarExpr::attr("x")),
            right: Box::new(ScalarExpr::constant(3i64)),
        };
        assert_eq!(e.eval(&schema(), &tuple()).unwrap(), Value::Long(12));
    }

    #[test]
    fn mixed_arithmetic_is_double() {
        let e = ScalarExpr::Binary {
            op: ArithOp::Add,
            left: Box::new(ScalarExpr::attr("x")),
            right: Box::new(ScalarExpr::attr("y")),
        };
        assert_eq!(e.eval(&schema(), &tuple()).unwrap(), Value::Double(6.5));
    }

    #[test]
    fn division_by_zero_errors() {
        let e = ScalarExpr::Binary {
            op: ArithOp::Div,
            left: Box::new(ScalarExpr::attr("x")),
            right: Box::new(ScalarExpr::constant(0i64)),
        };
        assert_eq!(e.eval(&schema(), &tuple()).unwrap_err().kind(), "exec");
    }

    #[test]
    fn unknown_attribute_errors() {
        let e = ScalarExpr::attr("zz");
        assert_eq!(e.eval(&schema(), &tuple()).unwrap_err().kind(), "exec");
    }

    #[test]
    fn null_propagates() {
        let s = schema();
        let t = Tuple::new(vec![Value::Null, Value::Double(1.0)]);
        let e = ScalarExpr::Binary {
            op: ArithOp::Add,
            left: Box::new(ScalarExpr::attr("x")),
            right: Box::new(ScalarExpr::attr("y")),
        };
        assert_eq!(e.eval(&s, &t).unwrap(), Value::Null);
    }

    #[test]
    fn collect_attrs_walks_tree() {
        let e = ScalarExpr::Binary {
            op: ArithOp::Add,
            left: Box::new(ScalarExpr::attr("x")),
            right: Box::new(ScalarExpr::Binary {
                op: ArithOp::Mul,
                left: Box::new(ScalarExpr::attr("y")),
                right: Box::new(ScalarExpr::constant(2i64)),
            }),
        };
        let mut attrs = Vec::new();
        e.collect_attrs(&mut attrs);
        assert_eq!(attrs, vec!["x", "y"]);
    }

    #[test]
    fn display_nested() {
        let e = ScalarExpr::Binary {
            op: ArithOp::Div,
            left: Box::new(ScalarExpr::attr("x")),
            right: Box::new(ScalarExpr::constant(2i64)),
        };
        assert_eq!(e.to_string(), "(x / 2)");
    }
}

//! The mediator's object algebra (paper §2.2).
//!
//! The mediator translates declarative queries into trees of algebraic
//! operators. The paper fixes the operator vocabulary:
//!
//! * unary — `scan`, `select`, `project`, `sort`;
//! * binary — `join`, `union`;
//! * aggregate — duplicate elimination and aggregate functions;
//! * `submit` — issuing a subplan to a wrapper.
//!
//! This crate defines:
//!
//! * [`expr`] — scalar expressions over tuple attributes and aggregate
//!   function descriptors;
//! * [`predicate`] — selection and join predicates (the shapes the cost-rule
//!   grammar of Figure 9 can bind against);
//! * [`logical`] — the logical plan tree the optimizer enumerates and the
//!   cost model estimates;
//! * [`physical`] — mediator-local physical operators (the paper's
//!   local-scope rules apply to these);
//! * [`builder`] — ergonomic plan construction;
//! * [`display`] — indented plan pretty-printing.

pub mod builder;
pub mod display;
pub mod expr;
pub mod logical;
pub mod physical;
pub mod predicate;

pub use builder::PlanBuilder;
pub use expr::{AggFunc, ScalarExpr};
pub use logical::{JoinKind, LogicalPlan, OperatorKind};
pub use physical::{PhysicalJoinAlgo, PhysicalPlan, ScanAlgo};
pub use predicate::{CompareOp, JoinPredicate, Predicate, SelectPredicate};

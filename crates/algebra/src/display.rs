//! Indented pretty-printing of plans.
//!
//! Plans appear in optimizer traces, `EXPLAIN`-style example output and
//! error messages, so a stable readable rendering matters.

use std::fmt::Write as _;

use crate::logical::LogicalPlan;
use crate::physical::PhysicalPlan;

/// Render a logical plan as an indented tree.
pub fn explain_logical(plan: &LogicalPlan) -> String {
    let mut out = String::new();
    fmt_logical(plan, 0, &mut out);
    out
}

fn fmt_logical(plan: &LogicalPlan, depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    match plan {
        LogicalPlan::Scan { collection, schema } => {
            let _ = writeln!(out, "scan {collection} {schema}");
        }
        LogicalPlan::Select { predicate, .. } => {
            let _ = writeln!(out, "select [{predicate}]");
        }
        LogicalPlan::Project { columns, .. } => {
            let cols: Vec<String> = columns
                .iter()
                .map(|(n, e)| {
                    let es = e.to_string();
                    if &es == n {
                        es
                    } else {
                        format!("{n} := {es}")
                    }
                })
                .collect();
            let _ = writeln!(out, "project [{}]", cols.join(", "));
        }
        LogicalPlan::Sort { keys, .. } => {
            let ks: Vec<String> = keys
                .iter()
                .map(|(k, asc)| format!("{k} {}", if *asc { "asc" } else { "desc" }))
                .collect();
            let _ = writeln!(out, "sort [{}]", ks.join(", "));
        }
        LogicalPlan::Join {
            predicate, kind, ..
        } => {
            let _ = writeln!(out, "join ({kind}) [{predicate}]");
        }
        LogicalPlan::Union { .. } => {
            let _ = writeln!(out, "union");
        }
        LogicalPlan::Dedup { .. } => {
            let _ = writeln!(out, "dedup");
        }
        LogicalPlan::Aggregate { group_by, aggs, .. } => {
            let ag: Vec<String> = aggs.iter().map(|a| a.to_string()).collect();
            let _ = writeln!(
                out,
                "aggregate group by [{}] [{}]",
                group_by.join(", "),
                ag.join(", ")
            );
        }
        LogicalPlan::Submit { wrapper, .. } => {
            let _ = writeln!(out, "submit -> {wrapper}");
        }
    }
    for c in plan.children() {
        fmt_logical(c, depth + 1, out);
    }
}

/// Render a physical plan as an indented tree; remote subplans are shown
/// nested one level deeper under their `submit` leaf.
pub fn explain_physical(plan: &PhysicalPlan) -> String {
    let mut out = String::new();
    fmt_physical(plan, 0, &mut out);
    out
}

fn fmt_physical(plan: &PhysicalPlan, depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    match plan {
        PhysicalPlan::SubmitRemote {
            wrapper, plan: sub, ..
        } => {
            let _ = writeln!(out, "submit -> {wrapper}");
            fmt_logical(sub, depth + 1, out);
            return;
        }
        PhysicalPlan::Filter { predicate, .. } => {
            let _ = writeln!(out, "filter [{predicate}]");
        }
        PhysicalPlan::Project { columns, .. } => {
            let cols: Vec<String> = columns.iter().map(|(n, _)| n.clone()).collect();
            let _ = writeln!(out, "project [{}]", cols.join(", "));
        }
        PhysicalPlan::Sort { keys, .. } => {
            let ks: Vec<String> = keys
                .iter()
                .map(|(k, asc)| format!("{k} {}", if *asc { "asc" } else { "desc" }))
                .collect();
            let _ = writeln!(out, "sort [{}]", ks.join(", "));
        }
        PhysicalPlan::Join {
            algo, predicate, ..
        } => {
            let _ = writeln!(out, "{algo}-join [{predicate}]");
        }
        PhysicalPlan::Union { .. } => {
            let _ = writeln!(out, "union");
        }
        PhysicalPlan::Dedup { .. } => {
            let _ = writeln!(out, "dedup");
        }
        PhysicalPlan::Aggregate { group_by, aggs, .. } => {
            let ag: Vec<String> = aggs.iter().map(|a| a.to_string()).collect();
            let _ = writeln!(
                out,
                "aggregate group by [{}] [{}]",
                group_by.join(", "),
                ag.join(", ")
            );
        }
    }
    for c in plan.children() {
        fmt_physical(c, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PlanBuilder;
    use crate::predicate::CompareOp;
    use disco_common::{AttributeDef, DataType, QualifiedName, Schema};

    #[test]
    fn logical_explain_shape() {
        let plan = PlanBuilder::scan(
            QualifiedName::new("hr", "Employee"),
            Schema::new(vec![AttributeDef::new("salary", DataType::Long)]),
        )
        .select("salary", CompareOp::Eq, 10i64)
        .submit("hr")
        .build();
        let text = explain_logical(&plan);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("submit -> hr"));
        assert!(lines[1].trim_start().starts_with("select [salary = 10]"));
        assert!(lines[2].trim_start().starts_with("scan hr.Employee"));
        // Indentation grows with depth.
        assert!(lines[2].starts_with("    "));
    }
}

//! Selection and join predicates.
//!
//! The cost-rule grammar of Figure 9 binds rule heads against predicates of
//! the shape `attribute = value` (selection) and `attribute = attribute`
//! (join). We generalize the comparison operator — the generic cost model
//! (§2.3) already distinguishes equality from range restrictions when
//! deriving selectivity — while keeping the same matchable structure:
//! an attribute name, an operator, and a constant or a peer attribute.

use std::fmt;

use disco_common::{Tuple, Value};

/// Comparison operators usable in selection and join predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompareOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CompareOp {
    /// Evaluate the comparison on two values.
    ///
    /// Incomparable values (type mismatch, nulls vs non-null under `=`)
    /// fail the predicate rather than erroring: heterogeneous sources may
    /// hold dirty data and a selection should simply not return such rows.
    pub fn eval(self, a: &Value, b: &Value) -> bool {
        if a.is_null() || b.is_null() {
            return false;
        }
        match a.partial_cmp_value(b) {
            Some(ord) => match self {
                CompareOp::Eq => ord.is_eq(),
                CompareOp::Ne => ord.is_ne(),
                CompareOp::Lt => ord.is_lt(),
                CompareOp::Le => ord.is_le(),
                CompareOp::Gt => ord.is_gt(),
                CompareOp::Ge => ord.is_ge(),
            },
            None => false,
        }
    }

    /// The operator with its arguments swapped (`a < b` ⇔ `b > a`).
    pub fn flipped(self) -> CompareOp {
        match self {
            CompareOp::Eq => CompareOp::Eq,
            CompareOp::Ne => CompareOp::Ne,
            CompareOp::Lt => CompareOp::Gt,
            CompareOp::Le => CompareOp::Ge,
            CompareOp::Gt => CompareOp::Lt,
            CompareOp::Ge => CompareOp::Le,
        }
    }

    /// Token used in plan display and rule text (`=`, `!=`, `<`, …).
    pub fn symbol(self) -> &'static str {
        match self {
            CompareOp::Eq => "=",
            CompareOp::Ne => "!=",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        }
    }
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// One `attribute op constant` restriction.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectPredicate {
    /// Attribute restricted (unqualified; resolved against the input schema).
    pub attribute: String,
    /// Comparison operator.
    pub op: CompareOp,
    /// Constant compared against.
    pub value: Value,
}

impl SelectPredicate {
    /// Convenience constructor.
    pub fn new(attribute: impl Into<String>, op: CompareOp, value: Value) -> Self {
        SelectPredicate {
            attribute: attribute.into(),
            op,
            value,
        }
    }

    /// Evaluate on a tuple given the resolved attribute position.
    pub fn eval_at(&self, tuple: &Tuple, idx: usize) -> bool {
        tuple
            .get(idx)
            .map(|v| self.op.eval(v, &self.value))
            .unwrap_or(false)
    }
}

impl fmt::Display for SelectPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.attribute, self.op, self.value)
    }
}

/// Conjunction of [`SelectPredicate`]s — the selection condition of a
/// `select` node. An empty conjunction is `true`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Predicate {
    /// Conjuncts, all of which must hold.
    pub conjuncts: Vec<SelectPredicate>,
}

impl Predicate {
    /// The always-true predicate.
    pub fn always() -> Self {
        Predicate {
            conjuncts: Vec::new(),
        }
    }

    /// Single-conjunct predicate.
    pub fn single(p: SelectPredicate) -> Self {
        Predicate { conjuncts: vec![p] }
    }

    /// Conjunction of the given restrictions.
    pub fn all(conjuncts: Vec<SelectPredicate>) -> Self {
        Predicate { conjuncts }
    }

    /// `true` if there are no conjuncts.
    pub fn is_trivial(&self) -> bool {
        self.conjuncts.is_empty()
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.conjuncts.is_empty() {
            return f.write_str("true");
        }
        for (i, c) in self.conjuncts.iter().enumerate() {
            if i > 0 {
                f.write_str(" and ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// An equi-style join predicate `left_attr op right_attr`.
///
/// `left_attr` resolves against the left input schema and `right_attr`
/// against the right one.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinPredicate {
    /// Attribute of the left input.
    pub left_attr: String,
    /// Comparison operator (equality for the classic case).
    pub op: CompareOp,
    /// Attribute of the right input.
    pub right_attr: String,
}

impl JoinPredicate {
    /// Convenience constructor for the common equality join.
    pub fn equi(left_attr: impl Into<String>, right_attr: impl Into<String>) -> Self {
        JoinPredicate {
            left_attr: left_attr.into(),
            op: CompareOp::Eq,
            right_attr: right_attr.into(),
        }
    }
}

impl fmt::Display for JoinPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.left_attr, self.op, self.right_attr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_ops_on_numbers() {
        let a = Value::Long(3);
        let b = Value::Double(3.0);
        assert!(CompareOp::Eq.eval(&a, &b));
        assert!(CompareOp::Le.eval(&a, &b));
        assert!(!CompareOp::Lt.eval(&a, &b));
        assert!(CompareOp::Gt.eval(&Value::Long(5), &a));
        assert!(CompareOp::Ne.eval(&Value::Long(5), &a));
    }

    #[test]
    fn nulls_fail_everything() {
        assert!(!CompareOp::Eq.eval(&Value::Null, &Value::Null));
        assert!(!CompareOp::Ne.eval(&Value::Null, &Value::Long(1)));
        assert!(!CompareOp::Lt.eval(&Value::Null, &Value::Long(1)));
    }

    #[test]
    fn type_mismatch_fails() {
        assert!(!CompareOp::Eq.eval(&Value::Long(1), &Value::Str("1".into())));
    }

    #[test]
    fn flipping() {
        assert_eq!(CompareOp::Lt.flipped(), CompareOp::Gt);
        assert_eq!(CompareOp::Ge.flipped(), CompareOp::Le);
        assert_eq!(CompareOp::Eq.flipped(), CompareOp::Eq);
        // a < b iff b > a
        let (a, b) = (Value::Long(1), Value::Long(2));
        assert_eq!(
            CompareOp::Lt.eval(&a, &b),
            CompareOp::Lt.flipped().eval(&b, &a)
        );
    }

    #[test]
    fn select_predicate_eval() {
        let t = Tuple::new(vec![Value::Long(10), Value::Str("hi".into())]);
        let p = SelectPredicate::new("x", CompareOp::Ge, Value::Long(10));
        assert!(p.eval_at(&t, 0));
        assert!(!p.eval_at(&t, 1)); // type mismatch
        assert!(!p.eval_at(&t, 9)); // out of range
    }

    #[test]
    fn predicate_display() {
        let p = Predicate::all(vec![
            SelectPredicate::new("a", CompareOp::Eq, Value::Long(1)),
            SelectPredicate::new("b", CompareOp::Lt, Value::Str("z".into())),
        ]);
        assert_eq!(p.to_string(), "a = 1 and b < \"z\"");
        assert_eq!(Predicate::always().to_string(), "true");
    }

    #[test]
    fn join_predicate_display() {
        assert_eq!(
            JoinPredicate::equi("id", "part_id").to_string(),
            "id = part_id"
        );
    }
}

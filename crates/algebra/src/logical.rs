//! Logical plan trees.
//!
//! A plan is "a tree of algebraic operators" (paper §2.2). The same tree
//! shape is used for full mediator plans and for the subplans shipped to
//! wrappers by the `submit` operator — wrappers receive logical algebra and
//! choose their own access paths, which is exactly why the mediator needs
//! wrapper-provided cost rules to price them.

use std::fmt;

use disco_common::{AttributeDef, DataType, DiscoError, QualifiedName, Result, Schema};

use crate::expr::{AggFunc, ScalarExpr};
use crate::predicate::{JoinPredicate, Predicate};

/// Join flavours. The paper's algebra uses inner joins; outer variants are
/// kept for completeness of the mediator algebra.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinKind {
    Inner,
    LeftOuter,
}

impl fmt::Display for JoinKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinKind::Inner => f.write_str("inner"),
            JoinKind::LeftOuter => f.write_str("left-outer"),
        }
    }
}

/// Discriminant of a plan node; the vocabulary rule heads and wrapper
/// capability lists are expressed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OperatorKind {
    Scan,
    Select,
    Project,
    Sort,
    Join,
    Union,
    Dedup,
    Aggregate,
    Submit,
}

impl OperatorKind {
    /// Lower-case keyword as used in the cost-rule grammar (Figure 9).
    pub fn name(self) -> &'static str {
        match self {
            OperatorKind::Scan => "scan",
            OperatorKind::Select => "select",
            OperatorKind::Project => "project",
            OperatorKind::Sort => "sort",
            OperatorKind::Join => "join",
            OperatorKind::Union => "union",
            OperatorKind::Dedup => "dedup",
            OperatorKind::Aggregate => "aggregate",
            OperatorKind::Submit => "submit",
        }
    }

    /// Parse the keyword form.
    pub fn parse(s: &str) -> Option<OperatorKind> {
        Some(match s {
            "scan" => OperatorKind::Scan,
            "select" => OperatorKind::Select,
            "project" => OperatorKind::Project,
            "sort" => OperatorKind::Sort,
            "join" => OperatorKind::Join,
            "union" => OperatorKind::Union,
            "dedup" => OperatorKind::Dedup,
            "aggregate" => OperatorKind::Aggregate,
            "submit" => OperatorKind::Submit,
            _ => return None,
        })
    }

    /// All operator kinds, in grammar order.
    pub const ALL: [OperatorKind; 9] = [
        OperatorKind::Scan,
        OperatorKind::Select,
        OperatorKind::Project,
        OperatorKind::Sort,
        OperatorKind::Union,
        OperatorKind::Join,
        OperatorKind::Dedup,
        OperatorKind::Aggregate,
        OperatorKind::Submit,
    ];
}

impl fmt::Display for OperatorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One aggregate output column: `name := func(attr)`; `attr` is `None` for
/// `count(*)`.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    /// Output column name.
    pub name: String,
    /// Aggregate function.
    pub func: AggFunc,
    /// Input attribute, or `None` for `count(*)`.
    pub arg: Option<String>,
}

impl fmt::Display for AggExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.arg {
            Some(a) => write!(f, "{} := {}({})", self.name, self.func, a),
            None => write!(f, "{} := {}(*)", self.name, self.func),
        }
    }
}

/// A logical algebra tree.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Scan of a registered collection. Carries the collection's schema so
    /// schemas of derived nodes can be computed without a catalog handle.
    Scan {
        collection: QualifiedName,
        schema: Schema,
    },
    /// Selection by a conjunctive predicate.
    Select {
        input: Box<LogicalPlan>,
        predicate: Predicate,
    },
    /// Projection to named expressions.
    Project {
        input: Box<LogicalPlan>,
        /// `(output name, expression)` pairs.
        columns: Vec<(String, ScalarExpr)>,
    },
    /// Sort by `(attribute, ascending)` keys.
    Sort {
        input: Box<LogicalPlan>,
        keys: Vec<(String, bool)>,
    },
    /// Join of two inputs on an attribute predicate.
    Join {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
        predicate: JoinPredicate,
        kind: JoinKind,
    },
    /// Set union (inputs must be union-compatible).
    Union {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
    },
    /// Duplicate elimination.
    Dedup { input: Box<LogicalPlan> },
    /// Grouping and aggregate computation.
    Aggregate {
        input: Box<LogicalPlan>,
        group_by: Vec<String>,
        aggs: Vec<AggExpr>,
    },
    /// Subplan issued to a wrapper (paper's `submit` operator).
    Submit {
        /// Registered wrapper name.
        wrapper: String,
        input: Box<LogicalPlan>,
    },
}

impl LogicalPlan {
    /// The node's operator kind.
    pub fn kind(&self) -> OperatorKind {
        match self {
            LogicalPlan::Scan { .. } => OperatorKind::Scan,
            LogicalPlan::Select { .. } => OperatorKind::Select,
            LogicalPlan::Project { .. } => OperatorKind::Project,
            LogicalPlan::Sort { .. } => OperatorKind::Sort,
            LogicalPlan::Join { .. } => OperatorKind::Join,
            LogicalPlan::Union { .. } => OperatorKind::Union,
            LogicalPlan::Dedup { .. } => OperatorKind::Dedup,
            LogicalPlan::Aggregate { .. } => OperatorKind::Aggregate,
            LogicalPlan::Submit { .. } => OperatorKind::Submit,
        }
    }

    /// Child nodes, left to right.
    pub fn children(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::Scan { .. } => vec![],
            LogicalPlan::Select { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Dedup { input }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Submit { input, .. } => vec![input],
            LogicalPlan::Join { left, right, .. } | LogicalPlan::Union { left, right } => {
                vec![left, right]
            }
        }
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        1 + self
            .children()
            .iter()
            .map(|c| c.node_count())
            .sum::<usize>()
    }

    /// The single base collection this subtree reads, if the subtree is a
    /// linear pipeline over one scan.
    ///
    /// Collection-scope cost rules (`select(employee, P)`) match a node by
    /// the collection its input derives from (the paper unifies the rule
    /// variable `C` with "the result of the scan"). Join subtrees and unions
    /// derive from several collections and return `None`.
    pub fn base_collection(&self) -> Option<&QualifiedName> {
        match self {
            LogicalPlan::Scan { collection, .. } => Some(collection),
            LogicalPlan::Select { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Dedup { input }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Submit { input, .. } => input.base_collection(),
            LogicalPlan::Join { .. } | LogicalPlan::Union { .. } => None,
        }
    }

    /// The same plan re-addressed to a replica wrapper: every `Submit`
    /// target and every scanned collection's wrapper qualifier in the
    /// subtree is rewritten to `wrapper`. Used by hedged execution —
    /// wrappers reject subplans addressed to somebody else, so a hedge
    /// to a replica must ship a retargeted copy.
    pub fn retargeted(&self, wrapper: &str) -> LogicalPlan {
        match self {
            LogicalPlan::Scan { collection, schema } => LogicalPlan::Scan {
                collection: QualifiedName::new(wrapper, &collection.collection),
                schema: schema.clone(),
            },
            LogicalPlan::Select { input, predicate } => LogicalPlan::Select {
                input: Box::new(input.retargeted(wrapper)),
                predicate: predicate.clone(),
            },
            LogicalPlan::Project { input, columns } => LogicalPlan::Project {
                input: Box::new(input.retargeted(wrapper)),
                columns: columns.clone(),
            },
            LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
                input: Box::new(input.retargeted(wrapper)),
                keys: keys.clone(),
            },
            LogicalPlan::Join {
                left,
                right,
                predicate,
                kind,
            } => LogicalPlan::Join {
                left: Box::new(left.retargeted(wrapper)),
                right: Box::new(right.retargeted(wrapper)),
                predicate: predicate.clone(),
                kind: *kind,
            },
            LogicalPlan::Union { left, right } => LogicalPlan::Union {
                left: Box::new(left.retargeted(wrapper)),
                right: Box::new(right.retargeted(wrapper)),
            },
            LogicalPlan::Dedup { input } => LogicalPlan::Dedup {
                input: Box::new(input.retargeted(wrapper)),
            },
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => LogicalPlan::Aggregate {
                input: Box::new(input.retargeted(wrapper)),
                group_by: group_by.clone(),
                aggs: aggs.clone(),
            },
            LogicalPlan::Submit { input, .. } => LogicalPlan::Submit {
                wrapper: wrapper.to_string(),
                input: Box::new(input.retargeted(wrapper)),
            },
        }
    }

    /// All distinct collections scanned anywhere in the subtree.
    pub fn collections(&self) -> Vec<&QualifiedName> {
        fn walk<'a>(p: &'a LogicalPlan, out: &mut Vec<&'a QualifiedName>) {
            if let LogicalPlan::Scan { collection, .. } = p {
                if !out.contains(&collection) {
                    out.push(collection);
                }
            }
            for c in p.children() {
                walk(c, out);
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }

    /// Compute the output schema of this plan.
    ///
    /// Fails with [`DiscoError::Plan`] when the tree is inconsistent
    /// (projection of an unknown attribute, union of incompatible inputs…).
    pub fn output_schema(&self) -> Result<Schema> {
        match self {
            LogicalPlan::Scan { schema, .. } => Ok(schema.clone()),
            LogicalPlan::Select { input, predicate } => {
                let s = input.output_schema()?;
                for c in &predicate.conjuncts {
                    if s.index_of(&c.attribute).is_none() {
                        return Err(DiscoError::Plan(format!(
                            "selection references unknown attribute `{}`",
                            c.attribute
                        )));
                    }
                }
                Ok(s)
            }
            LogicalPlan::Project { input, columns } => {
                let s = input.output_schema()?;
                let mut attrs = Vec::with_capacity(columns.len());
                for (name, e) in columns {
                    let ty = infer_expr_type(e, &s)?;
                    attrs.push(AttributeDef::new(name.clone(), ty));
                }
                Ok(Schema::new(attrs))
            }
            LogicalPlan::Sort { input, keys } => {
                let s = input.output_schema()?;
                for (k, _) in keys {
                    if s.index_of(k).is_none() {
                        return Err(DiscoError::Plan(format!(
                            "sort key `{k}` not in input schema"
                        )));
                    }
                }
                Ok(s)
            }
            LogicalPlan::Join {
                left,
                right,
                predicate,
                ..
            } => {
                let ls = left.output_schema()?;
                let rs = right.output_schema()?;
                if ls.index_of(&predicate.left_attr).is_none() {
                    return Err(DiscoError::Plan(format!(
                        "join attribute `{}` not in left input",
                        predicate.left_attr
                    )));
                }
                if rs.index_of(&predicate.right_attr).is_none() {
                    return Err(DiscoError::Plan(format!(
                        "join attribute `{}` not in right input",
                        predicate.right_attr
                    )));
                }
                Ok(ls.join(&rs))
            }
            LogicalPlan::Union { left, right } => {
                let ls = left.output_schema()?;
                let rs = right.output_schema()?;
                if ls.arity() != rs.arity() {
                    return Err(DiscoError::Plan(format!(
                        "union of incompatible arities {} vs {}",
                        ls.arity(),
                        rs.arity()
                    )));
                }
                Ok(ls)
            }
            LogicalPlan::Dedup { input } => input.output_schema(),
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let s = input.output_schema()?;
                let mut attrs = Vec::with_capacity(group_by.len() + aggs.len());
                for g in group_by {
                    let a = s.attribute(g).ok_or_else(|| {
                        DiscoError::Plan(format!("group-by attribute `{g}` not in input"))
                    })?;
                    attrs.push(a.clone());
                }
                for agg in aggs {
                    let ty = match agg.func {
                        AggFunc::Count => DataType::Long,
                        AggFunc::Sum | AggFunc::Avg => DataType::Double,
                        AggFunc::Min | AggFunc::Max => match &agg.arg {
                            Some(arg) => {
                                s.attribute(arg)
                                    .ok_or_else(|| {
                                        DiscoError::Plan(format!(
                                            "aggregate argument `{arg}` not in input"
                                        ))
                                    })?
                                    .ty
                            }
                            None => {
                                return Err(DiscoError::Plan(
                                    "min/max require an attribute argument".into(),
                                ))
                            }
                        },
                    };
                    if let Some(arg) = &agg.arg {
                        if s.index_of(arg).is_none() {
                            return Err(DiscoError::Plan(format!(
                                "aggregate argument `{arg}` not in input"
                            )));
                        }
                    }
                    attrs.push(AttributeDef::new(agg.name.clone(), ty));
                }
                Ok(Schema::new(attrs))
            }
            LogicalPlan::Submit { input, .. } => input.output_schema(),
        }
    }
}

/// Infer the result type of a projection expression.
fn infer_expr_type(e: &ScalarExpr, schema: &Schema) -> Result<DataType> {
    match e {
        ScalarExpr::Attr(name) => schema
            .attribute(name)
            .map(|a| a.ty)
            .ok_or_else(|| DiscoError::Plan(format!("projection of unknown attribute `{name}`"))),
        ScalarExpr::Const(v) => Ok(v.data_type().unwrap_or(DataType::Str)),
        ScalarExpr::Binary { left, right, .. } => {
            let lt = infer_expr_type(left, schema)?;
            let rt = infer_expr_type(right, schema)?;
            match (lt, rt) {
                (DataType::Long, DataType::Long) => Ok(DataType::Long),
                (DataType::Long | DataType::Double, DataType::Long | DataType::Double) => {
                    Ok(DataType::Double)
                }
                _ => Err(DiscoError::Plan(format!(
                    "arithmetic over non-numeric types {lt} and {rt}"
                ))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{CompareOp, SelectPredicate};
    use disco_common::Value;

    fn emp_scan() -> LogicalPlan {
        LogicalPlan::Scan {
            collection: QualifiedName::new("hr", "Employee"),
            schema: Schema::new(vec![
                AttributeDef::new("id", DataType::Long),
                AttributeDef::new("name", DataType::Str),
                AttributeDef::new("salary", DataType::Long),
            ]),
        }
    }

    #[test]
    fn operator_kind_round_trip() {
        for k in OperatorKind::ALL {
            assert_eq!(OperatorKind::parse(k.name()), Some(k));
        }
        assert_eq!(OperatorKind::parse("nonsense"), None);
    }

    #[test]
    fn schema_flows_through_select_and_sort() {
        let plan = LogicalPlan::Sort {
            input: Box::new(LogicalPlan::Select {
                input: Box::new(emp_scan()),
                predicate: Predicate::single(SelectPredicate::new(
                    "salary",
                    CompareOp::Gt,
                    Value::Long(1000),
                )),
            }),
            keys: vec![("name".into(), true)],
        };
        let s = plan.output_schema().unwrap();
        assert_eq!(s.arity(), 3);
    }

    #[test]
    fn select_unknown_attribute_fails() {
        let plan = LogicalPlan::Select {
            input: Box::new(emp_scan()),
            predicate: Predicate::single(SelectPredicate::new(
                "wage",
                CompareOp::Eq,
                Value::Long(1),
            )),
        };
        assert_eq!(plan.output_schema().unwrap_err().kind(), "plan");
    }

    #[test]
    fn project_builds_new_schema() {
        let plan = LogicalPlan::Project {
            input: Box::new(emp_scan()),
            columns: vec![
                ("who".into(), ScalarExpr::attr("name")),
                (
                    "double_pay".into(),
                    ScalarExpr::Binary {
                        op: crate::expr::ArithOp::Mul,
                        left: Box::new(ScalarExpr::attr("salary")),
                        right: Box::new(ScalarExpr::constant(2i64)),
                    },
                ),
            ],
        };
        let s = plan.output_schema().unwrap();
        assert_eq!(s.index_of("who"), Some(0));
        assert_eq!(s.attribute("double_pay").unwrap().ty, DataType::Long);
    }

    #[test]
    fn join_concatenates_schemas() {
        let dept = LogicalPlan::Scan {
            collection: QualifiedName::new("hr", "Dept"),
            schema: Schema::new(vec![
                AttributeDef::new("dept_id", DataType::Long),
                AttributeDef::new("dept_name", DataType::Str),
            ]),
        };
        let plan = LogicalPlan::Join {
            left: Box::new(emp_scan()),
            right: Box::new(dept),
            predicate: JoinPredicate::equi("id", "dept_id"),
            kind: JoinKind::Inner,
        };
        let s = plan.output_schema().unwrap();
        assert_eq!(s.arity(), 5);
        assert_eq!(plan.collections().len(), 2);
        assert!(plan.base_collection().is_none());
    }

    #[test]
    fn join_missing_attr_fails() {
        let plan = LogicalPlan::Join {
            left: Box::new(emp_scan()),
            right: Box::new(emp_scan()),
            predicate: JoinPredicate::equi("nope", "id"),
            kind: JoinKind::Inner,
        };
        assert!(plan.output_schema().is_err());
    }

    #[test]
    fn base_collection_follows_linear_chains() {
        let plan = LogicalPlan::Submit {
            wrapper: "hr".into(),
            input: Box::new(LogicalPlan::Select {
                input: Box::new(emp_scan()),
                predicate: Predicate::always(),
            }),
        };
        assert_eq!(
            plan.base_collection().unwrap(),
            &QualifiedName::new("hr", "Employee")
        );
    }

    #[test]
    fn aggregate_schema_types() {
        let plan = LogicalPlan::Aggregate {
            input: Box::new(emp_scan()),
            group_by: vec!["name".into()],
            aggs: vec![
                AggExpr {
                    name: "n".into(),
                    func: AggFunc::Count,
                    arg: None,
                },
                AggExpr {
                    name: "total".into(),
                    func: AggFunc::Sum,
                    arg: Some("salary".into()),
                },
                AggExpr {
                    name: "top".into(),
                    func: AggFunc::Max,
                    arg: Some("salary".into()),
                },
            ],
        };
        let s = plan.output_schema().unwrap();
        assert_eq!(s.attribute("n").unwrap().ty, DataType::Long);
        assert_eq!(s.attribute("total").unwrap().ty, DataType::Double);
        assert_eq!(s.attribute("top").unwrap().ty, DataType::Long);
    }

    #[test]
    fn union_arity_mismatch_fails() {
        let small = LogicalPlan::Project {
            input: Box::new(emp_scan()),
            columns: vec![("id".into(), ScalarExpr::attr("id"))],
        };
        let plan = LogicalPlan::Union {
            left: Box::new(emp_scan()),
            right: Box::new(small),
        };
        assert!(plan.output_schema().is_err());
    }

    #[test]
    fn node_count_counts_all() {
        let plan = LogicalPlan::Dedup {
            input: Box::new(LogicalPlan::Select {
                input: Box::new(emp_scan()),
                predicate: Predicate::always(),
            }),
        };
        assert_eq!(plan.node_count(), 3);
    }
}

//! Injectable fault schedules for transport endpoints.
//!
//! Faults are keyed by the endpoint's *submit sequence number* (0-based,
//! counting only [`crate::Request::Submit`] calls — registration traffic
//! is exempt so a schedule written for a test is not perturbed by setup).
//! That makes every failure scenario deterministic and replayable.

/// What happens to an affected request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The message is lost: the wrapper never replies and the client's
    /// deadline expires (`DiscoError::Timeout`).
    Drop,
    /// The wrapper answers with a service-unavailable error
    /// (`DiscoError::Unavailable`).
    Unavailable,
    /// The reply is delivered, but the given extra milliseconds are added
    /// to the simulated communication time.
    Delay(f64),
}

/// One scheduled fault window: submits with sequence number in
/// `[from, until)` suffer `kind`.
#[derive(Debug, Clone, PartialEq)]
struct FaultRule {
    from: u64,
    until: u64,
    kind: FaultKind,
}

/// A deterministic schedule of fault windows for one endpoint.
///
/// The first matching window wins, so specific early windows can be
/// layered over an `always` backdrop.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// A healthy endpoint.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Fault the first `n` submits.
    pub fn first_n(kind: FaultKind, n: u64) -> Self {
        FaultPlan::none().window(0, n, kind)
    }

    /// Fault every submit.
    pub fn always(kind: FaultKind) -> Self {
        FaultPlan::none().window(0, u64::MAX, kind)
    }

    /// Add a window `[from, until)` (builder style).
    pub fn window(mut self, from: u64, until: u64, kind: FaultKind) -> Self {
        self.rules.push(FaultRule { from, until, kind });
        self
    }

    /// The fault applied to submit number `seq`, if any.
    pub fn action_for(&self, seq: u64) -> Option<FaultKind> {
        self.rules
            .iter()
            .find(|r| seq >= r.from && seq < r.until)
            .map(|r| r.kind)
    }

    /// `true` if no window can ever fire.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_n_then_healthy() {
        let plan = FaultPlan::first_n(FaultKind::Drop, 2);
        assert_eq!(plan.action_for(0), Some(FaultKind::Drop));
        assert_eq!(plan.action_for(1), Some(FaultKind::Drop));
        assert_eq!(plan.action_for(2), None);
    }

    #[test]
    fn first_matching_window_wins() {
        let plan = FaultPlan::always(FaultKind::Unavailable).window(5, 10, FaultKind::Delay(7.0));
        // The always-backdrop was added first, so it shadows the window.
        assert_eq!(plan.action_for(6), Some(FaultKind::Unavailable));

        let layered = FaultPlan::none()
            .window(5, 10, FaultKind::Delay(7.0))
            .window(0, u64::MAX, FaultKind::Unavailable);
        assert_eq!(layered.action_for(6), Some(FaultKind::Delay(7.0)));
        assert_eq!(layered.action_for(11), Some(FaultKind::Unavailable));
    }

    #[test]
    fn empty_plan_never_fires() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert_eq!(plan.action_for(0), None);
        assert_eq!(plan.action_for(u64::MAX - 1), None);
    }
}

//! [`ChannelTransport`]: each wrapper on its own worker thread, reached
//! through mpsc channels carrying encoded bytes.
//!
//! This is the in-process stand-in for a real network stack, but it is an
//! honest one: requests and replies cross the boundary as bytes (decoded
//! and re-encoded by the worker), each endpoint has its own simulated
//! [`NetProfile`] and optional [`FaultPlan`], and a lost message surfaces
//! to the caller exactly as a deadline expiry would.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use disco_common::rng::{seeded, DEFAULT_SEED};
use disco_common::wire::{WireDecode, WireEncode};
use disco_common::{DiscoError, Result};
use disco_sources::{BatchAnswer, ExecStats};
use disco_wrapper::Wrapper;

use crate::fault::{FaultKind, FaultPlan};
use crate::netsim::NetProfile;
use crate::wire::{Frame, Request, Response};
use crate::{Envelope, FrameEnvelope, FrameStream, Transport};

/// Per-stream reply channel capacity: the worker can run at most this
/// many frames ahead of the consumer before its `send` blocks. This is
/// the backpressure window of the streaming protocol.
const STREAM_WINDOW: usize = 4;

/// One queued call: the encoded request and the channel to answer on.
struct Job {
    request: Vec<u8>,
    reply: ReplyTo,
}

/// Where a job's reply goes: a one-shot response channel, or a bounded
/// frame channel for streaming submits.
enum ReplyTo {
    Once(Sender<Reply>),
    Stream(SyncSender<Reply>),
}

/// What the worker sends back: simulated communication time + payload.
struct Reply {
    comm_ms: f64,
    payload: Vec<u8>,
}

struct WorkerHandle {
    tx: Sender<Job>,
    join: Option<JoinHandle<()>>,
    served: Arc<AtomicU64>,
    profile: NetProfile,
}

/// A transport whose endpoints are worker threads, one per wrapper.
pub struct ChannelTransport {
    workers: BTreeMap<String, WorkerHandle>,
    seed: u64,
}

impl ChannelTransport {
    /// Empty transport with the workspace default RNG seed.
    pub fn new() -> Self {
        ChannelTransport::with_seed(DEFAULT_SEED)
    }

    /// Empty transport with an explicit jitter seed.
    pub fn with_seed(seed: u64) -> Self {
        ChannelTransport {
            workers: BTreeMap::new(),
            seed,
        }
    }

    /// Host a wrapper on a default (LAN, fault-free) endpoint.
    pub fn add_wrapper(&mut self, wrapper: Box<dyn Wrapper>) {
        self.add_wrapper_with(wrapper, NetProfile::default(), FaultPlan::none());
    }

    /// Host a wrapper with an explicit network profile and fault schedule.
    pub fn add_wrapper_with(
        &mut self,
        wrapper: Box<dyn Wrapper>,
        profile: NetProfile,
        faults: FaultPlan,
    ) {
        let name = wrapper.name().to_string();
        let served = Arc::new(AtomicU64::new(0));
        let served_in_worker = Arc::clone(&served);
        let endpoint_profile = profile.clone();
        let mut rng = seeded(self.seed, &format!("net:{name}"));
        let (tx, rx) = mpsc::channel::<Job>();
        let join = std::thread::Builder::new()
            .name(format!("wrapper-{name}"))
            .spawn(move || {
                // Submit sequence number for fault matching; registration
                // traffic is exempt so test schedules stay stable.
                let mut submit_seq: u64 = 0;
                while let Ok(job) = rx.recv() {
                    served_in_worker.fetch_add(1, Ordering::Relaxed);
                    let request_bytes = job.request.len();
                    let decoded = Request::from_wire_bytes(&job.request);
                    // Streaming submits consume the same fault sequence
                    // numbers as one-shot ones, so a schedule behaves
                    // identically under either execution mode.
                    let is_submit = matches!(
                        decoded,
                        Ok(Request::Submit(_)) | Ok(Request::SubmitStream { .. })
                    );
                    let action = if is_submit {
                        let a = faults.action_for(submit_seq);
                        submit_seq += 1;
                        a
                    } else {
                        None
                    };

                    if matches!(action, Some(FaultKind::Drop)) {
                        // Message lost: never reply. The caller's deadline
                        // (or the closed channel) reports the timeout.
                        continue;
                    }

                    if let ReplyTo::Stream(reply) = &job.reply {
                        serve_stream(
                            wrapper.as_ref(),
                            decoded,
                            action,
                            reply,
                            request_bytes,
                            &profile,
                            rng.gen_f64(),
                        );
                        continue;
                    }

                    let response = match (decoded, action) {
                        (Err(e), _) => Response::Error {
                            kind: e.kind().to_string(),
                            message: e.message().to_string(),
                        },
                        (Ok(_), Some(FaultKind::Unavailable)) => Response::Error {
                            kind: "unavailable".to_string(),
                            message: format!("endpoint `{}` is unavailable", wrapper.name()),
                        },
                        (Ok(req), _) => serve(wrapper.as_ref(), req),
                    };
                    let payload = response.to_wire_bytes();
                    let extra_ms = match action {
                        Some(FaultKind::Delay(ms)) => ms,
                        _ => 0.0,
                    };
                    let comm_ms =
                        profile.comm_ms(request_bytes, payload.len(), rng.gen_f64()) + extra_ms;
                    if profile.sleep_scale > 0.0 {
                        let sleep = comm_ms * profile.sleep_scale;
                        std::thread::sleep(Duration::from_micros((sleep * 1000.0) as u64));
                    }
                    // A caller that already gave up is not an error here.
                    let _ = match &job.reply {
                        ReplyTo::Once(tx) => tx.send(Reply { comm_ms, payload }).is_ok(),
                        ReplyTo::Stream(_) => unreachable!("handled above"),
                    };
                }
            })
            .expect("spawn wrapper worker thread");
        self.workers.insert(
            name,
            WorkerHandle {
                tx,
                join: Some(join),
                served,
                profile: endpoint_profile,
            },
        );
    }

    /// Total requests an endpoint's worker has picked up (including
    /// dropped ones) — used by fault tests to assert retry counts.
    pub fn requests_served(&self, endpoint: &str) -> u64 {
        self.workers
            .get(endpoint)
            .map(|w| w.served.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

impl Default for ChannelTransport {
    fn default() -> Self {
        ChannelTransport::new()
    }
}

/// Execute a decoded request against the hosted wrapper.
fn serve(wrapper: &dyn Wrapper, request: Request) -> Response {
    let result = match request {
        Request::Register => wrapper.registration().map(Response::Registration),
        Request::Submit(plan) => wrapper.execute(&plan).map(Response::Answer),
        Request::SubmitStream { .. } => Err(DiscoError::Exec(
            "streaming submit requires a streaming call".into(),
        )),
    };
    result.unwrap_or_else(|e| Response::Error {
        kind: e.kind().to_string(),
        message: e.message().to_string(),
    })
}

/// Execute a streaming submit, slicing the subanswer into chunk frames
/// pushed through the bounded `reply` channel. The first frame pays the
/// full round trip (latency + jitter + any injected delay); later frames
/// pay transfer time only, pipelined on the established exchange. A
/// receiver that hangs up releases the worker immediately — remaining
/// frames are never produced.
fn serve_stream(
    wrapper: &dyn Wrapper,
    decoded: Result<Request>,
    action: Option<FaultKind>,
    reply: &SyncSender<Reply>,
    request_bytes: usize,
    profile: &NetProfile,
    draw: f64,
) {
    let extra_ms = match action {
        Some(FaultKind::Delay(ms)) => ms,
        _ => 0.0,
    };
    let mut first = true;
    let mut send = |frame: Frame| -> bool {
        let payload = frame.to_wire_bytes();
        let comm_ms = if first {
            first = false;
            profile.comm_ms(request_bytes, payload.len(), draw) + extra_ms
        } else {
            profile.transfer_ms(payload.len())
        };
        if profile.sleep_scale > 0.0 {
            let sleep = comm_ms * profile.sleep_scale;
            std::thread::sleep(Duration::from_micros((sleep * 1000.0) as u64));
        }
        reply.send(Reply { comm_ms, payload }).is_ok()
    };

    let error_frame = |e: &DiscoError| Frame::Error {
        kind: e.kind().to_string(),
        message: e.message().to_string(),
    };

    let (plan, chunk_rows) = match (decoded, action) {
        (Err(e), _) => {
            send(error_frame(&e));
            return;
        }
        (Ok(_), Some(FaultKind::Unavailable)) => {
            send(Frame::Error {
                kind: "unavailable".to_string(),
                message: format!("endpoint `{}` is unavailable", wrapper.name()),
            });
            return;
        }
        (Ok(Request::SubmitStream { plan, chunk_rows }), _) => (plan, chunk_rows),
        (Ok(_), _) => {
            send(Frame::Error {
                kind: "exec".to_string(),
                message: "streaming call requires a streaming submit".to_string(),
            });
            return;
        }
    };

    match wrapper.execute(&plan) {
        Err(e) => {
            send(error_frame(&e));
        }
        Ok(answer) => {
            let answer = BatchAnswer::from(answer);
            let chunk = (chunk_rows as usize).max(1);
            let total = answer.batch.len();
            let mut start = 0;
            // Always at least one chunk, so an empty answer still ships
            // its schema before the end-of-stream frame.
            loop {
                let end = (start + chunk).min(total);
                let sel: Vec<u32> = (start as u32..end as u32).collect();
                let delivered = send(Frame::Chunk(BatchAnswer {
                    schema: answer.schema.clone(),
                    batch: answer.batch.take(&sel),
                    stats: ExecStats::default(),
                }));
                if !delivered {
                    return;
                }
                start = end;
                if start >= total {
                    break;
                }
            }
            send(Frame::End(answer.stats));
        }
    }
}

/// Client-side handle for a stream opened on a [`ChannelTransport`]
/// endpoint: pulls frames off the worker's bounded reply channel.
struct ChannelFrameStream {
    rx: Receiver<Reply>,
    endpoint: String,
}

impl FrameStream for ChannelFrameStream {
    fn next_frame(&mut self, deadline: Duration) -> Result<FrameEnvelope> {
        match self.rx.recv_timeout(deadline) {
            Ok(reply) => Ok(FrameEnvelope {
                payload: reply.payload,
                comm_ms: reply.comm_ms,
            }),
            // A hung-up producer (dropped message fault) is, to the
            // consumer, the same silence as an overdue frame.
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => Err(
                DiscoError::Timeout(format!("no frame from `{}` within deadline", self.endpoint)),
            ),
        }
    }
}

impl Transport for ChannelTransport {
    fn endpoints(&self) -> Vec<String> {
        self.workers.keys().cloned().collect()
    }

    fn call(&self, endpoint: &str, request: &[u8], deadline: Duration) -> Result<Envelope> {
        let worker = self
            .workers
            .get(endpoint)
            .ok_or_else(|| DiscoError::Exec(format!("no transport endpoint named `{endpoint}`")))?;
        let (reply_tx, reply_rx) = mpsc::channel();
        worker
            .tx
            .send(Job {
                request: request.to_vec(),
                reply: ReplyTo::Once(reply_tx),
            })
            .map_err(|_| DiscoError::Unavailable(format!("endpoint `{endpoint}` is shut down")))?;
        match reply_rx.recv_timeout(deadline) {
            Ok(reply) => Ok(Envelope {
                response_bytes: reply.payload.len(),
                payload: reply.payload,
                comm_ms: reply.comm_ms,
                request_bytes: request.len(),
            }),
            // A dropped reply channel means the message was lost (fault
            // injection) — indistinguishable, to a client, from silence.
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => Err(
                DiscoError::Timeout(format!("no reply from `{endpoint}` within deadline")),
            ),
        }
    }

    fn latency_floor_ms(&self, endpoint: &str) -> Option<f64> {
        self.workers
            .get(endpoint)
            .map(|w| 2.0 * w.profile.latency_ms)
    }

    fn sleep_scale(&self, endpoint: &str) -> Option<f64> {
        self.workers.get(endpoint).map(|w| w.profile.sleep_scale)
    }

    fn supports_streaming(&self) -> bool {
        true
    }

    fn call_stream(&self, endpoint: &str, request: &[u8]) -> Result<Box<dyn FrameStream>> {
        let worker = self
            .workers
            .get(endpoint)
            .ok_or_else(|| DiscoError::Exec(format!("no transport endpoint named `{endpoint}`")))?;
        let (reply_tx, reply_rx) = mpsc::sync_channel(STREAM_WINDOW);
        worker
            .tx
            .send(Job {
                request: request.to_vec(),
                reply: ReplyTo::Stream(reply_tx),
            })
            .map_err(|_| DiscoError::Unavailable(format!("endpoint `{endpoint}` is shut down")))?;
        Ok(Box::new(ChannelFrameStream {
            rx: reply_rx,
            endpoint: endpoint.to_string(),
        }))
    }
}

impl Drop for ChannelTransport {
    fn drop(&mut self) {
        // Close every job queue, then join the workers.
        let joins: Vec<_> = self
            .workers
            .values_mut()
            .filter_map(|w| w.join.take())
            .collect();
        self.workers.clear(); // drops the senders, ending the worker loops
        for j in joins {
            let _ = j.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_algebra::{CompareOp, PlanBuilder};
    use disco_common::{AttributeDef, DataType, QualifiedName, Schema, Value};
    use disco_sources::{CollectionBuilder, CostProfile, PagedStore};
    use disco_wrapper::SourceWrapper;

    fn schema() -> Schema {
        Schema::new(vec![
            AttributeDef::new("id", DataType::Long),
            AttributeDef::new("v", DataType::Long),
        ])
    }

    fn wrapper(name: &str) -> Box<dyn Wrapper> {
        let mut store = PagedStore::new(name, CostProfile::relational());
        store
            .add_collection(
                "T",
                CollectionBuilder::new(schema())
                    .rows((0..100i64).map(|i| vec![Value::Long(i), Value::Long(i % 5)])),
            )
            .unwrap();
        Box::new(SourceWrapper::new(name, store))
    }

    fn submit_bytes(name: &str) -> Vec<u8> {
        Request::Submit(
            PlanBuilder::scan(QualifiedName::new(name, "T"), schema())
                .select("id", CompareOp::Lt, 7i64)
                .submit(name)
                .build(),
        )
        .to_wire_bytes()
    }

    #[test]
    fn register_and_submit_round_trip_as_bytes() {
        let mut t = ChannelTransport::new();
        t.add_wrapper(wrapper("s"));
        assert_eq!(t.endpoints(), vec!["s".to_string()]);

        let env = t
            .call(
                "s",
                &Request::Register.to_wire_bytes(),
                Duration::from_secs(5),
            )
            .unwrap();
        let resp = Response::from_wire_bytes(&env.payload)
            .unwrap()
            .into_result()
            .unwrap();
        match resp {
            Response::Registration(reg) => assert_eq!(reg.collections.len(), 1),
            other => panic!("expected registration, got {other:?}"),
        }

        let env = t
            .call("s", &submit_bytes("s"), Duration::from_secs(5))
            .unwrap();
        // The seed charge: two 50 ms latencies plus bytes at 1000 B/ms.
        assert!(env.comm_ms >= 100.0);
        let resp = Response::from_wire_bytes(&env.payload)
            .unwrap()
            .into_result()
            .unwrap();
        match resp {
            Response::Answer(a) => assert_eq!(a.tuples.len(), 7),
            other => panic!("expected answer, got {other:?}"),
        }
        assert_eq!(t.requests_served("s"), 2);
    }

    #[test]
    fn unknown_endpoint_is_a_config_error() {
        let t = ChannelTransport::new();
        let err = t
            .call(
                "ghost",
                &Request::Register.to_wire_bytes(),
                Duration::from_secs(1),
            )
            .unwrap_err();
        assert_eq!(err.kind(), "exec");
    }

    #[test]
    fn dropped_submits_time_out_and_registration_is_exempt() {
        let mut t = ChannelTransport::new();
        t.add_wrapper_with(
            wrapper("s"),
            NetProfile::lan(),
            FaultPlan::first_n(FaultKind::Drop, 1),
        );
        // Registration does not consume the fault window…
        assert!(t
            .call(
                "s",
                &Request::Register.to_wire_bytes(),
                Duration::from_secs(5)
            )
            .is_ok());
        // …the first submit does, and times out…
        let err = t
            .call("s", &submit_bytes("s"), Duration::from_millis(50))
            .unwrap_err();
        assert_eq!(err.kind(), "timeout");
        assert!(err.is_transient());
        // …and the second submit succeeds.
        assert!(t
            .call("s", &submit_bytes("s"), Duration::from_secs(5))
            .is_ok());
    }

    #[test]
    fn unavailable_fault_crosses_the_wire_as_an_error() {
        let mut t = ChannelTransport::new();
        t.add_wrapper_with(
            wrapper("s"),
            NetProfile::lan(),
            FaultPlan::always(FaultKind::Unavailable),
        );
        let env = t
            .call("s", &submit_bytes("s"), Duration::from_secs(5))
            .unwrap();
        let err = Response::from_wire_bytes(&env.payload)
            .unwrap()
            .into_result()
            .unwrap_err();
        assert_eq!(err.kind(), "unavailable");
        assert!(err.is_transient());
    }

    #[test]
    fn delay_fault_inflates_comm_time() {
        let mut t = ChannelTransport::new();
        t.add_wrapper_with(
            wrapper("s"),
            NetProfile::lan(),
            FaultPlan::first_n(FaultKind::Delay(500.0), 1),
        );
        let slow = t
            .call("s", &submit_bytes("s"), Duration::from_secs(5))
            .unwrap();
        let fast = t
            .call("s", &submit_bytes("s"), Duration::from_secs(5))
            .unwrap();
        assert!(slow.comm_ms > fast.comm_ms + 400.0);
    }

    fn submit_stream_bytes(name: &str, chunk_rows: u32) -> Vec<u8> {
        Request::SubmitStream {
            plan: PlanBuilder::scan(QualifiedName::new(name, "T"), schema())
                .select("id", CompareOp::Lt, 7i64)
                .submit(name)
                .build(),
            chunk_rows,
        }
        .to_wire_bytes()
    }

    #[test]
    fn streaming_submit_delivers_chunks_then_end() {
        use crate::wire::decode_frame;

        let mut t = ChannelTransport::new();
        t.add_wrapper(wrapper("s"));
        let mut stream = t.call_stream("s", &submit_stream_bytes("s", 3)).unwrap();
        let mut rows = 0;
        let mut chunks = 0;
        loop {
            let env = stream.next_frame(Duration::from_secs(5)).unwrap();
            match decode_frame(&env.payload).unwrap() {
                Frame::Chunk(a) => {
                    if chunks == 0 {
                        // First frame pays the round trip (2 × 50 ms)…
                        assert!(env.comm_ms >= 100.0);
                    } else {
                        // …later frames pay transfer only.
                        assert!(env.comm_ms < 100.0);
                    }
                    chunks += 1;
                    rows += a.batch.len();
                }
                Frame::End(stats) => {
                    assert!(stats.elapsed_ms > 0.0);
                    break;
                }
                Frame::Error { kind, message } => panic!("stream error {kind}: {message}"),
            }
        }
        assert_eq!(rows, 7);
        assert_eq!(chunks, 3); // 3 + 3 + 1 under chunk_rows = 3
    }

    #[test]
    fn dropped_stream_surfaces_as_first_frame_timeout() {
        let mut t = ChannelTransport::new();
        t.add_wrapper_with(
            wrapper("s"),
            NetProfile::lan(),
            FaultPlan::first_n(FaultKind::Drop, 1),
        );
        let mut stream = t.call_stream("s", &submit_stream_bytes("s", 8)).unwrap();
        let err = stream.next_frame(Duration::from_millis(50)).unwrap_err();
        assert_eq!(err.kind(), "timeout");
        assert!(err.is_transient());
        // The fault window is consumed: a retry streams normally.
        let mut stream = t.call_stream("s", &submit_stream_bytes("s", 8)).unwrap();
        assert!(stream.next_frame(Duration::from_secs(5)).is_ok());
    }

    #[test]
    fn abandoned_stream_releases_the_worker() {
        let mut t = ChannelTransport::new();
        t.add_wrapper(wrapper("s"));
        let mut stream = t.call_stream("s", &submit_stream_bytes("s", 1)).unwrap();
        // Take one frame of many, then hang up mid-stream.
        assert!(stream.next_frame(Duration::from_secs(5)).is_ok());
        drop(stream);
        // The worker must abandon the remaining frames and serve the
        // next request.
        assert!(t
            .call("s", &submit_bytes("s"), Duration::from_secs(5))
            .is_ok());
    }

    #[test]
    fn malformed_request_bytes_get_an_error_reply_not_a_crash() {
        let mut t = ChannelTransport::new();
        t.add_wrapper(wrapper("s"));
        let env = t.call("s", &[0xFF, 0x01], Duration::from_secs(5)).unwrap();
        let err = Response::from_wire_bytes(&env.payload)
            .unwrap()
            .into_result()
            .unwrap_err();
        assert_eq!(err.kind(), "parse");
    }
}

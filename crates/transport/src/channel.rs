//! [`ChannelTransport`]: each wrapper on its own worker thread, reached
//! through mpsc channels carrying encoded bytes.
//!
//! This is the in-process stand-in for a real network stack, but it is an
//! honest one: requests and replies cross the boundary as bytes (decoded
//! and re-encoded by the worker), each endpoint has its own simulated
//! [`NetProfile`] and optional [`FaultPlan`], and a lost message surfaces
//! to the caller exactly as a deadline expiry would.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use disco_common::rng::{seeded, DEFAULT_SEED};
use disco_common::wire::{WireDecode, WireEncode};
use disco_common::{DiscoError, Result};
use disco_wrapper::Wrapper;

use crate::fault::{FaultKind, FaultPlan};
use crate::netsim::NetProfile;
use crate::wire::{Request, Response};
use crate::{Envelope, Transport};

/// One queued call: the encoded request and the channel to answer on.
struct Job {
    request: Vec<u8>,
    reply: Sender<Reply>,
}

/// What the worker sends back: simulated communication time + payload.
struct Reply {
    comm_ms: f64,
    payload: Vec<u8>,
}

struct WorkerHandle {
    tx: Sender<Job>,
    join: Option<JoinHandle<()>>,
    served: Arc<AtomicU64>,
    profile: NetProfile,
}

/// A transport whose endpoints are worker threads, one per wrapper.
pub struct ChannelTransport {
    workers: BTreeMap<String, WorkerHandle>,
    seed: u64,
}

impl ChannelTransport {
    /// Empty transport with the workspace default RNG seed.
    pub fn new() -> Self {
        ChannelTransport::with_seed(DEFAULT_SEED)
    }

    /// Empty transport with an explicit jitter seed.
    pub fn with_seed(seed: u64) -> Self {
        ChannelTransport {
            workers: BTreeMap::new(),
            seed,
        }
    }

    /// Host a wrapper on a default (LAN, fault-free) endpoint.
    pub fn add_wrapper(&mut self, wrapper: Box<dyn Wrapper>) {
        self.add_wrapper_with(wrapper, NetProfile::default(), FaultPlan::none());
    }

    /// Host a wrapper with an explicit network profile and fault schedule.
    pub fn add_wrapper_with(
        &mut self,
        wrapper: Box<dyn Wrapper>,
        profile: NetProfile,
        faults: FaultPlan,
    ) {
        let name = wrapper.name().to_string();
        let served = Arc::new(AtomicU64::new(0));
        let served_in_worker = Arc::clone(&served);
        let endpoint_profile = profile.clone();
        let mut rng = seeded(self.seed, &format!("net:{name}"));
        let (tx, rx) = mpsc::channel::<Job>();
        let join = std::thread::Builder::new()
            .name(format!("wrapper-{name}"))
            .spawn(move || {
                // Submit sequence number for fault matching; registration
                // traffic is exempt so test schedules stay stable.
                let mut submit_seq: u64 = 0;
                while let Ok(job) = rx.recv() {
                    served_in_worker.fetch_add(1, Ordering::Relaxed);
                    let request_bytes = job.request.len();
                    let decoded = Request::from_wire_bytes(&job.request);
                    let is_submit = matches!(decoded, Ok(Request::Submit(_)));
                    let action = if is_submit {
                        let a = faults.action_for(submit_seq);
                        submit_seq += 1;
                        a
                    } else {
                        None
                    };

                    if matches!(action, Some(FaultKind::Drop)) {
                        // Message lost: never reply. The caller's deadline
                        // (or the closed channel) reports the timeout.
                        continue;
                    }

                    let response = match (decoded, action) {
                        (Err(e), _) => Response::Error {
                            kind: e.kind().to_string(),
                            message: e.message().to_string(),
                        },
                        (Ok(_), Some(FaultKind::Unavailable)) => Response::Error {
                            kind: "unavailable".to_string(),
                            message: format!("endpoint `{}` is unavailable", wrapper.name()),
                        },
                        (Ok(req), _) => serve(wrapper.as_ref(), req),
                    };
                    let payload = response.to_wire_bytes();
                    let extra_ms = match action {
                        Some(FaultKind::Delay(ms)) => ms,
                        _ => 0.0,
                    };
                    let comm_ms =
                        profile.comm_ms(request_bytes, payload.len(), rng.gen_f64()) + extra_ms;
                    if profile.sleep_scale > 0.0 {
                        let sleep = comm_ms * profile.sleep_scale;
                        std::thread::sleep(Duration::from_micros((sleep * 1000.0) as u64));
                    }
                    // A caller that already gave up is not an error here.
                    let _ = job.reply.send(Reply { comm_ms, payload });
                }
            })
            .expect("spawn wrapper worker thread");
        self.workers.insert(
            name,
            WorkerHandle {
                tx,
                join: Some(join),
                served,
                profile: endpoint_profile,
            },
        );
    }

    /// Total requests an endpoint's worker has picked up (including
    /// dropped ones) — used by fault tests to assert retry counts.
    pub fn requests_served(&self, endpoint: &str) -> u64 {
        self.workers
            .get(endpoint)
            .map(|w| w.served.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

impl Default for ChannelTransport {
    fn default() -> Self {
        ChannelTransport::new()
    }
}

/// Execute a decoded request against the hosted wrapper.
fn serve(wrapper: &dyn Wrapper, request: Request) -> Response {
    let result = match request {
        Request::Register => wrapper.registration().map(Response::Registration),
        Request::Submit(plan) => wrapper.execute(&plan).map(Response::Answer),
    };
    result.unwrap_or_else(|e| Response::Error {
        kind: e.kind().to_string(),
        message: e.message().to_string(),
    })
}

impl Transport for ChannelTransport {
    fn endpoints(&self) -> Vec<String> {
        self.workers.keys().cloned().collect()
    }

    fn call(&self, endpoint: &str, request: &[u8], deadline: Duration) -> Result<Envelope> {
        let worker = self
            .workers
            .get(endpoint)
            .ok_or_else(|| DiscoError::Exec(format!("no transport endpoint named `{endpoint}`")))?;
        let (reply_tx, reply_rx) = mpsc::channel();
        worker
            .tx
            .send(Job {
                request: request.to_vec(),
                reply: reply_tx,
            })
            .map_err(|_| DiscoError::Unavailable(format!("endpoint `{endpoint}` is shut down")))?;
        match reply_rx.recv_timeout(deadline) {
            Ok(reply) => Ok(Envelope {
                response_bytes: reply.payload.len(),
                payload: reply.payload,
                comm_ms: reply.comm_ms,
                request_bytes: request.len(),
            }),
            // A dropped reply channel means the message was lost (fault
            // injection) — indistinguishable, to a client, from silence.
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => Err(
                DiscoError::Timeout(format!("no reply from `{endpoint}` within deadline")),
            ),
        }
    }

    fn latency_floor_ms(&self, endpoint: &str) -> Option<f64> {
        self.workers
            .get(endpoint)
            .map(|w| 2.0 * w.profile.latency_ms)
    }

    fn sleep_scale(&self, endpoint: &str) -> Option<f64> {
        self.workers.get(endpoint).map(|w| w.profile.sleep_scale)
    }
}

impl Drop for ChannelTransport {
    fn drop(&mut self) {
        // Close every job queue, then join the workers.
        let joins: Vec<_> = self
            .workers
            .values_mut()
            .filter_map(|w| w.join.take())
            .collect();
        self.workers.clear(); // drops the senders, ending the worker loops
        for j in joins {
            let _ = j.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_algebra::{CompareOp, PlanBuilder};
    use disco_common::{AttributeDef, DataType, QualifiedName, Schema, Value};
    use disco_sources::{CollectionBuilder, CostProfile, PagedStore};
    use disco_wrapper::SourceWrapper;

    fn schema() -> Schema {
        Schema::new(vec![
            AttributeDef::new("id", DataType::Long),
            AttributeDef::new("v", DataType::Long),
        ])
    }

    fn wrapper(name: &str) -> Box<dyn Wrapper> {
        let mut store = PagedStore::new(name, CostProfile::relational());
        store
            .add_collection(
                "T",
                CollectionBuilder::new(schema())
                    .rows((0..100i64).map(|i| vec![Value::Long(i), Value::Long(i % 5)])),
            )
            .unwrap();
        Box::new(SourceWrapper::new(name, store))
    }

    fn submit_bytes(name: &str) -> Vec<u8> {
        Request::Submit(
            PlanBuilder::scan(QualifiedName::new(name, "T"), schema())
                .select("id", CompareOp::Lt, 7i64)
                .submit(name)
                .build(),
        )
        .to_wire_bytes()
    }

    #[test]
    fn register_and_submit_round_trip_as_bytes() {
        let mut t = ChannelTransport::new();
        t.add_wrapper(wrapper("s"));
        assert_eq!(t.endpoints(), vec!["s".to_string()]);

        let env = t
            .call(
                "s",
                &Request::Register.to_wire_bytes(),
                Duration::from_secs(5),
            )
            .unwrap();
        let resp = Response::from_wire_bytes(&env.payload)
            .unwrap()
            .into_result()
            .unwrap();
        match resp {
            Response::Registration(reg) => assert_eq!(reg.collections.len(), 1),
            other => panic!("expected registration, got {other:?}"),
        }

        let env = t
            .call("s", &submit_bytes("s"), Duration::from_secs(5))
            .unwrap();
        // The seed charge: two 50 ms latencies plus bytes at 1000 B/ms.
        assert!(env.comm_ms >= 100.0);
        let resp = Response::from_wire_bytes(&env.payload)
            .unwrap()
            .into_result()
            .unwrap();
        match resp {
            Response::Answer(a) => assert_eq!(a.tuples.len(), 7),
            other => panic!("expected answer, got {other:?}"),
        }
        assert_eq!(t.requests_served("s"), 2);
    }

    #[test]
    fn unknown_endpoint_is_a_config_error() {
        let t = ChannelTransport::new();
        let err = t
            .call(
                "ghost",
                &Request::Register.to_wire_bytes(),
                Duration::from_secs(1),
            )
            .unwrap_err();
        assert_eq!(err.kind(), "exec");
    }

    #[test]
    fn dropped_submits_time_out_and_registration_is_exempt() {
        let mut t = ChannelTransport::new();
        t.add_wrapper_with(
            wrapper("s"),
            NetProfile::lan(),
            FaultPlan::first_n(FaultKind::Drop, 1),
        );
        // Registration does not consume the fault window…
        assert!(t
            .call(
                "s",
                &Request::Register.to_wire_bytes(),
                Duration::from_secs(5)
            )
            .is_ok());
        // …the first submit does, and times out…
        let err = t
            .call("s", &submit_bytes("s"), Duration::from_millis(50))
            .unwrap_err();
        assert_eq!(err.kind(), "timeout");
        assert!(err.is_transient());
        // …and the second submit succeeds.
        assert!(t
            .call("s", &submit_bytes("s"), Duration::from_secs(5))
            .is_ok());
    }

    #[test]
    fn unavailable_fault_crosses_the_wire_as_an_error() {
        let mut t = ChannelTransport::new();
        t.add_wrapper_with(
            wrapper("s"),
            NetProfile::lan(),
            FaultPlan::always(FaultKind::Unavailable),
        );
        let env = t
            .call("s", &submit_bytes("s"), Duration::from_secs(5))
            .unwrap();
        let err = Response::from_wire_bytes(&env.payload)
            .unwrap()
            .into_result()
            .unwrap_err();
        assert_eq!(err.kind(), "unavailable");
        assert!(err.is_transient());
    }

    #[test]
    fn delay_fault_inflates_comm_time() {
        let mut t = ChannelTransport::new();
        t.add_wrapper_with(
            wrapper("s"),
            NetProfile::lan(),
            FaultPlan::first_n(FaultKind::Delay(500.0), 1),
        );
        let slow = t
            .call("s", &submit_bytes("s"), Duration::from_secs(5))
            .unwrap();
        let fast = t
            .call("s", &submit_bytes("s"), Duration::from_secs(5))
            .unwrap();
        assert!(slow.comm_ms > fast.comm_ms + 400.0);
    }

    #[test]
    fn malformed_request_bytes_get_an_error_reply_not_a_crash() {
        let mut t = ChannelTransport::new();
        t.add_wrapper(wrapper("s"));
        let env = t.call("s", &[0xFF, 0x01], Duration::from_secs(5)).unwrap();
        let err = Response::from_wire_bytes(&env.payload)
            .unwrap()
            .into_result()
            .unwrap_err();
        assert_eq!(err.kind(), "parse");
    }
}

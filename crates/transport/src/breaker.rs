//! A deterministic per-endpoint circuit breaker.
//!
//! Classic three-state breaker (closed → open → half-open), but measured
//! in *calls*, not wall-clock time: after `failure_threshold` consecutive
//! transient failures the breaker opens and fails the next
//! `cooldown_calls` requests fast; the call after that is the half-open
//! probe. Counting calls instead of seconds keeps fault tests exactly
//! reproducible.

/// Breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerPolicy {
    /// Consecutive transient failures that open the breaker.
    pub failure_threshold: u32,
    /// Requests rejected fast while open before allowing a probe.
    pub cooldown_calls: u32,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy {
            failure_threshold: 3,
            cooldown_calls: 4,
        }
    }
}

/// Observable breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow normally.
    Closed,
    /// Requests are rejected without touching the endpoint.
    Open,
    /// One probe request is in flight; its outcome decides the next state.
    HalfOpen,
}

/// Breaker instance for one endpoint.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    policy: BreakerPolicy,
    state: BreakerState,
    consecutive_failures: u32,
    cooldown_remaining: u32,
}

impl CircuitBreaker {
    /// A closed breaker with the given policy.
    pub fn new(policy: BreakerPolicy) -> Self {
        CircuitBreaker {
            policy,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            cooldown_remaining: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Ask to place a request. `false` means fail fast without calling the
    /// endpoint. While open, each rejected request counts down the
    /// cooldown; once it reaches zero the breaker half-opens and admits
    /// the caller as the probe.
    pub fn try_acquire(&mut self) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if self.cooldown_remaining > 0 {
                    self.cooldown_remaining -= 1;
                    false
                } else {
                    self.state = BreakerState::HalfOpen;
                    true
                }
            }
        }
    }

    /// Record a successful call: any state closes.
    pub fn on_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
        self.cooldown_remaining = 0;
    }

    /// Record a transient failure. A failed probe re-opens immediately;
    /// enough consecutive failures open a closed breaker.
    pub fn on_failure(&mut self) {
        match self.state {
            BreakerState::HalfOpen => self.open(),
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.policy.failure_threshold {
                    self.open();
                }
            }
            BreakerState::Open => {}
        }
    }

    fn open(&mut self) {
        self.state = BreakerState::Open;
        self.consecutive_failures = 0;
        self.cooldown_remaining = self.policy.cooldown_calls;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerPolicy {
            failure_threshold: 2,
            cooldown_calls: 3,
        })
    }

    #[test]
    fn opens_after_threshold_and_admits_probe_after_cooldown() {
        let mut b = breaker();
        assert!(b.try_acquire());
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.try_acquire());
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);

        // Three rejected calls burn the cooldown…
        assert!(!b.try_acquire());
        assert!(!b.try_acquire());
        assert!(!b.try_acquire());
        // …then the next caller is the half-open probe.
        assert!(b.try_acquire());
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn probe_outcome_decides() {
        let mut b = breaker();
        b.on_failure();
        b.on_failure();
        for _ in 0..3 {
            assert!(!b.try_acquire());
        }
        assert!(b.try_acquire());
        b.on_failure(); // failed probe → re-open, full cooldown again
        assert_eq!(b.state(), BreakerState::Open);
        for _ in 0..3 {
            assert!(!b.try_acquire());
        }
        assert!(b.try_acquire());
        b.on_success(); // healthy probe → closed
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.try_acquire());
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut b = breaker();
        b.on_failure();
        b.on_success();
        b.on_failure();
        // Streak was reset, so one more failure is still below threshold.
        assert_eq!(b.state(), BreakerState::Closed);
    }
}

//! Remote-wrapper transport runtime.
//!
//! The seed mediator called wrappers through in-process trait objects and
//! charged a uniform analytic `comm_ms` per submit. This crate replaces
//! that with an honest RPC boundary (DESIGN.md "Transport & fault model"):
//!
//! * [`wire`] — everything crossing mediator ↔ wrapper is encoded to
//!   bytes: subplans out, registration payloads and subanswers back. No
//!   shared pointers survive the boundary.
//! * [`channel`] — [`ChannelTransport`] runs each wrapper on its own
//!   worker thread behind mpsc channels and models the network per
//!   endpoint (latency, bandwidth, deterministic jitter) instead of the
//!   old uniform charge.
//! * [`fault`] — injectable fault schedules (drop / delay / unavailable
//!   windows) for testing degraded federations.
//! * [`breaker`] — a deterministic circuit breaker (call-counted, no
//!   wall-clock dependence).
//! * [`client`] — [`TransportClient`] drives a [`Transport`] with
//!   per-submit deadlines, bounded retries with exponential backoff and
//!   per-endpoint circuit breaking; it is what the mediator's executor
//!   talks to.
//!
//! Everything is deterministic: jitter comes from the workspace RNG
//! ([`disco_common::rng`]) keyed per endpoint, faults are scheduled by
//! request sequence number, and the breaker counts calls.

pub mod breaker;
pub mod channel;
pub mod client;
pub mod fault;
pub mod netsim;
pub mod resilience;
pub mod wire;

use std::time::Duration;

use disco_common::{DiscoError, Result};

pub use breaker::{BreakerPolicy, BreakerState, CircuitBreaker};
pub use channel::ChannelTransport;
pub use client::{
    BatchSubmitOutcome, HedgeTarget, HedgedOutcome, HedgedStreamOutcome, RetryPolicy, StreamChunk,
    SubmitOptions, SubmitOutcome, SubmitStream, TransportClient,
};
pub use fault::{FaultKind, FaultPlan};
pub use netsim::NetProfile;
pub use resilience::ResiliencePolicy;
pub use wire::{decode_answer_batch, decode_frame, Frame, Request, Response};

/// One delivered reply, with transfer accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Encoded [`Response`] bytes.
    pub payload: Vec<u8>,
    /// Simulated round-trip communication time in milliseconds (latency,
    /// transfer, jitter and any injected delay).
    pub comm_ms: f64,
    /// Size of the request as shipped.
    pub request_bytes: usize,
    /// Size of the reply as shipped.
    pub response_bytes: usize,
}

/// A byte-level RPC boundary between the mediator and wrapper endpoints.
///
/// Implementations deliver an encoded [`Request`] to the named endpoint
/// and return the encoded [`Response`], or time out. They must be callable
/// from multiple threads at once — the executor fans submits out
/// concurrently.
pub trait Transport: Send + Sync {
    /// Names of the endpoints this transport can reach.
    fn endpoints(&self) -> Vec<String>;

    /// Deliver `request` to `endpoint` and wait up to `deadline` for the
    /// reply. A lost or overdue reply is a `DiscoError::Timeout`; an
    /// unknown endpoint is a configuration error (`DiscoError::Exec`).
    fn call(&self, endpoint: &str, request: &[u8], deadline: Duration) -> Result<Envelope>;

    /// The minimum simulated round-trip time for `endpoint` — latency
    /// only, no transfer or jitter — when the transport models one.
    /// [`TransportClient`] clamps deadlines to this floor so an
    /// aggressive predicted deadline can never undercut the link itself.
    fn latency_floor_ms(&self, _endpoint: &str) -> Option<f64> {
        None
    }

    /// Wall-clock milliseconds actually slept per simulated millisecond
    /// on `endpoint` (`NetProfile::sleep_scale` for the simulated
    /// transport), when known. Converts the simulated latency floor into
    /// a wall-clock one.
    fn sleep_scale(&self, _endpoint: &str) -> Option<f64> {
        None
    }

    /// Whether [`Transport::call_stream`] is implemented. Callers use
    /// this to fall back to a one-shot [`Transport::call`] (served as a
    /// single-chunk stream) against transports that cannot stream.
    fn supports_streaming(&self) -> bool {
        false
    }

    /// Open a streaming call: deliver `request` (a
    /// [`Request::SubmitStream`]) to `endpoint` and return a handle that
    /// yields reply [`Frame`]s incrementally. The call itself does not
    /// block on the wrapper; frames are pulled with
    /// [`FrameStream::next_frame`] under per-frame deadlines.
    fn call_stream(&self, endpoint: &str, _request: &[u8]) -> Result<Box<dyn FrameStream>> {
        Err(DiscoError::Exec(format!(
            "transport cannot stream from endpoint `{endpoint}`"
        )))
    }
}

/// One streamed reply frame with its transfer accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameEnvelope {
    /// Encoded [`Frame`] bytes.
    pub payload: Vec<u8>,
    /// Simulated communication time attributed to this frame in
    /// milliseconds. The first frame of a stream carries the round-trip
    /// latency (plus jitter and any injected delay); later frames pay
    /// transfer time only, pipelined on the established exchange.
    pub comm_ms: f64,
}

/// A live reply stream opened by [`Transport::call_stream`].
///
/// End of stream is in-band (a [`Frame::End`] or [`Frame::Error`]
/// terminator); a frame that fails to arrive within `deadline` is a
/// `DiscoError::Timeout`. Dropping the handle abandons the stream and
/// releases the producer.
pub trait FrameStream: Send {
    /// Block up to `deadline` for the next frame.
    fn next_frame(&mut self, deadline: Duration) -> Result<FrameEnvelope>;
}

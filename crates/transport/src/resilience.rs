//! [`ResiliencePolicy`]: every knob of the cost-model-driven resilience
//! layer in one place.
//!
//! The paper's two-phase estimation (§4.2) predicts `TotalTime` and
//! `TimeFirst` for every wrapper submit; this policy turns those
//! predictions into transport behavior instead of constants:
//!
//! * **Predicted deadlines** — a submit's per-attempt deadline becomes
//!   `deadline_factor × predicted TotalTime × time_scale`, clamped to
//!   `[min_deadline_ms, max_deadline_ms]` and never below the
//!   endpoint's simulated latency floor.
//! * **Query budgets** — `query_budget_ms` bounds a whole query; when
//!   the budget runs out mid-execution the remaining submits are
//!   skipped and the query degrades to a partial answer.
//! * **Hedged submits** — once a submit has been outstanding for
//!   `straggler_factor × predicted TimeFirst × time_scale`, a hedge is
//!   launched at the next replica (first success wins, at most
//!   `max_hedges_per_query` hedges per query).
//! * **Adaptive penalties** — the embedded [`HealthPolicy`] tunes the
//!   per-wrapper failure/latency EWMAs the estimator consults as a
//!   wrapper-scope penalty.
//!
//! Predicted deadlines are opt-in (`predicted_deadlines: false` by
//! default): the simulated transport's wall clock runs at
//! `NetProfile::sleep_scale` of simulated time, so callers enabling
//! them should set `time_scale` to the same scale (wall-clock
//! milliseconds per simulated millisecond).

use disco_common::HealthPolicy;

/// Tuning for cost-model-driven deadlines, budgets, hedging and
/// adaptive wrapper penalties. Lives on `MediatorOptions`.
#[derive(Debug, Clone, PartialEq)]
pub struct ResiliencePolicy {
    /// Derive per-submit deadlines from predicted `TotalTime` instead
    /// of the flat `RetryPolicy::deadline_ms`.
    pub predicted_deadlines: bool,
    /// `k` in `deadline = k × predicted TotalTime`.
    pub deadline_factor: f64,
    /// Lower clamp on a predicted wall-clock deadline, in milliseconds.
    pub min_deadline_ms: f64,
    /// Upper clamp on a predicted wall-clock deadline, in milliseconds.
    pub max_deadline_ms: f64,
    /// Also enforce the predicted deadline in *simulated* time: a reply
    /// whose simulated `comm_ms` exceeds the deadline counts as a
    /// timeout even if it arrived quickly on the wall clock. This makes
    /// delay faults deterministic under `sleep_scale = 0`.
    pub sim_deadlines: bool,
    /// Wall-clock milliseconds per simulated millisecond, used to turn
    /// simulated predictions into wall deadlines. Match this to the
    /// endpoints' `NetProfile::sleep_scale`.
    pub time_scale: f64,
    /// Launch hedges to replica wrappers for straggling submits.
    pub hedge: bool,
    /// Straggler threshold factor over predicted `TimeFirst`.
    pub straggler_factor: f64,
    /// Lower clamp on the wall-clock straggler wait, in milliseconds.
    pub min_straggler_wait_ms: f64,
    /// Hedges (straggler-triggered extra submits) allowed per query.
    /// Failover after a *failed* replica is always allowed and does not
    /// count against this cap.
    pub max_hedges_per_query: u32,
    /// Wall-clock budget for one whole query, in milliseconds. `None`
    /// means unbounded. An exhausted budget skips the remaining submits
    /// and degrades to a partial answer.
    pub query_budget_ms: Option<f64>,
    /// EWMA tuning for the per-wrapper health tracker behind the
    /// estimator's adaptive wrapper-scope penalties.
    pub health: HealthPolicy,
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        ResiliencePolicy {
            predicted_deadlines: false,
            deadline_factor: 4.0,
            min_deadline_ms: 10.0,
            max_deadline_ms: 10_000.0,
            sim_deadlines: false,
            time_scale: 1.0,
            hedge: true,
            straggler_factor: 3.0,
            min_straggler_wait_ms: 5.0,
            max_hedges_per_query: 2,
            query_budget_ms: None,
            health: HealthPolicy::default(),
        }
    }
}

impl ResiliencePolicy {
    /// Predicted wall-clock deadline for a subplan, when enabled:
    /// `k × predicted × time_scale` clamped to the policy bounds.
    pub fn wall_deadline_ms(&self, predicted_total_ms: Option<f64>) -> Option<u64> {
        if !self.predicted_deadlines {
            return None;
        }
        let pred = predicted_total_ms?;
        if !pred.is_finite() || pred <= 0.0 {
            return None;
        }
        let ms = (self.deadline_factor * pred * self.time_scale)
            .clamp(self.min_deadline_ms.max(1.0), self.max_deadline_ms);
        Some(ms.ceil() as u64)
    }

    /// Predicted simulated-time deadline, when simulated enforcement is
    /// on: `k × predicted`, floored at `min_deadline_ms / time_scale`
    /// so the wall and simulated clamps agree.
    pub fn sim_deadline_ms(&self, predicted_total_ms: Option<f64>) -> Option<f64> {
        if !self.predicted_deadlines || !self.sim_deadlines {
            return None;
        }
        let pred = predicted_total_ms?;
        if !pred.is_finite() || pred <= 0.0 {
            return None;
        }
        let floor = if self.time_scale > 0.0 {
            self.min_deadline_ms / self.time_scale
        } else {
            self.min_deadline_ms
        };
        Some((self.deadline_factor * pred).max(floor))
    }

    /// Wall-clock straggler wait before hedging, when enabled.
    pub fn straggler_wait_ms(&self, predicted_first_ms: Option<f64>) -> Option<u64> {
        if !self.hedge {
            return None;
        }
        let first = predicted_first_ms.filter(|p| p.is_finite() && *p > 0.0);
        let ms = match first {
            Some(first) => {
                (self.straggler_factor * first * self.time_scale).max(self.min_straggler_wait_ms)
            }
            // No prediction: fall back to the minimum wait so hedging
            // still guards against total silence.
            None => self.min_straggler_wait_ms,
        };
        Some(ms.ceil().max(1.0) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_policy_produces_no_deadlines() {
        let p = ResiliencePolicy::default();
        assert_eq!(p.wall_deadline_ms(Some(500.0)), None);
        assert_eq!(p.sim_deadline_ms(Some(500.0)), None);
    }

    #[test]
    fn deadlines_scale_and_clamp() {
        let p = ResiliencePolicy {
            predicted_deadlines: true,
            deadline_factor: 4.0,
            min_deadline_ms: 10.0,
            max_deadline_ms: 1_000.0,
            time_scale: 0.1,
            ..ResiliencePolicy::default()
        };
        // 4 × 500 × 0.1 = 200 ms.
        assert_eq!(p.wall_deadline_ms(Some(500.0)), Some(200));
        // Tiny prediction clamps to the floor.
        assert_eq!(p.wall_deadline_ms(Some(1.0)), Some(10));
        // Huge prediction clamps to the ceiling.
        assert_eq!(p.wall_deadline_ms(Some(1e9)), Some(1_000));
        // Garbage predictions fall back to the flat deadline.
        assert_eq!(p.wall_deadline_ms(Some(f64::NAN)), None);
        assert_eq!(p.wall_deadline_ms(None), None);
    }

    #[test]
    fn sim_deadline_mirrors_the_wall_clamp() {
        let p = ResiliencePolicy {
            predicted_deadlines: true,
            sim_deadlines: true,
            deadline_factor: 3.0,
            min_deadline_ms: 10.0,
            time_scale: 0.1,
            ..ResiliencePolicy::default()
        };
        assert_eq!(p.sim_deadline_ms(Some(500.0)), Some(1500.0));
        // 10 ms wall at 0.1 scale = 100 simulated ms floor.
        assert_eq!(p.sim_deadline_ms(Some(1.0)), Some(100.0));
    }

    #[test]
    fn straggler_wait_uses_time_first() {
        let p = ResiliencePolicy {
            straggler_factor: 3.0,
            min_straggler_wait_ms: 5.0,
            time_scale: 1.0,
            ..ResiliencePolicy::default()
        };
        assert_eq!(p.straggler_wait_ms(Some(40.0)), Some(120));
        assert_eq!(p.straggler_wait_ms(Some(0.5)), Some(5));
        assert_eq!(p.straggler_wait_ms(None), Some(5));
        let off = ResiliencePolicy {
            hedge: false,
            ..ResiliencePolicy::default()
        };
        assert_eq!(off.straggler_wait_ms(Some(40.0)), None);
    }
}

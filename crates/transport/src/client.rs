//! [`TransportClient`]: the mediator-side driver of a [`Transport`].
//!
//! Adds the reliability layer on top of raw byte delivery: per-submit
//! deadlines, bounded retries with exponential backoff for *transient*
//! failures (timeouts, unavailability), and a per-endpoint circuit
//! breaker so a dead wrapper fails fast instead of burning a full retry
//! budget on every submit. Non-transient errors (a wrapper rejecting a
//! malformed plan, say) are returned immediately — retrying them cannot
//! help.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use disco_algebra::LogicalPlan;
use disco_common::wire::{WireDecode, WireEncode, WireWriter};
use disco_common::{DiscoError, Result};
use disco_sources::{BatchAnswer, SubAnswer};
use disco_wrapper::Registration;

use crate::breaker::{BreakerPolicy, BreakerState, CircuitBreaker};
use crate::wire::{decode_answer_batch, encode_plan, Request, Response};
use crate::Transport;

/// Retry tuning for one submit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). At least 1.
    pub max_attempts: u32,
    /// Per-attempt reply deadline in wall-clock milliseconds.
    pub deadline_ms: u64,
    /// Backoff before the second attempt, in wall-clock milliseconds.
    pub backoff_base_ms: u64,
    /// Multiplier applied to the backoff after each failed attempt.
    pub backoff_factor: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            deadline_ms: 2_000,
            backoff_base_ms: 1,
            backoff_factor: 2.0,
        }
    }
}

/// Everything a successful submit reports back to the executor.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitOutcome {
    /// The decoded subanswer.
    pub answer: SubAnswer,
    /// Simulated communication time of the *successful* attempt.
    pub comm_ms: f64,
    /// Measured wall-clock time of the whole submit, retries included.
    pub wall_ms: f64,
    /// Attempts spent (1 = first try succeeded).
    pub attempts: u32,
    /// Request size on the wire.
    pub request_bytes: usize,
    /// Reply size on the wire.
    pub response_bytes: usize,
}

/// [`SubmitOutcome`] with the answer decoded straight into columns —
/// what the mediator's vectorized combine phase fetches.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSubmitOutcome {
    /// The decoded columnar subanswer.
    pub answer: BatchAnswer,
    /// Simulated communication time of the *successful* attempt.
    pub comm_ms: f64,
    /// Measured wall-clock time of the whole submit, retries included.
    pub wall_ms: f64,
    /// Attempts spent (1 = first try succeeded).
    pub attempts: u32,
    /// Request size on the wire.
    pub request_bytes: usize,
    /// Reply size on the wire.
    pub response_bytes: usize,
}

/// A successful delivery, generic over the decoded answer shape.
struct Delivered<A> {
    answer: A,
    comm_ms: f64,
    wall_ms: f64,
    attempts: u32,
    request_bytes: usize,
    response_bytes: usize,
}

/// Reliability-aware client over any [`Transport`].
pub struct TransportClient {
    transport: Box<dyn Transport>,
    retry: RetryPolicy,
    breaker_policy: BreakerPolicy,
    breakers: Mutex<BTreeMap<String, CircuitBreaker>>,
}

impl TransportClient {
    /// Wrap a transport with default retry and breaker policies.
    pub fn new(transport: Box<dyn Transport>) -> Self {
        TransportClient {
            transport,
            retry: RetryPolicy::default(),
            breaker_policy: BreakerPolicy::default(),
            breakers: Mutex::new(BTreeMap::new()),
        }
    }

    /// Override the retry policy (builder style).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Override the breaker policy (builder style).
    pub fn with_breaker(mut self, policy: BreakerPolicy) -> Self {
        self.breaker_policy = policy;
        self
    }

    /// Endpoints reachable through the underlying transport.
    pub fn endpoints(&self) -> Vec<String> {
        self.transport.endpoints()
    }

    /// Current breaker state for an endpoint, if any calls were made.
    pub fn breaker_state(&self, endpoint: &str) -> Option<BreakerState> {
        self.breakers
            .lock()
            .expect("breaker lock")
            .get(endpoint)
            .map(|b| b.state())
    }

    /// Fetch an endpoint's registration payload over the wire
    /// (Figure 1, steps 1–2). Registration is not retried: it runs at
    /// connect time where a failure should be loud.
    pub fn register(&self, endpoint: &str) -> Result<Registration> {
        let env = self.transport.call(
            endpoint,
            &Request::Register.to_wire_bytes(),
            Duration::from_millis(self.retry.deadline_ms),
        )?;
        match Response::from_wire_bytes(&env.payload)?.into_result()? {
            Response::Registration(reg) => Ok(reg),
            other => Err(DiscoError::Exec(format!(
                "endpoint `{endpoint}` answered registration with {other:?}"
            ))),
        }
    }

    /// Submit a subplan with deadlines, retries and circuit breaking.
    pub fn submit(&self, endpoint: &str, plan: &LogicalPlan) -> Result<SubmitOutcome> {
        self.submit_with(endpoint, plan, |payload| {
            match Response::from_wire_bytes(payload)?.into_result()? {
                Response::Answer(answer) => Ok(answer),
                other => Err(DiscoError::Exec(format!(
                    "endpoint `{endpoint}` answered submit with {other:?}"
                ))),
            }
        })
        .map(|d| SubmitOutcome {
            answer: d.answer,
            comm_ms: d.comm_ms,
            wall_ms: d.wall_ms,
            attempts: d.attempts,
            request_bytes: d.request_bytes,
            response_bytes: d.response_bytes,
        })
    }

    /// Like [`submit`](Self::submit), but the reply payload is decoded
    /// straight into columns — same deadlines, retries and breaker.
    pub fn submit_batch(&self, endpoint: &str, plan: &LogicalPlan) -> Result<BatchSubmitOutcome> {
        self.submit_with(endpoint, plan, decode_answer_batch)
            .map(|d| BatchSubmitOutcome {
                answer: d.answer,
                comm_ms: d.comm_ms,
                wall_ms: d.wall_ms,
                attempts: d.attempts,
                request_bytes: d.request_bytes,
                response_bytes: d.response_bytes,
            })
    }

    /// The shared submit loop, generic over how the successful reply
    /// payload is decoded.
    fn submit_with<A>(
        &self,
        endpoint: &str,
        plan: &LogicalPlan,
        decode: impl Fn(&[u8]) -> Result<A>,
    ) -> Result<Delivered<A>> {
        let started = Instant::now();
        let mut w = WireWriter::new();
        Request::Submit(plan.clone()).encode(&mut w);
        // Encode once; every retry ships the same bytes.
        let request = w.into_bytes();

        if !self.acquire(endpoint) {
            note_unavailable(endpoint);
            return Err(DiscoError::Unavailable(format!(
                "circuit breaker open for `{endpoint}`"
            )));
        }

        let mut backoff_ms = self.retry.backoff_base_ms as f64;
        let mut last_err = DiscoError::Exec(format!("no attempts made against `{endpoint}`"));
        for attempt in 1..=self.retry.max_attempts.max(1) {
            if attempt > 1 {
                if disco_obs::enabled() {
                    disco_obs::counter(
                        disco_obs::names::TRANSPORT_RETRIES,
                        &[("wrapper", endpoint)],
                    )
                    .inc();
                }
                if backoff_ms >= 1.0 {
                    std::thread::sleep(Duration::from_millis(backoff_ms as u64));
                }
                backoff_ms *= self.retry.backoff_factor;
            }
            let result = self
                .transport
                .call(
                    endpoint,
                    &request,
                    Duration::from_millis(self.retry.deadline_ms),
                )
                .and_then(|env| {
                    decode(&env.payload).map(|answer| Delivered {
                        answer,
                        comm_ms: env.comm_ms,
                        wall_ms: started.elapsed().as_secs_f64() * 1e3,
                        attempts: attempt,
                        request_bytes: env.request_bytes,
                        response_bytes: env.response_bytes,
                    })
                });
            match result {
                Ok(outcome) => {
                    self.record(endpoint, true);
                    return Ok(outcome);
                }
                Err(e) if e.is_transient() => {
                    self.record(endpoint, false);
                    last_err = e;
                    // The breaker may have opened mid-budget; stop early
                    // rather than hammering a tripped endpoint.
                    if attempt < self.retry.max_attempts && !self.acquire(endpoint) {
                        note_unavailable(endpoint);
                        return Err(DiscoError::Unavailable(format!(
                            "circuit breaker open for `{endpoint}`"
                        )));
                    }
                }
                // Non-transient errors are the wrapper's final word.
                Err(e) => return Err(e),
            }
        }
        // Retry budget exhausted: the wrapper never answered.
        note_unavailable(endpoint);
        Err(last_err)
    }

    fn acquire(&self, endpoint: &str) -> bool {
        let mut breakers = self.breakers.lock().expect("breaker lock");
        let b = breakers
            .entry(endpoint.to_string())
            .or_insert_with(|| CircuitBreaker::new(self.breaker_policy));
        let before = b.state();
        let ok = b.try_acquire();
        note_transition(endpoint, before, b.state());
        ok
    }

    fn record(&self, endpoint: &str, success: bool) {
        let mut breakers = self.breakers.lock().expect("breaker lock");
        let b = breakers
            .entry(endpoint.to_string())
            .or_insert_with(|| CircuitBreaker::new(self.breaker_policy));
        let before = b.state();
        if success {
            b.on_success();
        } else {
            b.on_failure();
        }
        note_transition(endpoint, before, b.state());
    }
}

/// Count a submit that found its wrapper unreachable: retry budget
/// exhausted or rejected by an open breaker.
fn note_unavailable(endpoint: &str) {
    if disco_obs::enabled() {
        disco_obs::counter(
            disco_obs::names::WRAPPER_UNAVAILABLE,
            &[("wrapper", endpoint)],
        )
        .inc();
    }
}

/// Count a circuit-breaker state change, labelled with the new state.
fn note_transition(endpoint: &str, before: BreakerState, after: BreakerState) {
    if before == after || !disco_obs::enabled() {
        return;
    }
    let to = match after {
        BreakerState::Closed => "closed",
        BreakerState::HalfOpen => "half_open",
        BreakerState::Open => "open",
    };
    disco_obs::counter(
        disco_obs::names::BREAKER_TRANSITIONS,
        &[("wrapper", endpoint), ("to", to)],
    )
    .inc();
}

/// Convenience: encode a plan to its shipped bytes (used by size
/// accounting in benches and tests).
pub fn plan_wire_bytes(plan: &LogicalPlan) -> Vec<u8> {
    let mut w = WireWriter::new();
    encode_plan(plan, &mut w);
    w.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelTransport;
    use crate::fault::{FaultKind, FaultPlan};
    use crate::netsim::NetProfile;
    use disco_algebra::{CompareOp, PlanBuilder};
    use disco_common::{AttributeDef, DataType, QualifiedName, Schema, Value};
    use disco_sources::{CollectionBuilder, CostProfile, PagedStore};
    use disco_wrapper::{SourceWrapper, Wrapper};

    fn schema() -> Schema {
        Schema::new(vec![
            AttributeDef::new("id", DataType::Long),
            AttributeDef::new("v", DataType::Long),
        ])
    }

    fn wrapper(name: &str) -> Box<dyn Wrapper> {
        let mut store = PagedStore::new(name, CostProfile::relational());
        store
            .add_collection(
                "T",
                CollectionBuilder::new(schema())
                    .rows((0..60i64).map(|i| vec![Value::Long(i), Value::Long(i % 3)])),
            )
            .unwrap();
        Box::new(SourceWrapper::new(name, store))
    }

    fn plan(name: &str) -> LogicalPlan {
        PlanBuilder::scan(QualifiedName::new(name, "T"), schema())
            .select("id", CompareOp::Lt, 9i64)
            .submit(name)
            .build()
    }

    fn client(faults: FaultPlan) -> TransportClient {
        let mut t = ChannelTransport::new();
        t.add_wrapper_with(wrapper("s"), NetProfile::lan(), faults);
        TransportClient::new(Box::new(t)).with_retry(RetryPolicy {
            max_attempts: 3,
            deadline_ms: 40,
            backoff_base_ms: 1,
            backoff_factor: 2.0,
        })
    }

    #[test]
    fn healthy_submit_reports_accounting() {
        let c = client(FaultPlan::none());
        let out = c.submit("s", &plan("s")).unwrap();
        assert_eq!(out.answer.tuples.len(), 9);
        assert_eq!(out.attempts, 1);
        assert!(out.comm_ms >= 100.0);
        assert!(out.request_bytes > 0 && out.response_bytes > 0);
        assert_eq!(c.breaker_state("s"), Some(BreakerState::Closed));
    }

    #[test]
    fn transient_drops_are_retried_to_success() {
        let c = client(FaultPlan::first_n(FaultKind::Drop, 2));
        let out = c.submit("s", &plan("s")).unwrap();
        assert_eq!(out.attempts, 3);
        assert_eq!(out.answer.tuples.len(), 9);
    }

    #[test]
    fn exhausted_retry_budget_surfaces_the_transient_error() {
        let c = client(FaultPlan::always(FaultKind::Drop));
        let err = c.submit("s", &plan("s")).unwrap_err();
        assert!(err.is_transient());
        assert_eq!(err.kind(), "timeout");
    }

    #[test]
    fn breaker_fails_fast_once_open() {
        let c = client(FaultPlan::always(FaultKind::Unavailable)).with_breaker(BreakerPolicy {
            failure_threshold: 3,
            cooldown_calls: 2,
        });
        // One full submit burns exactly the threshold.
        assert!(c.submit("s", &plan("s")).is_err());
        assert_eq!(c.breaker_state("s"), Some(BreakerState::Open));
        // Subsequent submits are rejected without touching the endpoint.
        let err = c.submit("s", &plan("s")).unwrap_err();
        assert_eq!(err.kind(), "unavailable");
        assert!(err.message().contains("circuit breaker"));
    }

    #[test]
    fn non_transient_wrapper_errors_are_not_retried() {
        let mut t = ChannelTransport::new();
        t.add_wrapper(wrapper("s"));
        let c = TransportClient::new(Box::new(t));
        // Plan addressed to a different wrapper: the wrapper rejects it.
        let err = c.submit("s", &plan("ghost")).unwrap_err();
        assert_eq!(err.kind(), "exec");
        assert_eq!(c.breaker_state("s"), Some(BreakerState::Closed));
    }

    #[test]
    fn registration_travels_the_wire() {
        let c = client(FaultPlan::none());
        let reg = c.register("s").unwrap();
        assert_eq!(reg.collections.len(), 1);
        assert_eq!(reg.collections[0].0, "T");
    }
}

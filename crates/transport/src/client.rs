//! [`TransportClient`]: the mediator-side driver of a [`Transport`].
//!
//! Adds the reliability layer on top of raw byte delivery: per-submit
//! deadlines (flat or cost-model-predicted via [`SubmitOptions`], always
//! clamped to the endpoint's latency floor), bounded retries with
//! full-jitter exponential backoff for *transient* failures (timeouts,
//! unavailability), a per-endpoint circuit breaker so a dead wrapper
//! fails fast instead of burning a full retry budget on every submit,
//! hedged submits racing replica endpoints
//! ([`submit_batch_hedged`](TransportClient::submit_batch_hedged)), and
//! per-wrapper health recording feeding the estimator's adaptive scope
//! penalties. Non-transient errors (a wrapper rejecting a malformed
//! plan, say) are returned immediately — retrying them cannot help.

use std::collections::{BTreeMap, VecDeque};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use disco_algebra::LogicalPlan;
use disco_common::rng::{seeded, StdRng, DEFAULT_SEED};
use disco_common::wire::{WireDecode, WireEncode, WireWriter};
use disco_common::{Batch, DiscoError, HealthTracker, Result, Schema};
use disco_sources::{BatchAnswer, ExecStats, SubAnswer};
use disco_wrapper::Registration;

use crate::breaker::{BreakerPolicy, BreakerState, CircuitBreaker};
use crate::wire::{decode_answer_batch, decode_frame, encode_plan, Frame, Request, Response};
use crate::{FrameStream, Transport};

/// Retry tuning for one submit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). At least 1.
    pub max_attempts: u32,
    /// Per-attempt reply deadline in wall-clock milliseconds.
    pub deadline_ms: u64,
    /// Backoff before the second attempt, in wall-clock milliseconds.
    pub backoff_base_ms: u64,
    /// Multiplier applied to the backoff after each failed attempt.
    pub backoff_factor: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            deadline_ms: 2_000,
            backoff_base_ms: 1,
            backoff_factor: 2.0,
        }
    }
}

/// Per-call overrides derived from the cost model, layered on top of
/// the client's [`RetryPolicy`]. The default is "no overrides": flat
/// deadline, no simulated-time enforcement, no health latency sample.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SubmitOptions {
    /// Wall-clock per-attempt deadline override, in milliseconds
    /// (typically `k × predicted TotalTime`). Clamped to the endpoint's
    /// latency floor either way.
    pub deadline_ms: Option<u64>,
    /// Simulated-time deadline: a delivered reply whose simulated
    /// `comm_ms` exceeds this counts as a timeout. Makes delay faults
    /// deterministic when the transport does not really sleep.
    pub sim_deadline_ms: Option<f64>,
    /// The cost model's predicted `TotalTime` for this subplan, in
    /// simulated milliseconds — recorded into the health tracker as the
    /// denominator of the observed/predicted latency ratio.
    pub predicted_total_ms: Option<f64>,
}

/// One endpoint in a hedged submit race: where to send, the plan
/// retargeted at that replica, and its per-call options.
#[derive(Debug, Clone)]
pub struct HedgeTarget {
    /// Endpoint (replica wrapper) name.
    pub endpoint: String,
    /// The subplan, addressed to this replica.
    pub plan: LogicalPlan,
    /// Per-call deadline/prediction overrides for this replica.
    pub opts: SubmitOptions,
}

/// Result of a hedged submit race.
#[derive(Debug, Clone, PartialEq)]
pub struct HedgedOutcome {
    /// The winning submit's outcome.
    pub outcome: BatchSubmitOutcome,
    /// Index into the target list of the replica that answered.
    pub winner: usize,
    /// Straggler-triggered hedges launched (failover after a failed
    /// replica is not counted).
    pub hedges: u32,
}

/// Everything a successful submit reports back to the executor.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitOutcome {
    /// The decoded subanswer.
    pub answer: SubAnswer,
    /// Simulated communication time of the *successful* attempt.
    pub comm_ms: f64,
    /// Measured wall-clock time of the whole submit, retries included.
    pub wall_ms: f64,
    /// Attempts spent (1 = first try succeeded).
    pub attempts: u32,
    /// Request size on the wire.
    pub request_bytes: usize,
    /// Reply size on the wire.
    pub response_bytes: usize,
}

/// [`SubmitOutcome`] with the answer decoded straight into columns —
/// what the mediator's vectorized combine phase fetches.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSubmitOutcome {
    /// The decoded columnar subanswer.
    pub answer: BatchAnswer,
    /// Simulated communication time of the *successful* attempt.
    pub comm_ms: f64,
    /// Measured wall-clock time of the whole submit, retries included.
    pub wall_ms: f64,
    /// Attempts spent (1 = first try succeeded).
    pub attempts: u32,
    /// Request size on the wire.
    pub request_bytes: usize,
    /// Reply size on the wire.
    pub response_bytes: usize,
}

/// One decoded chunk of a streamed subanswer.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamChunk {
    /// Schema of the subanswer (identical on every chunk).
    pub schema: Schema,
    /// The rows of this chunk, columnar.
    pub batch: Batch,
    /// Simulated communication time attributed to this chunk's frame.
    pub comm_ms: f64,
}

/// Result of a hedged streaming submit race (see
/// [`TransportClient::submit_stream_hedged`]).
pub struct HedgedStreamOutcome {
    /// The winning replica's open stream, first chunk already buffered.
    pub stream: SubmitStream,
    /// Index into the target list of the replica that answered first.
    pub winner: usize,
    /// Straggler-triggered hedges launched.
    pub hedges: u32,
}

/// Where an open [`SubmitStream`]'s remaining chunks come from.
enum StreamSource {
    /// A live transport stream; frames are pulled on demand.
    Live(Box<dyn FrameStream>),
    /// The whole answer already arrived (one-shot fallback for
    /// transports that cannot stream); nothing further will come.
    Drained,
}

/// A streamed submit in progress: the reliability-layer counterpart of
/// [`BatchSubmitOutcome`]. Retries, breaker accounting and the
/// simulated-time deadline are all settled while opening the stream
/// (i.e. before the first chunk is surfaced — the only point where a
/// retry cannot duplicate rows); afterwards the consumer pulls chunks
/// with [`next_chunk`](SubmitStream::next_chunk) until `Ok(None)`, then
/// reads the wrapper's stats from [`stats`](SubmitStream::stats).
/// Dropping the stream early abandons the remaining chunks and releases
/// the producer.
pub struct SubmitStream {
    core: Arc<ClientCore>,
    endpoint: String,
    source: StreamSource,
    deadline: Duration,
    buffered: VecDeque<StreamChunk>,
    stats: Option<ExecStats>,
    comm_ms: f64,
    first_frame_comm_ms: f64,
    wall_first_ms: f64,
    attempts: u32,
    request_bytes: usize,
    response_bytes: usize,
    finished: bool,
}

impl std::fmt::Debug for SubmitStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubmitStream")
            .field("endpoint", &self.endpoint)
            .field("attempts", &self.attempts)
            .field("comm_ms", &self.comm_ms)
            .field("finished", &self.finished)
            .finish_non_exhaustive()
    }
}

impl SubmitStream {
    /// Pull the next chunk. `Ok(None)` is a clean end of stream; an
    /// error means the stream failed mid-flight and already-delivered
    /// chunks are all there will be.
    pub fn next_chunk(&mut self) -> Result<Option<StreamChunk>> {
        if let Some(chunk) = self.buffered.pop_front() {
            return Ok(Some(chunk));
        }
        if self.finished {
            return Ok(None);
        }
        let StreamSource::Live(stream) = &mut self.source else {
            self.finished = true;
            return Ok(None);
        };
        let env = match stream.next_frame(self.deadline) {
            Ok(env) => env,
            Err(e) => return Err(self.fail(e)),
        };
        self.comm_ms += env.comm_ms;
        self.response_bytes += env.payload.len();
        match decode_frame(&env.payload) {
            Ok(Frame::Chunk(a)) => Ok(Some(StreamChunk {
                schema: a.schema,
                batch: a.batch,
                comm_ms: env.comm_ms,
            })),
            Ok(Frame::End(stats)) => {
                self.stats = Some(stats);
                self.finished = true;
                Ok(None)
            }
            Ok(Frame::Error { kind, message }) => {
                Err(self.fail(DiscoError::from_kind(&kind, message)))
            }
            Err(e) => Err(self.fail(e)),
        }
    }

    /// A mid-stream failure is terminal: mark the stream finished and
    /// feed the breaker/health trackers, mirroring a failed submit.
    fn fail(&mut self, e: DiscoError) -> DiscoError {
        self.finished = true;
        self.source = StreamSource::Drained;
        self.core.record(&self.endpoint, false);
        self.core
            .note_health(&self.endpoint, false, 0.0, &SubmitOptions::default());
        e
    }

    /// The wrapper's execution stats, available after the end-of-stream
    /// frame has been consumed (`next_chunk` returned `Ok(None)`).
    pub fn stats(&self) -> Option<ExecStats> {
        self.stats
    }

    /// Total simulated communication time across all frames so far.
    pub fn comm_ms(&self) -> f64 {
        self.comm_ms
    }

    /// Simulated communication time of the first frame alone — the
    /// wire's contribution to time-to-first-row.
    pub fn first_frame_comm_ms(&self) -> f64 {
        self.first_frame_comm_ms
    }

    /// Measured wall-clock time from open to the first frame, retries
    /// included.
    pub fn wall_first_ms(&self) -> f64 {
        self.wall_first_ms
    }

    /// Attempts spent opening the stream (1 = first try succeeded).
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Request size on the wire.
    pub fn request_bytes(&self) -> usize {
        self.request_bytes
    }

    /// Reply bytes received across all frames so far.
    pub fn response_bytes(&self) -> usize {
        self.response_bytes
    }
}

/// A successful delivery, generic over the decoded answer shape.
struct Delivered<A> {
    answer: A,
    comm_ms: f64,
    wall_ms: f64,
    attempts: u32,
    request_bytes: usize,
    response_bytes: usize,
}

/// Reliability-aware client over any [`Transport`].
///
/// All state lives behind an `Arc`: hedged-submit races detach the
/// threads of losing replicas instead of joining them (a join would
/// re-serialize the race and erase the latency win), so those threads
/// must be able to outlive the call — and, briefly, the client.
pub struct TransportClient {
    core: Arc<ClientCore>,
}

/// Shared state and submit machinery behind [`TransportClient`].
struct ClientCore {
    transport: Box<dyn Transport>,
    retry: RetryPolicy,
    breaker_policy: BreakerPolicy,
    breakers: Mutex<BTreeMap<String, CircuitBreaker>>,
    health: Mutex<Option<Arc<HealthTracker>>>,
    jitter: Mutex<StdRng>,
}

impl TransportClient {
    /// Wrap a transport with default retry and breaker policies.
    pub fn new(transport: Box<dyn Transport>) -> Self {
        TransportClient {
            core: Arc::new(ClientCore {
                transport,
                retry: RetryPolicy::default(),
                breaker_policy: BreakerPolicy::default(),
                breakers: Mutex::new(BTreeMap::new()),
                health: Mutex::new(None),
                jitter: Mutex::new(seeded(DEFAULT_SEED, "transport:retry-jitter")),
            }),
        }
    }

    /// Exclusive access for the policy builders, which run before the
    /// client is shared with any race thread.
    fn core_mut(&mut self) -> &mut ClientCore {
        Arc::get_mut(&mut self.core).expect("configure the client before submitting through it")
    }

    /// Override the retry policy (builder style).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.core_mut().retry = retry;
        self
    }

    /// Override the breaker policy (builder style).
    pub fn with_breaker(mut self, policy: BreakerPolicy) -> Self {
        self.core_mut().breaker_policy = policy;
        self
    }

    /// Record submit outcomes into a shared per-wrapper health tracker
    /// (builder style). The mediator shares the same tracker with its
    /// estimator, closing the loop from observed failures back into
    /// wrapper-scope cost penalties.
    pub fn with_health(self, health: Arc<HealthTracker>) -> Self {
        *self.core.health.lock().expect("health lock") = Some(health);
        self
    }

    /// Re-seed the retry-backoff jitter RNG (builder style).
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.core_mut().jitter = Mutex::new(seeded(seed, "transport:retry-jitter"));
        self
    }

    /// The shared health tracker, if one was attached.
    pub fn health(&self) -> Option<Arc<HealthTracker>> {
        self.core.health.lock().expect("health lock").clone()
    }

    /// Endpoints reachable through the underlying transport.
    pub fn endpoints(&self) -> Vec<String> {
        self.core.transport.endpoints()
    }

    /// Current breaker state for an endpoint, if any calls were made.
    pub fn breaker_state(&self, endpoint: &str) -> Option<BreakerState> {
        self.core
            .breakers
            .lock()
            .expect("breaker lock")
            .get(endpoint)
            .map(|b| b.state())
    }

    /// Fetch an endpoint's registration payload over the wire
    /// (Figure 1, steps 1–2). Registration is not retried: it runs at
    /// connect time where a failure should be loud.
    pub fn register(&self, endpoint: &str) -> Result<Registration> {
        let env = self.core.transport.call(
            endpoint,
            &Request::Register.to_wire_bytes(),
            Duration::from_millis(self.core.retry.deadline_ms),
        )?;
        match Response::from_wire_bytes(&env.payload)?.into_result()? {
            Response::Registration(reg) => Ok(reg),
            other => Err(DiscoError::Exec(format!(
                "endpoint `{endpoint}` answered registration with {other:?}"
            ))),
        }
    }

    /// Submit a subplan with deadlines, retries and circuit breaking.
    pub fn submit(&self, endpoint: &str, plan: &LogicalPlan) -> Result<SubmitOutcome> {
        self.submit_opts(endpoint, plan, &SubmitOptions::default())
    }

    /// [`submit`](Self::submit) with per-call deadline/prediction
    /// overrides.
    pub fn submit_opts(
        &self,
        endpoint: &str,
        plan: &LogicalPlan,
        opts: &SubmitOptions,
    ) -> Result<SubmitOutcome> {
        self.core.submit_opts(endpoint, plan, opts)
    }

    /// Like [`submit`](Self::submit), but the reply payload is decoded
    /// straight into columns — same deadlines, retries and breaker.
    pub fn submit_batch(&self, endpoint: &str, plan: &LogicalPlan) -> Result<BatchSubmitOutcome> {
        self.submit_batch_opts(endpoint, plan, &SubmitOptions::default())
    }

    /// [`submit_batch`](Self::submit_batch) with per-call
    /// deadline/prediction overrides.
    pub fn submit_batch_opts(
        &self,
        endpoint: &str,
        plan: &LogicalPlan,
        opts: &SubmitOptions,
    ) -> Result<BatchSubmitOutcome> {
        self.core.submit_batch_opts(endpoint, plan, opts)
    }

    /// Race a submit across replica endpoints: send to `targets[0]`,
    /// hedge to the next replica whenever the outstanding submit has
    /// been silent for `straggler_wait` (at most `hedge_allowance`
    /// hedges), and fail over to the next replica immediately when a
    /// launched one fails. First success wins; a losing replica is not
    /// joined — its detached thread runs on to its own deadline and its
    /// late reply lands in a dropped channel (joining it would make
    /// every race as slow as its slowest replica). An error is returned
    /// only when *every* replica failed.
    ///
    /// A hedge goes through the same breaker acquire/record path as any
    /// submit, so a hedge into a half-open breaker is that breaker's
    /// single probe — hedging cannot bypass it.
    pub fn submit_batch_hedged(
        &self,
        targets: &[HedgeTarget],
        straggler_wait: Option<Duration>,
        hedge_allowance: u32,
    ) -> Result<HedgedOutcome> {
        let first = targets
            .first()
            .ok_or_else(|| DiscoError::Exec("hedged submit needs at least one target".into()))?;
        if targets.len() == 1 {
            return self
                .submit_batch_opts(&first.endpoint, &first.plan, &first.opts)
                .map(|outcome| HedgedOutcome {
                    outcome,
                    winner: 0,
                    hedges: 0,
                });
        }
        {
            let (tx, rx) = mpsc::channel::<(usize, Result<BatchSubmitOutcome>)>();
            let mut launched = 0usize;
            let mut pending = 0usize;
            let mut hedges = 0u32;
            let launch = |idx: usize, pending: &mut usize| {
                let t = targets[idx].clone();
                let tx = tx.clone();
                let core = Arc::clone(&self.core);
                std::thread::spawn(move || {
                    let result = core.submit_batch_opts(&t.endpoint, &t.plan, &t.opts);
                    // The race may be over; a closed channel is fine.
                    let _ = tx.send((idx, result));
                });
                *pending += 1;
            };
            launch(launched, &mut pending);
            launched += 1;
            // Loudest error wins the report: a non-transient failure
            // (e.g. a wrapper rejecting the plan) beats timeouts.
            let mut last_err: Option<DiscoError> = None;
            loop {
                if pending == 0 {
                    if launched < targets.len() {
                        // Every launched replica failed: fail over.
                        launch(launched, &mut pending);
                        launched += 1;
                        continue;
                    }
                    return Err(last_err.unwrap_or_else(|| {
                        DiscoError::Exec("hedged submit made no attempts".into())
                    }));
                }
                let can_hedge = hedges < hedge_allowance && launched < targets.len();
                let message = match (can_hedge, straggler_wait) {
                    (true, Some(wait)) => match rx.recv_timeout(wait) {
                        Ok(m) => m,
                        Err(RecvTimeoutError::Timeout) => {
                            // Straggler: open a second front at the
                            // next replica.
                            note_hedge(&targets[launched].endpoint);
                            hedges += 1;
                            launch(launched, &mut pending);
                            launched += 1;
                            continue;
                        }
                        Err(RecvTimeoutError::Disconnected) => unreachable!("race holds a sender"),
                    },
                    _ => rx.recv().expect("race holds a sender"),
                };
                match message {
                    (winner, Ok(outcome)) => {
                        if winner > 0 {
                            note_hedge_win(&targets[winner].endpoint);
                        }
                        return Ok(HedgedOutcome {
                            outcome,
                            winner,
                            hedges,
                        });
                    }
                    (_, Err(e)) => {
                        pending -= 1;
                        let louder = !e.is_transient()
                            || last_err.as_ref().is_none_or(|prev| prev.is_transient());
                        if louder {
                            last_err = Some(e);
                        }
                    }
                }
            }
        }
    }

    /// Open a streaming submit: deadlines, retries and circuit breaking
    /// apply up to (and including) the first delivered chunk — the last
    /// point where a retry cannot duplicate rows — after which chunks
    /// are pulled incrementally from the returned [`SubmitStream`].
    /// Against a transport without streaming support this degrades to a
    /// one-shot [`submit_batch_opts`](Self::submit_batch_opts) served as
    /// a single-chunk stream.
    pub fn submit_stream_opts(
        &self,
        endpoint: &str,
        plan: &LogicalPlan,
        opts: &SubmitOptions,
        chunk_rows: u32,
    ) -> Result<SubmitStream> {
        self.core.open_stream(endpoint, plan, opts, chunk_rows)
    }

    /// Race a streaming submit across replica endpoints, exactly like
    /// [`submit_batch_hedged`](Self::submit_batch_hedged) but the race
    /// is to the *first chunk*: the winner is the replica whose stream
    /// opens (first frame delivered) first, and its remaining chunks are
    /// then consumed from the single returned stream. Losing replicas
    /// are abandoned — dropping their handles releases their workers.
    pub fn submit_stream_hedged(
        &self,
        targets: &[HedgeTarget],
        straggler_wait: Option<Duration>,
        hedge_allowance: u32,
        chunk_rows: u32,
    ) -> Result<HedgedStreamOutcome> {
        let first = targets
            .first()
            .ok_or_else(|| DiscoError::Exec("hedged submit needs at least one target".into()))?;
        if targets.len() == 1 {
            return self
                .submit_stream_opts(&first.endpoint, &first.plan, &first.opts, chunk_rows)
                .map(|stream| HedgedStreamOutcome {
                    stream,
                    winner: 0,
                    hedges: 0,
                });
        }
        let (tx, rx) = mpsc::channel::<(usize, Result<SubmitStream>)>();
        let mut launched = 0usize;
        let mut pending = 0usize;
        let mut hedges = 0u32;
        let launch = |idx: usize, pending: &mut usize| {
            let t = targets[idx].clone();
            let tx = tx.clone();
            let core = Arc::clone(&self.core);
            std::thread::spawn(move || {
                let result = core.open_stream(&t.endpoint, &t.plan, &t.opts, chunk_rows);
                // The race may be over; a closed channel is fine.
                let _ = tx.send((idx, result));
            });
            *pending += 1;
        };
        launch(launched, &mut pending);
        launched += 1;
        let mut last_err: Option<DiscoError> = None;
        loop {
            if pending == 0 {
                if launched < targets.len() {
                    // Every launched replica failed: fail over.
                    launch(launched, &mut pending);
                    launched += 1;
                    continue;
                }
                return Err(last_err
                    .unwrap_or_else(|| DiscoError::Exec("hedged submit made no attempts".into())));
            }
            let can_hedge = hedges < hedge_allowance && launched < targets.len();
            let message = match (can_hedge, straggler_wait) {
                (true, Some(wait)) => match rx.recv_timeout(wait) {
                    Ok(m) => m,
                    Err(RecvTimeoutError::Timeout) => {
                        note_hedge(&targets[launched].endpoint);
                        hedges += 1;
                        launch(launched, &mut pending);
                        launched += 1;
                        continue;
                    }
                    Err(RecvTimeoutError::Disconnected) => unreachable!("race holds a sender"),
                },
                _ => rx.recv().expect("race holds a sender"),
            };
            match message {
                (winner, Ok(stream)) => {
                    if winner > 0 {
                        note_hedge_win(&targets[winner].endpoint);
                    }
                    return Ok(HedgedStreamOutcome {
                        stream,
                        winner,
                        hedges,
                    });
                }
                (_, Err(e)) => {
                    pending -= 1;
                    let louder = !e.is_transient()
                        || last_err.as_ref().is_none_or(|prev| prev.is_transient());
                    if louder {
                        last_err = Some(e);
                    }
                }
            }
        }
    }
}

impl ClientCore {
    fn submit_opts(
        &self,
        endpoint: &str,
        plan: &LogicalPlan,
        opts: &SubmitOptions,
    ) -> Result<SubmitOutcome> {
        self.submit_with(
            endpoint,
            plan,
            opts,
            |payload| match Response::from_wire_bytes(payload)?.into_result()? {
                Response::Answer(answer) => Ok(answer),
                other => Err(DiscoError::Exec(format!(
                    "endpoint `{endpoint}` answered submit with {other:?}"
                ))),
            },
        )
        .map(|d| SubmitOutcome {
            answer: d.answer,
            comm_ms: d.comm_ms,
            wall_ms: d.wall_ms,
            attempts: d.attempts,
            request_bytes: d.request_bytes,
            response_bytes: d.response_bytes,
        })
    }

    fn submit_batch_opts(
        &self,
        endpoint: &str,
        plan: &LogicalPlan,
        opts: &SubmitOptions,
    ) -> Result<BatchSubmitOutcome> {
        self.submit_with(endpoint, plan, opts, decode_answer_batch)
            .map(|d| BatchSubmitOutcome {
                answer: d.answer,
                comm_ms: d.comm_ms,
                wall_ms: d.wall_ms,
                attempts: d.attempts,
                request_bytes: d.request_bytes,
                response_bytes: d.response_bytes,
            })
    }

    /// Effective per-attempt wall deadline: the per-call override (or
    /// the flat retry default), clamped so it can never be shorter than
    /// the endpoint's simulated round-trip floor converted to wall time
    /// — an aggressive predicted deadline on a slow link would
    /// otherwise time out every attempt before a reply could exist.
    fn attempt_deadline(&self, endpoint: &str, opts: &SubmitOptions) -> Duration {
        let mut deadline_ms = opts.deadline_ms.unwrap_or(self.retry.deadline_ms).max(1);
        if let Some(floor_sim_ms) = self.transport.latency_floor_ms(endpoint) {
            let scale = self.transport.sleep_scale(endpoint).unwrap_or(0.0);
            let floor_wall_ms = (floor_sim_ms * scale).ceil() as u64 + 1;
            deadline_ms = deadline_ms.max(floor_wall_ms);
        }
        Duration::from_millis(deadline_ms)
    }

    /// Effective simulated-time deadline, clamped above the endpoint's
    /// latency floor (with headroom for transfer and jitter) for the
    /// same reason as the wall clamp.
    fn sim_deadline(&self, endpoint: &str, opts: &SubmitOptions) -> Option<f64> {
        let sim = opts.sim_deadline_ms?;
        let floor = self
            .transport
            .latency_floor_ms(endpoint)
            .map(|f| f * 1.5)
            .unwrap_or(0.0);
        Some(sim.max(floor))
    }

    /// The shared submit loop, generic over how the successful reply
    /// payload is decoded.
    fn submit_with<A>(
        &self,
        endpoint: &str,
        plan: &LogicalPlan,
        opts: &SubmitOptions,
        decode: impl Fn(&[u8]) -> Result<A>,
    ) -> Result<Delivered<A>> {
        let started = Instant::now();
        let mut w = WireWriter::new();
        Request::Submit(plan.clone()).encode(&mut w);
        // Encode once; every retry ships the same bytes.
        let request = w.into_bytes();
        let deadline = self.attempt_deadline(endpoint, opts);
        let sim_deadline = self.sim_deadline(endpoint, opts);

        if !self.acquire(endpoint) {
            note_unavailable(endpoint);
            return Err(DiscoError::Unavailable(format!(
                "circuit breaker open for `{endpoint}`"
            )));
        }

        let mut backoff_ms = self.retry.backoff_base_ms as f64;
        let mut last_err = DiscoError::Exec(format!("no attempts made against `{endpoint}`"));
        for attempt in 1..=self.retry.max_attempts.max(1) {
            if attempt > 1 {
                if disco_obs::enabled() {
                    disco_obs::counter(
                        disco_obs::names::TRANSPORT_RETRIES,
                        &[("wrapper", endpoint)],
                    )
                    .inc();
                }
                // Full jitter: sleep uniform(0, backoff) so parallel
                // wrapper workers don't retry in lockstep.
                let sleep_ms = backoff_ms * self.jitter.lock().expect("jitter lock").gen_f64();
                if sleep_ms >= 0.5 {
                    std::thread::sleep(Duration::from_micros((sleep_ms * 1000.0) as u64));
                }
                backoff_ms *= self.retry.backoff_factor;
            }
            let result = self
                .transport
                .call(endpoint, &request, deadline)
                .and_then(|env| {
                    if let Some(sim) = sim_deadline {
                        if env.comm_ms > sim {
                            return Err(DiscoError::Timeout(format!(
                                "reply from `{endpoint}` took {:.0} simulated ms, deadline {sim:.0}",
                                env.comm_ms
                            )));
                        }
                    }
                    decode(&env.payload).map(|answer| Delivered {
                        answer,
                        comm_ms: env.comm_ms,
                        wall_ms: started.elapsed().as_secs_f64() * 1e3,
                        attempts: attempt,
                        request_bytes: env.request_bytes,
                        response_bytes: env.response_bytes,
                    })
                });
            match result {
                Ok(outcome) => {
                    self.record(endpoint, true);
                    self.note_health(endpoint, true, outcome.comm_ms, opts);
                    note_deadline(endpoint, "met");
                    return Ok(outcome);
                }
                Err(e) if e.is_transient() => {
                    self.record(endpoint, false);
                    self.note_health(endpoint, false, 0.0, opts);
                    if e.kind() == "timeout" {
                        note_deadline(endpoint, "missed");
                    }
                    last_err = e;
                    // The breaker may have opened mid-budget; stop early
                    // rather than hammering a tripped endpoint.
                    if attempt < self.retry.max_attempts && !self.acquire(endpoint) {
                        note_unavailable(endpoint);
                        return Err(DiscoError::Unavailable(format!(
                            "circuit breaker open for `{endpoint}`"
                        )));
                    }
                }
                // Non-transient errors are the wrapper's final word.
                Err(e) => return Err(e),
            }
        }
        // Retry budget exhausted: the wrapper never answered.
        note_unavailable(endpoint);
        Err(last_err)
    }

    /// Open a streaming submit with the same retry/breaker/deadline
    /// machinery as [`submit_with`](Self::submit_with). The loop runs
    /// only until the first frame is delivered: every retry re-issues
    /// the whole stream, which is safe exactly because no chunk has been
    /// surfaced yet. The simulated-time deadline is enforced on the
    /// first frame (which carries the round trip, jitter and any
    /// injected delay); later frames pay transfer only and ride the
    /// per-frame wall deadline.
    fn open_stream(
        self: &Arc<Self>,
        endpoint: &str,
        plan: &LogicalPlan,
        opts: &SubmitOptions,
        chunk_rows: u32,
    ) -> Result<SubmitStream> {
        let started = Instant::now();
        if !self.transport.supports_streaming() {
            // One-shot fallback: the whole answer arrives at once and is
            // served as a single buffered chunk.
            let out = self.submit_batch_opts(endpoint, plan, opts)?;
            return Ok(SubmitStream {
                core: Arc::clone(self),
                endpoint: endpoint.to_string(),
                source: StreamSource::Drained,
                deadline: Duration::ZERO,
                buffered: VecDeque::from([StreamChunk {
                    schema: out.answer.schema,
                    batch: out.answer.batch,
                    comm_ms: out.comm_ms,
                }]),
                stats: Some(out.answer.stats),
                comm_ms: out.comm_ms,
                first_frame_comm_ms: out.comm_ms,
                wall_first_ms: out.wall_ms,
                attempts: out.attempts,
                request_bytes: out.request_bytes,
                response_bytes: out.response_bytes,
                finished: true,
            });
        }

        let request = Request::SubmitStream {
            plan: plan.clone(),
            chunk_rows,
        }
        .to_wire_bytes();
        let deadline = self.attempt_deadline(endpoint, opts);
        let sim_deadline = self.sim_deadline(endpoint, opts);

        if !self.acquire(endpoint) {
            note_unavailable(endpoint);
            return Err(DiscoError::Unavailable(format!(
                "circuit breaker open for `{endpoint}`"
            )));
        }

        let mut backoff_ms = self.retry.backoff_base_ms as f64;
        let mut last_err = DiscoError::Exec(format!("no attempts made against `{endpoint}`"));
        for attempt in 1..=self.retry.max_attempts.max(1) {
            if attempt > 1 {
                if disco_obs::enabled() {
                    disco_obs::counter(
                        disco_obs::names::TRANSPORT_RETRIES,
                        &[("wrapper", endpoint)],
                    )
                    .inc();
                }
                let sleep_ms = backoff_ms * self.jitter.lock().expect("jitter lock").gen_f64();
                if sleep_ms >= 0.5 {
                    std::thread::sleep(Duration::from_micros((sleep_ms * 1000.0) as u64));
                }
                backoff_ms *= self.retry.backoff_factor;
            }
            let result = self
                .transport
                .call_stream(endpoint, &request)
                .and_then(|mut stream| {
                    let env = stream.next_frame(deadline)?;
                    if let Some(sim) = sim_deadline {
                        if env.comm_ms > sim {
                            return Err(DiscoError::Timeout(format!(
                                "first frame from `{endpoint}` took {:.0} simulated ms, deadline {sim:.0}",
                                env.comm_ms
                            )));
                        }
                    }
                    match decode_frame(&env.payload)? {
                        Frame::Chunk(a) => Ok((stream, env.payload.len(), env.comm_ms, a)),
                        Frame::End(_) => Err(DiscoError::Exec(format!(
                            "stream from `{endpoint}` ended before delivering a schema chunk"
                        ))),
                        Frame::Error { kind, message } => {
                            Err(DiscoError::from_kind(&kind, message))
                        }
                    }
                });
            match result {
                Ok((stream, first_bytes, first_comm, first_chunk)) => {
                    self.record(endpoint, true);
                    self.note_health(endpoint, true, first_comm, opts);
                    note_deadline(endpoint, "met");
                    return Ok(SubmitStream {
                        core: Arc::clone(self),
                        endpoint: endpoint.to_string(),
                        source: StreamSource::Live(stream),
                        deadline,
                        buffered: VecDeque::from([StreamChunk {
                            schema: first_chunk.schema,
                            batch: first_chunk.batch,
                            comm_ms: first_comm,
                        }]),
                        stats: None,
                        comm_ms: first_comm,
                        first_frame_comm_ms: first_comm,
                        wall_first_ms: started.elapsed().as_secs_f64() * 1e3,
                        attempts: attempt,
                        request_bytes: request.len(),
                        response_bytes: first_bytes,
                        finished: false,
                    });
                }
                Err(e) if e.is_transient() => {
                    self.record(endpoint, false);
                    self.note_health(endpoint, false, 0.0, opts);
                    if e.kind() == "timeout" {
                        note_deadline(endpoint, "missed");
                    }
                    last_err = e;
                    if attempt < self.retry.max_attempts && !self.acquire(endpoint) {
                        note_unavailable(endpoint);
                        return Err(DiscoError::Unavailable(format!(
                            "circuit breaker open for `{endpoint}`"
                        )));
                    }
                }
                Err(e) => return Err(e),
            }
        }
        note_unavailable(endpoint);
        Err(last_err)
    }

    /// Record one attempt outcome into the shared health tracker and
    /// refresh the wrapper's penalty gauge.
    fn note_health(&self, endpoint: &str, success: bool, comm_ms: f64, opts: &SubmitOptions) {
        let Some(health) = self.health.lock().expect("health lock").clone() else {
            return;
        };
        if success {
            health.record_success(endpoint, comm_ms, opts.predicted_total_ms);
        } else {
            health.record_failure(endpoint);
        }
        if disco_obs::enabled() {
            disco_obs::gauge(disco_obs::names::WRAPPER_PENALTY, &[("wrapper", endpoint)])
                .set(health.penalty(endpoint));
        }
    }

    fn acquire(&self, endpoint: &str) -> bool {
        let mut breakers = self.breakers.lock().expect("breaker lock");
        let b = breakers
            .entry(endpoint.to_string())
            .or_insert_with(|| CircuitBreaker::new(self.breaker_policy));
        let before = b.state();
        let ok = b.try_acquire();
        note_transition(endpoint, before, b.state());
        ok
    }

    fn record(&self, endpoint: &str, success: bool) {
        let mut breakers = self.breakers.lock().expect("breaker lock");
        let b = breakers
            .entry(endpoint.to_string())
            .or_insert_with(|| CircuitBreaker::new(self.breaker_policy));
        let before = b.state();
        if success {
            b.on_success();
        } else {
            b.on_failure();
        }
        note_transition(endpoint, before, b.state());
    }
}

/// Count a hedge launched at a replica endpoint.
fn note_hedge(endpoint: &str) {
    if disco_obs::enabled() {
        disco_obs::counter(disco_obs::names::TRANSPORT_HEDGES, &[("wrapper", endpoint)]).inc();
    }
}

/// Count a hedge that answered before the primary.
fn note_hedge_win(endpoint: &str) {
    if disco_obs::enabled() {
        disco_obs::counter(
            disco_obs::names::TRANSPORT_HEDGE_WINS,
            &[("wrapper", endpoint)],
        )
        .inc();
    }
}

/// Count a per-submit deadline outcome (`met` or `missed`).
fn note_deadline(endpoint: &str, outcome: &str) {
    if disco_obs::enabled() {
        disco_obs::counter(
            disco_obs::names::SUBMIT_DEADLINES,
            &[("wrapper", endpoint), ("outcome", outcome)],
        )
        .inc();
    }
}

/// Count a submit that found its wrapper unreachable: retry budget
/// exhausted or rejected by an open breaker.
fn note_unavailable(endpoint: &str) {
    if disco_obs::enabled() {
        disco_obs::counter(
            disco_obs::names::WRAPPER_UNAVAILABLE,
            &[("wrapper", endpoint)],
        )
        .inc();
    }
}

/// Count a circuit-breaker state change, labelled with the new state.
fn note_transition(endpoint: &str, before: BreakerState, after: BreakerState) {
    if before == after || !disco_obs::enabled() {
        return;
    }
    let to = match after {
        BreakerState::Closed => "closed",
        BreakerState::HalfOpen => "half_open",
        BreakerState::Open => "open",
    };
    disco_obs::counter(
        disco_obs::names::BREAKER_TRANSITIONS,
        &[("wrapper", endpoint), ("to", to)],
    )
    .inc();
}

/// Convenience: encode a plan to its shipped bytes (used by size
/// accounting in benches and tests).
pub fn plan_wire_bytes(plan: &LogicalPlan) -> Vec<u8> {
    let mut w = WireWriter::new();
    encode_plan(plan, &mut w);
    w.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelTransport;
    use crate::fault::{FaultKind, FaultPlan};
    use crate::netsim::NetProfile;
    use disco_algebra::{CompareOp, PlanBuilder};
    use disco_common::{AttributeDef, DataType, QualifiedName, Schema, Value};
    use disco_sources::{CollectionBuilder, CostProfile, PagedStore};
    use disco_wrapper::{SourceWrapper, Wrapper};

    fn schema() -> Schema {
        Schema::new(vec![
            AttributeDef::new("id", DataType::Long),
            AttributeDef::new("v", DataType::Long),
        ])
    }

    fn wrapper(name: &str) -> Box<dyn Wrapper> {
        let mut store = PagedStore::new(name, CostProfile::relational());
        store
            .add_collection(
                "T",
                CollectionBuilder::new(schema())
                    .rows((0..60i64).map(|i| vec![Value::Long(i), Value::Long(i % 3)])),
            )
            .unwrap();
        Box::new(SourceWrapper::new(name, store))
    }

    fn plan(name: &str) -> LogicalPlan {
        PlanBuilder::scan(QualifiedName::new(name, "T"), schema())
            .select("id", CompareOp::Lt, 9i64)
            .submit(name)
            .build()
    }

    fn client(faults: FaultPlan) -> TransportClient {
        let mut t = ChannelTransport::new();
        t.add_wrapper_with(wrapper("s"), NetProfile::lan(), faults);
        TransportClient::new(Box::new(t)).with_retry(RetryPolicy {
            max_attempts: 3,
            deadline_ms: 40,
            backoff_base_ms: 1,
            backoff_factor: 2.0,
        })
    }

    #[test]
    fn healthy_submit_reports_accounting() {
        let c = client(FaultPlan::none());
        let out = c.submit("s", &plan("s")).unwrap();
        assert_eq!(out.answer.tuples.len(), 9);
        assert_eq!(out.attempts, 1);
        assert!(out.comm_ms >= 100.0);
        assert!(out.request_bytes > 0 && out.response_bytes > 0);
        assert_eq!(c.breaker_state("s"), Some(BreakerState::Closed));
    }

    #[test]
    fn transient_drops_are_retried_to_success() {
        let c = client(FaultPlan::first_n(FaultKind::Drop, 2));
        let out = c.submit("s", &plan("s")).unwrap();
        assert_eq!(out.attempts, 3);
        assert_eq!(out.answer.tuples.len(), 9);
    }

    #[test]
    fn exhausted_retry_budget_surfaces_the_transient_error() {
        let c = client(FaultPlan::always(FaultKind::Drop));
        let err = c.submit("s", &plan("s")).unwrap_err();
        assert!(err.is_transient());
        assert_eq!(err.kind(), "timeout");
    }

    #[test]
    fn breaker_fails_fast_once_open() {
        let c = client(FaultPlan::always(FaultKind::Unavailable)).with_breaker(BreakerPolicy {
            failure_threshold: 3,
            cooldown_calls: 2,
        });
        // One full submit burns exactly the threshold.
        assert!(c.submit("s", &plan("s")).is_err());
        assert_eq!(c.breaker_state("s"), Some(BreakerState::Open));
        // Subsequent submits are rejected without touching the endpoint.
        let err = c.submit("s", &plan("s")).unwrap_err();
        assert_eq!(err.kind(), "unavailable");
        assert!(err.message().contains("circuit breaker"));
    }

    #[test]
    fn non_transient_wrapper_errors_are_not_retried() {
        let mut t = ChannelTransport::new();
        t.add_wrapper(wrapper("s"));
        let c = TransportClient::new(Box::new(t));
        // Plan addressed to a different wrapper: the wrapper rejects it.
        let err = c.submit("s", &plan("ghost")).unwrap_err();
        assert_eq!(err.kind(), "exec");
        assert_eq!(c.breaker_state("s"), Some(BreakerState::Closed));
    }

    #[test]
    fn registration_travels_the_wire() {
        let c = client(FaultPlan::none());
        let reg = c.register("s").unwrap();
        assert_eq!(reg.collections.len(), 1);
        assert_eq!(reg.collections[0].0, "T");
    }

    /// Drain a stream, returning (chunks, rows, total comm).
    fn drain(stream: &mut SubmitStream) -> (usize, usize, f64) {
        let mut chunks = 0;
        let mut rows = 0;
        while let Some(c) = stream.next_chunk().unwrap() {
            chunks += 1;
            rows += c.batch.len();
        }
        (chunks, rows, stream.comm_ms())
    }

    #[test]
    fn streamed_submit_matches_one_shot_answer() {
        let c = client(FaultPlan::none());
        let one_shot = c.submit_batch("s", &plan("s")).unwrap();
        let mut stream = c
            .submit_stream_opts("s", &plan("s"), &SubmitOptions::default(), 4)
            .unwrap();
        let mut batches = Vec::new();
        let mut schema = None;
        while let Some(chunk) = stream.next_chunk().unwrap() {
            schema = Some(chunk.schema.clone());
            batches.push(chunk.batch);
        }
        let parts: Vec<&Batch> = batches.iter().collect();
        let reassembled = Batch::concat(&parts).unwrap();
        assert_eq!(schema.unwrap(), one_shot.answer.schema);
        assert_eq!(reassembled.to_tuples(), one_shot.answer.batch.to_tuples());
        assert_eq!(stream.stats(), Some(one_shot.answer.stats));
        assert_eq!(stream.attempts(), 1);
        assert!(stream.first_frame_comm_ms() >= 100.0);
        // 9 rows in chunks of 4 → 3 chunks.
        assert_eq!(batches.len(), 3);
    }

    #[test]
    fn stream_open_retries_transient_drops() {
        let c = client(FaultPlan::first_n(FaultKind::Drop, 2));
        let mut stream = c
            .submit_stream_opts("s", &plan("s"), &SubmitOptions::default(), 64)
            .unwrap();
        assert_eq!(stream.attempts(), 3);
        let (_, rows, _) = drain(&mut stream);
        assert_eq!(rows, 9);
    }

    #[test]
    fn stream_open_fails_like_a_submit_when_budget_exhausts() {
        let c = client(FaultPlan::always(FaultKind::Drop));
        let err = c
            .submit_stream_opts("s", &plan("s"), &SubmitOptions::default(), 64)
            .unwrap_err();
        assert!(err.is_transient());
        assert_eq!(err.kind(), "timeout");
    }

    #[test]
    fn hedged_stream_fails_over_to_the_replica() {
        let mut t = ChannelTransport::new();
        t.add_wrapper_with(
            wrapper("sa"),
            NetProfile::lan(),
            FaultPlan::always(FaultKind::Unavailable),
        );
        t.add_wrapper_with(wrapper("sb"), NetProfile::lan(), FaultPlan::none());
        let c = TransportClient::new(Box::new(t)).with_retry(RetryPolicy {
            max_attempts: 2,
            deadline_ms: 40,
            backoff_base_ms: 1,
            backoff_factor: 2.0,
        });
        let targets = vec![
            HedgeTarget {
                endpoint: "sa".into(),
                plan: plan("sa"),
                opts: SubmitOptions::default(),
            },
            HedgeTarget {
                endpoint: "sb".into(),
                plan: plan("sb"),
                opts: SubmitOptions::default(),
            },
        ];
        let mut out = c.submit_stream_hedged(&targets, None, 2, 64).unwrap();
        assert_eq!(out.winner, 1);
        assert_eq!(out.hedges, 0); // failover, not a straggler hedge
        let (_, rows, _) = drain(&mut out.stream);
        assert_eq!(rows, 9);
    }
}

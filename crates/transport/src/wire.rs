//! Wire codecs for everything crossing the mediator ↔ wrapper RPC
//! boundary: subplans, registration payloads (capabilities, statistics,
//! semi-compiled cost rules) and the request/response envelope.
//!
//! The substrate scalars live in [`disco_common::wire`] and the subanswer
//! codec in `disco_sources::wire`; this module adds the composite payloads
//! that involve algebra, catalog and cost-language types. They are encoded
//! by free functions (rather than trait impls) because both the types and
//! the codec traits are foreign here.
//!
//! Every decoder is total: malformed bytes produce [`DiscoError::Parse`],
//! never a panic, and unknown enum tags are rejected rather than guessed.

use disco_algebra::expr::ArithOp;
use disco_algebra::logical::AggExpr;
use disco_algebra::{
    AggFunc, CompareOp, JoinKind, JoinPredicate, LogicalPlan, OperatorKind, Predicate, ScalarExpr,
    SelectPredicate,
};
use disco_catalog::histogram::{Bucket, Histogram, HistogramKind};
use disco_catalog::{AttributeStats, Capabilities, CollectionStats, ExtentStats, StatName};
use disco_common::wire::{WireDecode, WireEncode, WireReader, WireWriter};
use disco_common::{DiscoError, QualifiedName, Result, Schema, Value};
use disco_costlang::ast::{AttrTerm, CollTerm, CostVar, HeadArg, PathLeaf, PredRhs, RuleHead};
use disco_costlang::builtins::Builtin;
use disco_costlang::bytecode::{
    AttrSpec, ChildRef, CollSpec, CompiledBody, Instr, PathSpec, Program,
};
use disco_costlang::{CompiledDocument, CompiledRule};
use disco_sources::{BatchAnswer, ExecStats, SubAnswer};
use disco_wrapper::Registration;

/// A request delivered to a wrapper endpoint.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Fetch the registration payload (Figure 1, steps 1–2).
    Register,
    /// Execute a subplan (Figure 2, step 4).
    Submit(LogicalPlan),
    /// Execute a subplan, streaming the answer back incrementally as
    /// [`Frame`]s of at most `chunk_rows` rows each instead of a single
    /// [`Response::Answer`].
    SubmitStream { plan: LogicalPlan, chunk_rows: u32 },
}

/// One frame of a streamed submit reply ([`Request::SubmitStream`]).
///
/// A well-formed stream is one or more `Chunk` frames (the first chunk may
/// be empty — it still carries the schema) terminated by exactly one `End`
/// or `Error` frame. Nothing follows the terminator.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// One incremental slice of the subanswer. The embedded stats are
    /// zeroed; the authoritative stats arrive with [`Frame::End`].
    Chunk(BatchAnswer),
    /// Normal end of stream, carrying the wrapper's execution stats for
    /// the whole subanswer.
    End(ExecStats),
    /// The stream failed; no further frames follow.
    Error { kind: String, message: String },
}

impl WireEncode for Frame {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            Frame::Chunk(a) => {
                w.put_u8(0);
                a.encode(w);
            }
            Frame::End(stats) => {
                w.put_u8(1);
                w.put_f64(stats.elapsed_ms);
                w.put_f64(stats.time_first_ms);
                w.put_u64(stats.pages_read);
                w.put_u64(stats.buffer_hits);
                w.put_u64(stats.objects_scanned);
            }
            Frame::Error { kind, message } => {
                w.put_u8(2);
                w.put_str(kind);
                w.put_str(message);
            }
        }
    }
}

impl WireDecode for Frame {
    fn decode(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(match r.get_u8()? {
            0 => Frame::Chunk(BatchAnswer::decode(r)?),
            1 => Frame::End(ExecStats {
                elapsed_ms: r.get_f64()?,
                time_first_ms: r.get_f64()?,
                pages_read: r.get_u64()?,
                buffer_hits: r.get_u64()?,
                objects_scanned: r.get_u64()?,
            }),
            2 => Frame::Error {
                kind: r.get_str()?,
                message: r.get_str()?,
            },
            t => return Err(bad_tag("Frame", t)),
        })
    }
}

/// Decode a stream frame from a full payload, rejecting trailing bytes.
pub fn decode_frame(payload: &[u8]) -> Result<Frame> {
    let mut r = WireReader::new(payload);
    let frame = Frame::decode(&mut r)?;
    r.expect_end()?;
    Ok(frame)
}

/// A reply from a wrapper endpoint.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Register`].
    Registration(Registration),
    /// Reply to [`Request::Submit`].
    Answer(SubAnswer),
    /// The wrapper failed; the error crosses the wire by kind + message.
    Error { kind: String, message: String },
}

impl Response {
    /// Convert an error response back into the [`DiscoError`] it carried.
    pub fn into_result(self) -> Result<Response> {
        match self {
            Response::Error { kind, message } => Err(DiscoError::from_kind(&kind, message)),
            other => Ok(other),
        }
    }
}

fn bad_tag(what: &str, tag: u8) -> DiscoError {
    DiscoError::Parse(format!("wire: unknown {what} tag {tag}"))
}

// ---------------------------------------------------------------- enums

fn op_kind_code(op: OperatorKind) -> u8 {
    match op {
        OperatorKind::Scan => 0,
        OperatorKind::Select => 1,
        OperatorKind::Project => 2,
        OperatorKind::Sort => 3,
        OperatorKind::Join => 4,
        OperatorKind::Union => 5,
        OperatorKind::Dedup => 6,
        OperatorKind::Aggregate => 7,
        OperatorKind::Submit => 8,
    }
}

fn op_kind_decode(tag: u8) -> Result<OperatorKind> {
    Ok(match tag {
        0 => OperatorKind::Scan,
        1 => OperatorKind::Select,
        2 => OperatorKind::Project,
        3 => OperatorKind::Sort,
        4 => OperatorKind::Join,
        5 => OperatorKind::Union,
        6 => OperatorKind::Dedup,
        7 => OperatorKind::Aggregate,
        8 => OperatorKind::Submit,
        t => return Err(bad_tag("OperatorKind", t)),
    })
}

fn cmp_code(op: CompareOp) -> u8 {
    match op {
        CompareOp::Eq => 0,
        CompareOp::Ne => 1,
        CompareOp::Lt => 2,
        CompareOp::Le => 3,
        CompareOp::Gt => 4,
        CompareOp::Ge => 5,
    }
}

fn cmp_decode(tag: u8) -> Result<CompareOp> {
    Ok(match tag {
        0 => CompareOp::Eq,
        1 => CompareOp::Ne,
        2 => CompareOp::Lt,
        3 => CompareOp::Le,
        4 => CompareOp::Gt,
        5 => CompareOp::Ge,
        t => return Err(bad_tag("CompareOp", t)),
    })
}

fn agg_code(f: AggFunc) -> u8 {
    match f {
        AggFunc::Count => 0,
        AggFunc::Sum => 1,
        AggFunc::Avg => 2,
        AggFunc::Min => 3,
        AggFunc::Max => 4,
    }
}

fn agg_decode(tag: u8) -> Result<AggFunc> {
    Ok(match tag {
        0 => AggFunc::Count,
        1 => AggFunc::Sum,
        2 => AggFunc::Avg,
        3 => AggFunc::Min,
        4 => AggFunc::Max,
        t => return Err(bad_tag("AggFunc", t)),
    })
}

fn arith_code(op: ArithOp) -> u8 {
    match op {
        ArithOp::Add => 0,
        ArithOp::Sub => 1,
        ArithOp::Mul => 2,
        ArithOp::Div => 3,
    }
}

fn arith_decode(tag: u8) -> Result<ArithOp> {
    Ok(match tag {
        0 => ArithOp::Add,
        1 => ArithOp::Sub,
        2 => ArithOp::Mul,
        3 => ArithOp::Div,
        t => return Err(bad_tag("ArithOp", t)),
    })
}

fn cost_var_code(v: CostVar) -> u8 {
    match v {
        CostVar::TimeFirst => 0,
        CostVar::TimeNext => 1,
        CostVar::TotalTime => 2,
        CostVar::CountObject => 3,
        CostVar::TotalSize => 4,
    }
}

fn cost_var_decode(tag: u8) -> Result<CostVar> {
    Ok(match tag {
        0 => CostVar::TimeFirst,
        1 => CostVar::TimeNext,
        2 => CostVar::TotalTime,
        3 => CostVar::CountObject,
        4 => CostVar::TotalSize,
        t => return Err(bad_tag("CostVar", t)),
    })
}

fn stat_code(s: StatName) -> u8 {
    match s {
        StatName::CountObject => 0,
        StatName::TotalSize => 1,
        StatName::ObjectSize => 2,
        StatName::CountPage => 3,
        StatName::Indexed => 4,
        StatName::CountDistinct => 5,
        StatName::Min => 6,
        StatName::Max => 7,
    }
}

fn stat_decode(tag: u8) -> Result<StatName> {
    Ok(match tag {
        0 => StatName::CountObject,
        1 => StatName::TotalSize,
        2 => StatName::ObjectSize,
        3 => StatName::CountPage,
        4 => StatName::Indexed,
        5 => StatName::CountDistinct,
        6 => StatName::Min,
        7 => StatName::Max,
        t => return Err(bad_tag("StatName", t)),
    })
}

fn builtin_code(b: Builtin) -> u8 {
    match b {
        Builtin::Min => 0,
        Builtin::Max => 1,
        Builtin::Exp => 2,
        Builtin::Ln => 3,
        Builtin::Log2 => 4,
        Builtin::Log10 => 5,
        Builtin::Sqrt => 6,
        Builtin::Pow => 7,
        Builtin::Ceil => 8,
        Builtin::Floor => 9,
        Builtin::Abs => 10,
    }
}

fn builtin_decode(tag: u8) -> Result<Builtin> {
    Ok(match tag {
        0 => Builtin::Min,
        1 => Builtin::Max,
        2 => Builtin::Exp,
        3 => Builtin::Ln,
        4 => Builtin::Log2,
        5 => Builtin::Log10,
        6 => Builtin::Sqrt,
        7 => Builtin::Pow,
        8 => Builtin::Ceil,
        9 => Builtin::Floor,
        10 => Builtin::Abs,
        t => return Err(bad_tag("Builtin", t)),
    })
}

fn child_code(c: ChildRef) -> u8 {
    match c {
        ChildRef::Input => 0,
        ChildRef::Left => 1,
        ChildRef::Right => 2,
    }
}

fn child_decode(tag: u8) -> Result<ChildRef> {
    Ok(match tag {
        0 => ChildRef::Input,
        1 => ChildRef::Left,
        2 => ChildRef::Right,
        t => return Err(bad_tag("ChildRef", t)),
    })
}

// ------------------------------------------------------------ predicates

fn encode_select_pred(p: &SelectPredicate, w: &mut WireWriter) {
    w.put_str(&p.attribute);
    w.put_u8(cmp_code(p.op));
    p.value.encode(w);
}

fn decode_select_pred(r: &mut WireReader<'_>) -> Result<SelectPredicate> {
    let attribute = r.get_str()?;
    let op = cmp_decode(r.get_u8()?)?;
    let value = Value::decode(r)?;
    Ok(SelectPredicate {
        attribute,
        op,
        value,
    })
}

fn encode_predicate(p: &Predicate, w: &mut WireWriter) {
    w.put_len(p.conjuncts.len());
    for c in &p.conjuncts {
        encode_select_pred(c, w);
    }
}

fn decode_predicate(r: &mut WireReader<'_>) -> Result<Predicate> {
    let n = r.get_len()?;
    let mut conjuncts = Vec::with_capacity(n);
    for _ in 0..n {
        conjuncts.push(decode_select_pred(r)?);
    }
    Ok(Predicate { conjuncts })
}

fn encode_join_pred(p: &JoinPredicate, w: &mut WireWriter) {
    w.put_str(&p.left_attr);
    w.put_u8(cmp_code(p.op));
    w.put_str(&p.right_attr);
}

fn decode_join_pred(r: &mut WireReader<'_>) -> Result<JoinPredicate> {
    let left_attr = r.get_str()?;
    let op = cmp_decode(r.get_u8()?)?;
    let right_attr = r.get_str()?;
    Ok(JoinPredicate {
        left_attr,
        op,
        right_attr,
    })
}

fn encode_scalar_expr(e: &ScalarExpr, w: &mut WireWriter) {
    match e {
        ScalarExpr::Attr(name) => {
            w.put_u8(0);
            w.put_str(name);
        }
        ScalarExpr::Const(v) => {
            w.put_u8(1);
            v.encode(w);
        }
        ScalarExpr::Binary { op, left, right } => {
            w.put_u8(2);
            w.put_u8(arith_code(*op));
            encode_scalar_expr(left, w);
            encode_scalar_expr(right, w);
        }
    }
}

fn decode_scalar_expr(r: &mut WireReader<'_>) -> Result<ScalarExpr> {
    Ok(match r.get_u8()? {
        0 => ScalarExpr::Attr(r.get_str()?),
        1 => ScalarExpr::Const(Value::decode(r)?),
        2 => {
            let op = arith_decode(r.get_u8()?)?;
            let left = Box::new(decode_scalar_expr(r)?);
            let right = Box::new(decode_scalar_expr(r)?);
            ScalarExpr::Binary { op, left, right }
        }
        t => return Err(bad_tag("ScalarExpr", t)),
    })
}

fn encode_agg_expr(a: &AggExpr, w: &mut WireWriter) {
    w.put_str(&a.name);
    w.put_u8(agg_code(a.func));
    match &a.arg {
        Some(arg) => {
            w.put_u8(1);
            w.put_str(arg);
        }
        None => w.put_u8(0),
    }
}

fn decode_agg_expr(r: &mut WireReader<'_>) -> Result<AggExpr> {
    let name = r.get_str()?;
    let func = agg_decode(r.get_u8()?)?;
    let arg = match r.get_u8()? {
        0 => None,
        1 => Some(r.get_str()?),
        t => return Err(bad_tag("Option", t)),
    };
    Ok(AggExpr { name, func, arg })
}

// ----------------------------------------------------------------- plans

/// Encode a logical plan tree (the shipped form of a subplan).
pub fn encode_plan(p: &LogicalPlan, w: &mut WireWriter) {
    match p {
        LogicalPlan::Scan { collection, schema } => {
            w.put_u8(0);
            collection.encode(w);
            schema.encode(w);
        }
        LogicalPlan::Select { input, predicate } => {
            w.put_u8(1);
            encode_plan(input, w);
            encode_predicate(predicate, w);
        }
        LogicalPlan::Project { input, columns } => {
            w.put_u8(2);
            encode_plan(input, w);
            w.put_len(columns.len());
            for (name, e) in columns {
                w.put_str(name);
                encode_scalar_expr(e, w);
            }
        }
        LogicalPlan::Sort { input, keys } => {
            w.put_u8(3);
            encode_plan(input, w);
            w.put_len(keys.len());
            for (k, asc) in keys {
                w.put_str(k);
                w.put_bool(*asc);
            }
        }
        LogicalPlan::Join {
            left,
            right,
            predicate,
            kind,
        } => {
            w.put_u8(4);
            encode_plan(left, w);
            encode_plan(right, w);
            encode_join_pred(predicate, w);
            w.put_u8(match kind {
                JoinKind::Inner => 0,
                JoinKind::LeftOuter => 1,
            });
        }
        LogicalPlan::Union { left, right } => {
            w.put_u8(5);
            encode_plan(left, w);
            encode_plan(right, w);
        }
        LogicalPlan::Dedup { input } => {
            w.put_u8(6);
            encode_plan(input, w);
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            w.put_u8(7);
            encode_plan(input, w);
            w.put_len(group_by.len());
            for g in group_by {
                w.put_str(g);
            }
            w.put_len(aggs.len());
            for a in aggs {
                encode_agg_expr(a, w);
            }
        }
        LogicalPlan::Submit { wrapper, input } => {
            w.put_u8(8);
            w.put_str(wrapper);
            encode_plan(input, w);
        }
    }
}

/// Decode a logical plan tree.
pub fn decode_plan(r: &mut WireReader<'_>) -> Result<LogicalPlan> {
    Ok(match r.get_u8()? {
        0 => LogicalPlan::Scan {
            collection: QualifiedName::decode(r)?,
            schema: Schema::decode(r)?,
        },
        1 => LogicalPlan::Select {
            input: Box::new(decode_plan(r)?),
            predicate: decode_predicate(r)?,
        },
        2 => {
            let input = Box::new(decode_plan(r)?);
            let n = r.get_len()?;
            let mut columns = Vec::with_capacity(n);
            for _ in 0..n {
                let name = r.get_str()?;
                columns.push((name, decode_scalar_expr(r)?));
            }
            LogicalPlan::Project { input, columns }
        }
        3 => {
            let input = Box::new(decode_plan(r)?);
            let n = r.get_len()?;
            let mut keys = Vec::with_capacity(n);
            for _ in 0..n {
                let k = r.get_str()?;
                keys.push((k, r.get_bool()?));
            }
            LogicalPlan::Sort { input, keys }
        }
        4 => {
            let left = Box::new(decode_plan(r)?);
            let right = Box::new(decode_plan(r)?);
            let predicate = decode_join_pred(r)?;
            let kind = match r.get_u8()? {
                0 => JoinKind::Inner,
                1 => JoinKind::LeftOuter,
                t => return Err(bad_tag("JoinKind", t)),
            };
            LogicalPlan::Join {
                left,
                right,
                predicate,
                kind,
            }
        }
        5 => LogicalPlan::Union {
            left: Box::new(decode_plan(r)?),
            right: Box::new(decode_plan(r)?),
        },
        6 => LogicalPlan::Dedup {
            input: Box::new(decode_plan(r)?),
        },
        7 => {
            let input = Box::new(decode_plan(r)?);
            let ng = r.get_len()?;
            let mut group_by = Vec::with_capacity(ng);
            for _ in 0..ng {
                group_by.push(r.get_str()?);
            }
            let na = r.get_len()?;
            let mut aggs = Vec::with_capacity(na);
            for _ in 0..na {
                aggs.push(decode_agg_expr(r)?);
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            }
        }
        8 => LogicalPlan::Submit {
            wrapper: r.get_str()?,
            input: Box::new(decode_plan(r)?),
        },
        t => return Err(bad_tag("LogicalPlan", t)),
    })
}

// ------------------------------------------------------------ statistics

fn encode_histogram(h: &Histogram, w: &mut WireWriter) {
    w.put_u8(match h.kind() {
        HistogramKind::EquiWidth => 0,
        HistogramKind::EquiDepth => 1,
    });
    w.put_len(h.buckets().len());
    for b in h.buckets() {
        w.put_f64(b.lo);
        w.put_f64(b.hi);
        w.put_u64(b.count);
        w.put_u64(b.distinct);
    }
}

fn decode_histogram(r: &mut WireReader<'_>) -> Result<Histogram> {
    let kind = match r.get_u8()? {
        0 => HistogramKind::EquiWidth,
        1 => HistogramKind::EquiDepth,
        t => return Err(bad_tag("HistogramKind", t)),
    };
    let n = r.get_len()?;
    let mut buckets = Vec::with_capacity(n);
    for _ in 0..n {
        buckets.push(Bucket {
            lo: r.get_f64()?,
            hi: r.get_f64()?,
            count: r.get_u64()?,
            distinct: r.get_u64()?,
        });
    }
    Ok(Histogram::from_parts(kind, buckets))
}

fn encode_collection_stats(s: &CollectionStats, w: &mut WireWriter) {
    w.put_u64(s.extent.count_object);
    w.put_u64(s.extent.total_size);
    w.put_u64(s.extent.object_size);
    // 0 encodes "no measured page count": a non-empty extent never
    // reports 0 pages, and an empty one derives 0 regardless.
    w.put_u64(s.extent.count_page.unwrap_or(0));
    w.put_len(s.attributes.len());
    for (name, a) in &s.attributes {
        w.put_str(name);
        w.put_bool(a.indexed);
        w.put_u64(a.count_distinct);
        a.min.encode(w);
        a.max.encode(w);
        match &a.histogram {
            Some(h) => {
                w.put_u8(1);
                encode_histogram(h, w);
            }
            None => w.put_u8(0),
        }
    }
}

fn decode_collection_stats(r: &mut WireReader<'_>) -> Result<CollectionStats> {
    let extent = ExtentStats {
        count_object: r.get_u64()?,
        total_size: r.get_u64()?,
        object_size: r.get_u64()?,
        count_page: match r.get_u64()? {
            0 => None,
            p => Some(p),
        },
    };
    let mut stats = CollectionStats::new(extent);
    let n = r.get_len()?;
    for _ in 0..n {
        let name = r.get_str()?;
        let indexed = r.get_bool()?;
        let count_distinct = r.get_u64()?;
        let min = Value::decode(r)?;
        let max = Value::decode(r)?;
        let mut a = AttributeStats::new(count_distinct, min, max);
        a.indexed = indexed;
        a.histogram = match r.get_u8()? {
            0 => None,
            1 => Some(decode_histogram(r)?),
            t => return Err(bad_tag("Option", t)),
        };
        stats = stats.with_attribute(name, a);
    }
    Ok(stats)
}

fn encode_capabilities(c: &Capabilities, w: &mut WireWriter) {
    let ops: Vec<OperatorKind> = c.ops().collect();
    w.put_len(ops.len());
    for op in ops {
        w.put_u8(op_kind_code(op));
    }
}

fn decode_capabilities(r: &mut WireReader<'_>) -> Result<Capabilities> {
    let n = r.get_len()?;
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        ops.push(op_kind_decode(r.get_u8()?)?);
    }
    Ok(Capabilities::of(&ops))
}

// -------------------------------------------------- compiled cost rules

fn encode_coll_term(t: &CollTerm, w: &mut WireWriter) {
    match t {
        CollTerm::Named(s) => {
            w.put_u8(0);
            w.put_str(s);
        }
        CollTerm::Var(s) => {
            w.put_u8(1);
            w.put_str(s);
        }
    }
}

fn decode_coll_term(r: &mut WireReader<'_>) -> Result<CollTerm> {
    Ok(match r.get_u8()? {
        0 => CollTerm::Named(r.get_str()?),
        1 => CollTerm::Var(r.get_str()?),
        t => return Err(bad_tag("CollTerm", t)),
    })
}

fn encode_attr_term(t: &AttrTerm, w: &mut WireWriter) {
    match t {
        AttrTerm::Named(s) => {
            w.put_u8(0);
            w.put_str(s);
        }
        AttrTerm::Var(s) => {
            w.put_u8(1);
            w.put_str(s);
        }
    }
}

fn decode_attr_term(r: &mut WireReader<'_>) -> Result<AttrTerm> {
    Ok(match r.get_u8()? {
        0 => AttrTerm::Named(r.get_str()?),
        1 => AttrTerm::Var(r.get_str()?),
        t => return Err(bad_tag("AttrTerm", t)),
    })
}

fn encode_head_arg(a: &HeadArg, w: &mut WireWriter) {
    match a {
        HeadArg::Coll(t) => {
            w.put_u8(0);
            encode_coll_term(t, w);
        }
        HeadArg::Pred { left, op, right } => {
            w.put_u8(1);
            encode_attr_term(left, w);
            w.put_u8(cmp_code(*op));
            match right {
                PredRhs::Const(v) => {
                    w.put_u8(0);
                    v.encode(w);
                }
                PredRhs::Ident(s) => {
                    w.put_u8(1);
                    w.put_str(s);
                }
                PredRhs::Var(s) => {
                    w.put_u8(2);
                    w.put_str(s);
                }
            }
        }
        HeadArg::AnyPred(s) => {
            w.put_u8(2);
            w.put_str(s);
        }
        HeadArg::AttrList(list) => {
            w.put_u8(3);
            w.put_len(list.len());
            for s in list {
                w.put_str(s);
            }
        }
        HeadArg::Attr(t) => {
            w.put_u8(4);
            encode_attr_term(t, w);
        }
    }
}

fn decode_head_arg(r: &mut WireReader<'_>) -> Result<HeadArg> {
    Ok(match r.get_u8()? {
        0 => HeadArg::Coll(decode_coll_term(r)?),
        1 => {
            let left = decode_attr_term(r)?;
            let op = cmp_decode(r.get_u8()?)?;
            let right = match r.get_u8()? {
                0 => PredRhs::Const(Value::decode(r)?),
                1 => PredRhs::Ident(r.get_str()?),
                2 => PredRhs::Var(r.get_str()?),
                t => return Err(bad_tag("PredRhs", t)),
            };
            HeadArg::Pred { left, op, right }
        }
        2 => HeadArg::AnyPred(r.get_str()?),
        3 => {
            let n = r.get_len()?;
            let mut list = Vec::with_capacity(n);
            for _ in 0..n {
                list.push(r.get_str()?);
            }
            HeadArg::AttrList(list)
        }
        4 => HeadArg::Attr(decode_attr_term(r)?),
        t => return Err(bad_tag("HeadArg", t)),
    })
}

fn encode_path_spec(p: &PathSpec, w: &mut WireWriter) {
    match &p.coll {
        CollSpec::Named(s) => {
            w.put_u8(0);
            w.put_str(s);
        }
        CollSpec::Binding(s) => {
            w.put_u8(1);
            w.put_str(s);
        }
        CollSpec::Child(c) => {
            w.put_u8(2);
            w.put_u8(child_code(*c));
        }
    }
    match &p.attr {
        Some(AttrSpec::Named(s)) => {
            w.put_u8(1);
            w.put_str(s);
        }
        Some(AttrSpec::Binding(s)) => {
            w.put_u8(2);
            w.put_str(s);
        }
        None => w.put_u8(0),
    }
    match p.leaf {
        PathLeaf::Stat(s) => {
            w.put_u8(0);
            w.put_u8(stat_code(s));
        }
        PathLeaf::Cost(v) => {
            w.put_u8(1);
            w.put_u8(cost_var_code(v));
        }
    }
}

fn decode_path_spec(r: &mut WireReader<'_>) -> Result<PathSpec> {
    let coll = match r.get_u8()? {
        0 => CollSpec::Named(r.get_str()?),
        1 => CollSpec::Binding(r.get_str()?),
        2 => CollSpec::Child(child_decode(r.get_u8()?)?),
        t => return Err(bad_tag("CollSpec", t)),
    };
    let attr = match r.get_u8()? {
        0 => None,
        1 => Some(AttrSpec::Named(r.get_str()?)),
        2 => Some(AttrSpec::Binding(r.get_str()?)),
        t => return Err(bad_tag("AttrSpec", t)),
    };
    let leaf = match r.get_u8()? {
        0 => PathLeaf::Stat(stat_decode(r.get_u8()?)?),
        1 => PathLeaf::Cost(cost_var_decode(r.get_u8()?)?),
        t => return Err(bad_tag("PathLeaf", t)),
    };
    Ok(PathSpec { coll, attr, leaf })
}

fn encode_instr(i: &Instr, w: &mut WireWriter) {
    match i {
        Instr::Const(x) => {
            w.put_u8(0);
            w.put_u16(*x);
        }
        Instr::LoadLocal(x) => {
            w.put_u8(1);
            w.put_u16(*x);
        }
        Instr::StoreLocal(x) => {
            w.put_u8(2);
            w.put_u16(*x);
        }
        Instr::LoadBinding(x) => {
            w.put_u8(3);
            w.put_u16(*x);
        }
        Instr::LoadParam(x) => {
            w.put_u8(4);
            w.put_u16(*x);
        }
        Instr::LoadSelfVar(v) => {
            w.put_u8(5);
            w.put_u8(cost_var_code(*v));
        }
        Instr::LoadPath(x) => {
            w.put_u8(6);
            w.put_u16(*x);
        }
        Instr::Add => w.put_u8(7),
        Instr::Sub => w.put_u8(8),
        Instr::Mul => w.put_u8(9),
        Instr::Div => w.put_u8(10),
        Instr::Neg => w.put_u8(11),
        Instr::CallBuiltin(b) => {
            w.put_u8(12);
            w.put_u8(builtin_code(*b));
        }
        Instr::CallEnv(name, argc) => {
            w.put_u8(13);
            w.put_u16(*name);
            w.put_u8(*argc);
        }
    }
}

fn decode_instr(r: &mut WireReader<'_>) -> Result<Instr> {
    Ok(match r.get_u8()? {
        0 => Instr::Const(r.get_u16()?),
        1 => Instr::LoadLocal(r.get_u16()?),
        2 => Instr::StoreLocal(r.get_u16()?),
        3 => Instr::LoadBinding(r.get_u16()?),
        4 => Instr::LoadParam(r.get_u16()?),
        5 => Instr::LoadSelfVar(cost_var_decode(r.get_u8()?)?),
        6 => Instr::LoadPath(r.get_u16()?),
        7 => Instr::Add,
        8 => Instr::Sub,
        9 => Instr::Mul,
        10 => Instr::Div,
        11 => Instr::Neg,
        12 => Instr::CallBuiltin(builtin_decode(r.get_u8()?)?),
        13 => Instr::CallEnv(r.get_u16()?, r.get_u8()?),
        t => return Err(bad_tag("Instr", t)),
    })
}

fn encode_program(p: &Program, w: &mut WireWriter) {
    w.put_len(p.instrs.len());
    for i in &p.instrs {
        encode_instr(i, w);
    }
    w.put_len(p.consts.len());
    for c in &p.consts {
        c.encode(w);
    }
    w.put_len(p.names.len());
    for n in &p.names {
        w.put_str(n);
    }
    w.put_len(p.paths.len());
    for path in &p.paths {
        encode_path_spec(path, w);
    }
    w.put_u16(p.n_locals);
}

fn decode_program(r: &mut WireReader<'_>) -> Result<Program> {
    let ni = r.get_len()?;
    let mut instrs = Vec::with_capacity(ni);
    for _ in 0..ni {
        instrs.push(decode_instr(r)?);
    }
    let nc = r.get_len()?;
    let mut consts = Vec::with_capacity(nc);
    for _ in 0..nc {
        consts.push(Value::decode(r)?);
    }
    let nn = r.get_len()?;
    let mut names = Vec::with_capacity(nn);
    for _ in 0..nn {
        names.push(r.get_str()?);
    }
    let np = r.get_len()?;
    let mut paths = Vec::with_capacity(np);
    for _ in 0..np {
        paths.push(decode_path_spec(r)?);
    }
    let n_locals = r.get_u16()?;
    Ok(Program {
        instrs,
        consts,
        names,
        paths,
        n_locals,
    })
}

fn encode_rule(rule: &CompiledRule, w: &mut WireWriter) {
    w.put_u8(op_kind_code(rule.head.op));
    w.put_len(rule.head.args.len());
    for a in &rule.head.args {
        encode_head_arg(a, w);
    }
    encode_program(&rule.body.program, w);
    w.put_len(rule.body.outputs.len());
    for (var, slot) in &rule.body.outputs {
        w.put_u8(cost_var_code(*var));
        w.put_u16(*slot);
    }
    match &rule.declared_in {
        Some(s) => {
            w.put_u8(1);
            w.put_str(s);
        }
        None => w.put_u8(0),
    }
}

fn decode_rule(r: &mut WireReader<'_>) -> Result<CompiledRule> {
    let op = op_kind_decode(r.get_u8()?)?;
    let na = r.get_len()?;
    let mut args = Vec::with_capacity(na);
    for _ in 0..na {
        args.push(decode_head_arg(r)?);
    }
    let program = decode_program(r)?;
    let no = r.get_len()?;
    let mut outputs = Vec::with_capacity(no);
    for _ in 0..no {
        let var = cost_var_decode(r.get_u8()?)?;
        outputs.push((var, r.get_u16()?));
    }
    let declared_in = match r.get_u8()? {
        0 => None,
        1 => Some(r.get_str()?),
        t => return Err(bad_tag("Option", t)),
    };
    Ok(CompiledRule {
        head: RuleHead { op, args },
        body: CompiledBody { program, outputs },
        declared_in,
    })
}

fn encode_document(doc: &CompiledDocument, w: &mut WireWriter) {
    w.put_len(doc.interfaces.len());
    for (name, schema, stats) in &doc.interfaces {
        w.put_str(name);
        schema.encode(w);
        encode_collection_stats(stats, w);
    }
    w.put_len(doc.params.len());
    for (name, v) in &doc.params {
        w.put_str(name);
        v.encode(w);
    }
    w.put_len(doc.rules.len());
    for rule in &doc.rules {
        encode_rule(rule, w);
    }
}

fn decode_document(r: &mut WireReader<'_>) -> Result<CompiledDocument> {
    let mut doc = CompiledDocument::default();
    let ni = r.get_len()?;
    for _ in 0..ni {
        let name = r.get_str()?;
        let schema = Schema::decode(r)?;
        let stats = decode_collection_stats(r)?;
        doc.interfaces.push((name, schema, stats));
    }
    let np = r.get_len()?;
    for _ in 0..np {
        let name = r.get_str()?;
        doc.params.push((name, Value::decode(r)?));
    }
    let nr = r.get_len()?;
    for _ in 0..nr {
        doc.rules.push(decode_rule(r)?);
    }
    Ok(doc)
}

// ---------------------------------------------------------- registration

/// Encode a full registration payload (Figure 1: capabilities, exported
/// collections with statistics, semi-compiled cost rules).
pub fn encode_registration(reg: &Registration, w: &mut WireWriter) {
    encode_capabilities(&reg.capabilities, w);
    w.put_len(reg.collections.len());
    for (name, schema, stats) in &reg.collections {
        w.put_str(name);
        schema.encode(w);
        encode_collection_stats(stats, w);
    }
    encode_document(&reg.cost_rules, w);
}

/// Decode a registration payload.
pub fn decode_registration(r: &mut WireReader<'_>) -> Result<Registration> {
    let capabilities = decode_capabilities(r)?;
    let n = r.get_len()?;
    let mut collections = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.get_str()?;
        let schema = Schema::decode(r)?;
        let stats = decode_collection_stats(r)?;
        collections.push((name, schema, stats));
    }
    let cost_rules = decode_document(r)?;
    Ok(Registration {
        capabilities,
        collections,
        cost_rules,
    })
}

// -------------------------------------------------------------- envelope

impl WireEncode for Request {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            Request::Register => w.put_u8(0),
            Request::Submit(plan) => {
                w.put_u8(1);
                encode_plan(plan, w);
            }
            Request::SubmitStream { plan, chunk_rows } => {
                w.put_u8(2);
                encode_plan(plan, w);
                w.put_u64(u64::from(*chunk_rows));
            }
        }
    }
}

impl WireDecode for Request {
    fn decode(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(match r.get_u8()? {
            0 => Request::Register,
            1 => Request::Submit(decode_plan(r)?),
            2 => {
                let plan = decode_plan(r)?;
                let chunk_rows = u32::try_from(r.get_u64()?)
                    .map_err(|_| DiscoError::Parse("wire: chunk_rows exceeds u32".into()))?;
                Request::SubmitStream { plan, chunk_rows }
            }
            t => return Err(bad_tag("Request", t)),
        })
    }
}

impl WireEncode for Response {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            Response::Registration(reg) => {
                w.put_u8(0);
                encode_registration(reg, w);
            }
            Response::Answer(a) => {
                w.put_u8(1);
                a.encode(w);
            }
            Response::Error { kind, message } => {
                w.put_u8(2);
                w.put_str(kind);
                w.put_str(message);
            }
        }
    }
}

impl WireDecode for Response {
    fn decode(r: &mut WireReader<'_>) -> Result<Self> {
        Ok(match r.get_u8()? {
            0 => Response::Registration(decode_registration(r)?),
            1 => Response::Answer(SubAnswer::decode(r)?),
            2 => Response::Error {
                kind: r.get_str()?,
                message: r.get_str()?,
            },
            t => return Err(bad_tag("Response", t)),
        })
    }
}

/// Decode a submit reply straight into a columnar [`BatchAnswer`],
/// bypassing [`Response`]'s row materialization: the payload bytes go
/// from the receive buffer into column vectors without ever building a
/// `Tuple`. Error replies surface as the [`DiscoError`] they carry,
/// exactly like `Response::into_result`.
pub fn decode_answer_batch(payload: &[u8]) -> Result<BatchAnswer> {
    let mut r = WireReader::new(payload);
    match r.get_u8()? {
        1 => {
            let answer = BatchAnswer::decode(&mut r)?;
            r.expect_end()?;
            Ok(answer)
        }
        2 => {
            let kind = r.get_str()?;
            let message = r.get_str()?;
            Err(DiscoError::from_kind(&kind, message))
        }
        0 => Err(DiscoError::Exec(
            "endpoint answered submit with a registration payload".into(),
        )),
        t => Err(bad_tag("Response", t)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_algebra::PlanBuilder;
    use disco_common::{AttributeDef, DataType};

    fn schema() -> Schema {
        Schema::new(vec![
            AttributeDef::new("id", DataType::Long),
            AttributeDef::new("v", DataType::Long),
        ])
    }

    fn plan() -> LogicalPlan {
        PlanBuilder::scan(QualifiedName::new("s", "T"), schema())
            .select("id", CompareOp::Lt, 10i64)
            .submit("s")
            .build()
    }

    #[test]
    fn plan_round_trips() {
        let p = plan();
        let mut w = WireWriter::new();
        encode_plan(&p, &mut w);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let back = decode_plan(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn request_and_error_response_round_trip() {
        let req = Request::Submit(plan());
        let back = Request::from_wire_bytes(&req.to_wire_bytes()).unwrap();
        assert_eq!(back, req);

        let resp = Response::Error {
            kind: "unavailable".into(),
            message: "endpoint drained".into(),
        };
        let back = Response::from_wire_bytes(&resp.to_wire_bytes()).unwrap();
        let err = back.into_result().unwrap_err();
        assert_eq!(err.kind(), "unavailable");
        assert_eq!(err.message(), "endpoint drained");
    }

    #[test]
    fn registration_round_trips_with_rules_and_histograms() {
        use disco_sources::{CollectionBuilder, CostProfile, DataSource, PagedStore};
        use disco_wrapper::SourceWrapper;
        use disco_wrapper::Wrapper;

        let mut store = PagedStore::new("s", CostProfile::relational());
        store
            .add_collection(
                "T",
                CollectionBuilder::new(schema())
                    .rows((0..200i64).map(|i| vec![Value::Long(i), Value::Long(i % 7)]))
                    .object_size(16)
                    .index("id"),
            )
            .unwrap();
        // Sanity: the source exports statistics the payload must carry.
        assert!(store.statistics("T").is_some());
        let w = SourceWrapper::new("s", store).with_cost_rules(
            "let IO = 25.0;
             let pages($b) = ceil($b / 4096);
             interface T {
                attribute long id;
                cardinality extent(200, 3200, 16);
                rule scan(T) { TotalTime = pages(T.TotalSize) * IO; }
             }
             rule select($C, $A = $V) {
                CountObject = $C.CountObject * selectivity($A, $V);
                TotalTime = input.TotalTime + CountObject;
             }",
        );
        let reg = w.registration().unwrap();
        let mut wr = WireWriter::new();
        encode_registration(&reg, &mut wr);
        let bytes = wr.into_bytes();
        let mut r = WireReader::new(&bytes);
        let back = decode_registration(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(back.collections, reg.collections);
        assert_eq!(back.cost_rules, reg.cost_rules);
        assert_eq!(back.rule_count(), 2);
        assert_eq!(
            back.capabilities.ops().collect::<Vec<_>>(),
            reg.capabilities.ops().collect::<Vec<_>>()
        );
    }

    #[test]
    fn malformed_payloads_error_cleanly() {
        let req = Request::Submit(plan());
        let bytes = req.to_wire_bytes();
        for cut in 0..bytes.len() {
            assert!(Request::from_wire_bytes(&bytes[..cut]).is_err());
        }
        // Flipping the outer tag must not panic either.
        let mut flipped = bytes.clone();
        flipped[0] = 77;
        assert!(Request::from_wire_bytes(&flipped).is_err());
    }

    #[test]
    fn submit_stream_request_round_trips() {
        let req = Request::SubmitStream {
            plan: plan(),
            chunk_rows: 1024,
        };
        let bytes = req.to_wire_bytes();
        assert_eq!(Request::from_wire_bytes(&bytes).unwrap(), req);
        for cut in 0..bytes.len() {
            assert!(Request::from_wire_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn frames_round_trip_and_reject_malformed() {
        use disco_common::{Batch, Tuple};
        use disco_sources::{BatchAnswer, ExecStats};

        let tuples = vec![
            Tuple::new(vec![Value::Long(1), Value::Long(2)]),
            Tuple::new(vec![Value::Long(3), Value::Null]),
        ];
        let chunk = Frame::Chunk(BatchAnswer {
            schema: schema(),
            batch: Batch::from_tuples(2, &tuples),
            stats: ExecStats::default(),
        });
        let end = Frame::End(ExecStats {
            elapsed_ms: 12.5,
            time_first_ms: 3.25,
            pages_read: 7,
            buffer_hits: 2,
            objects_scanned: 40,
        });
        let error = Frame::Error {
            kind: "timeout".into(),
            message: "no frame".into(),
        };
        for frame in [chunk, end, error] {
            let bytes = frame.to_wire_bytes();
            assert_eq!(decode_frame(&bytes).unwrap(), frame);
            for cut in 0..bytes.len() {
                assert!(decode_frame(&bytes[..cut]).is_err());
            }
            let mut trailing = bytes.clone();
            trailing.push(0);
            assert!(decode_frame(&trailing).is_err());
            let mut flipped = bytes.clone();
            flipped[0] = 99;
            assert!(decode_frame(&flipped).is_err());
        }
    }
}

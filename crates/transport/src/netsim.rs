//! Simulated per-endpoint network model.
//!
//! The seed executor charged every submit the same analytic
//! `MsgLatency + PerByte × bytes`. The transport replaces that with a
//! per-endpoint profile: round-trip latency, bandwidth and deterministic
//! jitter, so heterogeneous sources can sit behind heterogeneous links —
//! the situation the paper's mediator actually faces.

/// Network characteristics of one mediator ↔ wrapper link.
#[derive(Debug, Clone, PartialEq)]
pub struct NetProfile {
    /// One-way message latency in milliseconds (charged twice per call).
    pub latency_ms: f64,
    /// Transfer rate in bytes per millisecond.
    pub bytes_per_ms: f64,
    /// Maximum uniform jitter added per call, in milliseconds. Drawn from
    /// the deterministic workspace RNG keyed by endpoint name.
    pub jitter_ms: f64,
    /// Fraction of the simulated communication time the worker actually
    /// sleeps, so wall-clock measurements reflect the model. `0.0` keeps
    /// tests instant; benches use a small positive value.
    pub sleep_scale: f64,
}

impl NetProfile {
    /// The seed executor's uniform charge (`MsgLatency = 100 ms`,
    /// `PerByte = 0.001 ms`) recast as a profile: 50 ms each way,
    /// 1000 bytes/ms, no jitter, no real sleeping.
    pub fn lan() -> Self {
        NetProfile {
            latency_ms: 50.0,
            bytes_per_ms: 1000.0,
            jitter_ms: 0.0,
            sleep_scale: 0.0,
        }
    }

    /// A slow, jittery long-haul link.
    pub fn wan() -> Self {
        NetProfile {
            latency_ms: 200.0,
            bytes_per_ms: 100.0,
            jitter_ms: 40.0,
            sleep_scale: 0.0,
        }
    }

    /// Override the sleep scale (builder style).
    pub fn with_sleep_scale(mut self, scale: f64) -> Self {
        self.sleep_scale = scale;
        self
    }

    /// Override the jitter bound (builder style).
    pub fn with_jitter_ms(mut self, jitter: f64) -> Self {
        self.jitter_ms = jitter;
        self
    }

    /// Simulated round-trip time for a call shipping `request_bytes` out
    /// and `response_bytes` back. `jitter_draw` is a uniform sample in
    /// `[0, 1)` from the endpoint's RNG.
    pub fn comm_ms(&self, request_bytes: usize, response_bytes: usize, jitter_draw: f64) -> f64 {
        let transfer = if self.bytes_per_ms > 0.0 {
            (request_bytes + response_bytes) as f64 / self.bytes_per_ms
        } else {
            0.0
        };
        2.0 * self.latency_ms + transfer + self.jitter_ms * jitter_draw
    }

    /// Transfer time alone for `bytes` shipped on an already-established
    /// exchange — what the frames of a streamed reply pay after the first
    /// one has absorbed the round-trip latency.
    pub fn transfer_ms(&self, bytes: usize) -> f64 {
        if self.bytes_per_ms > 0.0 {
            bytes as f64 / self.bytes_per_ms
        } else {
            0.0
        }
    }
}

impl Default for NetProfile {
    fn default() -> Self {
        NetProfile::lan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lan_matches_the_seed_charge() {
        // Seed model: 100 ms + 0.001 ms/byte. A 4000-byte reply to a
        // 0-byte request cost 104 ms there; the lan profile agrees.
        let p = NetProfile::lan();
        assert!((p.comm_ms(0, 4000, 0.0) - 104.0).abs() < 1e-9);
    }

    #[test]
    fn jitter_is_bounded_and_zero_bandwidth_is_safe() {
        let p = NetProfile {
            latency_ms: 10.0,
            bytes_per_ms: 0.0,
            jitter_ms: 5.0,
            sleep_scale: 0.0,
        };
        let lo = p.comm_ms(100, 100, 0.0);
        let hi = p.comm_ms(100, 100, 0.999);
        assert!((lo - 20.0).abs() < 1e-9);
        assert!(hi < 25.0 && hi > lo);
    }
}

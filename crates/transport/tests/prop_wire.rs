// Gated: requires the `proptest` cargo feature (and the proptest
// dev-dependency, removed so offline builds succeed — see Cargo.toml).
#![cfg(feature = "proptest")]

//! Property tests for the transport wire format: encode → decode is the
//! identity for values, schemas, subanswers, and plans, and arbitrary
//! byte soup never panics the decoders. The always-on seeded variants
//! live in `wire_roundtrip.rs`; these add proptest's shrinking.

use proptest::prelude::*;

use disco_algebra::{CompareOp, LogicalPlan, PlanBuilder};
use disco_common::wire::{WireDecode, WireEncode, WireReader, WireWriter};
use disco_common::{AttributeDef, DataType, QualifiedName, Schema, Tuple, Value};
use disco_sources::{ExecStats, SubAnswer};
use disco_transport::wire::{decode_plan, encode_plan};
use disco_transport::{Request, Response};

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Long),
        // Finite doubles only: NaN breaks the PartialEq the assertion needs.
        prop::num::f64::NORMAL.prop_map(Value::Double),
        ".{0,24}".prop_map(Value::Str),
    ]
}

fn datatype_strategy() -> impl Strategy<Value = DataType> {
    prop_oneof![
        Just(DataType::Bool),
        Just(DataType::Long),
        Just(DataType::Double),
        Just(DataType::Str),
    ]
}

fn schema_strategy() -> impl Strategy<Value = Schema> {
    prop::collection::vec(("[a-z][a-z0-9]{0,6}", datatype_strategy()), 1..6).prop_map(|attrs| {
        Schema::new(
            attrs
                .into_iter()
                .map(|(name, ty)| AttributeDef::new(name, ty))
                .collect(),
        )
    })
}

fn subanswer_strategy() -> impl Strategy<Value = SubAnswer> {
    (
        schema_strategy(),
        prop::collection::vec(prop::collection::vec(value_strategy(), 0..6), 0..12),
        (
            0.0..1.0e6f64,
            0.0..1.0e5f64,
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
        ),
    )
        .prop_map(
            |(schema, rows, (elapsed, first, pages, hits, objs))| SubAnswer {
                schema,
                tuples: rows.into_iter().map(Tuple::new).collect(),
                stats: ExecStats {
                    elapsed_ms: elapsed,
                    time_first_ms: first,
                    pages_read: pages as u64,
                    buffer_hits: hits as u64,
                    objects_scanned: objs as u64,
                },
            },
        )
}

fn plan_strategy() -> impl Strategy<Value = LogicalPlan> {
    let leaf = (r"[a-z]{1,6}", r"[A-Z][a-z]{0,6}", schema_strategy()).prop_map(
        |(wrapper, coll, schema)| {
            PlanBuilder::scan(QualifiedName::new(wrapper, coll), schema).build()
        },
    );
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), r"[a-z]{1,6}", value_strategy()).prop_map(|(p, attr, v)| {
                PlanBuilder::from_plan(p)
                    .select(attr, CompareOp::Le, v)
                    .build()
            }),
            (inner.clone(), r"[a-z]{1,6}").prop_map(|(p, attr)| {
                PlanBuilder::from_plan(p).project_attrs(&[&attr]).build()
            }),
            inner
                .clone()
                .prop_map(|p| PlanBuilder::from_plan(p).dedup().build()),
            (inner.clone(), inner.clone(), r"[a-z]{1,4}", r"[a-z]{1,4}").prop_map(
                |(l, r, la, ra)| {
                    PlanBuilder::from_plan(l)
                        .join(PlanBuilder::from_plan(r), la, ra)
                        .build()
                }
            ),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| {
                PlanBuilder::from_plan(l)
                    .union(PlanBuilder::from_plan(r))
                    .build()
            }),
            (inner, r"[a-z]{1,6}").prop_map(|(p, w)| PlanBuilder::from_plan(p).submit(w).build()),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn values_round_trip(v in value_strategy()) {
        prop_assert_eq!(&v, &Value::from_wire_bytes(&v.to_wire_bytes()).unwrap());
    }

    #[test]
    fn schemas_round_trip(s in schema_strategy()) {
        prop_assert_eq!(&s, &Schema::from_wire_bytes(&s.to_wire_bytes()).unwrap());
    }

    #[test]
    fn subanswers_round_trip(a in subanswer_strategy()) {
        prop_assert_eq!(&a, &SubAnswer::from_wire_bytes(&a.to_wire_bytes()).unwrap());
    }

    #[test]
    fn plans_round_trip(p in plan_strategy()) {
        let mut w = WireWriter::new();
        encode_plan(&p, &mut w);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let back = decode_plan(&mut r).unwrap();
        r.expect_end().unwrap();
        prop_assert_eq!(p, back);
    }

    #[test]
    fn requests_round_trip(p in plan_strategy()) {
        let req = Request::Submit(p);
        prop_assert_eq!(&req, &Request::from_wire_bytes(&req.to_wire_bytes()).unwrap());
    }

    #[test]
    fn responses_round_trip(a in subanswer_strategy()) {
        let resp = Response::Answer(a);
        prop_assert_eq!(&resp, &Response::from_wire_bytes(&resp.to_wire_bytes()).unwrap());
    }

    /// Arbitrary bytes never panic any top-level decoder.
    #[test]
    fn byte_soup_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Request::from_wire_bytes(&bytes);
        let _ = Response::from_wire_bytes(&bytes);
        let _ = SubAnswer::from_wire_bytes(&bytes);
        let mut r = WireReader::new(&bytes);
        let _ = decode_plan(&mut r);
    }
}

//! Hedged-submit races over the channel transport: straggler hedges,
//! failover after failures, and the interaction with circuit breakers —
//! in particular that a hedge arriving at a half-open endpoint *is* the
//! breaker's single probe, not an extra one.

use std::time::Duration;

use disco_algebra::{LogicalPlan, PlanBuilder};
use disco_common::{AttributeDef, DataType, QualifiedName, Schema, Value};
use disco_sources::{CollectionBuilder, CostProfile, PagedStore};
use disco_transport::{
    BreakerPolicy, BreakerState, ChannelTransport, FaultKind, FaultPlan, HedgeTarget, NetProfile,
    RetryPolicy, SubmitOptions, TransportClient,
};
use disco_wrapper::SourceWrapper;

fn replica_store(wrapper: &str) -> PagedStore {
    let schema = Schema::new(vec![
        AttributeDef::new("id", DataType::Long),
        AttributeDef::new("v", DataType::Long),
    ]);
    let mut s = PagedStore::new(wrapper, CostProfile::relational());
    s.add_collection(
        "R",
        CollectionBuilder::new(schema)
            .rows((0..50i64).map(|i| vec![Value::Long(i), Value::Long(i % 5)])),
    )
    .unwrap();
    s
}

/// Two replicas of `R` behind links that really sleep (~10 ms per
/// simulated round trip), `ra` under the given fault plan.
fn replicated_transport(ra_faults: FaultPlan) -> ChannelTransport {
    let mut t = ChannelTransport::new();
    t.add_wrapper_with(
        Box::new(SourceWrapper::new("ra", replica_store("ra"))),
        NetProfile::lan().with_sleep_scale(0.1),
        ra_faults,
    );
    t.add_wrapper_with(
        Box::new(SourceWrapper::new("rb", replica_store("rb"))),
        NetProfile::lan().with_sleep_scale(0.1),
        FaultPlan::none(),
    );
    t
}

fn scan(wrapper: &str) -> LogicalPlan {
    let schema = Schema::new(vec![
        AttributeDef::new("id", DataType::Long),
        AttributeDef::new("v", DataType::Long),
    ]);
    PlanBuilder::scan(QualifiedName::new(wrapper, "R"), schema).build()
}

fn targets() -> Vec<HedgeTarget> {
    vec![
        HedgeTarget {
            endpoint: "ra".into(),
            plan: scan("ra"),
            opts: SubmitOptions::default(),
        },
        HedgeTarget {
            endpoint: "rb".into(),
            plan: scan("ra").retargeted("rb"),
            opts: SubmitOptions::default(),
        },
    ]
}

fn one_shot() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 1,
        deadline_ms: 2_000,
        backoff_base_ms: 1,
        backoff_factor: 2.0,
    }
}

#[test]
fn healthy_primary_wins_without_hedging() {
    let t = replicated_transport(FaultPlan::none());
    let client = TransportClient::new(Box::new(t)).with_retry(one_shot());
    // Generous straggler wait: the primary answers well inside it.
    let h = client
        .submit_batch_hedged(&targets(), Some(Duration::from_millis(2_000)), 2)
        .unwrap();
    assert_eq!(h.winner, 0);
    assert_eq!(h.hedges, 0);
    assert_eq!(h.outcome.answer.batch.len(), 50);
}

#[test]
fn straggling_primary_is_hedged_around() {
    // ~500 simulated ms of extra delay on `ra` ≈ 50 ms of real sleep;
    // `rb` answers in ~10 ms. Hedge after 20 ms: `rb` wins the race.
    let t = replicated_transport(FaultPlan::always(FaultKind::Delay(500.0)));
    let client = TransportClient::new(Box::new(t)).with_retry(one_shot());
    let h = client
        .submit_batch_hedged(&targets(), Some(Duration::from_millis(20)), 2)
        .unwrap();
    assert_eq!(h.winner, 1, "the hedge to rb must win");
    assert_eq!(h.hedges, 1);
    assert_eq!(h.outcome.answer.batch.len(), 50);
}

#[test]
fn exhausted_hedge_allowance_waits_for_the_primary() {
    let t = replicated_transport(FaultPlan::always(FaultKind::Delay(500.0)));
    let client = TransportClient::new(Box::new(t)).with_retry(one_shot());
    // Allowance 0: no straggler hedge may launch; the slow primary still
    // answers eventually.
    let h = client
        .submit_batch_hedged(&targets(), Some(Duration::from_millis(20)), 0)
        .unwrap();
    assert_eq!(h.winner, 0);
    assert_eq!(h.hedges, 0);
}

#[test]
fn failed_primary_fails_over_without_spending_the_allowance() {
    let t = replicated_transport(FaultPlan::always(FaultKind::Unavailable));
    let client = TransportClient::new(Box::new(t)).with_retry(one_shot());
    // No straggler wait and zero allowance: failover after a *failure*
    // is always permitted.
    let h = client.submit_batch_hedged(&targets(), None, 0).unwrap();
    assert_eq!(h.winner, 1);
    assert_eq!(h.hedges, 0);
    assert_eq!(h.outcome.answer.batch.len(), 50);
}

#[test]
fn all_replicas_down_is_one_error() {
    let mut t = ChannelTransport::new();
    for name in ["ra", "rb"] {
        t.add_wrapper_with(
            Box::new(SourceWrapper::new(name, replica_store(name))),
            NetProfile::lan().with_sleep_scale(0.1),
            FaultPlan::always(FaultKind::Unavailable),
        );
    }
    let client = TransportClient::new(Box::new(t)).with_retry(one_shot());
    let err = client.submit_batch_hedged(&targets(), None, 2).unwrap_err();
    assert!(err.is_transient());
}

#[test]
fn hedge_to_half_open_endpoint_is_the_single_probe() {
    // `ra` fails its first three submits, then recovers; `rb` is
    // permanently slow (~500 simulated ms ≈ 50 ms of real sleep).
    // Breaker policy: open at 3 failures, half-open after 2 rejections.
    let mut t = ChannelTransport::new();
    t.add_wrapper_with(
        Box::new(SourceWrapper::new("ra", replica_store("ra"))),
        NetProfile::lan().with_sleep_scale(0.1),
        FaultPlan::first_n(FaultKind::Unavailable, 3),
    );
    t.add_wrapper_with(
        Box::new(SourceWrapper::new("rb", replica_store("rb"))),
        NetProfile::lan().with_sleep_scale(0.1),
        FaultPlan::always(FaultKind::Delay(500.0)),
    );
    let client = TransportClient::new(Box::new(t))
        .with_retry(one_shot())
        .with_breaker(BreakerPolicy {
            failure_threshold: 3,
            cooldown_calls: 2,
        });

    // Trip the breaker on `ra`.
    for _ in 0..3 {
        assert!(client.submit_batch("ra", &scan("ra")).is_err());
    }
    assert_eq!(client.breaker_state("ra"), Some(BreakerState::Open));
    // Burn the cooldown with fast-rejected calls.
    for _ in 0..2 {
        assert!(client.submit_batch("ra", &scan("ra")).is_err());
        assert_eq!(client.breaker_state("ra"), Some(BreakerState::Open));
    }

    // Hedged submit with a *straggling* primary `rb` and replica `ra`:
    // the hedge reaches `ra` exactly once, as the breaker's half-open
    // probe. `ra` has recovered, so the probe succeeds and the breaker
    // closes — the hedge IS the probe, not a bypass of it.
    let t2 = vec![
        HedgeTarget {
            endpoint: "rb".into(),
            plan: scan("ra").retargeted("rb"),
            opts: SubmitOptions::default(),
        },
        HedgeTarget {
            endpoint: "ra".into(),
            plan: scan("ra"),
            opts: SubmitOptions::default(),
        },
    ];
    let h = client
        .submit_batch_hedged(&t2, Some(Duration::from_millis(5)), 2)
        .unwrap();
    assert_eq!(h.winner, 1, "the probe submit to ra must win");
    assert_eq!(h.outcome.answer.batch.len(), 50);
    assert_eq!(client.breaker_state("ra"), Some(BreakerState::Closed));
}

//! Deterministic randomized round-trip tests for the transport wire
//! format: hundreds of seeded random plans, subanswers, and
//! request/response envelopes must survive encode → decode byte-for-byte,
//! and arbitrary corruption of valid streams must never panic.
//!
//! These always run (the generator is the workspace's seeded PRNG); the
//! proptest variants in `prop_wire.rs` add shrinking when the `proptest`
//! feature and dev-dependency are available.

use disco_algebra::{AggFunc, CompareOp, LogicalPlan, PlanBuilder};
use disco_common::rng::StdRng;
use disco_common::wire::{WireDecode, WireEncode, WireReader, WireWriter};
use disco_common::{AttributeDef, DataType, QualifiedName, Schema, Tuple, Value};
use disco_sources::{ExecStats, SubAnswer};
use disco_transport::wire::{decode_plan, encode_plan};
use disco_transport::{Request, Response};

const CASES: usize = 200;

fn rand_type(rng: &mut StdRng) -> DataType {
    match rng.gen_range(0..4usize) {
        0 => DataType::Bool,
        1 => DataType::Long,
        2 => DataType::Double,
        _ => DataType::Str,
    }
}

fn rand_string(rng: &mut StdRng) -> String {
    let len = rng.gen_range(0..12usize);
    (0..len)
        .map(|_| char::from(b'a' + (rng.gen_range(0..26usize) as u8)))
        .collect()
}

fn rand_value(rng: &mut StdRng, ty: DataType) -> Value {
    if rng.gen_range(0..10usize) == 0 {
        return Value::Null;
    }
    match ty {
        DataType::Bool => Value::Bool(rng.gen_range(0..2usize) == 1),
        DataType::Long => Value::Long(rng.gen_range(-1_000_000i64..1_000_000i64)),
        DataType::Double => Value::Double(rng.gen_range(-1.0e6..1.0e6)),
        DataType::Str => Value::Str(rand_string(rng)),
    }
}

fn rand_schema(rng: &mut StdRng) -> Schema {
    let arity = rng.gen_range(1..=5usize);
    Schema::new(
        (0..arity)
            .map(|i| AttributeDef::new(format!("a{i}"), rand_type(rng)))
            .collect(),
    )
}

/// A structurally random (not necessarily semantically meaningful)
/// logical plan — the wire format only promises structural fidelity.
fn rand_plan(rng: &mut StdRng, depth: usize) -> LogicalPlan {
    let leaf = |rng: &mut StdRng| {
        PlanBuilder::scan(
            QualifiedName::new(rand_string(rng), rand_string(rng)),
            rand_schema(rng),
        )
    };
    if depth == 0 {
        return leaf(rng).build();
    }
    let b = match rng.gen_range(0..8usize) {
        0 => leaf(rng),
        1 => {
            let op = match rng.gen_range(0..6usize) {
                0 => CompareOp::Eq,
                1 => CompareOp::Ne,
                2 => CompareOp::Lt,
                3 => CompareOp::Le,
                4 => CompareOp::Gt,
                _ => CompareOp::Ge,
            };
            let ty = rand_type(rng);
            let value = rand_value(rng, ty);
            PlanBuilder::from_plan(rand_plan(rng, depth - 1)).select(rand_string(rng), op, value)
        }
        2 => PlanBuilder::from_plan(rand_plan(rng, depth - 1))
            .project_attrs(&[&rand_string(rng), &rand_string(rng)]),
        3 => PlanBuilder::from_plan(rand_plan(rng, depth - 1)).sort_asc(&[&rand_string(rng)]),
        4 => PlanBuilder::from_plan(rand_plan(rng, depth - 1)).join(
            PlanBuilder::from_plan(rand_plan(rng, depth - 1)),
            rand_string(rng),
            rand_string(rng),
        ),
        5 => PlanBuilder::from_plan(rand_plan(rng, depth - 1))
            .union(PlanBuilder::from_plan(rand_plan(rng, depth - 1))),
        6 => PlanBuilder::from_plan(rand_plan(rng, depth - 1)).dedup(),
        _ => PlanBuilder::from_plan(rand_plan(rng, depth - 1)).aggregate(
            &[&rand_string(rng)],
            vec![("n", AggFunc::Count, None), ("m", AggFunc::Max, Some("a0"))],
        ),
    };
    if rng.gen_range(0..3usize) == 0 {
        b.submit(rand_string(rng)).build()
    } else {
        b.build()
    }
}

fn rand_subanswer(rng: &mut StdRng) -> SubAnswer {
    let schema = rand_schema(rng);
    let types: Vec<DataType> = schema.attributes().iter().map(|a| a.ty).collect();
    let tuples: Vec<Tuple> = (0..rng.gen_range(0..20usize))
        .map(|_| Tuple::new(types.iter().map(|t| rand_value(rng, *t)).collect()))
        .collect();
    SubAnswer {
        schema,
        tuples,
        stats: ExecStats {
            elapsed_ms: rng.gen_range(0.0..1.0e4),
            time_first_ms: rng.gen_range(0.0..1.0e3),
            pages_read: rng.gen_range(0u64..10_000),
            buffer_hits: rng.gen_range(0u64..10_000),
            objects_scanned: rng.gen_range(0u64..100_000),
        },
    }
}

#[test]
fn random_plans_round_trip() {
    let mut rng = StdRng::seed_from_u64(0x7AB5_0001);
    for _ in 0..CASES {
        let plan = rand_plan(&mut rng, 3);
        let mut w = WireWriter::new();
        encode_plan(&plan, &mut w);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let back = decode_plan(&mut r).expect("valid plan bytes must decode");
        r.expect_end().unwrap();
        assert_eq!(plan, back);
    }
}

#[test]
fn random_subanswers_round_trip() {
    let mut rng = StdRng::seed_from_u64(0x7AB5_0002);
    for _ in 0..CASES {
        let ans = rand_subanswer(&mut rng);
        let bytes = ans.to_wire_bytes();
        let back = SubAnswer::from_wire_bytes(&bytes).expect("valid subanswer must decode");
        assert_eq!(ans, back);
    }
}

#[test]
fn random_requests_and_responses_round_trip() {
    let mut rng = StdRng::seed_from_u64(0x7AB5_0003);
    for i in 0..CASES {
        let req = if i % 4 == 0 {
            Request::Register
        } else {
            Request::Submit(rand_plan(&mut rng, 2))
        };
        let bytes = req.to_wire_bytes();
        assert_eq!(req, Request::from_wire_bytes(&bytes).unwrap());

        let resp = match i % 3 {
            0 => Response::Answer(rand_subanswer(&mut rng)),
            1 => Response::Error {
                kind: rand_string(&mut rng),
                message: rand_string(&mut rng),
            },
            _ => Response::Answer(rand_subanswer(&mut rng)),
        };
        let bytes = resp.to_wire_bytes();
        assert_eq!(resp, Response::from_wire_bytes(&bytes).unwrap());
    }
}

#[test]
fn random_registrations_round_trip() {
    use disco_sources::{CollectionBuilder, CostProfile, PagedStore};
    use disco_transport::wire::{decode_registration, encode_registration};
    use disco_wrapper::{SourceWrapper, Wrapper};

    let mut rng = StdRng::seed_from_u64(0x7AB5_0005);
    for case in 0..20 {
        let profile = if case % 2 == 0 {
            CostProfile::relational()
        } else {
            CostProfile::object_store()
        };
        let mut store = PagedStore::new(format!("s{case}"), profile);
        for c in 0..rng.gen_range(1..=3usize) {
            let schema = rand_schema(&mut rng);
            let types: Vec<DataType> = schema.attributes().iter().map(|a| a.ty).collect();
            let rows: Vec<Vec<Value>> = (0..rng.gen_range(1..40usize))
                .map(|_| types.iter().map(|t| rand_value(&mut rng, *t)).collect())
                .collect();
            store
                .add_collection(format!("C{c}"), CollectionBuilder::new(schema).rows(rows))
                .unwrap();
        }
        let reg = SourceWrapper::new(format!("s{case}"), store)
            .registration()
            .unwrap();
        let mut w = WireWriter::new();
        encode_registration(&reg, &mut w);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let back = decode_registration(&mut r).expect("valid registration must decode");
        r.expect_end().unwrap();
        assert_eq!(reg, back);
    }
}

/// Corruption never panics: every truncation of a valid stream and a
/// large sample of single-byte mutations decode to `Ok` or `Err`, never
/// a crash or a hostile allocation.
#[test]
fn corrupted_streams_never_panic() {
    let mut rng = StdRng::seed_from_u64(0x7AB5_0004);
    for _ in 0..40 {
        let req = Request::Submit(rand_plan(&mut rng, 2));
        let bytes = req.to_wire_bytes();
        for cut in 0..bytes.len() {
            let _ = Request::from_wire_bytes(&bytes[..cut]);
        }
        for _ in 0..64 {
            let mut mutated = bytes.clone();
            let pos = rng.gen_range(0..mutated.len());
            mutated[pos] ^= (rng.gen_range(1..256usize)) as u8;
            let _ = Request::from_wire_bytes(&mutated);
        }

        let resp = Response::Answer(rand_subanswer(&mut rng));
        let bytes = resp.to_wire_bytes();
        for cut in 0..bytes.len() {
            let _ = Response::from_wire_bytes(&bytes[..cut]);
        }
        for _ in 0..64 {
            let mut mutated = bytes.clone();
            let pos = rng.gen_range(0..mutated.len());
            mutated[pos] ^= (rng.gen_range(1..256usize)) as u8;
            let _ = Response::from_wire_bytes(&mutated);
        }
    }
}

//! End-to-end mediator tests: registration → SQL → decomposition →
//! optimization → execution → combined answers, across heterogeneous
//! simulated sources.

use disco_catalog::Capabilities;
use disco_common::{AttributeDef, DataType, Schema, Value};
use disco_mediator::{JoinEnumeration, Mediator, MediatorOptions};
use disco_sources::{CollectionBuilder, CostProfile, FlatFile, PagedStore};
use disco_wrapper::SourceWrapper;

/// hr: object store with Employee (indexed id) and Dept.
fn hr_store() -> PagedStore {
    let emp_schema = Schema::new(vec![
        AttributeDef::new("id", DataType::Long),
        AttributeDef::new("name", DataType::Str),
        AttributeDef::new("salary", DataType::Long),
        AttributeDef::new("dept_id", DataType::Long),
    ]);
    let dept_schema = Schema::new(vec![
        AttributeDef::new("dept_id", DataType::Long),
        AttributeDef::new("dept_name", DataType::Str),
    ]);
    let mut s = PagedStore::new("hr", CostProfile::object_store());
    s.add_collection(
        "Employee",
        CollectionBuilder::new(emp_schema)
            .rows((0..500i64).map(|i| {
                vec![
                    Value::Long(i),
                    Value::Str(format!("emp{i:03}")),
                    Value::Long(1_000 + (i * 37) % 2_000),
                    Value::Long(i % 10),
                ]
            }))
            .object_size(64)
            .index("id"),
    )
    .unwrap();
    s.add_collection(
        "Dept",
        CollectionBuilder::new(dept_schema)
            .rows((0..10i64).map(|i| vec![Value::Long(i), Value::Str(format!("dept{i}"))]))
            .object_size(32)
            .index("dept_id"),
    )
    .unwrap();
    s
}

/// files: a scan-only flat file of audit events.
fn audit_file() -> FlatFile {
    FlatFile::new(
        "files",
        "Audit",
        Schema::new(vec![
            AttributeDef::new("emp_id", DataType::Long),
            AttributeDef::new("action", DataType::Str),
        ]),
        (0..200i64).map(|i| vec![Value::Long(i % 50), Value::Str(format!("a{}", i % 4))]),
    )
}

fn mediator() -> Mediator {
    let mut m = Mediator::new();
    m.register(Box::new(SourceWrapper::new("hr", hr_store())))
        .unwrap();
    m.register(Box::new(
        SourceWrapper::new("files", audit_file()).with_capabilities(Capabilities::scan_only()),
    ))
    .unwrap();
    m
}

#[test]
fn registration_populates_catalog_and_registry() {
    let m = mediator();
    assert_eq!(m.catalog().collection_count(), 3);
    assert_eq!(m.wrapper_names(), vec!["files", "hr"]);
    let stats = m
        .catalog()
        .stats(&disco_common::QualifiedName::new("hr", "Employee"))
        .unwrap();
    assert_eq!(stats.extent.count_object, 500);
    assert!(stats.attribute("id").indexed);
}

#[test]
fn single_table_selection() {
    let mut m = mediator();
    let r = m
        .query("SELECT name, salary FROM Employee WHERE id < 10")
        .unwrap();
    assert_eq!(r.tuples.len(), 10);
    assert_eq!(r.schema.arity(), 2);
    assert_eq!(r.schema.index_of("name"), Some(0));
    assert!(r.measured_ms > 0.0);
    assert!(r.estimated.total_time > 0.0);
    // One subquery to hr, selection pushed down (only 10 tuples shipped).
    assert_eq!(r.trace.submits.len(), 1);
    assert_eq!(r.trace.submits[0].tuples, 10);
}

#[test]
fn join_across_collections() {
    let mut m = mediator();
    let r = m
        .query(
            "SELECT e.name, d.dept_name FROM Employee e, Dept d \
             WHERE e.dept_id = d.dept_id AND e.id < 20 ORDER BY e.name",
        )
        .unwrap();
    assert_eq!(r.tuples.len(), 20);
    // Sorted by name.
    let names: Vec<String> = r
        .tuples
        .iter()
        .map(|t| t.get(0).unwrap().as_str().unwrap().to_owned())
        .collect();
    let mut sorted = names.clone();
    sorted.sort();
    assert_eq!(names, sorted);
    // Every employee matched its department.
    for t in &r.tuples {
        assert!(t.get(1).unwrap().as_str().unwrap().starts_with("dept"));
    }
}

#[test]
fn scan_only_wrapper_gets_mediator_compensation() {
    let mut m = mediator();
    let r = m
        .query("SELECT action FROM Audit WHERE emp_id = 7")
        .unwrap();
    assert_eq!(r.tuples.len(), 4);
    // The flat file cannot select: the full file is shipped and the
    // mediator filters.
    assert_eq!(r.trace.submits.len(), 1);
    assert_eq!(r.trace.submits[0].tuples, 200);
}

#[test]
fn cross_wrapper_join() {
    let mut m = mediator();
    let r = m
        .query(
            "SELECT e.name, a.action FROM Employee e, Audit a \
             WHERE e.id = a.emp_id AND e.id < 5",
        )
        .unwrap();
    // ids 0..5, each with 4 audit rows.
    assert_eq!(r.tuples.len(), 20);
    assert_eq!(r.trace.submits.len(), 2);
    let wrappers: Vec<&str> = r.trace.submits.iter().map(|s| s.wrapper.as_str()).collect();
    assert!(wrappers.contains(&"hr") && wrappers.contains(&"files"));
}

#[test]
fn aggregates_group_by() {
    let mut m = mediator();
    let r = m
        .query(
            "SELECT d.dept_name, COUNT(*) AS n, AVG(e.salary) AS pay \
             FROM Employee e, Dept d WHERE e.dept_id = d.dept_id \
             GROUP BY d.dept_name ORDER BY n DESC",
        )
        .unwrap();
    assert_eq!(r.tuples.len(), 10);
    // 500 employees over 10 departments.
    let total: i64 = r
        .tuples
        .iter()
        .map(|t| t.get(1).unwrap().as_i64().unwrap())
        .sum();
    assert_eq!(total, 500);
    for t in &r.tuples {
        assert_eq!(t.get(1).unwrap().as_i64(), Some(50));
        let pay = t.get(2).unwrap().as_f64().unwrap();
        assert!(pay > 1_000.0 && pay < 3_000.0);
    }
}

#[test]
fn distinct_and_expressions() {
    let mut m = mediator();
    let r = m.query("SELECT DISTINCT dept_id FROM Employee").unwrap();
    assert_eq!(r.tuples.len(), 10);
    let r = m
        .query("SELECT salary * 2 AS pay2 FROM Employee WHERE id = 3")
        .unwrap();
    assert_eq!(r.tuples.len(), 1);
    let pay2 = r.tuples[0].get(0).unwrap().as_i64().unwrap();
    assert_eq!(pay2, 2 * (1_000 + 111));
}

#[test]
fn explain_renders_plan() {
    let m = mediator();
    let text = m
        .explain("SELECT e.name FROM Employee e WHERE e.id < 10")
        .unwrap();
    assert!(text.contains("submit -> hr"), "{text}");
    assert!(text.contains("estimated:"), "{text}");
}

#[test]
fn pruning_reduces_estimation_work() {
    // Pin the exhaustive permutation enumerator so pruning is the only
    // difference (the default DP path has its own caches and counters).
    let sql = "SELECT e.name FROM Employee e, Dept d, Audit a \
               WHERE e.dept_id = d.dept_id AND e.id = a.emp_id AND e.id < 50";
    let m3 = mediator().with_options(MediatorOptions {
        pruning: false,
        enumeration: JoinEnumeration::Permutation,
        ..Default::default()
    });
    let unpruned = m3.plan(sql).unwrap();
    let m_pruned = mediator().with_options(MediatorOptions {
        pruning: true,
        enumeration: JoinEnumeration::Permutation,
        ..Default::default()
    });
    let pruned = m_pruned.plan(sql).unwrap();
    // Same chosen plan quality…
    assert!((pruned.estimated.total_time - unpruned.estimated.total_time).abs() < 1e-6);
    // …with plans abandoned and fewer estimator node visits.
    assert!(pruned.plans_pruned > 0, "{}", pruned.plans_pruned);
    assert!(pruned.estimator_nodes <= unpruned.estimator_nodes);
}

#[test]
fn default_dp_matches_permutation_oracle_end_to_end() {
    let sql = "SELECT e.name FROM Employee e, Dept d, Audit a \
               WHERE e.dept_id = d.dept_id AND e.id = a.emp_id AND e.id < 50";
    // Three tables sit under the small-query threshold, so the default
    // configuration takes the uncached fast path…
    let fast = mediator().plan(sql).unwrap();
    assert!(fast.fast_path);
    assert_eq!(fast.memo_hits, 0);
    // …while threshold 0 exercises the DP proper.
    let dp = mediator()
        .with_options(MediatorOptions {
            small_query_threshold: 0,
            ..Default::default()
        })
        .plan(sql)
        .unwrap();
    assert!(!dp.fast_path);
    let oracle = mediator()
        .with_options(MediatorOptions {
            pruning: false,
            enumeration: JoinEnumeration::Permutation,
            ..Default::default()
        })
        .plan(sql)
        .unwrap();
    assert_eq!(fast.estimated.total_time, oracle.estimated.total_time);
    assert_eq!(dp.estimated.total_time, oracle.estimated.total_time);
    // The memoized DP prices fewer estimator nodes than the exhaustive
    // permutation sweep.
    assert!(dp.estimator_nodes <= oracle.estimator_nodes);
    assert!(dp.memo_hits > 0);
}

#[test]
fn history_recording_improves_reestimates() {
    let mut m = mediator().with_options(MediatorOptions {
        record_history: true,
        ..Default::default()
    });
    let sql = "SELECT name FROM Employee WHERE id < 10";
    let first = m.query(sql).unwrap();
    assert!(m.history_recorded() > 0);
    // Re-planning the identical query now uses the recorded real cost for
    // the wrapper subquery.
    let second = m.plan(sql).unwrap();
    let wrapper_measured = first.trace.submits[0].stats.elapsed_ms;
    // The new estimate's submit subtree is the measured value (plus
    // mediator-side terms) — it must be far closer to the measurement
    // than the pre-history estimate was, and match it within the
    // communication/local margin.
    let diff_after = (second.estimated.total_time - first.measured_ms).abs();
    assert!(
        diff_after < 0.5 * first.measured_ms,
        "estimate {} vs measured {} (wrapper {})",
        second.estimated.total_time,
        first.measured_ms,
        wrapper_measured
    );
}

#[test]
fn errors_surface_cleanly() {
    let mut m = mediator();
    assert_eq!(
        m.query("SELECT * FROM Ghost").unwrap_err().kind(),
        "catalog"
    );
    assert_eq!(m.query("SELECT FROM").unwrap_err().kind(), "parse");
    assert_eq!(
        m.query("SELECT e.name, a.action FROM Employee e, Audit a")
            .unwrap_err()
            .kind(),
        "unsupported" // cross product
    );
}

#[test]
fn unregister_then_requery_fails() {
    let mut m = mediator();
    m.unregister("files").unwrap();
    assert!(m.query("SELECT * FROM Audit").is_err());
    assert_eq!(m.catalog().collection_count(), 2);
}

#[test]
fn parallel_submits_take_the_slowest_subquery() {
    let sql = "SELECT e.name, a.action FROM Employee e, Audit a \
               WHERE e.id = a.emp_id AND e.id < 5";
    let mut seq = mediator();
    let mut par = mediator().with_options(MediatorOptions {
        parallel_submits: true,
        ..Default::default()
    });
    let s = seq.query(sql).unwrap();
    let p = par.query(sql).unwrap();
    // Same answer either way.
    assert_eq!(s.tuples.len(), p.tuples.len());
    // Parallel response time is bounded by the slowest submit plus
    // mediator work, and is strictly better with two wrappers involved.
    assert!(p.measured_ms < s.measured_ms);
    let slowest = s
        .trace
        .submits
        .iter()
        .map(|t| t.stats.elapsed_ms + t.comm_ms)
        .fold(0.0f64, f64::max);
    assert!((p.measured_ms - (slowest + p.trace.mediator_ms)).abs() < 1e-6);
}

#[test]
fn explain_costs_shows_scope_attribution() {
    let m = mediator();
    let text = m
        .explain_costs("SELECT name FROM Employee WHERE id < 10")
        .unwrap();
    // Mediator-side operators price at local scope, wrapper subplans at
    // default scope (no wrapper rules registered here).
    assert!(text.contains("local scope"), "{text}");
    assert!(text.contains("default scope"), "{text}");
    assert!(text.contains("TotalTime"), "{text}");
}

/// A wrapper that fails during execution — failure injection for the
/// query phase.
struct FailingWrapper {
    inner: SourceWrapper<PagedStore>,
}

impl disco_wrapper::Wrapper for FailingWrapper {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn registration(&self) -> disco_common::Result<disco_wrapper::Registration> {
        self.inner.registration()
    }
    fn execute(
        &self,
        _plan: &disco_algebra::LogicalPlan,
    ) -> disco_common::Result<disco_sources::SubAnswer> {
        Err(disco_common::DiscoError::Source(
            "simulated source outage".into(),
        ))
    }
}

#[test]
fn wrapper_execution_failure_surfaces_cleanly() {
    let mut m = Mediator::new();
    m.register(Box::new(FailingWrapper {
        inner: SourceWrapper::new("hr", hr_store()),
    }))
    .unwrap();
    // Planning works (registration succeeded)…
    assert!(m.plan("SELECT name FROM Employee WHERE id < 3").is_ok());
    // …execution reports the source failure without panicking.
    let err = m
        .query("SELECT name FROM Employee WHERE id < 3")
        .unwrap_err();
    assert_eq!(err.kind(), "source");
    assert!(err.message().contains("outage"));
}

#[test]
fn mediator_is_send() {
    fn assert_send<T: Send>(_: &T) {}
    let m = mediator();
    assert_send(&m);
    // And usable from another thread.
    let handle = std::thread::spawn(move || {
        let mut m = m;
        m.query("SELECT name FROM Employee WHERE id < 2")
            .unwrap()
            .tuples
            .len()
    });
    assert_eq!(handle.join().unwrap(), 2);
}

#[test]
fn union_all_concatenates() {
    let mut m = mediator();
    let r = m
        .query(
            "SELECT name FROM Employee WHERE id < 3 \
             UNION ALL SELECT name FROM Employee WHERE id < 5",
        )
        .unwrap();
    assert_eq!(r.tuples.len(), 8);
}

#[test]
fn union_deduplicates() {
    let mut m = mediator();
    let r = m
        .query(
            "SELECT name FROM Employee WHERE id < 3 \
             UNION SELECT name FROM Employee WHERE id < 5",
        )
        .unwrap();
    assert_eq!(r.tuples.len(), 5);
}

#[test]
fn union_across_wrappers_with_order_by() {
    let mut m = mediator();
    // Employee names and audit actions are disjoint string sets.
    let r = m
        .query(
            "SELECT name FROM Employee WHERE id < 2 \
             UNION SELECT a.action FROM Audit a WHERE a.emp_id = 1 \
             ORDER BY name DESC",
        )
        .unwrap();
    // 2 employee names + distinct actions of emp 1.
    assert!(r.tuples.len() >= 3);
    let names: Vec<&str> = r
        .tuples
        .iter()
        .map(|t| t.get(0).unwrap().as_str().unwrap())
        .collect();
    let mut sorted = names.clone();
    sorted.sort();
    sorted.reverse();
    assert_eq!(names, sorted);
    // Both wrappers contacted.
    assert_eq!(r.trace.submits.len(), 2);
}

#[test]
fn union_arity_mismatch_rejected() {
    let mut m = mediator();
    let e = m
        .query("SELECT name FROM Employee UNION SELECT name, salary FROM Employee")
        .unwrap_err();
    assert_eq!(e.kind(), "plan");
}

#[test]
fn union_order_by_in_middle_rejected() {
    let mut m = mediator();
    let e = m
        .query(
            "SELECT name FROM Employee ORDER BY name \
             UNION SELECT name FROM Employee",
        )
        .unwrap_err();
    assert_eq!(e.kind(), "parse");
}

#[test]
fn streaming_mediator_matches_two_phase_answers() {
    let queries = [
        "SELECT name, salary FROM Employee WHERE id < 10",
        "SELECT e.name, d.dept_name FROM Employee e, Dept d \
         WHERE e.dept_id = d.dept_id AND e.id < 20 ORDER BY e.name",
        "SELECT d.dept_name, COUNT(*) AS n FROM Employee e, Dept d \
         WHERE e.dept_id = d.dept_id GROUP BY d.dept_name ORDER BY n DESC",
        "SELECT name FROM Employee WHERE id < 3 \
         UNION SELECT name FROM Employee WHERE id < 5",
        "SELECT e.name, a.action FROM Employee e, Audit a \
         WHERE e.id = a.emp_id AND e.id < 5",
    ];
    for sql in queries {
        let mut two_phase = mediator();
        let mut streaming = mediator().with_options(MediatorOptions {
            streaming: true,
            streaming_chunk_rows: 7,
            ..Default::default()
        });
        let a = two_phase.query(sql).unwrap();
        let b = streaming.query(sql).unwrap();
        assert_eq!(a.schema, b.schema, "{sql}");
        assert_eq!(a.tuples, b.tuples, "{sql}");
        assert_eq!(a.trace.submits.len(), b.trace.submits.len(), "{sql}");
    }
}

#[test]
fn limit_caps_answers_in_both_engines() {
    let sql = "SELECT name FROM Employee WHERE id < 50 ORDER BY name LIMIT 5";
    let plan = mediator().plan(sql).unwrap();
    assert_eq!(plan.limit, Some(5));
    let mut two_phase = mediator();
    let mut streaming = mediator().with_options(MediatorOptions {
        streaming: true,
        streaming_chunk_rows: 8,
        ..Default::default()
    });
    let a = two_phase.query(sql).unwrap();
    let b = streaming.query(sql).unwrap();
    assert_eq!(a.tuples.len(), 5);
    assert_eq!(a.tuples, b.tuples);
    // The streamed run records when the first rows surfaced.
    assert!(b.trace.first_row_wall_ms.is_some());
}

/// A wrapper whose registration payload changes between calls (fresh
/// statistics each time) — exercises the §2.1 re-registration interface.
struct EvolvingWrapper {
    inner: SourceWrapper<PagedStore>,
    calls: std::sync::atomic::AtomicU64,
}

impl disco_wrapper::Wrapper for EvolvingWrapper {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn registration(&self) -> disco_common::Result<disco_wrapper::Registration> {
        let n = self.calls.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        let mut reg = self.inner.registration()?;
        // Statistics "age": each refresh reports a larger extent.
        for (_, _, stats) in &mut reg.collections {
            stats.extent.count_object += n * 1_000;
        }
        Ok(reg)
    }
    fn execute(
        &self,
        plan: &disco_algebra::LogicalPlan,
    ) -> disco_common::Result<disco_sources::SubAnswer> {
        self.inner.execute(plan)
    }
}

#[test]
fn refresh_reregisters_statistics_and_rules() {
    let mut m = Mediator::new();
    m.register(Box::new(EvolvingWrapper {
        inner: SourceWrapper::new("hr", hr_store())
            .with_cost_rules("rule scan($C) { TotalTime = 42; }"),
        calls: std::sync::atomic::AtomicU64::new(0),
    }))
    .unwrap();
    let q = disco_common::QualifiedName::new("hr", "Employee");
    let before = m.catalog().stats(&q).unwrap().extent.count_object;
    let rules_before = m.registry().len();

    m.refresh("hr").unwrap();
    let after = m.catalog().stats(&q).unwrap().extent.count_object;
    assert_eq!(after, before + 1_000, "fresh statistics installed");
    // Rules replaced, not duplicated.
    assert_eq!(m.registry().len(), rules_before);
    // Queries still work after refresh.
    let mut m = m;
    assert_eq!(
        m.query("SELECT name FROM Employee WHERE id < 4")
            .unwrap()
            .tuples
            .len(),
        4
    );

    assert!(m.refresh("ghost").is_err());
}

//! DP-vs-permutation equivalence: on randomized acyclic join queries the
//! memoized subset-DP enumerator must choose a plan with exactly the cost
//! of the best plan found by the exhaustive permutation oracle. The
//! permutation path is the pre-DP implementation, kept precisely so this
//! property can be asserted; cost estimates are deterministic, so the
//! comparison is exact (bitwise f64 equality, no tolerance).

use disco_catalog::{AttributeStats, Capabilities, Catalog, CollectionStats, ExtentStats};
use disco_common::rng::{seeded, StdRng};
use disco_common::{AttributeDef, DataType, Schema, Value};
use disco_core::RuleRegistry;
use disco_mediator::analyze::analyze;
use disco_mediator::{parse_query, JoinEnumeration, Optimizer, OptimizerOptions};

/// One random query: a spanning tree over `n` tables with random
/// cardinalities, random wrapper capabilities and random selections.
struct RandomCase {
    catalog: Catalog,
    sql: String,
}

fn random_case(rng: &mut StdRng) -> RandomCase {
    let n = rng.gen_range(2usize..=6);
    let mut catalog = Catalog::new();
    catalog
        .register_wrapper("full", Capabilities::full())
        .unwrap();
    catalog
        .register_wrapper("scan", Capabilities::scan_only())
        .unwrap();

    // Every table: an `id` plus enough fk columns to host tree edges.
    let mut attrs = vec![AttributeDef::new("id", DataType::Long)];
    for k in 1..n {
        attrs.push(AttributeDef::new(format!("f{k}"), DataType::Long));
    }
    let schema = Schema::new(attrs);

    for t in 0..n {
        let card = rng.gen_range(10u64..100_000);
        let wrapper = if rng.gen_range(0usize..2) == 0 {
            "full"
        } else {
            "scan"
        };
        let mut stats = CollectionStats::new(ExtentStats::of(card, 48));
        if rng.gen_range(0usize..2) == 0 {
            stats = stats.with_attribute(
                "id",
                AttributeStats::indexed(card, Value::Long(0), Value::Long(card as i64 - 1)),
            );
        }
        catalog
            .register_collection(wrapper, format!("T{t}"), schema.clone(), stats)
            .unwrap();
    }

    // Random spanning tree: child i joins a parent among 0..i.
    let mut conds = Vec::new();
    for i in 1..n {
        let parent = rng.gen_range(0usize..i);
        conds.push(format!("t{parent}.f{i} = t{i}.id"));
    }
    // A few random selections.
    for t in 0..n {
        if rng.gen_range(0usize..3) == 0 {
            let bound = rng.gen_range(1i64..50_000);
            conds.push(format!("t{t}.id < {bound}"));
        }
    }
    let from: Vec<String> = (0..n).map(|t| format!("T{t} t{t}")).collect();
    let sql = format!(
        "SELECT t0.id FROM {} WHERE {}",
        from.join(", "),
        conds.join(" AND ")
    );
    RandomCase { catalog, sql }
}

#[test]
fn dp_cost_equals_permutation_oracle_on_random_queries() {
    let registry = RuleRegistry::with_default_model();
    for seed in 0..40u64 {
        let mut rng = seeded(seed, "dp-equivalence");
        let case = random_case(&mut rng);
        let q = analyze(&parse_query(&case.sql).unwrap(), &case.catalog).unwrap();

        // Threshold 0 keeps every case on the DP (the fast path would
        // otherwise delegate small cases to the oracle's own algorithm,
        // making the comparison vacuous). Negotiation off on both sides:
        // the post-enumeration rewrite's benefit is not monotone in
        // enumerated cost, so equal-cost join trees may negotiate to
        // different final costs — the property under test is the
        // enumerator's.
        let dp = Optimizer::new(
            &case.catalog,
            &registry,
            OptimizerOptions {
                small_query_threshold: 0,
                negotiation: false,
                ..Default::default()
            },
        )
        .optimize(&q)
        .unwrap_or_else(|e| panic!("DP failed on seed {seed} ({}): {e}", case.sql));
        let oracle = Optimizer::new(
            &case.catalog,
            &registry,
            OptimizerOptions {
                pruning: false,
                enumeration: JoinEnumeration::Permutation,
                negotiation: false,
                ..Default::default()
            },
        )
        .optimize(&q)
        .unwrap_or_else(|e| panic!("oracle failed on seed {seed} ({}): {e}", case.sql));

        assert_eq!(
            dp.estimated.total_time, oracle.estimated.total_time,
            "seed {seed}: DP chose {} but oracle best is {} for {}",
            dp.estimated.total_time, oracle.estimated.total_time, case.sql
        );
        assert!(
            dp.estimator_nodes <= oracle.estimator_nodes,
            "seed {seed}: DP visited {} estimator nodes, oracle {} for {}",
            dp.estimator_nodes,
            oracle.estimator_nodes,
            case.sql
        );
    }
}

#[test]
fn dp_with_pruning_off_still_matches_oracle() {
    // Separates the memo/Pareto machinery from the §4.3.2 bound: even
    // without any cost limit the DP must land on the oracle's best cost.
    let registry = RuleRegistry::with_default_model();
    for seed in 40..55u64 {
        let mut rng = seeded(seed, "dp-equivalence");
        let case = random_case(&mut rng);
        let q = analyze(&parse_query(&case.sql).unwrap(), &case.catalog).unwrap();
        let dp = Optimizer::new(
            &case.catalog,
            &registry,
            OptimizerOptions {
                pruning: false,
                small_query_threshold: 0,
                negotiation: false,
                ..Default::default()
            },
        )
        .optimize(&q)
        .unwrap();
        let oracle = Optimizer::new(
            &case.catalog,
            &registry,
            OptimizerOptions {
                pruning: false,
                enumeration: JoinEnumeration::Permutation,
                negotiation: false,
                ..Default::default()
            },
        )
        .optimize(&q)
        .unwrap();
        assert_eq!(
            dp.estimated.total_time, oracle.estimated.total_time,
            "seed {seed}: {}",
            case.sql
        );
    }
}

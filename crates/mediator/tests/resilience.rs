//! Cost-model-driven resilience, end to end through the mediator:
//! predicted deadlines, query budgets, hedged replica submits and
//! adaptive wrapper-scope penalties that shift plan choice.

use disco_algebra::{LogicalPlan, PlanBuilder};
use disco_common::{AttributeDef, DataType, QualifiedName, Schema, Value};
use disco_mediator::{Mediator, MediatorOptions, ResiliencePolicy};
use disco_sources::{CollectionBuilder, CostProfile, PagedStore};
use disco_transport::{ChannelTransport, FaultKind, FaultPlan, NetProfile, TransportClient};
use disco_wrapper::SourceWrapper;

fn r_schema() -> Schema {
    Schema::new(vec![
        AttributeDef::new("id", DataType::Long),
        AttributeDef::new("v", DataType::Long),
    ])
}

fn replica_store(wrapper: &str) -> PagedStore {
    let mut s = PagedStore::new(wrapper, CostProfile::relational());
    s.add_collection(
        "R",
        CollectionBuilder::new(r_schema())
            .rows((0..50i64).map(|i| vec![Value::Long(i), Value::Long(i % 5)])),
    )
    .unwrap();
    s
}

/// Mediator over `ra` (under the given faults) and `rb` (healthy), both
/// serving `R` and declared as a replica set.
fn replicated_federation(
    ra_faults: FaultPlan,
    sleep_scale: f64,
    options: MediatorOptions,
) -> Mediator {
    let mut t = ChannelTransport::new();
    t.add_wrapper_with(
        Box::new(SourceWrapper::new("ra", replica_store("ra"))),
        NetProfile::lan().with_sleep_scale(sleep_scale),
        ra_faults,
    );
    t.add_wrapper_with(
        Box::new(SourceWrapper::new("rb", replica_store("rb"))),
        NetProfile::lan().with_sleep_scale(sleep_scale),
        FaultPlan::none(),
    );
    let mut m = Mediator::new().with_options(options);
    m.connect(TransportClient::new(Box::new(t))).unwrap();
    m.declare_replicas("R", &["ra", "rb"]).unwrap();
    m
}

/// Mediator over a single wrapper `ra` under the given faults.
fn single_federation(ra_faults: FaultPlan, options: MediatorOptions) -> Mediator {
    let mut t = ChannelTransport::new();
    t.add_wrapper_with(
        Box::new(SourceWrapper::new("ra", replica_store("ra"))),
        NetProfile::lan(),
        ra_faults,
    );
    let mut m = Mediator::new().with_options(options);
    m.connect(TransportClient::new(Box::new(t))).unwrap();
    m
}

/// The wrapper each submit of the optimized plan is addressed to.
fn planned_wrappers(m: &Mediator, sql: &str) -> Vec<String> {
    let plan = m.plan(sql).unwrap();
    plan.physical
        .collections()
        .iter()
        .map(|q| q.wrapper.clone())
        .collect()
}

#[test]
fn predicted_deadline_turns_a_huge_delay_into_a_timeout() {
    // A million simulated ms of delay. Without predicted deadlines the
    // reply is accepted (nothing really sleeps at scale 0); with them,
    // the simulated deadline `4 × predicted TotalTime` rejects it.
    let slow = FaultPlan::always(FaultKind::Delay(1e6));
    let mut lax = single_federation(slow.clone(), MediatorOptions::default());
    let r = lax.query("SELECT v FROM R").unwrap();
    assert_eq!(r.tuples.len(), 50);
    assert!(!r.is_partial());

    let strict = MediatorOptions {
        resilience: ResiliencePolicy {
            predicted_deadlines: true,
            sim_deadlines: true,
            ..ResiliencePolicy::default()
        },
        ..MediatorOptions::default()
    };
    let mut m = single_federation(slow, strict);
    let r = m.query("SELECT v FROM R").unwrap();
    assert!(r.is_partial(), "delayed replies must miss the deadline");
    assert_eq!(r.trace.missing, vec![QualifiedName::new("ra", "R")]);
    assert!(r.trace.submits[0].failed);
}

#[test]
fn exhausted_budget_degrades_to_a_partial_answer() {
    let options = MediatorOptions {
        resilience: ResiliencePolicy {
            query_budget_ms: Some(0.0),
            ..ResiliencePolicy::default()
        },
        ..MediatorOptions::default()
    };
    let mut m = single_federation(FaultPlan::none(), options);
    let report = m.explain_analyze("SELECT v FROM R").unwrap();
    let r = &report.result;
    assert!(r.trace.budget_exhausted);
    assert!(r.is_partial());
    assert_eq!(r.tuples.len(), 0);
    assert_eq!(r.trace.missing, vec![QualifiedName::new("ra", "R")]);
    // The skipped submit never went out.
    assert_eq!(r.trace.submits[0].attempts, 0);
    assert!(report.render().contains("query budget exhausted"));
}

#[test]
fn unbudgeted_query_is_unaffected() {
    let options = MediatorOptions {
        resilience: ResiliencePolicy {
            query_budget_ms: Some(60_000.0),
            ..ResiliencePolicy::default()
        },
        ..MediatorOptions::default()
    };
    let mut m = single_federation(FaultPlan::none(), options);
    let r = m.query("SELECT v FROM R").unwrap();
    assert_eq!(r.tuples.len(), 50);
    assert!(!r.trace.budget_exhausted);
    assert!(!r.is_partial());
}

#[test]
fn failover_to_a_declared_replica_avoids_the_partial_answer() {
    let mut m = replicated_federation(
        FaultPlan::always(FaultKind::Unavailable),
        0.0,
        MediatorOptions::default(),
    );
    let r = m.query("SELECT v FROM R").unwrap();
    // `ra` is dead, but its declared replica absorbed the submit: a
    // complete answer, not a degraded one.
    assert!(!r.is_partial(), "replica must absorb the failed submit");
    assert_eq!(r.tuples.len(), 50);
    assert_eq!(r.trace.submits[0].wrapper, "ra");
    assert_eq!(r.trace.submits[0].served_by, "rb");
}

#[test]
fn straggling_replica_is_hedged_around() {
    // `ra` really sleeps ~210 ms per reply; `rb` ~10 ms. The predicted
    // straggler threshold fires long before `ra` answers, and the hedge
    // to `rb` wins the race.
    let options = MediatorOptions {
        resilience: ResiliencePolicy {
            predicted_deadlines: true,
            // Generous deadlines: `ra` must straggle, not time out.
            deadline_factor: 1e6,
            max_deadline_ms: 60_000.0,
            time_scale: 0.1,
            ..ResiliencePolicy::default()
        },
        ..MediatorOptions::default()
    };
    let mut m = replicated_federation(FaultPlan::always(FaultKind::Delay(2_000.0)), 0.1, options);
    let r = m.query("SELECT v FROM R").unwrap();
    assert!(!r.is_partial());
    assert_eq!(r.tuples.len(), 50);
    assert_eq!(r.trace.hedges, 1);
    assert_eq!(r.trace.submits[0].wrapper, "ra");
    assert_eq!(r.trace.submits[0].served_by, "rb");
}

#[test]
fn repeated_timeouts_shift_the_plan_to_the_replica_and_decay_back() {
    let options = MediatorOptions {
        resilience: ResiliencePolicy {
            predicted_deadlines: true,
            sim_deadlines: true,
            ..ResiliencePolicy::default()
        },
        ..MediatorOptions::default()
    };
    let mut m = replicated_federation(FaultPlan::always(FaultKind::Delay(1e6)), 0.0, options);
    let sql = "SELECT v FROM R";

    // Healthy start: the declared-first replica gets the plan.
    assert_eq!(planned_wrappers(&m, sql), vec!["ra".to_string()]);

    // One query: every attempt to `ra` misses its predicted deadline
    // (recorded as failures), the submit fails over to `rb`.
    let r = m.query(sql).unwrap();
    assert!(!r.is_partial());
    assert_eq!(r.trace.submits[0].served_by, "rb");
    assert!(m.health().penalty("ra") > 1.0);

    // The wrapper-scope penalty now prices `ra` out: the optimizer
    // plans straight to the replica, and the penalty is visible in the
    // cost attribution.
    assert_eq!(planned_wrappers(&m, sql), vec!["rb".to_string()]);
    let submit = LogicalPlan::Submit {
        wrapper: "ra".into(),
        input: Box::new(PlanBuilder::scan(QualifiedName::new("ra", "R"), r_schema()).build()),
    };
    let explained = m
        .estimator()
        .explain(&submit, &Default::default())
        .unwrap()
        .expect("no cost limit");
    assert!(
        explained.render().contains("health ×"),
        "penalty missing from cost attribution:\n{}",
        explained.render()
    );

    // Queries now flow to `rb`; each executed query decays the idle
    // penalty one tick until `ra` wins the cost tie again.
    let mut flipped_back = false;
    for _ in 0..80 {
        let r = m.query(sql).unwrap();
        assert!(!r.is_partial());
        if planned_wrappers(&m, sql) == vec!["ra".to_string()] {
            flipped_back = true;
            break;
        }
    }
    assert!(flipped_back, "penalty never decayed back to ra");
    assert_eq!(m.health().penalty("ra"), 1.0);
}

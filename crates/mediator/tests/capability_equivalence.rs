//! Capability-equivalence differential suite.
//!
//! The same seeded federation — a relational collection `R`, a second
//! relational collection `S` on another endpoint, and a semi-structured
//! document collection `Orders` — is served under *every* declared
//! capability profile, and every query must return byte-identical
//! answers regardless of which profile (and hence which pushdown split
//! between wrapper and mediator) produced them. Profiles change where
//! operators run; they must never change what a query means.
//!
//! Covered here, per the issue's acceptance criteria:
//!
//! * ≥ 15 seeds, all profiles, two-phase *and* streaming engines;
//! * a mixed-profile join (scan-only endpoint joined with a fully
//!   relational one, in both orientations, plus a doc-relational join);
//! * a downed-wrapper partial answer that is identical across profiles
//!   and equal to the fault-free oracle with the dead collection
//!   emptied;
//! * EXPLAIN output for a scan-only wrapper showing the lifted
//!   select/join costed in the mediator's combine plan.

use std::collections::{BTreeMap, BTreeSet};

use disco_algebra::PhysicalPlan;
use disco_catalog::CapabilityProfile;
use disco_common::rng::seeded;
use disco_common::{AttributeDef, DataType, QualifiedName, Schema, Value};
use disco_mediator::{Mediator, MediatorOptions, QueryResult};
use disco_sources::{CollectionBuilder, CostProfile, DocField, DocSource, DocValue, PagedStore};
use disco_transport::{
    ChannelTransport, FaultKind, FaultPlan, NetProfile, RetryPolicy, TransportClient,
};
use disco_wrapper::SourceWrapper;

const SEEDS: u64 = 16;

/// The differential query mix: selections, projections, sorts, joins
/// (relational-relational and doc-relational), grouped aggregates and
/// unions, over all three wrappers.
const QUERIES: &[&str] = &[
    "SELECT v FROM R WHERE id < 17",
    "SELECT id, v FROM R WHERE grp = 2 ORDER BY id",
    "SELECT sid, w FROM S WHERE w < 4",
    "SELECT r.v, s.w FROM R r, S s WHERE r.id = s.sid",
    "SELECT r.id FROM R r, S s WHERE r.id = s.sid AND s.w < 3",
    "SELECT grp, COUNT(*) AS n FROM R GROUP BY grp ORDER BY grp",
    "SELECT v FROM R UNION ALL SELECT w FROM S",
    "SELECT id, zip FROM Orders WHERE zip = 10001",
    "SELECT zip, COUNT(*) AS n FROM Orders GROUP BY zip ORDER BY zip",
    "SELECT o.zip, r.v FROM Orders o, R r WHERE o.id = r.id",
];

fn r_store(seed: u64) -> PagedStore {
    let mut rng = seeded(seed, "capeq:R");
    let n = 40 + (seed % 20) as i64;
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|i| {
            vec![
                Value::Long(i),
                Value::Long(rng.gen_range(0i64..7)),
                Value::Long(rng.gen_range(0i64..5)),
            ]
        })
        .collect();
    let schema = Schema::new(vec![
        AttributeDef::new("id", DataType::Long),
        AttributeDef::new("v", DataType::Long),
        AttributeDef::new("grp", DataType::Long),
    ]);
    let mut s = PagedStore::new("alpha", CostProfile::relational());
    s.add_collection("R", CollectionBuilder::new(schema).rows(rows).index("id"))
        .unwrap();
    s
}

fn s_store(seed: u64) -> PagedStore {
    let mut rng = seeded(seed, "capeq:S");
    let rows: Vec<Vec<Value>> = (0..30i64)
        .map(|i| vec![Value::Long(i), Value::Long(rng.gen_range(0i64..7))])
        .collect();
    let schema = Schema::new(vec![
        AttributeDef::new("sid", DataType::Long),
        AttributeDef::new("w", DataType::Long),
    ]);
    let mut s = PagedStore::new("beta", CostProfile::relational());
    s.add_collection("S", CollectionBuilder::new(schema).rows(rows))
        .unwrap();
    s
}

/// Semi-structured orders: nested `customer.address.zip`, a nullable
/// `discount`, flattened through path expressions at the scan boundary.
fn doc_source(seed: u64, empty: bool) -> DocSource {
    let mut rng = seeded(seed, "capeq:Orders");
    let n = if empty { 0 } else { 15 + (seed % 10) as i64 };
    let docs: Vec<DocValue> = (0..n)
        .map(|i| {
            let zip = 10_000 + rng.gen_range(0i64..3);
            DocValue::obj([
                ("id", DocValue::Long(i)),
                (
                    "customer",
                    DocValue::obj([("address", DocValue::obj([("zip", DocValue::Long(zip))]))]),
                ),
                (
                    "discount",
                    if rng.gen_range(0i64..2) == 0 {
                        DocValue::Double(0.1)
                    } else {
                        DocValue::Null
                    },
                ),
            ])
        })
        .collect();
    let mut s = DocSource::new("docs");
    s.add_collection(
        "Orders",
        vec![
            DocField::scalar("id", "id", DataType::Long),
            DocField::scalar("zip", "customer.address.zip", DataType::Long),
            DocField::exists("has_discount", "discount"),
        ],
        docs,
    )
    .unwrap();
    s
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 2,
        deadline_ms: 30,
        backoff_base_ms: 1,
        backoff_factor: 2.0,
    }
}

/// Build the three-wrapper federation over a channel transport, with
/// one capability profile per endpoint, an optional fault plan on
/// `beta` (the `S` endpoint), and optionally `S` registered empty (the
/// oracle's mirror of a degraded answer).
fn federation(
    seed: u64,
    profiles: [CapabilityProfile; 3],
    streaming: bool,
    beta_faults: FaultPlan,
    s_empty: bool,
) -> Mediator {
    let [pa, pb, pd] = profiles;
    let mut t = ChannelTransport::new();
    t.add_wrapper(Box::new(
        SourceWrapper::new("alpha", r_store(seed)).with_profile(pa),
    ));
    let mut beta = s_store(seed);
    if s_empty {
        beta = PagedStore::new("beta", CostProfile::relational());
        let schema = Schema::new(vec![
            AttributeDef::new("sid", DataType::Long),
            AttributeDef::new("w", DataType::Long),
        ]);
        beta.add_collection("S", CollectionBuilder::new(schema))
            .unwrap();
    }
    t.add_wrapper_with(
        Box::new(SourceWrapper::new("beta", beta).with_profile(pb)),
        NetProfile::lan(),
        beta_faults,
    );
    t.add_wrapper(Box::new(
        SourceWrapper::new("docs", doc_source(seed, false)).with_profile(pd),
    ));
    let client = TransportClient::new(Box::new(t)).with_retry(fast_retry());
    let mut m = Mediator::new().with_options(MediatorOptions {
        partial_answers: true,
        streaming,
        streaming_chunk_rows: 8,
        ..MediatorOptions::default()
    });
    m.connect(client).unwrap();
    m
}

/// Order-insensitive byte-exact digest of an answer: schema attribute
/// names plus every tuple's debug rendering, sorted.
fn answer_key(r: &QueryResult) -> String {
    let attrs: Vec<&str> = r
        .schema
        .attributes()
        .iter()
        .map(|a| a.name.as_str())
        .collect();
    let mut rows: Vec<String> = r.tuples.iter().map(|t| format!("{t:?}")).collect();
    rows.sort();
    format!("[{}]\n{}", attrs.join(","), rows.join("\n"))
}

fn run_all(m: &mut Mediator) -> Vec<String> {
    QUERIES
        .iter()
        .map(|sql| {
            let r = m.query(sql).unwrap_or_else(|e| panic!("`{sql}`: {e}"));
            assert!(!r.is_partial(), "`{sql}` degraded in a healthy federation");
            answer_key(&r)
        })
        .collect()
}

/// The headline differential: for ≥ 15 seeds, the whole query mix under
/// every capability profile (applied to all three endpoints at once),
/// through both the two-phase and the streaming engine, must match the
/// fully relational two-phase baseline byte for byte.
#[test]
fn every_profile_and_engine_answers_byte_identically() {
    for seed in 0..SEEDS {
        let baseline = run_all(&mut federation(
            seed,
            [CapabilityProfile::Relational; 3],
            false,
            FaultPlan::none(),
            false,
        ));
        for profile in CapabilityProfile::ALL {
            for streaming in [false, true] {
                let got = run_all(&mut federation(
                    seed,
                    [profile; 3],
                    streaming,
                    FaultPlan::none(),
                    false,
                ));
                for (i, (want, have)) in baseline.iter().zip(&got).enumerate() {
                    assert_eq!(
                        want,
                        have,
                        "seed {seed}, profile `{}`, streaming {streaming}: \
                         `{}` diverged from the relational baseline",
                        profile.name(),
                        QUERIES[i],
                    );
                }
            }
        }
    }
}

/// Mixed-profile joins: a scan-only endpoint joined with a fully
/// relational one (both orientations), and the document wrapper joined
/// with a relational endpoint — all equal to the uniform baseline.
#[test]
fn mixed_profile_joins_match_uniform_answers() {
    let join_queries = [
        "SELECT r.v, s.w FROM R r, S s WHERE r.id = s.sid",
        "SELECT r.id FROM R r, S s WHERE r.id = s.sid AND s.w < 3",
        "SELECT o.zip, r.v FROM Orders o, R r WHERE o.id = r.id",
    ];
    let mixes = [
        [
            CapabilityProfile::ScanOnly,
            CapabilityProfile::Relational,
            CapabilityProfile::Relational,
        ],
        [
            CapabilityProfile::Relational,
            CapabilityProfile::ScanOnly,
            CapabilityProfile::ScanOnly,
        ],
        [
            CapabilityProfile::NoJoin,
            CapabilityProfile::SelectPushdownOnly,
            CapabilityProfile::ScanOnly,
        ],
    ];
    for seed in 0..SEEDS {
        let mut base = federation(
            seed,
            [CapabilityProfile::Relational; 3],
            false,
            FaultPlan::none(),
            false,
        );
        for sql in join_queries {
            let want = answer_key(&base.query(sql).unwrap());
            for mix in mixes {
                let mut m = federation(seed, mix, false, FaultPlan::none(), false);
                let have = answer_key(&m.query(sql).unwrap());
                assert_eq!(
                    want,
                    have,
                    "seed {seed}, mix {:?}: `{sql}` diverged",
                    mix.map(|p| p.name()),
                );
            }
        }
    }
}

/// A downed endpoint must degrade the *same way* under every profile:
/// the partial answer equals the fault-free oracle with the dead
/// collection emptied, byte for byte, no matter which pushdown split
/// the profile induced.
#[test]
fn downed_wrapper_partial_answers_are_profile_independent() {
    let partial_queries = [
        "SELECT v FROM R UNION ALL SELECT w FROM S",
        "SELECT r.v, s.w FROM R r, S s WHERE r.id = s.sid",
    ];
    for seed in [0u64, 7, 13] {
        for sql in partial_queries {
            // Oracle: fault-free federation with `S` registered empty.
            let mut oracle = federation(
                seed,
                [CapabilityProfile::Relational; 3],
                false,
                FaultPlan::none(),
                true,
            );
            let want = answer_key(&oracle.query(sql).unwrap());
            let mut keys = BTreeSet::new();
            for profile in CapabilityProfile::ALL {
                let mut m = federation(
                    seed,
                    [profile; 3],
                    false,
                    FaultPlan::always(FaultKind::Unavailable),
                    false,
                );
                let r = m.query(sql).unwrap();
                assert!(
                    r.is_partial(),
                    "seed {seed}, profile `{}`: `{sql}` should degrade",
                    profile.name(),
                );
                assert_eq!(r.trace.missing, vec![QualifiedName::new("beta", "S")]);
                let have = answer_key(&r);
                assert_eq!(
                    want,
                    have,
                    "seed {seed}, profile `{}`: partial answer for `{sql}` \
                     diverged from the emptied-collection oracle",
                    profile.name(),
                );
                keys.insert(have);
            }
            assert_eq!(keys.len(), 1, "partial answers differed across profiles");
        }
    }
}

/// Walk an optimized plan and check every submitted subplan against
/// the profile its target wrapper declared: no forbidden operator may
/// ship. This is the static half of the pushdown-legality property;
/// the dynamic half is the wrapper boundary itself, which turns any
/// violation into a hard execution error.
fn assert_submits_legal(plan: &PhysicalPlan, profiles: &BTreeMap<&str, CapabilityProfile>) {
    let mut stack = vec![plan];
    while let Some(p) = stack.pop() {
        if let PhysicalPlan::SubmitRemote { wrapper, plan, .. } = p {
            let profile = profiles[wrapper.as_str()];
            let caps = profile.capabilities();
            let mut sub = vec![plan];
            while let Some(l) = sub.pop() {
                assert!(
                    caps.supports(l.kind()),
                    "a {} operator was planned into `{wrapper}` (profile `{}`)",
                    l.kind(),
                    profile.name(),
                );
                sub.extend(l.children());
            }
        }
        stack.extend(p.children());
    }
}

/// Deterministic pushdown-legality sweep: across seeds and profile
/// mixes, no planned submit ever carries an operator outside its
/// wrapper's declared profile, and executing the plan never trips the
/// wrapper-boundary check (no partials in a healthy federation).
#[test]
fn planned_submits_respect_declared_profiles() {
    let mixes = [
        [CapabilityProfile::Relational; 3],
        [CapabilityProfile::ScanOnly; 3],
        [
            CapabilityProfile::SelectPushdownOnly,
            CapabilityProfile::NoJoin,
            CapabilityProfile::AggregateCapable,
        ],
        [
            CapabilityProfile::NoJoin,
            CapabilityProfile::ScanOnly,
            CapabilityProfile::SelectPushdownOnly,
        ],
    ];
    for seed in 0..4 {
        for mix in mixes {
            let profiles: BTreeMap<&str, CapabilityProfile> =
                [("alpha", mix[0]), ("beta", mix[1]), ("docs", mix[2])]
                    .into_iter()
                    .collect();
            let mut m = federation(seed, mix, false, FaultPlan::none(), false);
            for sql in QUERIES {
                let plan = m.plan(sql).unwrap_or_else(|e| panic!("`{sql}`: {e}"));
                assert_submits_legal(&plan.physical, &profiles);
                let r = m.query(sql).unwrap_or_else(|e| panic!("`{sql}`: {e}"));
                assert!(!r.is_partial(), "`{sql}` tripped the wrapper boundary");
            }
        }
    }
}

// Gated: requires the `proptest` cargo feature (and the proptest
// dev-dependency, removed so offline builds succeed — see Cargo.toml).
#[cfg(feature = "proptest")]
mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Generated federations (random seed, random profile per
        /// endpoint) never plan a forbidden operator into a submit,
        /// and never trip the wrapper's capability boundary.
        #[test]
        fn pushdown_legality(
            seed in 0u64..10_000,
            pa in 0usize..CapabilityProfile::ALL.len(),
            pb in 0usize..CapabilityProfile::ALL.len(),
            pd in 0usize..CapabilityProfile::ALL.len(),
            q in 0usize..QUERIES.len(),
        ) {
            let mix = [
                CapabilityProfile::ALL[pa],
                CapabilityProfile::ALL[pb],
                CapabilityProfile::ALL[pd],
            ];
            let profiles: BTreeMap<&str, CapabilityProfile> =
                [("alpha", mix[0]), ("beta", mix[1]), ("docs", mix[2])]
                    .into_iter()
                    .collect();
            let mut m = federation(seed, mix, false, FaultPlan::none(), false);
            let sql = QUERIES[q];
            let plan = m.plan(sql).unwrap();
            assert_submits_legal(&plan.physical, &profiles);
            let r = m.query(sql).unwrap();
            prop_assert!(!r.is_partial(), "`{sql}` tripped the wrapper boundary");
        }
    }
}

/// EXPLAIN for a scan-only wrapper: the select the profile refused is
/// lifted into the mediator's combine plan (a `filter` node *above* the
/// submit, not inside it) and the negotiation report says so; a
/// scan-only join likewise stays at the mediator.
#[test]
fn scan_only_explain_lifts_operators_into_the_combine_plan() {
    let m = federation(
        3,
        [CapabilityProfile::ScanOnly; 3],
        false,
        FaultPlan::none(),
        false,
    );

    let select = m.explain("SELECT v FROM R WHERE id < 17").unwrap();
    assert!(select.contains("negotiation:"), "{select}");
    assert!(select.contains("lifted"), "{select}");
    assert!(select.contains("scan-only"), "{select}");
    // The lifted filter sits in the mediator plan, above the submit.
    let filter_at = select.find("filter [").expect("combine-plan filter");
    let submit_at = select.find("submit -> alpha").expect("submit site");
    assert!(
        filter_at < submit_at,
        "filter must be in the combine plan, above the submit:\n{select}"
    );
    // The whole thing is costed: the estimate covers the lifted work.
    assert!(select.contains("estimated:"), "{select}");

    let join = m
        .explain("SELECT r.v, s.w FROM R r, S s WHERE r.id = s.sid")
        .unwrap();
    assert!(join.contains("-join ["), "{join}");
    assert!(join.contains("negotiation:"), "{join}");
    let join_at = join.find("-join [").unwrap();
    let first_submit = join.find("submit ->").unwrap();
    assert!(
        join_at < first_submit,
        "join must run at the mediator, above both submits:\n{join}"
    );
}

//! EXPLAIN ANALYZE differential tests: the zipped predicted/measured
//! tree must report exactly the cardinalities the executor produced, a
//! cost scope for every node, and — on the fault path — the collections
//! a downed wrapper failed to contribute.

use disco_catalog::{CacheRegime, Capabilities};
use disco_common::rng::{seeded, StdRng};
use disco_common::{AttributeDef, DataType, QualifiedName, Schema, Value};
use disco_mediator::{AnalyzeReport, Mediator, MediatorOptions};
use disco_sources::{CollectionBuilder, CostProfile, FlatFile, PagedStore, StoreSource};
use disco_store::{DiskCollectionBuilder, DiskStoreBuilder};
use disco_transport::{
    ChannelTransport, FaultKind, FaultPlan, NetProfile, RetryPolicy, TransportClient,
};
use disco_wrapper::SourceWrapper;

/// Random federation: `n` collections spread over a full-capability
/// object store and a scan-only relational store, a spanning tree of
/// equi-joins, and occasional selections. Deterministic per seed, so
/// two mediators built from the same seed hold identical data.
fn random_case(seed: u64) -> (Mediator, String) {
    let mut rng: StdRng = seeded(seed, "explain-analyze");
    let n = rng.gen_range(2usize..=4);
    let cards: Vec<i64> = (0..n).map(|_| rng.gen_range(8i64..60)).collect();

    let mut attrs = vec![AttributeDef::new("id", DataType::Long)];
    for k in 1..n {
        attrs.push(AttributeDef::new(format!("f{k}"), DataType::Long));
    }
    let schema = Schema::new(attrs);

    let mut alpha = PagedStore::new("alpha", CostProfile::object_store());
    let mut beta = PagedStore::new("beta", CostProfile::relational());
    for t in 0..n {
        let rows: Vec<Vec<Value>> = (0..cards[t])
            .map(|i| {
                let mut row = vec![Value::Long(i)];
                for &card in cards.iter().skip(1) {
                    // Foreign keys always land inside that table's id domain.
                    row.push(Value::Long((i * 7 + t as i64) % card));
                }
                row
            })
            .collect();
        let builder = CollectionBuilder::new(schema.clone())
            .rows(rows)
            .object_size(48)
            .index("id");
        if rng.gen_range(0usize..2) == 0 {
            alpha.add_collection(format!("T{t}"), builder).unwrap();
        } else {
            beta.add_collection(format!("T{t}"), builder).unwrap();
        }
    }

    // Spanning tree: table i joins a parent among 0..i.
    let mut conds = Vec::new();
    for i in 1..n {
        let parent = rng.gen_range(0usize..i);
        conds.push(format!("t{parent}.f{i} = t{i}.id"));
    }
    for (t, &card) in cards.iter().enumerate() {
        if rng.gen_range(0usize..3) == 0 {
            let bound = rng.gen_range(1i64..card);
            conds.push(format!("t{t}.id < {bound}"));
        }
    }
    let from: Vec<String> = (0..n).map(|t| format!("T{t} t{t}")).collect();
    let sql = format!(
        "SELECT t0.id FROM {} WHERE {}",
        from.join(", "),
        conds.join(" AND ")
    );

    let mut m = Mediator::new();
    m.register(Box::new(SourceWrapper::new("alpha", alpha)))
        .unwrap();
    m.register(Box::new(
        SourceWrapper::new("beta", beta).with_capabilities(Capabilities::scan_only()),
    ))
    .unwrap();
    (m, sql)
}

/// Multiset of executed submit nodes as (operator, rows), sorted.
fn submit_rows(report: &AnalyzeReport) -> Vec<(String, u64)> {
    let mut v: Vec<(String, u64)> = report
        .root
        .nodes()
        .into_iter()
        .filter(|nd| nd.operator.starts_with("submit -> "))
        .filter_map(|nd| nd.measured.map(|m| (nd.operator.clone(), m.rows)))
        .collect();
    v.sort();
    v
}

#[test]
fn measured_cardinalities_match_executor_over_100_seeded_queries() {
    for seed in 0..100u64 {
        let (mut m, sql) = random_case(seed);
        let report = m
            .explain_analyze(&sql)
            .unwrap_or_else(|e| panic!("seed {seed} ({sql}): {e}"));

        // Root cardinality is exactly the answer size.
        let root = report.root.measured.expect("root node executed");
        assert_eq!(
            root.rows as usize,
            report.result.tuples.len(),
            "seed {seed} ({sql})"
        );
        assert!(!root.failed);

        // Every executed submit node reports exactly the tuple count the
        // executor's own submit trace recorded (compared as multisets —
        // a wrapper can be submitted to more than once).
        let from_tree = submit_rows(&report);
        let mut from_trace: Vec<(String, u64)> = report
            .result
            .trace
            .submits
            .iter()
            .map(|s| (format!("submit -> {}", s.wrapper), s.tuples as u64))
            .collect();
        from_trace.sort();
        assert_eq!(from_tree, from_trace, "seed {seed} ({sql})");

        // An independent, uninstrumented run over identical data agrees
        // on the answer cardinality.
        let (mut m2, sql2) = random_case(seed);
        assert_eq!(sql, sql2, "case generation must be deterministic");
        let plain = m2.query(&sql2).unwrap();
        assert_eq!(
            plain.tuples.len(),
            report.result.tuples.len(),
            "seed {seed}"
        );

        // Every node of the report — executed or wrapper-side predicted
        // only — carries a TotalTime scope attribution.
        for nd in report.root.nodes() {
            assert!(
                nd.scope().is_some(),
                "seed {seed}: node `{}` reports no scope",
                nd.operator
            );
        }

        // The rendering carries the predicted/measured/error lines for
        // every node.
        let text = report.render();
        assert_eq!(
            text.matches("predicted:").count(),
            report.root.nodes().len(),
            "seed {seed}:\n{text}"
        );
        assert!(text.contains("total: predicted="), "seed {seed}:\n{text}");
    }
}

#[test]
fn history_recording_shows_up_as_query_scope_on_the_second_run() {
    // A pushdown-capable wrapper, so the recorded subquery is a
    // selection with its constant bound — which derives query scope
    // (a recorded bare scan would only reach collection scope).
    let mut m = Mediator::new();
    m.register(Box::new(SourceWrapper::new("hr", hr_store())))
        .unwrap();
    let mut m = m.with_options(MediatorOptions {
        record_history: true,
        ..Default::default()
    });
    let sql = "SELECT name FROM Employee WHERE id < 5";
    let first = m.explain_analyze(sql).unwrap();
    // First run predicts from synthetic statistics: no query scope yet.
    assert!(first
        .root
        .nodes()
        .iter()
        .all(|nd| nd.scope() != Some(disco_core::Scope::Query)));
    assert!(m.history_recorded() > 0);

    // The recorded measurement now wins scope blending: the second
    // report attributes the recorded selection to query scope, and the
    // submit's predicted time collapses onto the measurement.
    let second = m.explain_analyze(sql).unwrap();
    let scopes: Vec<_> = second
        .root
        .nodes()
        .iter()
        .filter_map(|nd| nd.scope())
        .collect();
    assert!(
        scopes.contains(&disco_core::Scope::Query),
        "scopes after recording: {scopes:?}"
    );
    assert!(
        second.render().contains("time=query"),
        "{}",
        second.render()
    );
    let err_first = first.root.time_error().unwrap().abs();
    let err_second = second.root.time_error().unwrap().abs();
    assert!(
        err_second <= err_first,
        "recording must not worsen the root time error ({err_first} -> {err_second})"
    );
}

/// hr: Employee with an indexed id.
fn hr_store() -> PagedStore {
    let emp_schema = Schema::new(vec![
        AttributeDef::new("id", DataType::Long),
        AttributeDef::new("name", DataType::Str),
    ]);
    let mut s = PagedStore::new("hr", CostProfile::object_store());
    s.add_collection(
        "Employee",
        CollectionBuilder::new(emp_schema)
            .rows((0..100i64).map(|i| vec![Value::Long(i), Value::Str(format!("emp{i:03}"))]))
            .object_size(48)
            .index("id"),
    )
    .unwrap();
    s
}

/// files: a scan-only flat file of audit events.
fn audit_file() -> FlatFile {
    FlatFile::new(
        "files",
        "Audit",
        Schema::new(vec![
            AttributeDef::new("emp_id", DataType::Long),
            AttributeDef::new("action", DataType::Str),
        ]),
        (0..40i64).map(|i| vec![Value::Long(i % 10), Value::Str(format!("a{}", i % 4))]),
    )
}

/// Mediator over a ChannelTransport: `hr` healthy, `files` down.
fn broken_federation() -> Mediator {
    let mut t = ChannelTransport::new();
    t.add_wrapper(Box::new(SourceWrapper::new("hr", hr_store())));
    t.add_wrapper_with(
        Box::new(
            SourceWrapper::new("files", audit_file()).with_capabilities(Capabilities::scan_only()),
        ),
        NetProfile::lan(),
        FaultPlan::always(FaultKind::Unavailable),
    );
    let client = TransportClient::new(Box::new(t)).with_retry(RetryPolicy {
        max_attempts: 2,
        deadline_ms: 20,
        backoff_base_ms: 1,
        backoff_factor: 2.0,
    });
    let mut m = Mediator::new();
    m.connect(client).unwrap();
    m
}

#[test]
fn downed_wrapper_reports_missing_collections_and_counts_unavailability() {
    let mut m = broken_federation();
    let unavailable = disco_obs::counter(
        disco_obs::names::WRAPPER_UNAVAILABLE,
        &[("wrapper", "files")],
    );
    let before = unavailable.get();

    // The Audit file appears twice in the plan (self-join) so the raw
    // missing list would repeat it; the trace must sort and deduplicate.
    let report = m
        .explain_analyze(
            "SELECT e.name FROM Employee e, Audit a, Audit b \
             WHERE e.id = a.emp_id AND a.emp_id = b.emp_id AND e.id < 5",
        )
        .unwrap();

    // Missing collections: in the trace, sorted and deduplicated…
    assert_eq!(
        report.result.trace.missing,
        vec![QualifiedName::new("files", "Audit")]
    );
    assert!(report.result.is_partial());

    // …and surfaced by the rendered EXPLAIN ANALYZE output.
    let text = report.render();
    assert!(
        text.contains("missing (wrapper unavailable): files.Audit"),
        "{text}"
    );
    assert!(text.contains("[no answer]"), "{text}");

    // The failed submits are flagged in the tree, with zero rows.
    let failed: Vec<_> = report
        .root
        .nodes()
        .into_iter()
        .filter(|nd| nd.measured.is_some_and(|m| m.failed))
        .collect();
    assert!(!failed.is_empty());
    for nd in &failed {
        assert!(
            nd.operator.starts_with("submit -> files"),
            "{}",
            nd.operator
        );
        assert_eq!(nd.measured.unwrap().rows, 0);
    }
    // Every node still reports a scope on the fault path.
    for nd in report.root.nodes() {
        assert!(nd.scope().is_some(), "node `{}`", nd.operator);
    }

    // The unavailability counter moved (two failed submit sites, each
    // exhausting its retry budget at least once).
    assert!(
        unavailable.get() >= before + 2,
        "counter before={before} after={}",
        unavailable.get()
    );
}

/// Disk-backed wrapper: two 7 000-object collections (70 objects per
/// 4 KB page → 100 pages each), one random placement, one clustered on
/// `id`. Returns the mediator plus a handle onto the shared buffer pool
/// for cold-cache resets.
fn disk_federation() -> (Mediator, StoreSource) {
    let schema = Schema::new(vec![
        AttributeDef::new("id", DataType::Long),
        AttributeDef::new("v", DataType::Long),
    ]);
    let rows = || (0..7_000i64).map(|i| vec![Value::Long(i), Value::Long(i % 97)]);
    let store = DiskStoreBuilder::new("disk")
        .collection(
            "RParts",
            DiskCollectionBuilder::new(schema.clone())
                .rows(rows())
                .object_size(56)
                .index("id"),
        )
        .collection(
            "CParts",
            DiskCollectionBuilder::new(schema)
                .rows(rows())
                .object_size(56)
                .cluster_on("id")
                .index("id"),
        )
        .build()
        .unwrap();
    let source = StoreSource::new(store, CostProfile::object_store());
    let handle = source.clone();
    let mut m = Mediator::new();
    m.register(Box::new(SourceWrapper::new("disk", source)))
        .unwrap();
    (m, handle)
}

/// The executed submit node of a report (exactly one expected).
fn the_submit(report: &AnalyzeReport) -> disco_core::AnalyzeNode {
    let submits: Vec<_> = report
        .root
        .nodes()
        .into_iter()
        .filter(|nd| nd.operator.starts_with("submit ") && nd.measured.is_some())
        .cloned()
        .collect();
    assert_eq!(submits.len(), 1, "{}", report.render());
    submits.into_iter().next().unwrap()
}

#[test]
fn explain_analyze_reports_time_to_first_per_submit() {
    // Both engines surface predicted vs measured time-to-first-row on
    // executed submit nodes; the streamed run measures the first frame,
    // the two-phase run the whole reply.
    for streaming in [false, true] {
        let mut m = Mediator::new();
        m.register(Box::new(SourceWrapper::new("hr", hr_store())))
            .unwrap();
        let mut m = m.with_options(MediatorOptions {
            streaming,
            streaming_chunk_rows: 8,
            ..Default::default()
        });
        let report = m
            .explain_analyze("SELECT name FROM Employee WHERE id < 5")
            .unwrap();
        let submit = the_submit(&report);
        let measured = submit.measured.unwrap();
        let first = measured
            .first_row_ms
            .unwrap_or_else(|| panic!("streaming={streaming}: no first-row measurement"));
        assert!(
            first > 0.0 && first <= measured.elapsed_ms + 1e-9,
            "streaming={streaming}: first {first} vs elapsed {}",
            measured.elapsed_ms
        );
        assert!(submit.predicted.time_first > 0.0);
        assert!(
            submit.first_row_error().is_some(),
            "streaming={streaming}: relative error should be computable"
        );
        let text = report.render();
        assert!(
            text.contains("time to first: predicted="),
            "streaming={streaming}:\n{text}"
        );
        // Combine-phase operators carry no first-row measurement of
        // their own... except the root, which tracks when the first
        // answer rows surfaced.
        for nd in report.root.nodes() {
            if !nd.operator.starts_with("submit ") && nd.operator != report.root.operator {
                assert_eq!(nd.measured.and_then(|mm| mm.first_row_ms), None);
            }
        }
    }
}

#[test]
fn page_io_random_placement_matches_yao_and_clustered_beats_it() {
    let (mut m, pool) = disk_federation();
    let sql = |t: &str| format!("SELECT id FROM {t} WHERE id < 100");

    // Random placement, cold pool: ~100 qualifying objects spread over
    // 100 pages — Yao predicts ≈63.4 page faults, and the measured
    // faults of the real index retrieval must land within 15 %.
    pool.clear_cache().unwrap();
    let random = m.explain_analyze(&sql("RParts")).unwrap();
    let node = the_submit(&random);
    let predicted = node.predicted_pages.expect("Yao prediction filled");
    let measured = node.measured.unwrap().pages.expect("submit reports pages");
    assert!(
        (55.0..=72.0).contains(&predicted),
        "Yao(7000,100,~100) ≈ 63.4, got {predicted}"
    );
    let err = node.pages_error().expect("both sides present");
    assert!(
        err.abs() < 0.15,
        "random placement: predicted {predicted:.1} vs measured {measured} ({:+.1}%)",
        err * 100.0
    );
    // The rendering shows the page-I/O comparison.
    assert!(random.render().contains("page io:"), "{}", random.render());

    // Clustered placement, same query: the 100 qualifying objects sit on
    // ~2 consecutive pages. The wrapper doesn't export clustering (§5),
    // so the mediator still predicts with Yao — EXPLAIN ANALYZE is where
    // the §7 divergence becomes visible.
    pool.clear_cache().unwrap();
    let clustered = m.explain_analyze(&sql("CParts")).unwrap();
    let node = the_submit(&clustered);
    let predicted = node.predicted_pages.expect("Yao prediction filled");
    let measured = node.measured.unwrap().pages.expect("submit reports pages");
    assert!(
        (measured as f64) < predicted / 3.0,
        "clustered measured {measured} should fall far below Yao {predicted:.1}"
    );
    assert!(measured <= 4, "~100 clustered objects span ~2 pages");

    // Non-submit nodes carry no page measurement.
    for nd in random.root.nodes() {
        if !nd.operator.starts_with("submit ") {
            assert_eq!(nd.measured.and_then(|mm| mm.pages), None, "{}", nd.operator);
        }
    }
}

#[test]
fn warm_cache_regime_scales_the_page_prediction() {
    let (mut m, pool) = disk_federation();
    let sql = "SELECT id FROM RParts WHERE id < 100";

    pool.clear_cache().unwrap();
    let cold = the_submit(&m.explain_analyze(sql).unwrap());
    let cold_pages = cold.predicted_pages.unwrap();

    // Declare the wrapper's pool warm at 80 % hits: the prediction drops
    // to the miss fraction. The pool really is warm now (same pages just
    // faulted), so the measurement agrees with the scaled prediction
    // direction: far fewer faults than the cold run.
    m.set_cache_regime("disk", CacheRegime::Warm { hit_rate: 0.8 })
        .unwrap();
    let warm = the_submit(&m.explain_analyze(sql).unwrap());
    let warm_pages = warm.predicted_pages.unwrap();
    assert!(
        (warm_pages - 0.2 * cold_pages).abs() < 1e-9,
        "cold {cold_pages} warm {warm_pages}"
    );
    let warm_measured = warm.measured.unwrap().pages.unwrap();
    let cold_measured = cold.measured.unwrap().pages.unwrap();
    assert!(
        warm_measured < cold_measured / 2,
        "re-running warm must fault less: cold {cold_measured}, warm {warm_measured}"
    );
}

//! Fault-injection tests for the transport runtime: the mediator keeps
//! answering queries while wrapper endpoints time out, go down, recover,
//! and trip circuit breakers.

use disco_catalog::Capabilities;
use disco_common::{AttributeDef, DataType, QualifiedName, Schema, Value};
use disco_mediator::{Mediator, MediatorOptions};
use disco_sources::{CollectionBuilder, CostProfile, FlatFile, PagedStore};
use disco_transport::{
    BreakerPolicy, BreakerState, ChannelTransport, FaultKind, FaultPlan, NetProfile, RetryPolicy,
    TransportClient,
};
use disco_wrapper::{SourceWrapper, Wrapper};

/// hr: Employee with an indexed id.
fn hr_store() -> PagedStore {
    let emp_schema = Schema::new(vec![
        AttributeDef::new("id", DataType::Long),
        AttributeDef::new("name", DataType::Str),
        AttributeDef::new("dept_id", DataType::Long),
    ]);
    let mut s = PagedStore::new("hr", CostProfile::object_store());
    s.add_collection(
        "Employee",
        CollectionBuilder::new(emp_schema)
            .rows((0..100i64).map(|i| {
                vec![
                    Value::Long(i),
                    Value::Str(format!("emp{i:03}")),
                    Value::Long(i % 10),
                ]
            }))
            .object_size(48)
            .index("id"),
    )
    .unwrap();
    s
}

/// files: a scan-only flat file of audit events.
fn audit_file() -> FlatFile {
    FlatFile::new(
        "files",
        "Audit",
        Schema::new(vec![
            AttributeDef::new("emp_id", DataType::Long),
            AttributeDef::new("action", DataType::Str),
        ]),
        (0..40i64).map(|i| vec![Value::Long(i % 10), Value::Str(format!("a{}", i % 4))]),
    )
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 3,
        deadline_ms: 30,
        backoff_base_ms: 1,
        backoff_factor: 2.0,
    }
}

/// Mediator over a ChannelTransport: `hr` healthy, `files` under the
/// given fault plan.
fn federation(files_faults: FaultPlan, retry: RetryPolicy) -> Mediator {
    let mut t = ChannelTransport::new();
    t.add_wrapper(Box::new(SourceWrapper::new("hr", hr_store())));
    t.add_wrapper_with(
        Box::new(
            SourceWrapper::new("files", audit_file()).with_capabilities(Capabilities::scan_only()),
        ),
        NetProfile::lan(),
        files_faults,
    );
    let client = TransportClient::new(Box::new(t)).with_retry(retry);
    let mut m = Mediator::new();
    m.connect(client).unwrap();
    m
}

#[test]
fn registration_travels_the_wire() {
    let m = federation(FaultPlan::none(), fast_retry());
    assert_eq!(m.catalog().collection_count(), 2);
    let stats = m
        .catalog()
        .stats(&QualifiedName::new("hr", "Employee"))
        .unwrap();
    assert_eq!(stats.extent.count_object, 100);
    assert!(stats.attribute("id").indexed);
}

#[test]
fn healthy_federation_answers_normally() {
    let mut m = federation(FaultPlan::none(), fast_retry());
    let r = m.query("SELECT name FROM Employee WHERE id < 10").unwrap();
    assert_eq!(r.tuples.len(), 10);
    assert!(!r.is_partial());
    assert_eq!(r.trace.submits[0].attempts, 1);
    // The simulated network charged real communication time.
    assert!(r.trace.communication_ms >= 100.0);
}

#[test]
fn dropped_messages_are_retried_to_success() {
    // The first two submits to `files` vanish; the third attempt lands.
    let mut m = federation(FaultPlan::first_n(FaultKind::Drop, 2), fast_retry());
    let r = m.query("SELECT action FROM Audit").unwrap();
    assert_eq!(r.tuples.len(), 40);
    assert!(!r.is_partial());
    assert_eq!(r.trace.submits.len(), 1);
    assert_eq!(r.trace.submits[0].attempts, 3);
    assert!(!r.trace.submits[0].failed);
}

#[test]
fn exhausted_retries_yield_a_partial_answer_not_an_error() {
    let mut m = federation(FaultPlan::always(FaultKind::Unavailable), fast_retry());
    let r = m
        .query(
            "SELECT e.name, a.action FROM Employee e, Audit a \
             WHERE e.id = a.emp_id AND e.id < 5",
        )
        .unwrap();
    // The join executed; the dead wrapper contributed nothing.
    assert!(r.is_partial());
    assert_eq!(r.trace.missing, vec![QualifiedName::new("files", "Audit")]);
    assert_eq!(r.tuples.len(), 0);
    // Both submit sites are traced; exactly one failed.
    assert_eq!(r.trace.submits.len(), 2);
    let failed: Vec<&str> = r
        .trace
        .submits
        .iter()
        .filter(|s| s.failed)
        .map(|s| s.wrapper.as_str())
        .collect();
    assert_eq!(failed, vec!["files"]);
}

#[test]
fn union_survives_a_down_wrapper_with_the_healthy_tuples() {
    let mut m = federation(
        FaultPlan::always(FaultKind::Drop),
        RetryPolicy {
            max_attempts: 2,
            deadline_ms: 20,
            backoff_base_ms: 1,
            backoff_factor: 2.0,
        },
    );
    let r = m
        .query(
            "SELECT name FROM Employee WHERE id < 2 \
             UNION ALL SELECT a.action FROM Audit a",
        )
        .unwrap();
    assert!(r.is_partial());
    // The healthy branch's tuples survive.
    assert_eq!(r.tuples.len(), 2);
    assert_eq!(r.trace.missing, vec![QualifiedName::new("files", "Audit")]);
}

#[test]
fn partial_answers_can_be_disabled() {
    let mut m = federation(FaultPlan::always(FaultKind::Unavailable), fast_retry());
    m = m.with_options(MediatorOptions {
        partial_answers: false,
        ..Default::default()
    });
    let err = m.query("SELECT action FROM Audit").unwrap_err();
    assert_eq!(err.kind(), "unavailable");
    assert!(err.is_transient());
}

#[test]
fn circuit_breaker_opens_half_opens_and_closes() {
    // `files` is down for its first three submits, then recovers. One
    // attempt per query; breaker opens at 3 failures, cools down for 2
    // rejected calls, then probes.
    let mut t = ChannelTransport::new();
    t.add_wrapper(Box::new(SourceWrapper::new("hr", hr_store())));
    t.add_wrapper_with(
        Box::new(
            SourceWrapper::new("files", audit_file()).with_capabilities(Capabilities::scan_only()),
        ),
        NetProfile::lan(),
        FaultPlan::first_n(FaultKind::Unavailable, 3),
    );
    let client = TransportClient::new(Box::new(t))
        .with_retry(RetryPolicy {
            max_attempts: 1,
            deadline_ms: 50,
            backoff_base_ms: 1,
            backoff_factor: 2.0,
        })
        .with_breaker(BreakerPolicy {
            failure_threshold: 3,
            cooldown_calls: 2,
        });
    let mut m = Mediator::new();
    m.connect(client).unwrap();

    let sql = "SELECT action FROM Audit";
    let state = |m: &Mediator| m.transport().unwrap().breaker_state("files").unwrap();

    // Three failing queries reach the threshold.
    for _ in 0..3 {
        assert!(m.query(sql).unwrap().is_partial());
    }
    assert_eq!(state(&m), BreakerState::Open);

    // While open, queries fail fast (still partial answers) without
    // touching the endpoint; two rejections burn the cooldown.
    for _ in 0..2 {
        assert!(m.query(sql).unwrap().is_partial());
        assert_eq!(state(&m), BreakerState::Open);
    }

    // Next query is the half-open probe; the wrapper has recovered, so
    // the breaker closes and the answer is complete.
    let r = m.query(sql).unwrap();
    assert!(!r.is_partial());
    assert_eq!(r.tuples.len(), 40);
    assert_eq!(state(&m), BreakerState::Closed);
}

#[test]
fn history_records_only_successful_submits() {
    let mut m = federation(FaultPlan::always(FaultKind::Unavailable), fast_retry());
    m = m.with_options(MediatorOptions {
        record_history: true,
        ..Default::default()
    });
    let r = m
        .query(
            "SELECT e.name, a.action FROM Employee e, Audit a \
             WHERE e.id = a.emp_id AND e.id < 5",
        )
        .unwrap();
    assert!(r.is_partial());
    // Only the hr submit was measured; the failed files submit must not
    // poison the historical cost rules.
    assert!(m.history_recorded() <= 1);
}

/// Four single-collection wrappers behind links that really sleep, so
/// wall-clock time reflects the simulated network.
fn sleepy_federation(parallel: bool) -> Mediator {
    let mut t = ChannelTransport::new();
    for i in 0..4 {
        let name = format!("s{i}");
        let coll = format!("C{i}");
        let schema = Schema::new(vec![AttributeDef::new("x", DataType::Long)]);
        let mut store = PagedStore::new(&name, CostProfile::relational());
        store
            .add_collection(
                &coll,
                CollectionBuilder::new(schema).rows((0..50i64).map(|v| vec![Value::Long(v)])),
            )
            .unwrap();
        t.add_wrapper_with(
            Box::new(SourceWrapper::new(&name, store)),
            // ~100 ms simulated round trip × 0.15 ≈ 15 ms real sleep.
            NetProfile::lan().with_sleep_scale(0.15),
            FaultPlan::none(),
        );
    }
    let client = TransportClient::new(Box::new(t));
    let mut m = Mediator::new().with_options(MediatorOptions {
        parallel_submits: parallel,
        ..Default::default()
    });
    m.connect(client).unwrap();
    m
}

#[test]
fn measured_parallel_wall_clock_beats_sequential() {
    let sql = "SELECT x FROM C0 UNION ALL SELECT x FROM C1 \
               UNION ALL SELECT x FROM C2 UNION ALL SELECT x FROM C3";
    let mut seq = sleepy_federation(false);
    let mut par = sleepy_federation(true);
    let s = seq.query(sql).unwrap();
    let p = par.query(sql).unwrap();
    assert_eq!(s.tuples.len(), 200);
    assert_eq!(p.tuples.len(), 200);

    // The parallel run really fanned out and measured its wall clock.
    assert!(p.trace.concurrent);
    assert!(!s.trace.concurrent);
    assert_eq!(p.trace.submits.len(), 4);

    // Four ~15 ms sleeps overlap instead of accumulating.
    assert!(
        p.trace.submit_wall_ms < s.trace.submit_wall_ms,
        "parallel fetch {} ms !< sequential fetch {} ms",
        p.trace.submit_wall_ms,
        s.trace.submit_wall_ms
    );
    // Measured parallel response time never exceeds the sequential
    // accounting of the same trace.
    assert!(p.trace.parallel_ms() <= p.trace.sequential_ms());
}

/// A wrapper whose registration fails — connect() must surface it.
struct BadRegistration;

impl Wrapper for BadRegistration {
    fn name(&self) -> &str {
        "bad"
    }
    fn registration(&self) -> disco_common::Result<disco_wrapper::Registration> {
        Err(disco_common::DiscoError::Source("stats unavailable".into()))
    }
    fn execute(
        &self,
        _plan: &disco_algebra::LogicalPlan,
    ) -> disco_common::Result<disco_sources::SubAnswer> {
        unreachable!("never registered")
    }
}

#[test]
fn connect_surfaces_registration_failures() {
    let mut t = ChannelTransport::new();
    t.add_wrapper(Box::new(BadRegistration));
    let mut m = Mediator::new();
    let err = m.connect(TransportClient::new(Box::new(t))).unwrap_err();
    assert_eq!(err.kind(), "source");
}

//! Differential tests for mid-query adaptive re-optimization: adaptive
//! runs must return exactly the same answers as static runs, on both
//! engines, while actually exercising the re-plan path.
//!
//! The skew federation seeds a cardinality misestimate through the
//! estimator's own uniformity assumption (equality selectivity is
//! `1/count_distinct`): collection `S`'s filter attribute `k` has ~400
//! distinct values but one dominant value covering ~90% of the rows, so
//! `WHERE k = 0` predicts `|S|/400` rows and observes ~`0.9·|S|` — a
//! natural two-orders-of-magnitude error, no stale-statistics machinery
//! required. The join graph is the chain `A–B–S`, where `S` sits at the
//! end: under the tiny prediction the `(B⋈S)`-first order is cheapest,
//! under the observed truth `(A⋈B)`-first is — so a correct re-planner
//! must abandon the running order and switch.

use disco_common::rng::seeded;
use disco_common::{AttributeDef, DataType, Schema, Value};
use disco_mediator::{
    AdaptivePolicy, Mediator, MediatorOptions, PlanSource, QueryResult, SharedMediator,
};
use disco_sources::{CollectionBuilder, CostProfile, PagedStore};
use disco_wrapper::SourceWrapper;

/// Order-insensitive answer digest (the chaos-soak convention): join
/// reordering legitimately permutes row order, never row content.
fn answer_key(r: &QueryResult) -> String {
    let mut rows: Vec<String> = r.tuples.iter().map(|t| format!("{t:?}")).collect();
    rows.sort();
    rows.join("\n")
}

fn long_schema(attrs: &[&str]) -> Schema {
    Schema::new(
        attrs
            .iter()
            .map(|a| AttributeDef::new(*a, DataType::Long))
            .collect(),
    )
}

/// `S(y, k)`: `k` is the skewed attribute — value 0 dominates while up
/// to 399 singleton values keep `count_distinct` high.
fn skew_rows(n: i64) -> Vec<Vec<Value>> {
    let minority = 399.min(n / 20);
    (0..n)
        .map(|i| {
            let k = if i < n - minority {
                0
            } else {
                i - (n - minority) + 1
            };
            vec![Value::Long(i % 100), Value::Long(k)]
        })
        .collect()
}

/// Chain federation: `A(x, p)` ⋈ `B(x, y)` ⋈ `S(y, k)`, with `S`
/// skew-filtered and `A` carrying an accurately-predicted filter of its
/// own (`p = 7` keeps 400 of 4k rows). `A.x` is unique while `B.x` has
/// 400 distinct values, so `A⋈B` stays at ~400 rows regardless of `S`:
/// under the tiny `S` prediction the `(B⋈S)`-first order is cheapest
/// (~80 rows), under the observed truth it builds a ~15k-row
/// intermediate that `(A⋈B)`-first avoids — the re-planner must switch.
fn federation_sized(n_s: i64, streaming: bool, adaptive: AdaptivePolicy) -> Mediator {
    let mut a = PagedStore::new("a", CostProfile::relational());
    a.add_collection(
        "A",
        CollectionBuilder::new(long_schema(&["x", "p"]))
            .rows((0..4_000i64).map(|i| vec![Value::Long(i), Value::Long(i % 10)])),
    )
    .unwrap();
    let mut b = PagedStore::new("b", CostProfile::relational());
    b.add_collection(
        "B",
        CollectionBuilder::new(long_schema(&["x", "y"]))
            .rows((0..400i64).map(|i| vec![Value::Long(i), Value::Long(i % 100)])),
    )
    .unwrap();
    let mut s = PagedStore::new("s", CostProfile::relational());
    s.add_collection(
        "S",
        CollectionBuilder::new(long_schema(&["y", "k"])).rows(skew_rows(n_s)),
    )
    .unwrap();
    let mut m = Mediator::new().with_options(MediatorOptions {
        streaming,
        streaming_chunk_rows: 64,
        adaptive,
        ..MediatorOptions::default()
    });
    m.register(Box::new(SourceWrapper::new("a", a))).unwrap();
    m.register(Box::new(SourceWrapper::new("b", b))).unwrap();
    m.register(Box::new(SourceWrapper::new("s", s))).unwrap();
    m
}

fn federation(streaming: bool, adaptive: AdaptivePolicy) -> Mediator {
    federation_sized(4_000, streaming, adaptive)
}

/// Chain join ending at the skew-filtered `S`: the optimizer predicts
/// ~20 rows out of `S` and joins it early; reality is ~3.8k rows.
const SKEW_SQL: &str = "SELECT a.x, b.y, s.k FROM A a, B b, S s \
     WHERE a.p = 7 AND a.x = b.x AND b.y = s.y AND s.k = 0";

#[test]
fn two_phase_adaptive_switches_and_matches_static() {
    let want = answer_key(
        &federation(false, AdaptivePolicy::default())
            .query(SKEW_SQL)
            .unwrap(),
    );
    let r = federation(false, AdaptivePolicy::enabled())
        .query(SKEW_SQL)
        .unwrap();
    assert_eq!(answer_key(&r), want, "adaptive answer diverged from static");
    assert!(
        !r.trace.replans.is_empty(),
        "seeded ~190x misestimate must trigger a re-plan consideration"
    );
    let ev = &r.trace.replans[0];
    assert!(
        ev.switched,
        "re-planner kept the stale order despite the corrected cardinalities: {}",
        ev.render()
    );
    assert!(
        r.trace.final_plan.is_some(),
        "switched run must expose its final plan"
    );
    assert!(ev.observed_rows > ev.predicted_rows * 100.0);
}

#[test]
fn streaming_adaptive_aborts_pipeline_and_matches_static() {
    let want = answer_key(
        &federation(false, AdaptivePolicy::default())
            .query(SKEW_SQL)
            .unwrap(),
    );
    let r = federation(true, AdaptivePolicy::enabled())
        .query(SKEW_SQL)
        .unwrap();
    assert_eq!(
        answer_key(&r),
        want,
        "streaming adaptive answer diverged from static two-phase"
    );
    assert!(!r.trace.replans.is_empty(), "streaming trigger never fired");
    assert_eq!(r.trace.replans[0].engine, "streaming");
    // The re-drive consumes already-materialized subanswers: every site
    // still reports exactly one submit, none re-fetched.
    assert_eq!(r.trace.submits.len(), 3);
}

#[test]
fn uniform_data_never_replans() {
    // No skew: predictions hold, so the checkpoint must stay silent on
    // both engines (zero re-plan events, not merely zero switches).
    for streaming in [false, true] {
        let mut m = federation(streaming, AdaptivePolicy::enabled());
        let r = m
            .query("SELECT a.x, b.y FROM A a, B b WHERE a.x = b.x")
            .unwrap();
        assert!(
            r.trace.replans.is_empty(),
            "uniform workload re-planned under streaming={streaming}: {:?}",
            r.trace.replans
        );
    }
}

#[test]
fn explain_analyze_reports_replan_event() {
    let mut m = federation(false, AdaptivePolicy::enabled());
    let report = m.explain_analyze(SKEW_SQL).unwrap();
    let text = report.render();
    assert!(
        text.contains("re-optimized: predicted"),
        "EXPLAIN ANALYZE must narrate the re-plan, got:\n{text}"
    );
}

/// A switched re-plan invalidates the proof the plan cache rests on (the
/// cached decisions were wrong at runtime), so the serving layer must
/// evict the shape instead of replaying it — and count the eviction.
#[test]
fn switched_replan_evicts_serving_cache_entry() {
    disco_obs::set_enabled(true);
    let bypasses = disco_obs::counter(disco_obs::names::PLAN_CACHE_REPLAN_BYPASS, &[]);
    let before = bypasses.get();

    let shared = SharedMediator::new(federation(false, AdaptivePolicy::enabled()));
    let first = shared.query(SKEW_SQL).unwrap();
    assert_eq!(first.source, PlanSource::CacheMiss);
    assert!(
        first.result.trace.replans.iter().any(|r| r.switched),
        "serving run must re-plan on the skew query"
    );
    // The poisoned entry is gone: the same shape optimizes from scratch
    // instead of replaying the abandoned decisions.
    let second = shared.query(SKEW_SQL).unwrap();
    assert_eq!(
        second.source,
        PlanSource::CacheMiss,
        "re-planned shape must not be served from the plan cache"
    );
    assert!(
        bypasses.get() >= before + 2,
        "each switched re-plan must count a plan_cache_replan_bypass_total eviction"
    );

    // Control: with adaptive off the same shape caches and replays.
    let control = SharedMediator::new(federation(false, AdaptivePolicy::default()));
    control.query(SKEW_SQL).unwrap();
    assert_eq!(
        control.query(SKEW_SQL).unwrap().source,
        PlanSource::CacheHit
    );
}

/// Randomized differential sweep: seeded federations with varying
/// sizes and constants; for every seed the four engine×policy
/// combinations must agree byte-for-byte, with an aggressive trigger so
/// re-plans actually occur along the way.
#[test]
fn randomized_differential_static_vs_adaptive_both_engines() {
    let aggressive = AdaptivePolicy {
        error_threshold: 1.5,
        min_rows: 1.0,
        ..AdaptivePolicy::enabled()
    };
    let mut replans_seen = 0usize;
    for seed in 0..6u64 {
        let mut rng = seeded(seed, "adaptive-diff");
        let n_s = 1_000 + rng.gen_range(0i64..4_000);
        // Filter constant: usually the dominant value (big misestimate),
        // sometimes a singleton (the opposite misestimate direction).
        let k = if rng.gen_range(0usize..4) == 0 { 1 } else { 0 };
        let sql = format!(
            "SELECT a.x, b.y, s.k FROM A a, B b, S s \
             WHERE a.p = 7 AND a.x = b.x AND b.y = s.y AND s.k = {k}"
        );
        let want = answer_key(
            &federation_sized(n_s, false, AdaptivePolicy::default())
                .query(&sql)
                .unwrap(),
        );
        for streaming in [false, true] {
            for policy in [AdaptivePolicy::default(), aggressive.clone()] {
                let enabled = policy.enabled;
                let r = federation_sized(n_s, streaming, policy)
                    .query(&sql)
                    .unwrap();
                assert_eq!(
                    answer_key(&r),
                    want,
                    "seed {seed} streaming={streaming} adaptive={enabled} diverged"
                );
                if enabled {
                    replans_seen += r.trace.replans.len();
                } else {
                    assert!(r.trace.replans.is_empty());
                }
            }
        }
    }
    assert!(
        replans_seen >= 6,
        "differential sweep barely exercised the re-plan path ({replans_seen} events)"
    );
}

//! Multi-tenant serving layer: a shared concurrent mediator with a
//! decision-replay plan cache and cost-driven admission control.
//!
//! [`SharedMediator`] wraps one [`Mediator`] in an `RwLock` so N
//! sessions plan and execute concurrently (execution is `&self`; see
//! [`Mediator::execute_plan_shared`]) and amortize one another's work
//! through three pieces of cross-session shared state:
//!
//! * the **plan cache** — keyed by the normalized query shape
//!   (constants parameterized away), storing the [`PlanDecisions`] of
//!   the winning plan rather than the plan itself, so a hit replays
//!   the decisions against the *incoming* query's constants
//!   (prepared-statement semantics: always correct, possibly no longer
//!   optimal for wildly different constants);
//! * the **estimation cache** — the subplan cost memo / rule-resolution
//!   cache of `disco_core::cache`, shared across sessions' cache-miss
//!   optimizations;
//! * the **health tracker** — already `Arc`-shared with the transport;
//!   its [`version`](disco_common::HealthTracker::version) feeds
//!   invalidation.
//!
//! Both caches are invalidated by exactly the events that could change
//! a winning plan: §4.3.1 query-scope historical-rule recordings
//! (history epoch), administrative catalog/registry mutations
//! ([`SharedMediator::with_mediator_mut`], catalog epoch), and
//! health-penalty shifts (quantized-penalty version). Hit, miss, and
//! per-reason invalidation counters go to `disco-obs`.
//!
//! [`AdmissionController`] sits in front: a concurrency limit with
//! per-tenant fair queuing for predicted-expensive ("analytical")
//! queries, a bypass lane with reserved slots for predicted-cheap
//! ("interactive") ones — the classification driven by the cost
//! model's estimated `TotalTime` — and optional per-tenant in-flight
//! caps.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, RwLock};
use std::time::Instant;

use disco_common::{Result, Value};
use disco_core::EstimatorCache;
use disco_obs::names;

use crate::analyze::analyze;
use crate::executor::QueryResult;
use crate::mediator::Mediator;
use crate::optimizer::{Objective, OptimizedPlan, PlanDecisions};
use crate::sql::{parse_statement, Condition, SqlExpr, Statement};

// ---------------------------------------------------------------------
// Cache-key normalization
// ---------------------------------------------------------------------

/// One-letter type tag for a parameterized constant: the key must
/// distinguish `id < 10` from `name < 'x'` (different rule resolution)
/// but not `id < 10` from `id < 20`.
fn type_tag(v: &Value) -> &'static str {
    match v {
        Value::Null => "N",
        Value::Bool(_) => "B",
        Value::Long(_) => "L",
        Value::Double(_) => "D",
        Value::Str(_) => "S",
    }
}

fn render_expr(e: &SqlExpr, out: &mut String) {
    use std::fmt::Write as _;
    match e {
        SqlExpr::Col(c) => {
            let _ = write!(out, "{c}");
        }
        SqlExpr::Const(v) => {
            let _ = write!(out, "{v:?}");
        }
        SqlExpr::Agg(f, arg) => {
            let _ = write!(out, "{f:?}(");
            match arg {
                Some(c) => {
                    let _ = write!(out, "{c}");
                }
                None => out.push('*'),
            }
            out.push(')');
        }
        SqlExpr::Arith { op, left, right } => {
            out.push('(');
            render_expr(left, out);
            let _ = write!(out, " {op:?} ");
            render_expr(right, out);
            out.push(')');
        }
    }
}

/// Canonical render of a statement's *shape*: restriction constants are
/// replaced by `?`-typed placeholders so queries differing only in
/// those constants share one cache entry. `UNION` chains return `None`
/// (uncacheable — they multiply shapes for little reuse).
pub fn normalized_key(stmt: &Statement) -> Option<String> {
    use std::fmt::Write as _;
    if stmt.branches.len() != 1 {
        return None;
    }
    let q = &stmt.branches[0];
    let mut k = String::with_capacity(96);
    k.push_str("SELECT ");
    if q.distinct {
        k.push_str("DISTINCT ");
    }
    match &q.select {
        None => k.push('*'),
        Some(items) => {
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    k.push(',');
                }
                render_expr(&item.expr, &mut k);
                if let Some(a) = &item.alias {
                    let _ = write!(k, " AS {a}");
                }
            }
        }
    }
    k.push_str(" FROM ");
    for (i, t) in q.from.iter().enumerate() {
        if i > 0 {
            k.push(',');
        }
        if let Some(w) = &t.wrapper {
            let _ = write!(k, "{w}.");
        }
        let _ = write!(k, "{} {}", t.collection, t.binding_name());
    }
    if !q.where_.is_empty() {
        k.push_str(" WHERE ");
        for (i, c) in q.where_.iter().enumerate() {
            if i > 0 {
                k.push_str(" AND ");
            }
            match c {
                Condition::Restriction { col, op, value } => {
                    let _ = write!(k, "{col} {op:?} ?{}", type_tag(value));
                }
                Condition::ColCompare { left, op, right } => {
                    let _ = write!(k, "{left} {op:?} {right}");
                }
            }
        }
    }
    if !q.group_by.is_empty() {
        k.push_str(" GROUP BY ");
        for (i, c) in q.group_by.iter().enumerate() {
            if i > 0 {
                k.push(',');
            }
            let _ = write!(k, "{c}");
        }
    }
    if !stmt.order_by.is_empty() {
        k.push_str(" ORDER BY ");
        for (i, (c, asc)) in stmt.order_by.iter().enumerate() {
            if i > 0 {
                k.push(',');
            }
            let _ = write!(k, "{c} {}", if *asc { "ASC" } else { "DESC" });
        }
    }
    // The LIMIT value is parameterized like restriction constants, but
    // its *presence* is part of the shape: a LIMIT query is planned
    // under the `TimeFirst` objective and must not share an entry with
    // its unlimited twin.
    if stmt.limit.is_some() {
        k.push_str(" LIMIT ?");
    }
    Some(k)
}

// ---------------------------------------------------------------------
// Shared mediator + plan cache
// ---------------------------------------------------------------------

/// Where a served plan came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanSource {
    /// Replayed from cached decisions.
    CacheHit,
    /// Fully optimized (and, when extractable, now cached).
    CacheMiss,
    /// Shape the cache does not handle (`UNION` chains).
    Uncacheable,
}

/// Snapshot of the plan cache's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    pub hits: u64,
    pub misses: u64,
    pub invalidations: u64,
}

impl PlanCacheStats {
    /// hits / (hits + misses); 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let looked = self.hits + self.misses;
        if looked == 0 {
            0.0
        } else {
            self.hits as f64 / looked as f64
        }
    }
}

/// The answer to one served query.
pub struct ServedQuery {
    pub result: QueryResult,
    pub source: PlanSource,
    /// The cost model's `TotalTime` prediction for the chosen plan —
    /// what the admission controller classified on.
    pub predicted_ms: f64,
}

struct CacheEntry {
    decisions: PlanDecisions,
    history_epoch: u64,
    catalog_epoch: u64,
    capability_epoch: u64,
    health_version: u64,
}

/// The cache-validity state: `(history, catalog, capability, health)`.
type CacheState = (u64, u64, u64, u64);

/// A [`Mediator`] shared by N concurrent sessions. See the module docs
/// for the shared-state layout and invalidation protocol.
///
/// Lock order (to stay deadlock-free, never acquire in reverse): the
/// mediator `RwLock` first, then any of the internal `Mutex`es. Read
/// acquisitions are never nested — a waiting writer would deadlock a
/// re-entrant reader.
pub struct SharedMediator {
    inner: RwLock<Mediator>,
    plans: Mutex<HashMap<String, CacheEntry>>,
    /// Shared estimation cache plus the [`CacheState`] it was built
    /// against; swapped for a fresh one when any component moves.
    est_cache: Mutex<(std::sync::Arc<EstimatorCache>, CacheState)>,
    /// Bumped when §4.3.1 history recording added query-scope rules.
    history_epoch: AtomicU64,
    /// Bumped by [`Self::with_mediator_mut`] (registration, refresh,
    /// registry edits — anything that may change catalog or rules).
    catalog_epoch: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
}

impl SharedMediator {
    /// Wrap a fully-registered mediator for concurrent serving.
    pub fn new(mediator: Mediator) -> Self {
        SharedMediator {
            inner: RwLock::new(mediator),
            plans: Mutex::new(HashMap::new()),
            est_cache: Mutex::new((std::sync::Arc::new(EstimatorCache::new()), (0, 0, 0, 0))),
            history_epoch: AtomicU64::new(0),
            catalog_epoch: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Read access to the wrapped mediator.
    pub fn with_mediator<R>(&self, f: impl FnOnce(&Mediator) -> R) -> R {
        f(&self.inner.read().unwrap())
    }

    /// Exclusive access to the wrapped mediator for administrative
    /// mutation (register, refresh, registry edits). Always bumps the
    /// catalog epoch, invalidating every cached plan — mutations are
    /// rare and correctness beats precision here.
    pub fn with_mediator_mut<R>(&self, f: impl FnOnce(&mut Mediator) -> R) -> R {
        let r = f(&mut self.inner.write().unwrap());
        self.catalog_epoch.fetch_add(1, Ordering::Relaxed);
        r
    }

    /// Plan cache counters.
    pub fn cache_stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }

    /// Drop every cached plan (tests; administrative).
    pub fn clear_plan_cache(&self) {
        self.plans.lock().unwrap().clear();
    }

    fn note_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        if disco_obs::enabled() {
            disco_obs::counter(names::PLAN_CACHE_HITS, &[]).inc();
        }
    }

    fn note_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        if disco_obs::enabled() {
            disco_obs::counter(names::PLAN_CACHE_MISSES, &[]).inc();
        }
    }

    fn note_invalidation(&self, reason: &str) {
        self.invalidations.fetch_add(1, Ordering::Relaxed);
        if disco_obs::enabled() {
            disco_obs::counter(names::PLAN_CACHE_INVALIDATIONS, &[("reason", reason)]).inc();
        }
    }

    /// Change one wrapper's declared capability profile without the
    /// blanket catalog-epoch bump of [`Self::with_mediator_mut`]: the
    /// capability epoch in the cache key is what invalidates replayed
    /// decisions negotiated against the old profile.
    pub fn set_capability_profile(
        &self,
        wrapper: &str,
        profile: disco_catalog::CapabilityProfile,
    ) -> Result<()> {
        self.inner
            .write()
            .unwrap()
            .set_wrapper_capabilities(wrapper, profile.capabilities())
    }

    /// The estimation cache valid for `state`, replacing a stale one.
    fn estimation_cache(&self, state: CacheState) -> std::sync::Arc<EstimatorCache> {
        let mut guard = self.est_cache.lock().unwrap();
        if guard.1 != state {
            *guard = (std::sync::Arc::new(EstimatorCache::new()), state);
        }
        guard.0.clone()
    }

    /// Plan a statement through the cache. Returns the plan and where
    /// it came from.
    pub fn plan(&self, sql: &str) -> Result<(OptimizedPlan, PlanSource)> {
        let stmt = parse_statement(sql)?;
        let Some(key) = normalized_key(&stmt) else {
            let m = self.inner.read().unwrap();
            return Ok((m.plan(sql)?, PlanSource::Uncacheable));
        };
        let mut query = stmt.branches.into_iter().next().expect("one branch");
        query.order_by = stmt.order_by;
        query.limit = stmt.limit;
        // Same objective rule as `Mediator::plan`: a LIMIT ranks plans
        // by `TimeFirst`. The key's ` LIMIT ?` marker keeps the two
        // objectives' entries apart.
        let objective = if stmt.limit.is_some() {
            Objective::TimeFirst
        } else {
            Objective::TotalTime
        };

        let m = self.inner.read().unwrap();
        let state = (
            self.history_epoch.load(Ordering::Relaxed),
            self.catalog_epoch.load(Ordering::Relaxed),
            m.catalog().capability_epoch(),
            m.health().version(),
        );
        let analyzed = analyze(&query, m.catalog())?;

        let cached = {
            let mut plans = self.plans.lock().unwrap();
            match plans.get(&key) {
                Some(e)
                    if (
                        e.history_epoch,
                        e.catalog_epoch,
                        e.capability_epoch,
                        e.health_version,
                    ) == state =>
                {
                    Some(e.decisions.clone())
                }
                Some(e) => {
                    let reason = if e.catalog_epoch != state.1 {
                        "catalog"
                    } else if e.history_epoch != state.0 {
                        "history"
                    } else if e.capability_epoch != state.2 {
                        "capability"
                    } else {
                        "health"
                    };
                    plans.remove(&key);
                    self.note_invalidation(reason);
                    None
                }
                None => None,
            }
        };
        if let Some(decisions) = cached {
            // A replay failure (e.g. the decisions' wrapper vanished
            // between the epoch bump and here) falls through to a full
            // optimization rather than failing the query.
            if let Ok(plan) = m
                .optimizer()
                .with_objective(objective)
                .replay(&analyzed, &decisions)
            {
                self.note_hit();
                return Ok((plan, PlanSource::CacheHit));
            }
        }

        self.note_miss();
        let est_cache = self.estimation_cache(state);
        let plan = m
            .optimizer()
            .with_objective(objective)
            .with_cache(Some(&est_cache))
            .optimize(&analyzed)?;
        // The optimizer carries the decisions extracted *before* the
        // negotiation pass: a fused plan is not decomposable back into
        // per-table access choices, but replay re-runs negotiation.
        if let Some(decisions) = plan.decisions.clone() {
            self.plans.lock().unwrap().insert(
                key,
                CacheEntry {
                    decisions,
                    history_epoch: state.0,
                    catalog_epoch: state.1,
                    capability_epoch: state.2,
                    health_version: state.3,
                },
            );
        }
        Ok((plan, PlanSource::CacheMiss))
    }

    /// Execute an already-planned query under the read lock; when the
    /// mediator records history (§4.3.1), briefly take the write lock
    /// afterwards and bump the history epoch if rules were recorded.
    pub fn execute(&self, optimized: OptimizedPlan) -> Result<ServedQuery> {
        self.execute_with_source(optimized, PlanSource::Uncacheable)
    }

    fn execute_with_source(
        &self,
        optimized: OptimizedPlan,
        source: PlanSource,
    ) -> Result<ServedQuery> {
        self.execute_keyed(optimized, source, None)
    }

    fn execute_keyed(
        &self,
        optimized: OptimizedPlan,
        source: PlanSource,
        key: Option<&str>,
    ) -> Result<ServedQuery> {
        let predicted_ms = optimized.estimated.total_time;
        let (result, wants_history) = {
            let m = self.inner.read().unwrap();
            let result = m.execute_plan_shared(optimized)?;
            let wants =
                m.options().record_history && result.trace.submits.iter().any(|s| s.complete);
            (result, wants)
        };
        // A mid-query re-plan that switched proves the cached decisions
        // for this shape were derived from misestimated cardinalities:
        // evict them so other sessions (and other constants) re-optimize
        // instead of replaying the bad order. The switched plan itself is
        // never cached — it was corrected for *this* query's constants.
        if result.trace.replans.iter().any(|r| r.switched) {
            if let Some(key) = key {
                if self.plans.lock().unwrap().remove(key).is_some() && disco_obs::enabled() {
                    disco_obs::counter(disco_obs::names::PLAN_CACHE_REPLAN_BYPASS, &[]).inc();
                }
            }
        }
        if wants_history {
            let recorded = self
                .inner
                .write()
                .unwrap()
                .record_trace_history(&result.trace);
            if recorded > 0 {
                self.history_epoch.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(ServedQuery {
            result,
            source,
            predicted_ms,
        })
    }

    /// Full query processing for one session: plan through the cache,
    /// execute concurrently.
    pub fn query(&self, sql: &str) -> Result<ServedQuery> {
        let (optimized, source) = self.plan(sql)?;
        let key = parse_statement(sql)
            .ok()
            .and_then(|stmt| normalized_key(&stmt));
        self.execute_keyed(optimized, source, key.as_deref())
    }
}

// ---------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------

/// Predicted workload class, from estimated `TotalTime`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryClass {
    /// Predicted-cheap: bypasses the analytical queue into reserved
    /// slots.
    Interactive,
    /// Predicted-expensive: waits in the per-tenant fair queue for one
    /// of the `max_concurrent` slots.
    Analytical,
}

impl QueryClass {
    /// Metric label.
    pub fn label(&self) -> &'static str {
        match self {
            QueryClass::Interactive => "interactive",
            QueryClass::Analytical => "analytical",
        }
    }
}

/// Tuning knobs for [`AdmissionController`].
#[derive(Debug, Clone)]
pub struct AdmissionPolicy {
    /// Concurrency limit for analytical queries.
    pub max_concurrent: usize,
    /// Extra slots only interactive queries may occupy (the bypass
    /// lane); total in-flight is capped at
    /// `max_concurrent + interactive_reserved`.
    pub interactive_reserved: usize,
    /// Queries with estimated `TotalTime` strictly below this are
    /// interactive.
    pub interactive_threshold_ms: f64,
    /// Per-tenant in-flight cap across both classes; 0 = unlimited.
    pub per_tenant_inflight: usize,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            max_concurrent: 4,
            interactive_reserved: 4,
            interactive_threshold_ms: 500.0,
            per_tenant_inflight: 0,
        }
    }
}

impl AdmissionPolicy {
    /// Classify a query by the cost model's `TotalTime` prediction.
    pub fn classify(&self, predicted_total_ms: f64) -> QueryClass {
        if predicted_total_ms < self.interactive_threshold_ms {
            QueryClass::Interactive
        } else {
            QueryClass::Analytical
        }
    }
}

#[derive(Default)]
struct AdmState {
    analytical_inflight: usize,
    interactive_inflight: usize,
    tenant_inflight: BTreeMap<String, usize>,
    /// FIFO ticket queue per tenant (analytical only).
    queues: BTreeMap<String, VecDeque<u64>>,
    /// Serve sequence when each tenant last got an analytical slot —
    /// the recency component of the fairness order.
    last_served: BTreeMap<String, u64>,
    next_ticket: u64,
    serve_seq: u64,
}

/// Admission scheduler: blocking [`admit`](AdmissionController::admit)
/// returns an RAII permit whose drop releases the slot.
pub struct AdmissionController {
    policy: AdmissionPolicy,
    state: Mutex<AdmState>,
    cv: Condvar,
    bypasses: AtomicU64,
}

impl AdmissionController {
    pub fn new(policy: AdmissionPolicy) -> Self {
        AdmissionController {
            policy,
            state: Mutex::new(AdmState::default()),
            cv: Condvar::new(),
            bypasses: AtomicU64::new(0),
        }
    }

    pub fn policy(&self) -> &AdmissionPolicy {
        &self.policy
    }

    /// Interactive admissions that jumped a non-empty analytical queue.
    pub fn bypasses(&self) -> u64 {
        self.bypasses.load(Ordering::Relaxed)
    }

    fn tenant_ok(&self, st: &AdmState, tenant: &str) -> bool {
        self.policy.per_tenant_inflight == 0
            || st.tenant_inflight.get(tenant).copied().unwrap_or(0)
                < self.policy.per_tenant_inflight
    }

    /// Deficit round-robin: among tenants with a queued analytical
    /// query and headroom under their cap, the one with the fewest
    /// in-flight queries runs next; least-recently-served breaks ties,
    /// then name (deterministic).
    fn chosen_tenant<'s>(&self, st: &'s AdmState) -> Option<&'s str> {
        st.queues
            .iter()
            .filter(|(t, q)| !q.is_empty() && self.tenant_ok(st, t))
            .min_by_key(|(t, _)| {
                (
                    st.tenant_inflight.get(*t).copied().unwrap_or(0),
                    st.last_served.get(*t).copied().unwrap_or(0),
                    t.as_str(),
                )
            })
            .map(|(t, _)| t.as_str())
    }

    /// Block until `tenant` may run a `class` query; the returned
    /// permit holds the slot until dropped.
    pub fn admit(&self, tenant: &str, class: QueryClass) -> AdmissionPermit<'_> {
        let start = Instant::now();
        let mut st = self.state.lock().unwrap();
        match class {
            QueryClass::Interactive => {
                loop {
                    let total = st.analytical_inflight + st.interactive_inflight;
                    if total < self.policy.max_concurrent + self.policy.interactive_reserved
                        && self.tenant_ok(&st, tenant)
                    {
                        break;
                    }
                    st = self.cv.wait(st).unwrap();
                }
                if st.queues.values().any(|q| !q.is_empty()) {
                    self.bypasses.fetch_add(1, Ordering::Relaxed);
                    if disco_obs::enabled() {
                        disco_obs::counter(names::ADMISSION_BYPASS, &[]).inc();
                    }
                }
                st.interactive_inflight += 1;
            }
            QueryClass::Analytical => {
                let ticket = st.next_ticket;
                st.next_ticket += 1;
                st.queues
                    .entry(tenant.to_string())
                    .or_default()
                    .push_back(ticket);
                loop {
                    if st.analytical_inflight < self.policy.max_concurrent
                        && st.queues.get(tenant).and_then(|q| q.front()) == Some(&ticket)
                        && self.chosen_tenant(&st) == Some(tenant)
                    {
                        break;
                    }
                    st = self.cv.wait(st).unwrap();
                }
                st.queues.get_mut(tenant).expect("queued").pop_front();
                st.analytical_inflight += 1;
                let seq = st.serve_seq;
                st.serve_seq += 1;
                st.last_served.insert(tenant.to_string(), seq);
                // Another tenant's front may have become the chosen one.
                self.cv.notify_all();
            }
        }
        *st.tenant_inflight.entry(tenant.to_string()).or_default() += 1;
        drop(st);
        let waited_ms = start.elapsed().as_secs_f64() * 1000.0;
        if disco_obs::enabled() {
            let labels = [("class", class.label())];
            disco_obs::counter(names::ADMISSION_ADMITTED, &labels).inc();
            disco_obs::histogram(names::ADMISSION_WAIT_MS, &labels).observe(waited_ms);
        }
        AdmissionPermit {
            controller: self,
            tenant: tenant.to_string(),
            class,
            waited_ms,
        }
    }

    fn release(&self, tenant: &str, class: QueryClass) {
        let mut st = self.state.lock().unwrap();
        match class {
            QueryClass::Interactive => st.interactive_inflight -= 1,
            QueryClass::Analytical => st.analytical_inflight -= 1,
        }
        if let Some(n) = st.tenant_inflight.get_mut(tenant) {
            *n -= 1;
            if *n == 0 {
                st.tenant_inflight.remove(tenant);
            }
        }
        drop(st);
        self.cv.notify_all();
    }
}

/// RAII admission slot; dropping it releases the slot and wakes
/// waiters.
pub struct AdmissionPermit<'a> {
    controller: &'a AdmissionController,
    tenant: String,
    class: QueryClass,
    waited_ms: f64,
}

impl AdmissionPermit<'_> {
    /// How long this query queued before admission.
    pub fn waited_ms(&self) -> f64 {
        self.waited_ms
    }

    pub fn class(&self) -> QueryClass {
        self.class
    }
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        self.controller.release(&self.tenant, self.class);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mediator::MediatorOptions;
    use disco_common::{AttributeDef, DataType, Schema};
    use disco_sources::{CollectionBuilder, CostProfile, PagedStore};
    use disco_wrapper::SourceWrapper;
    use std::sync::mpsc;
    use std::sync::Arc;

    fn store() -> PagedStore {
        let emp = Schema::new(vec![
            AttributeDef::new("id", DataType::Long),
            AttributeDef::new("name", DataType::Str),
            AttributeDef::new("dept_id", DataType::Long),
        ]);
        let dept = Schema::new(vec![
            AttributeDef::new("dept_id", DataType::Long),
            AttributeDef::new("budget", DataType::Long),
        ]);
        let mut s = PagedStore::new("hr", CostProfile::object_store());
        s.add_collection(
            "Employee",
            CollectionBuilder::new(emp)
                .rows((0..300i64).map(|i| {
                    vec![
                        Value::Long(i),
                        Value::Str(format!("e{i:03}")),
                        Value::Long(i % 10),
                    ]
                }))
                .object_size(48)
                .index("id"),
        )
        .unwrap();
        s.add_collection(
            "Dept",
            CollectionBuilder::new(dept)
                .rows((0..10i64).map(|i| vec![Value::Long(i), Value::Long(i * 100)]))
                .object_size(24)
                .index("dept_id"),
        )
        .unwrap();
        s
    }

    fn shared(record_history: bool) -> SharedMediator {
        let mut m = Mediator::new().with_options(MediatorOptions {
            record_history,
            ..Default::default()
        });
        m.register(Box::new(SourceWrapper::new("hr", store())))
            .unwrap();
        SharedMediator::new(m)
    }

    #[test]
    fn distinct_constants_share_one_key() {
        let a = parse_statement("SELECT name FROM Employee WHERE id < 10").unwrap();
        let b = parse_statement("SELECT name FROM Employee WHERE id < 250").unwrap();
        assert_eq!(normalized_key(&a), normalized_key(&b));
        // A different constant *type* or shape separates keys.
        let c = parse_statement("SELECT name FROM Employee WHERE id < 10.5").unwrap();
        assert_ne!(normalized_key(&a), normalized_key(&c));
        let d = parse_statement("SELECT name FROM Employee WHERE id > 10").unwrap();
        assert_ne!(normalized_key(&a), normalized_key(&d));
        let e = parse_statement(
            "SELECT name FROM Employee WHERE id < 10 UNION SELECT name FROM Employee",
        )
        .unwrap();
        assert_eq!(normalized_key(&e), None);
    }

    #[test]
    fn cache_hits_replay_with_new_constants() {
        let sm = shared(false);
        let (_, s1) = sm.plan("SELECT name FROM Employee WHERE id < 10").unwrap();
        assert_eq!(s1, PlanSource::CacheMiss);
        let (p2, s2) = sm.plan("SELECT name FROM Employee WHERE id < 42").unwrap();
        assert_eq!(s2, PlanSource::CacheHit);
        // The replayed plan carries the new constant.
        assert!(format!("{:?}", p2.physical).contains("42"));
        assert_eq!(sm.cache_stats().hits, 1);
        assert_eq!(sm.cache_stats().misses, 1);
    }

    #[test]
    fn history_recording_invalidates() {
        let sm = shared(true);
        let sql = "SELECT name FROM Employee WHERE id < 10";
        let served = sm.query(sql).unwrap();
        assert_eq!(served.source, PlanSource::CacheMiss);
        // Execution recorded query-scope rules, bumping the history
        // epoch: the entry written at epoch 0 is now stale.
        assert!(sm.with_mediator(|m| m.history_recorded()) > 0);
        let (_, s2) = sm.plan(sql).unwrap();
        assert_eq!(s2, PlanSource::CacheMiss);
        assert_eq!(sm.cache_stats().invalidations, 1);
    }

    #[test]
    fn health_shift_invalidates() {
        let sm = shared(false);
        let sql = "SELECT name FROM Employee WHERE id < 10";
        sm.plan(sql).unwrap();
        let (_, s) = sm.plan(sql).unwrap();
        assert_eq!(s, PlanSource::CacheHit);
        sm.with_mediator(|m| {
            for _ in 0..4 {
                m.health().record_failure("hr");
            }
        });
        let (_, s) = sm.plan(sql).unwrap();
        assert_eq!(s, PlanSource::CacheMiss);
        assert_eq!(sm.cache_stats().invalidations, 1);
    }

    #[test]
    fn admin_mutation_invalidates() {
        let sm = shared(false);
        let sql = "SELECT name FROM Employee WHERE id < 10";
        sm.plan(sql).unwrap();
        sm.with_mediator_mut(|_| ());
        let (_, s) = sm.plan(sql).unwrap();
        assert_eq!(s, PlanSource::CacheMiss);
    }

    #[test]
    fn capability_profile_change_invalidates() {
        let sm = shared(false);
        let sql = "SELECT name FROM Employee WHERE id < 10";
        sm.plan(sql).unwrap();
        let (_, s) = sm.plan(sql).unwrap();
        assert_eq!(s, PlanSource::CacheHit);
        // Demote the wrapper to scan-only: decisions that pushed the
        // selection are no longer legal and must not replay.
        sm.set_capability_profile("hr", disco_catalog::CapabilityProfile::ScanOnly)
            .unwrap();
        let (plan, s) = sm.plan(sql).unwrap();
        assert_eq!(s, PlanSource::CacheMiss);
        assert_eq!(sm.cache_stats().invalidations, 1);
        // The re-optimized plan lifts the selection to the mediator.
        let filters = count_filters(&plan.physical);
        assert_eq!(filters, 1);
        // A profile set to its current value is not a change.
        sm.plan(sql).unwrap();
        sm.set_capability_profile("hr", disco_catalog::CapabilityProfile::ScanOnly)
            .unwrap();
        let (_, s) = sm.plan(sql).unwrap();
        assert_eq!(s, PlanSource::CacheHit);
    }

    fn count_filters(p: &disco_algebra::PhysicalPlan) -> usize {
        matches!(p, disco_algebra::PhysicalPlan::Filter { .. }) as usize
            + p.children().iter().map(|c| count_filters(c)).sum::<usize>()
    }

    #[test]
    fn concurrent_sessions_share_the_cache() {
        let sm = Arc::new(shared(false));
        sm.plan("SELECT name FROM Employee WHERE id < 1").unwrap();
        let mut handles = Vec::new();
        for i in 0..4 {
            let sm = sm.clone();
            handles.push(std::thread::spawn(move || {
                for j in 0..5 {
                    let sql = format!("SELECT name FROM Employee WHERE id < {}", i * 10 + j + 2);
                    let served = sm.query(&sql).unwrap();
                    assert_eq!(served.source, PlanSource::CacheHit);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sm.cache_stats().hits, 20);
    }

    #[test]
    fn interactive_bypasses_saturated_analytical_lane() {
        let ctl = Arc::new(AdmissionController::new(AdmissionPolicy {
            max_concurrent: 1,
            interactive_reserved: 1,
            ..Default::default()
        }));
        let held = ctl.admit("t1", QueryClass::Analytical);
        // A second analytical query blocks...
        let (tx, rx) = mpsc::channel();
        let c2 = ctl.clone();
        let waiter = std::thread::spawn(move || {
            let p = c2.admit("t2", QueryClass::Analytical);
            tx.send(()).unwrap();
            drop(p);
        });
        assert!(rx
            .recv_timeout(std::time::Duration::from_millis(50))
            .is_err());
        // ...but an interactive one gets a reserved slot immediately,
        // and counts as a bypass because the analytical queue is
        // non-empty.
        let quick = ctl.admit("t3", QueryClass::Interactive);
        assert_eq!(ctl.bypasses(), 1);
        drop(quick);
        // Releasing the analytical slot admits the waiter.
        drop(held);
        rx.recv_timeout(std::time::Duration::from_secs(5))
            .expect("queued analytical query was never admitted");
        waiter.join().unwrap();
    }

    #[test]
    fn fair_queue_prefers_tenant_with_fewer_inflight() {
        let ctl = AdmissionController::new(AdmissionPolicy {
            max_concurrent: 2,
            ..Default::default()
        });
        let st = ctl.state.lock().unwrap();
        drop(st);
        let _a = ctl.admit("busy", QueryClass::Analytical);
        // busy has 1 in flight; with one slot left and both tenants
        // queued, `idle` must be chosen.
        {
            let mut st = ctl.state.lock().unwrap();
            st.queues.entry("busy".into()).or_default().push_back(100);
            st.queues.entry("idle".into()).or_default().push_back(101);
            assert_eq!(ctl.chosen_tenant(&st), Some("idle"));
            st.queues.clear();
        }
    }

    #[test]
    fn per_tenant_cap_blocks_and_releases() {
        let ctl = Arc::new(AdmissionController::new(AdmissionPolicy {
            max_concurrent: 8,
            per_tenant_inflight: 1,
            ..Default::default()
        }));
        let first = ctl.admit("t", QueryClass::Analytical);
        let (tx, rx) = mpsc::channel();
        let c2 = ctl.clone();
        let waiter = std::thread::spawn(move || {
            let _p = c2.admit("t", QueryClass::Analytical);
            tx.send(()).unwrap();
        });
        assert!(rx
            .recv_timeout(std::time::Duration::from_millis(50))
            .is_err());
        drop(first);
        rx.recv_timeout(std::time::Duration::from_secs(5))
            .expect("capped tenant never admitted after release");
        waiter.join().unwrap();
    }

    #[test]
    fn classification_uses_threshold() {
        let p = AdmissionPolicy::default();
        assert_eq!(p.classify(10.0), QueryClass::Interactive);
        assert_eq!(p.classify(10_000.0), QueryClass::Analytical);
    }
}

//! The mediator facade: registration phase + query phase (Figures 1–2).

use std::collections::BTreeMap;
use std::sync::Arc;

use disco_algebra::display::explain_physical;
use disco_algebra::{LogicalPlan, PhysicalPlan};
use disco_catalog::Catalog;
use disco_common::{DiscoError, HealthTracker, Result};
use disco_core::{AnalyzeNode, Estimator, HistoryRecorder, NodeCost, RuleRegistry};
use disco_transport::{ResiliencePolicy, TransportClient};
use disco_wrapper::{Registration, Wrapper};

use crate::adaptive::{AdaptivePolicy, Replanner};
use crate::analyze::analyze;
use crate::executor::{submit_sites, ExecutionTrace, Executor, QueryResult, SitePrediction};
use crate::optimizer::{JoinEnumeration, Objective, OptimizedPlan, Optimizer, OptimizerOptions};

/// Behaviour switches.
#[derive(Debug, Clone)]
pub struct MediatorOptions {
    /// Record executed subqueries as query-scope rules (§4.3.1).
    pub record_history: bool,
    /// Abandon estimation of plans worse than the current best (§4.3.2).
    /// On by default.
    pub pruning: bool,
    /// Issue wrapper subqueries concurrently (Figure 2 shows steps 4a/4b
    /// in parallel): measured time is dominated by the slowest subquery
    /// instead of their sum. Over a transport the fan-out is real (scoped
    /// threads) and its wall clock is measured.
    pub parallel_submits: bool,
    /// Tolerate transport-connected wrappers that stay down past the
    /// retry budget: their submits contribute empty subanswers and the
    /// affected collections are reported in the trace, instead of the
    /// whole query erroring. On by default; only meaningful with a
    /// connected transport (in-process wrappers cannot fail transiently).
    pub partial_answers: bool,
    /// Join-order search strategy (DP by default; `Permutation` is the
    /// exhaustive baseline).
    pub enumeration: JoinEnumeration,
    /// Queries of at most this many tables bypass the DP and its caches
    /// in favor of direct enumeration (the measured small-query
    /// crossover); 0 forces DP at every size. See
    /// [`OptimizerOptions::small_query_threshold`].
    pub small_query_threshold: usize,
    /// Cost-model-driven resilience: predicted deadlines, query budgets,
    /// hedged replica submits and adaptive wrapper penalties. Only
    /// meaningful with a connected transport.
    pub resilience: ResiliencePolicy,
    /// Execute queries through the pipelined streaming engine: wrappers
    /// stream `BatchAnswer` chunks and combine operators pull them
    /// incrementally, so first rows surface before the slowest site has
    /// finished and `LIMIT` stops pulling early. Off by default (the
    /// two-phase fetch-then-combine engine); answers are identical
    /// either way.
    pub streaming: bool,
    /// Rows per streamed chunk when [`streaming`](Self::streaming) is
    /// on (clamped to at least 1).
    pub streaming_chunk_rows: u32,
    /// Mid-query adaptive re-optimization: when measured subanswer
    /// cardinalities contradict the optimizer's predictions badly
    /// enough, re-enumerate the combine plan with corrected
    /// cardinalities and abandon the running join order for a cheaper
    /// one — fetched subanswers are reused, never re-fetched. Off by
    /// default; works with both engines.
    pub adaptive: AdaptivePolicy,
}

impl Default for MediatorOptions {
    fn default() -> Self {
        MediatorOptions {
            record_history: false,
            pruning: true,
            parallel_submits: false,
            partial_answers: true,
            enumeration: JoinEnumeration::default(),
            small_query_threshold: OptimizerOptions::default().small_query_threshold,
            resilience: ResiliencePolicy::default(),
            streaming: false,
            streaming_chunk_rows: 1024,
            adaptive: AdaptivePolicy::default(),
        }
    }
}

/// The DISCO mediator.
pub struct Mediator {
    catalog: Catalog,
    registry: RuleRegistry,
    wrappers: BTreeMap<String, Box<dyn Wrapper>>,
    transport: Option<TransportClient>,
    history: HistoryRecorder,
    options: MediatorOptions,
    tracer: Option<disco_obs::Tracer>,
    /// Per-wrapper failure/latency EWMAs: written by the transport
    /// client on every submit, read by the estimator as a wrapper-scope
    /// penalty, decayed one tick per executed query.
    health: Arc<HealthTracker>,
}

impl Default for Mediator {
    fn default() -> Self {
        Self::new()
    }
}

impl Mediator {
    /// A mediator with the generic cost model installed.
    pub fn new() -> Self {
        let options = MediatorOptions::default();
        let health = Arc::new(HealthTracker::new(options.resilience.health));
        Mediator {
            catalog: Catalog::new(),
            registry: RuleRegistry::with_default_model(),
            wrappers: BTreeMap::new(),
            transport: None,
            history: HistoryRecorder::new(),
            options,
            tracer: None,
            health,
        }
    }

    /// Attach a tracer: subsequent `plan`/`query` calls record
    /// per-phase spans (parse, analyze, optimize with enumeration
    /// sub-phases, execute with per-wrapper submit and combine spans).
    pub fn set_tracer(&mut self, tracer: disco_obs::Tracer) {
        self.tracer = Some(tracer);
    }

    /// Detach the tracer set with [`set_tracer`](Self::set_tracer).
    pub fn clear_tracer(&mut self) -> Option<disco_obs::Tracer> {
        self.tracer.take()
    }

    /// Set behaviour options. Resets the health tracker to the new
    /// resilience policy's EWMA tuning (and re-attaches it to a
    /// connected transport).
    pub fn with_options(mut self, options: MediatorOptions) -> Self {
        if self.health.policy() != options.resilience.health {
            self.health = Arc::new(HealthTracker::new(options.resilience.health));
            self.transport = self
                .transport
                .take()
                .map(|c| c.with_health(self.health.clone()));
        }
        self.options = options;
        self
    }

    /// The shared per-wrapper health tracker (introspection).
    pub fn health(&self) -> &HealthTracker {
        &self.health
    }

    /// The behaviour options currently in force.
    pub fn options(&self) -> &MediatorOptions {
        &self.options
    }

    /// An optimizer over the current catalog/registry with this
    /// mediator's options and health tracker applied (the same one
    /// [`Self::plan`] uses for single-branch statements). The default
    /// `TotalTime` objective; callers planning a `LIMIT` query chain
    /// [`Optimizer::with_objective`] to rank by `TimeFirst` instead.
    pub(crate) fn optimizer(&self) -> Optimizer<'_> {
        let opts = OptimizerOptions {
            pruning: self.options.pruning,
            enumeration: self.options.enumeration,
            small_query_threshold: self.options.small_query_threshold,
            ..Default::default()
        };
        let mut optimizer =
            Optimizer::new(&self.catalog, &self.registry, opts).with_health(Some(&self.health));
        if let Some(t) = &self.tracer {
            optimizer = optimizer.with_tracer(t.clone());
        }
        optimizer
    }

    /// The registration phase (Figure 1): upload the wrapper's schema,
    /// capabilities, statistics and compiled cost rules.
    pub fn register(&mut self, wrapper: Box<dyn Wrapper>) -> Result<()> {
        let name = wrapper.name().to_owned();
        let reg = wrapper.registration()?;
        self.install_registration(&name, &reg)?;
        self.wrappers.insert(name, wrapper);
        Ok(())
    }

    /// Attach a transport and register every endpoint it reaches: the
    /// same Figure 1 protocol as [`register`](Self::register), but the
    /// registration payload arrives serialized over the wire instead of
    /// via an in-process call. Subsequent queries submit subplans to
    /// these wrappers through the transport (deadlines, retries, circuit
    /// breaking, partial answers).
    pub fn connect(&mut self, client: TransportClient) -> Result<()> {
        let client = client.with_health(self.health.clone());
        for endpoint in client.endpoints() {
            let reg = client.register(&endpoint)?;
            self.install_registration(&endpoint, &reg)?;
        }
        self.transport = Some(client);
        Ok(())
    }

    /// The attached transport client, if any (breaker introspection).
    pub fn transport(&self) -> Option<&TransportClient> {
        self.transport.as_ref()
    }

    /// Install a registration payload into catalog and registry.
    fn install_registration(&mut self, name: &str, reg: &Registration) -> Result<()> {
        self.catalog
            .register_wrapper(name, reg.capabilities.clone())?;
        for (coll, schema, stats) in &reg.collections {
            self.catalog
                .register_collection(name, coll.clone(), schema.clone(), stats.clone())?;
        }
        self.registry.register_document(name, &reg.cost_rules)?;
        Ok(())
    }

    /// Remove a wrapper entirely (the administrative re-registration
    /// interface of §2.1).
    pub fn unregister(&mut self, name: &str) -> Result<()> {
        self.catalog.unregister_wrapper(name)?;
        self.registry.remove_wrapper(name);
        self.wrappers.remove(name);
        Ok(())
    }

    /// Re-register a wrapper in place (§2.1: "an administrative interface
    /// … to re-register wrappers … necessary when the cost formulas are
    /// improved by the wrapper implementor, or the statistics become out
    /// of date"). Pulls a fresh registration payload from the wrapper and
    /// replaces its catalog entries, parameters and rules; recorded
    /// query-scope history for the wrapper is discarded with them.
    pub fn refresh(&mut self, name: &str) -> Result<()> {
        let reg = if let Some(wrapper) = self.wrappers.get(name) {
            wrapper.registration()?
        } else if let Some(client) = &self.transport {
            client.register(name)?
        } else {
            return Err(DiscoError::Catalog(format!(
                "wrapper `{name}` is not registered"
            )));
        };
        self.catalog.unregister_wrapper(name)?;
        self.registry.remove_wrapper(name);
        self.install_registration(name, &reg)
    }

    /// The mediator catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Declare a wrapper's buffer-cache regime (cold by default). A warm
    /// regime scales the Yao page prediction in EXPLAIN ANALYZE by the
    /// expected miss fraction.
    pub fn set_cache_regime(
        &mut self,
        wrapper: &str,
        regime: disco_catalog::CacheRegime,
    ) -> Result<()> {
        self.catalog.set_cache_regime(wrapper, regime)
    }

    /// Declare that several registered wrappers serve interchangeable
    /// copies of `collection`: the optimizer may pick any of them by
    /// cost, and the executor may hedge a straggling submit to (or fail
    /// over onto) the peers.
    pub fn declare_replicas(&mut self, collection: &str, wrappers: &[&str]) -> Result<()> {
        self.catalog.declare_replicas(collection, wrappers)
    }

    /// Administratively replace a wrapper's declared capability set
    /// (e.g. a source upgrade enabling pushdown, or an operator being
    /// disabled). Bumps the catalog's capability epoch so plan caches
    /// drop decisions negotiated against the old profile.
    pub fn set_wrapper_capabilities(
        &mut self,
        wrapper: &str,
        capabilities: disco_catalog::Capabilities,
    ) -> Result<()> {
        self.catalog.set_wrapper_capabilities(wrapper, capabilities)
    }

    /// The blended rule registry.
    pub fn registry(&self) -> &RuleRegistry {
        &self.registry
    }

    /// Mutable registry access (parameter adjustment, extra rules).
    pub fn registry_mut(&mut self) -> &mut RuleRegistry {
        &mut self.registry
    }

    /// Subqueries recorded into the history so far.
    pub fn history_recorded(&self) -> usize {
        self.history.recorded()
    }

    /// An estimator over the current registry/catalog, consulting the
    /// adaptive health penalties.
    pub fn estimator(&self) -> Estimator<'_> {
        Estimator::new(&self.registry, &self.catalog).with_health(Some(&self.health))
    }

    /// Optimize a statement (a query or a `UNION [ALL]` chain) without
    /// executing it.
    pub fn plan(&self, sql: &str) -> Result<OptimizedPlan> {
        let stmt = {
            let _s = self.tracer.as_ref().map(|t| t.start("parse"));
            crate::sql::parse_statement(sql)?
        };
        // A LIMIT marks the query latency-sensitive: rank plans by
        // `TimeFirst` so the streaming engine surfaces the first rows
        // (and stops) as early as possible.
        let objective = if stmt.limit.is_some() {
            Objective::TimeFirst
        } else {
            Objective::TotalTime
        };
        let optimizer = self.optimizer().with_objective(objective);

        if stmt.branches.len() == 1 {
            let mut query = stmt.branches.into_iter().next().expect("one branch");
            query.order_by = stmt.order_by;
            query.limit = stmt.limit;
            let analyzed = {
                let _s = self.tracer.as_ref().map(|t| t.start("analyze"));
                analyze(&query, &self.catalog)?
            };
            let _s = self.tracer.as_ref().map(|t| t.start("optimize"));
            return optimizer.optimize(&analyzed);
        }

        // Union chain: optimize each branch, then combine.
        let _union_span = self.tracer.as_ref().map(|t| t.start("optimize"));
        let mut branch_plans = Vec::with_capacity(stmt.branches.len());
        let mut first_outputs: Option<Vec<String>> = None;
        let mut considered = 0;
        let mut pruned = 0;
        let mut nodes = 0;
        let mut rules = 0;
        let mut memo_hits = 0;
        let mut rule_cache_hits = 0;
        let mut fast_path = false;
        let mut negotiation = Vec::new();
        for query in &stmt.branches {
            let analyzed = {
                let _s = self.tracer.as_ref().map(|t| t.start("analyze"));
                analyze(query, &self.catalog)?
            };
            let outputs: Vec<String> = analyzed.output.iter().map(|(n, _)| n.clone()).collect();
            match &first_outputs {
                None => first_outputs = Some(outputs),
                Some(first) => {
                    if first.len() != outputs.len() {
                        return Err(DiscoError::Plan(format!(
                            "UNION branches have {} vs {} columns",
                            first.len(),
                            outputs.len()
                        )));
                    }
                }
            }
            let plan = optimizer.optimize(&analyzed)?;
            considered += plan.plans_considered;
            pruned += plan.plans_pruned;
            nodes += plan.estimator_nodes;
            rules += plan.estimator_rules;
            memo_hits += plan.memo_hits;
            rule_cache_hits += plan.rule_cache_hits;
            fast_path |= plan.fast_path;
            negotiation.extend(plan.negotiation);
            branch_plans.push(plan.physical);
        }
        let mut iter = branch_plans.into_iter();
        let mut combined = iter.next().expect("at least two branches");
        for right in iter {
            combined = disco_algebra::PhysicalPlan::Union {
                left: Box::new(combined),
                right: Box::new(right),
            };
        }
        if !stmt.all {
            combined = disco_algebra::PhysicalPlan::Dedup {
                input: Box::new(combined),
            };
        }
        if !stmt.order_by.is_empty() {
            let first = first_outputs.expect("branches analyzed");
            let mut keys = Vec::with_capacity(stmt.order_by.len());
            for (col, asc) in &stmt.order_by {
                if col.table.is_some() || !first.contains(&col.column) {
                    return Err(DiscoError::Plan(format!(
                        "ORDER BY `{col}` must name an output column of the first UNION branch"
                    )));
                }
                keys.push((col.column.clone(), *asc));
            }
            combined = disco_algebra::PhysicalPlan::Sort {
                input: Box::new(combined),
                keys,
            };
        }
        let estimator = self.estimator();
        let estimated = estimator.estimate(&crate::optimizer::to_logical(&combined))?;
        Ok(OptimizedPlan {
            physical: combined,
            estimated,
            plans_considered: considered,
            plans_pruned: pruned,
            estimator_nodes: nodes,
            estimator_rules: rules,
            memo_hits,
            rule_cache_hits,
            fast_path,
            limit: stmt.limit,
            // Unions are not replayable as one decision set; branches
            // cache individually when queried alone.
            decisions: None,
            negotiation,
        })
    }

    /// Render the chosen plan's full cost attribution: which rule, from
    /// which scope, computed each variable of each node (the observable
    /// form of the Figure 10 blending).
    pub fn explain_costs(&self, sql: &str) -> Result<String> {
        let plan = self.plan(sql)?;
        let logical = crate::optimizer::to_logical(&plan.physical);
        let node = self
            .estimator()
            .explain(&logical, &Default::default())?
            .ok_or_else(|| DiscoError::Cost("estimation pruned unexpectedly".into()))?;
        Ok(node.render())
    }

    /// Render the chosen plan and its estimate, including the
    /// capability-negotiation report: which operators were pushed into
    /// which wrapper, which were lifted into the mediator's combine
    /// plan because a profile forbids them, and which stayed local by
    /// cost.
    pub fn explain(&self, sql: &str) -> Result<String> {
        let plan = self.plan(sql)?;
        let mut negotiation = String::new();
        if !plan.negotiation.is_empty() {
            negotiation.push_str("negotiation:\n");
            for note in &plan.negotiation {
                negotiation.push_str("  ");
                negotiation.push_str(note);
                negotiation.push('\n');
            }
        }
        Ok(format!(
            "{}{}estimated: {}\nplans considered: {} (pruned {})\n",
            explain_physical(&plan.physical),
            negotiation,
            plan.estimated,
            plan.plans_considered,
            plan.plans_pruned
        ))
    }

    /// Full query processing (Figure 2): parse, decompose, optimize,
    /// execute, combine.
    pub fn query(&mut self, sql: &str) -> Result<QueryResult> {
        let optimized = self.plan(sql)?;
        self.execute_plan(optimized)
    }

    /// EXPLAIN ANALYZE: optimize, capture the full cost attribution of
    /// the chosen plan, execute it instrumented, and zip predicted
    /// against measured node-for-node. The predicted side is computed
    /// *before* execution, so with history recording enabled the
    /// query-scope rules a run leaves behind only show up in the next
    /// run's report.
    pub fn explain_analyze(&mut self, sql: &str) -> Result<AnalyzeReport> {
        let optimized = self.plan(sql)?;
        let physical = optimized.physical.clone();
        let logical = crate::optimizer::to_logical(&optimized.physical);
        let predicted = self
            .estimator()
            .explain(&logical, &Default::default())?
            .ok_or_else(|| DiscoError::Cost("estimation pruned unexpectedly".into()))?;
        let result = self.execute_plan(optimized)?;
        let measured = result
            .trace
            .measured
            .as_ref()
            .ok_or_else(|| DiscoError::Plan("executor produced no measured tree".into()))?;
        // A mid-query re-plan executed a different combine order than the
        // one priced above: re-explain the plan that actually ran (with
        // the original, pre-execution statistics) so predicted and
        // measured zip node-for-node. The re-plan itself is reported in
        // the footer (see `AnalyzeReport::render`).
        let (predicted, physical) = match &result.trace.final_plan {
            Some(final_plan) => {
                let logical = crate::optimizer::to_logical(final_plan);
                let predicted = self
                    .estimator()
                    .explain(&logical, &Default::default())?
                    .ok_or_else(|| DiscoError::Cost("estimation pruned unexpectedly".into()))?;
                (predicted, final_plan.clone())
            }
            None => (predicted, physical),
        };
        let mut root = AnalyzeNode::zip(&predicted, measured);
        self.fill_predicted_pages(&mut root, &physical);
        Ok(AnalyzeReport { root, result })
    }

    /// Fill `predicted_pages` on the report's executed `submit` nodes:
    /// Yao's page estimate for the site's base collection, scaled by the
    /// wrapper's cache regime, so EXPLAIN ANALYZE shows predicted vs
    /// measured page I/O side by side. Submit nodes are matched to
    /// [`submit_sites`] in fetch order (both are depth-first, left before
    /// right). Sites whose subplan reads more than one collection, or
    /// whose statistics are missing, are left without a prediction.
    fn fill_predicted_pages(&self, root: &mut AnalyzeNode, plan: &PhysicalPlan) {
        fn executed_submits<'a>(node: &'a mut AnalyzeNode, out: &mut Vec<&'a mut AnalyzeNode>) {
            if node.measured.is_some() && node.operator.starts_with("submit ") {
                // The children are the wrapper-side (predicted-only)
                // subtree — no executed submits below.
                out.push(node);
                return;
            }
            for c in &mut node.children {
                executed_submits(c, out);
            }
        }
        let mut nodes = Vec::new();
        executed_submits(root, &mut nodes);
        for (node, (wrapper, subplan)) in nodes.into_iter().zip(submit_sites(plan)) {
            node.predicted_pages =
                self.predict_site_pages(wrapper, subplan, node.predicted.count_object);
        }
    }

    /// Yao page prediction for one submit site: `yao(n, m, k)` with `n`
    /// objects on `m` pages (the catalog's measured page count when a
    /// real engine exported one, else the `TotalSize / PageSize`
    /// derivation) and `k` the site's predicted result cardinality,
    /// multiplied by the wrapper's [`CacheRegime`] miss factor — a warm
    /// cache faults only the predicted miss fraction.
    fn predict_site_pages(
        &self,
        wrapper: &str,
        subplan: &LogicalPlan,
        predicted_rows: f64,
    ) -> Option<f64> {
        let qname = subplan.base_collection()?;
        let stats = self.catalog.stats(qname).ok()?;
        let n = stats.extent.count_object;
        let page_size = self
            .registry
            .wrapper_params(wrapper)
            .and_then(|p| p.get_f64("PageSize"))
            .or_else(|| self.registry.params().get_f64("PageSize"))
            .unwrap_or(disco_core::params::DEFAULT_PAGE_SIZE) as u64;
        let m = stats.extent.count_pages(page_size);
        if n == 0 || m == 0 {
            return None;
        }
        let k = (predicted_rows.round().max(0.0) as u64).min(n);
        let miss = self.catalog.cache_regime(wrapper).miss_factor();
        Some(disco_core::yao::yao_pages_exact(n, m, k) * miss)
    }

    /// Per-site cost predictions (`TotalTime`, `TimeFirst`) for the
    /// plan's submits, in fetch order: each site priced as the
    /// `Submit` the wrapper will receive. Sites whose estimation fails
    /// get `None` and fall back to flat deadlines.
    fn site_predictions(&self, plan: &PhysicalPlan) -> Vec<Option<SitePrediction>> {
        let estimator = self.estimator();
        submit_sites(plan)
            .into_iter()
            .map(|(wrapper, subplan)| {
                let submit = LogicalPlan::Submit {
                    wrapper: wrapper.to_string(),
                    input: Box::new(subplan.clone()),
                };
                estimator.estimate(&submit).ok().map(|cost| SitePrediction {
                    total_ms: cost.total_time,
                    first_ms: cost.time_first,
                    rows: cost.count_object,
                })
            })
            .collect()
    }

    /// Failover replica lists for the plan's submit wrappers: declared
    /// peers serving *every* collection of the site's subplan, ordered
    /// healthiest first (declared order breaks ties).
    fn site_replicas(&self, plan: &PhysicalPlan) -> BTreeMap<String, Vec<String>> {
        let mut replicas = BTreeMap::new();
        for (wrapper, subplan) in submit_sites(plan) {
            let mut peers: Option<Vec<String>> = None;
            for qname in subplan.collections() {
                let serving = self.catalog.replica_peers(qname);
                peers = Some(match peers {
                    None => serving,
                    Some(prev) => prev.into_iter().filter(|p| serving.contains(p)).collect(),
                });
            }
            let mut peers = peers.unwrap_or_default();
            peers.sort_by(|a, b| {
                self.health
                    .penalty(a)
                    .partial_cmp(&self.health.penalty(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            replicas.insert(wrapper.to_string(), peers);
        }
        replicas
    }

    /// Execute a previously optimized plan.
    pub fn execute_plan(&mut self, optimized: OptimizedPlan) -> Result<QueryResult> {
        let result = self.execute_plan_shared(optimized)?;
        if self.options.record_history {
            self.record_trace_history(&result.trace);
        }
        Ok(result)
    }

    /// Execute a previously optimized plan through `&self` — everything
    /// `execute_plan` does except §4.3.1 history recording (which
    /// mutates the rule registry and so needs `&mut self`; see
    /// [`Self::record_trace_history`]). This is the path the concurrent
    /// serving layer drives under a read lock, so N sessions execute in
    /// parallel and only a session that actually recorded feedback
    /// takes the write lock.
    pub fn execute_plan_shared(&self, optimized: OptimizedPlan) -> Result<QueryResult> {
        let resilience = &self.options.resilience;
        // Predictions matter over a transport when the policy can use
        // them, and on either backend when adaptive re-optimization
        // needs predicted cardinalities to compare measurements against.
        let adaptive = self.options.adaptive.enabled;
        let predictions = if adaptive
            || (self.transport.is_some() && (resilience.predicted_deadlines || resilience.hedge))
        {
            self.site_predictions(&optimized.physical)
        } else {
            Vec::new()
        };
        let replicas = if self.transport.is_some() && resilience.hedge {
            self.site_replicas(&optimized.physical)
        } else {
            BTreeMap::new()
        };
        let replanner = adaptive.then(|| {
            Replanner::new(
                &self.registry,
                &self.catalog,
                Some(&self.health),
                self.options.adaptive.clone(),
            )
        });
        let executor = match &self.transport {
            Some(client) => Executor::remote(client, &self.registry)
                .with_resilience(self.options.resilience.clone())
                .with_predictions(predictions)
                .with_replicas(replicas),
            None => Executor::new(&self.wrappers, &self.registry).with_predictions(predictions),
        }
        .with_parallel(self.options.parallel_submits)
        .with_partial_answers(self.options.partial_answers)
        .with_adaptive(replanner);
        let span = self.tracer.as_ref().map(|t| t.start("execute"));
        let executed = if self.options.streaming {
            executor.execute_streaming(
                &optimized.physical,
                self.options.streaming_chunk_rows,
                optimized.limit,
            )
        } else {
            executor.execute(&optimized.physical)
        };
        // One decay tick per executed query — wrappers the query never
        // touched heal over time instead of staying penalized forever.
        self.health.tick();
        let (schema, mut tuples, trace) = executed?;
        // Two-phase LIMIT: the full answer was combined, cap it here
        // (the streaming engine already stopped pulling at the limit).
        if !self.options.streaming {
            if let Some(n) = optimized.limit {
                tuples.truncate(n as usize);
            }
        }
        let measured_ms = if self.options.parallel_submits {
            trace.parallel_ms()
        } else {
            trace.sequential_ms()
        };
        if let Some(t) = &self.tracer {
            // Submits and the combine phase ran under the virtual clock
            // (and, over a transport, on fetch workers): attach them
            // post-hoc with their measured durations.
            let at = t.elapsed_us();
            for sub in &trace.submits {
                t.record(
                    &format!("submit:{}", sub.wrapper),
                    at,
                    (sub.wall_ms * 1000.0) as u64,
                    vec![
                        ("tuples".into(), sub.tuples.to_string()),
                        ("attempts".into(), sub.attempts.to_string()),
                        ("failed".into(), sub.failed.to_string()),
                        ("served_by".into(), sub.served_by.clone()),
                        ("hedges".into(), sub.hedges.to_string()),
                    ],
                );
            }
            t.record(
                "combine",
                at,
                (trace.mediator_ms * 1000.0) as u64,
                vec![("rows".into(), tuples.len().to_string())],
            );
        }
        if let Some(s) = span {
            s.finish();
        }
        if disco_obs::enabled() {
            disco_obs::counter(disco_obs::names::QUERIES, &[]).inc();
            disco_obs::histogram(disco_obs::names::QUERY_MS, &[]).observe(measured_ms);
        }

        Ok(QueryResult {
            schema,
            tuples,
            measured_ms,
            estimated: optimized.estimated,
            trace,
        })
    }

    /// Record measured submits from an execution trace as query-scope
    /// rules (§4.3.1). Returns how many rules were actually recorded,
    /// so callers keeping derived state (a plan cache keyed on the
    /// registry's contents) know whether anything changed.
    pub fn record_trace_history(&mut self, trace: &ExecutionTrace) -> usize {
        let mut recorded = 0;
        // Record every *fully measured* submit — including those of
        // queries that otherwise degraded to a partial answer or had
        // sibling streams budget-truncated: a complete subanswer's
        // cardinality is trustworthy regardless of what happened to the
        // rest of the query. Failed (substituted) and truncated submits
        // measured nothing worth remembering.
        for sub in trace.submits.iter().filter(|s| s.complete) {
            let measured = NodeCost {
                time_first: sub.stats.time_first_ms,
                time_next: (sub.stats.elapsed_ms - sub.stats.time_first_ms)
                    / (sub.tuples.max(1) as f64),
                total_time: sub.stats.elapsed_ms,
                count_object: sub.tuples as f64,
                total_size: sub.bytes as f64,
            };
            // Unsupported shapes (multi-conjunct etc.) are skipped —
            // the paper notes the same restriction.
            if self
                .history
                .record(&mut self.registry, &sub.wrapper, &sub.plan, measured)
                .is_ok()
            {
                recorded += 1;
            }
        }
        recorded
    }

    /// Direct access to a registered wrapper (experiments).
    pub fn wrapper(&self, name: &str) -> Result<&dyn Wrapper> {
        self.wrappers
            .get(name)
            .map(|w| w.as_ref())
            .ok_or_else(|| DiscoError::Catalog(format!("wrapper `{name}` is not registered")))
    }

    /// Names of all registered wrappers.
    pub fn wrapper_names(&self) -> Vec<&str> {
        self.wrappers.keys().map(String::as_str).collect()
    }
}

/// The outcome of [`Mediator::explain_analyze`]: the executed query
/// plus the zipped predicted-vs-measured plan tree.
pub struct AnalyzeReport {
    /// Root of the zipped tree.
    pub root: AnalyzeNode,
    /// The executed query's answer, estimate and trace.
    pub result: QueryResult,
}

impl AnalyzeReport {
    /// Render the per-node report plus a summary footer: end-to-end
    /// predicted vs measured time, and any collections lost to downed
    /// wrappers.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = self.root.render();
        let predicted = self.result.estimated.total_time;
        let measured = self.result.measured_ms;
        let _ = write!(
            out,
            "total: predicted={predicted:.3}ms measured={measured:.3}ms error="
        );
        match disco_core::relative_error(predicted, measured) {
            Some(e) => {
                let _ = writeln!(out, "{:+.1}%", e * 100.0);
            }
            None => {
                let _ = writeln!(out, "n/a");
            }
        }
        if !self.result.trace.missing.is_empty() {
            let names: Vec<String> = self
                .result
                .trace
                .missing
                .iter()
                .map(|q| q.to_string())
                .collect();
            let _ = writeln!(out, "missing (wrapper unavailable): {}", names.join(", "));
        }
        let hedged: Vec<String> = self
            .result
            .trace
            .submits
            .iter()
            .filter(|s| !s.served_by.is_empty() && s.served_by != s.wrapper)
            .map(|s| format!("{} -> {}", s.wrapper, s.served_by))
            .collect();
        if self.result.trace.hedges > 0 || !hedged.is_empty() {
            let _ = write!(out, "hedges: {}", self.result.trace.hedges);
            if !hedged.is_empty() {
                let _ = write!(out, " (served by replica: {})", hedged.join(", "));
            }
            let _ = writeln!(out);
        }
        if self.result.trace.budget_exhausted {
            let _ = writeln!(out, "query budget exhausted: remaining submits skipped");
        }
        for replan in &self.result.trace.replans {
            let _ = writeln!(out, "{}", replan.render());
        }
        out
    }
}

/// Convenience: `explain` on an already-built physical plan.
pub fn explain_plan(plan: &PhysicalPlan) -> String {
    explain_physical(plan)
}

//! Plan enumeration and cost-based selection (paper §2.2, §4).
//!
//! "From a declarative query, the mediator can generate multiple access
//! plans involving local operations at the data source level and global
//! ones at the mediator level." The optimizer enumerates:
//!
//! * **pushdown variants** per table — execute selections/projections at
//!   the wrapper (when its capabilities allow) or compensate at the
//!   mediator;
//! * **join orders** — left-deep trees, connected-subgraph-first, by
//!   exhaustive permutation for small queries and greedily beyond;
//!
//! and prices every candidate with the blended estimator. With
//! [`OptimizerOptions::pruning`] the current best plan's cost becomes the
//! estimator's cost limit, abandoning estimation of worse plans midway
//! (§4.3.2).

use disco_algebra::{
    CompareOp, JoinKind, JoinPredicate, LogicalPlan, OperatorKind, PhysicalJoinAlgo, PhysicalPlan,
    Predicate, ScalarExpr, SelectPredicate,
};
use disco_catalog::Catalog;
use disco_common::{DiscoError, Result};
use disco_core::{EstimateOptions, Estimator, NodeCost, RuleRegistry};

use crate::analyze::AnalyzedQuery;

/// Tuning knobs for one optimization run.
#[derive(Debug, Clone)]
pub struct OptimizerOptions {
    /// Abandon plans whose partial cost exceeds the best found so far.
    pub pruning: bool,
    /// Up to this many tables, enumerate join orders exhaustively;
    /// beyond, order greedily by estimated cardinality.
    pub exhaustive_up_to: usize,
}

impl Default for OptimizerOptions {
    fn default() -> Self {
        OptimizerOptions {
            pruning: false,
            exhaustive_up_to: 6,
        }
    }
}

/// The optimizer's output: the chosen plan plus work accounting.
#[derive(Debug, Clone)]
pub struct OptimizedPlan {
    pub physical: PhysicalPlan,
    /// Blended-model estimate of the chosen plan.
    pub estimated: NodeCost,
    /// Complete plans costed.
    pub plans_considered: usize,
    /// Plans abandoned by the cost limit (only with pruning).
    pub plans_pruned: usize,
    /// Total estimator node visits across the run.
    pub estimator_nodes: usize,
    /// Total rule-body evaluations across the run.
    pub estimator_rules: usize,
}

/// Cost-based optimizer over a catalog and rule registry.
pub struct Optimizer<'a> {
    catalog: &'a Catalog,
    registry: &'a RuleRegistry,
    options: OptimizerOptions,
}

/// Convert a physical plan to the logical form the estimator prices.
pub fn to_logical(plan: &PhysicalPlan) -> LogicalPlan {
    match plan {
        PhysicalPlan::SubmitRemote { wrapper, plan, .. } => LogicalPlan::Submit {
            wrapper: wrapper.clone(),
            input: Box::new(plan.clone()),
        },
        PhysicalPlan::Filter { input, predicate } => LogicalPlan::Select {
            input: Box::new(to_logical(input)),
            predicate: predicate.clone(),
        },
        PhysicalPlan::Project { input, columns } => LogicalPlan::Project {
            input: Box::new(to_logical(input)),
            columns: columns.clone(),
        },
        PhysicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(to_logical(input)),
            keys: keys.clone(),
        },
        PhysicalPlan::Join {
            left,
            right,
            predicate,
            ..
        } => LogicalPlan::Join {
            left: Box::new(to_logical(left)),
            right: Box::new(to_logical(right)),
            predicate: predicate.clone(),
            kind: JoinKind::Inner,
        },
        PhysicalPlan::Union { left, right } => LogicalPlan::Union {
            left: Box::new(to_logical(left)),
            right: Box::new(to_logical(right)),
        },
        PhysicalPlan::Dedup { input } => LogicalPlan::Dedup {
            input: Box::new(to_logical(input)),
        },
        PhysicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => LogicalPlan::Aggregate {
            input: Box::new(to_logical(input)),
            group_by: group_by.clone(),
            aggs: aggs.clone(),
        },
    }
}

impl<'a> Optimizer<'a> {
    /// Build an optimizer.
    pub fn new(
        catalog: &'a Catalog,
        registry: &'a RuleRegistry,
        options: OptimizerOptions,
    ) -> Self {
        Optimizer {
            catalog,
            registry,
            options,
        }
    }

    /// Optimize an analyzed query into a physical plan.
    pub fn optimize(&self, q: &AnalyzedQuery) -> Result<OptimizedPlan> {
        if q.tables.is_empty() {
            return Err(DiscoError::Plan("query has no tables".into()));
        }
        let mut counters = Counters::default();
        let estimator = Estimator::new(self.registry, self.catalog);

        // Phase 1: best access variant per table.
        let access: Vec<AccessPlan> = (0..q.tables.len())
            .map(|t| self.best_access(q, t, &estimator, &mut counters))
            .collect::<Result<_>>()?;

        // Phase 2: join order.
        let n = q.tables.len();
        let (best_join, best_cost) = if n == 1 {
            let plan = access[0].plan.clone();
            let cost = self
                .cost_full(q, &plan, None, &mut counters)?
                .ok_or_else(|| {
                    DiscoError::Cost("single-table plan was pruned without a limit".into())
                })?;
            (plan, cost)
        } else if n <= self.options.exhaustive_up_to {
            self.enumerate_orders(q, &access, &estimator, &mut counters)?
        } else {
            self.greedy_order(q, &access, &mut counters)?
        };

        let physical = self.finish_plan(q, best_join)?;
        Ok(OptimizedPlan {
            physical,
            estimated: best_cost,
            plans_considered: counters.considered,
            plans_pruned: counters.pruned,
            estimator_nodes: counters.nodes,
            estimator_rules: counters.rules,
        })
    }

    /// Enumerate pushdown variants for one table and keep the cheapest.
    fn best_access(
        &self,
        q: &AnalyzedQuery,
        t: usize,
        estimator: &Estimator<'_>,
        counters: &mut Counters,
    ) -> Result<AccessPlan> {
        let binding = &q.tables[t];
        let caps = &self
            .catalog
            .wrapper(&binding.qname.wrapper)
            .ok_or_else(|| {
                DiscoError::Catalog(format!(
                    "wrapper `{}` not registered",
                    binding.qname.wrapper
                ))
            })?
            .capabilities;
        let can_select = caps.supports(OperatorKind::Select);
        let can_project = caps.supports(OperatorKind::Project);
        let sels: Vec<&SelectPredicate> = q
            .selections
            .iter()
            .filter(|(ti, _)| *ti == t)
            .map(|(_, p)| p)
            .collect();

        // Columns shipped out of the wrapper, with their qualified names.
        let mut cols: Vec<String> = q.needed[t].clone();
        if cols.is_empty() {
            // Count-only queries still need one physical column.
            cols.push(binding.schema.attributes()[0].name.clone());
        }

        let mut variants: Vec<(bool, bool)> = Vec::new();
        for ps in [can_select && !sels.is_empty(), false] {
            for pp in [can_project, false] {
                if !variants.contains(&(ps, pp)) {
                    variants.push((ps, pp));
                }
            }
        }

        let mut best: Option<(f64, AccessPlan)> = None;
        for (push_select, push_project) in variants {
            let plan = self.access_variant(q, t, &cols, &sels, push_select, push_project)?;
            let logical = to_logical(&plan.plan);
            let report = estimator
                .estimate_report(&logical, &EstimateOptions::default())?
                .expect("no cost limit set");
            counters.nodes += report.nodes_visited;
            counters.rules += report.rules_evaluated;
            let cost = report.cost.total_time;
            if best.as_ref().map(|(c, _)| cost < *c).unwrap_or(true) {
                best = Some((cost, plan));
            }
        }
        Ok(best.expect("at least one variant").1)
    }

    fn access_variant(
        &self,
        q: &AnalyzedQuery,
        t: usize,
        cols: &[String],
        sels: &[&SelectPredicate],
        push_select: bool,
        push_project: bool,
    ) -> Result<AccessPlan> {
        let binding = &q.tables[t];
        let rename: Vec<(String, ScalarExpr)> = cols
            .iter()
            .map(|c| {
                (
                    format!("{}.{c}", binding.alias),
                    ScalarExpr::attr(c.clone()),
                )
            })
            .collect();

        let mut inner = LogicalPlan::Scan {
            collection: binding.qname.clone(),
            schema: binding.schema.clone(),
        };
        if push_select && !sels.is_empty() {
            inner = LogicalPlan::Select {
                input: Box::new(inner),
                predicate: Predicate::all(sels.iter().map(|p| (*p).clone()).collect()),
            };
        }
        if push_project {
            inner = LogicalPlan::Project {
                input: Box::new(inner),
                columns: rename.clone(),
            };
        }
        let schema = inner.output_schema()?;
        let mut phys = PhysicalPlan::SubmitRemote {
            wrapper: binding.qname.wrapper.clone(),
            plan: inner,
            schema,
        };
        if !push_select && !sels.is_empty() {
            // Names seen at the mediator depend on whether the wrapper
            // already renamed.
            let preds: Vec<SelectPredicate> = sels
                .iter()
                .map(|p| {
                    let attr = if push_project {
                        format!("{}.{}", binding.alias, p.attribute)
                    } else {
                        p.attribute.clone()
                    };
                    SelectPredicate::new(attr, p.op, p.value.clone())
                })
                .collect();
            phys = PhysicalPlan::Filter {
                input: Box::new(phys),
                predicate: Predicate::all(preds),
            };
        }
        if !push_project {
            phys = PhysicalPlan::Project {
                input: Box::new(phys),
                columns: rename,
            };
        }
        Ok(AccessPlan {
            table: t,
            plan: phys,
        })
    }

    /// Exhaustive left-deep join-order enumeration with a
    /// connected-subgraph-first constraint.
    fn enumerate_orders(
        &self,
        q: &AnalyzedQuery,
        access: &[AccessPlan],
        _estimator: &Estimator<'_>,
        counters: &mut Counters,
    ) -> Result<(PhysicalPlan, NodeCost)> {
        let n = access.len();
        let mut best: Option<(f64, PhysicalPlan, NodeCost)> = None;
        let mut order: Vec<usize> = Vec::with_capacity(n);
        let mut used = vec![false; n];
        self.recurse_orders(q, access, &mut order, &mut used, &mut best, counters)?;
        let (_, plan, cost) = best.ok_or_else(|| DiscoError::Plan("no join order found".into()))?;
        Ok((plan, cost))
    }

    #[allow(clippy::too_many_arguments)]
    fn recurse_orders(
        &self,
        q: &AnalyzedQuery,
        access: &[AccessPlan],
        order: &mut Vec<usize>,
        used: &mut Vec<bool>,
        best: &mut Option<(f64, PhysicalPlan, NodeCost)>,
        counters: &mut Counters,
    ) -> Result<()> {
        let n = access.len();
        if order.len() == n {
            let plan = self.build_join_tree(q, access, order)?;
            let limit = if self.options.pruning {
                best.as_ref().map(|(c, _, _)| *c)
            } else {
                None
            };
            match self.cost_full(q, &plan, limit, counters)? {
                Some(cost) => {
                    if best
                        .as_ref()
                        .map(|(c, _, _)| cost.total_time < *c)
                        .unwrap_or(true)
                    {
                        *best = Some((cost.total_time, plan, cost));
                    }
                }
                None => counters.pruned += 1,
            }
            return Ok(());
        }
        // Prefer tables connected to the current prefix; allow cross
        // products only when nothing is connected.
        let connected: Vec<usize> = (0..n)
            .filter(|&i| !used[i])
            .filter(|&i| {
                order.is_empty()
                    || q.joins.iter().any(|j| {
                        (j.left_table == i && order.contains(&j.right_table))
                            || (j.right_table == i && order.contains(&j.left_table))
                    })
            })
            .collect();
        let candidates: Vec<usize> = if connected.is_empty() {
            (0..n).filter(|&i| !used[i]).collect()
        } else {
            connected
        };
        for i in candidates {
            used[i] = true;
            order.push(i);
            self.recurse_orders(q, access, order, used, best, counters)?;
            order.pop();
            used[i] = false;
        }
        Ok(())
    }

    /// Greedy order for many-table queries: smallest estimated access
    /// cardinality first, then connected tables.
    fn greedy_order(
        &self,
        q: &AnalyzedQuery,
        access: &[AccessPlan],
        counters: &mut Counters,
    ) -> Result<(PhysicalPlan, NodeCost)> {
        let estimator = Estimator::new(self.registry, self.catalog);
        let n = access.len();
        let mut card = vec![0.0f64; n];
        for (i, a) in access.iter().enumerate() {
            let report = estimator
                .estimate_report(&to_logical(&a.plan), &EstimateOptions::default())?
                .expect("no limit");
            counters.nodes += report.nodes_visited;
            card[i] = report.cost.count_object;
        }
        let mut order = Vec::with_capacity(n);
        let mut used = vec![false; n];
        for _ in 0..n {
            let next = (0..n)
                .filter(|&i| !used[i])
                .filter(|&i| {
                    order.is_empty()
                        || q.joins.iter().any(|j| {
                            (j.left_table == i && order.contains(&j.right_table))
                                || (j.right_table == i && order.contains(&j.left_table))
                        })
                })
                .min_by(|&a, &b| card[a].total_cmp(&card[b]))
                .or_else(|| {
                    (0..n)
                        .filter(|&i| !used[i])
                        .min_by(|&a, &b| card[a].total_cmp(&card[b]))
                })
                .expect("tables remain");
            used[next] = true;
            order.push(next);
        }
        let plan = self.build_join_tree(q, access, &order)?;
        let cost = self
            .cost_full(q, &plan, None, counters)?
            .expect("no limit set");
        Ok((plan, cost))
    }

    /// Left-deep join tree over the given table order.
    fn build_join_tree(
        &self,
        q: &AnalyzedQuery,
        access: &[AccessPlan],
        order: &[usize],
    ) -> Result<PhysicalPlan> {
        let mut in_tree: Vec<usize> = vec![order[0]];
        let mut plan = access[order[0]].plan.clone();
        let mut applied = vec![false; q.joins.len()];
        for &next in &order[1..] {
            // Find a join condition connecting `next` to the tree.
            let found = q.joins.iter().enumerate().find(|(ji, j)| {
                !applied[*ji]
                    && ((j.left_table == next && in_tree.contains(&j.right_table))
                        || (j.right_table == next && in_tree.contains(&j.left_table)))
            });
            let right = access[next].plan.clone();
            plan = match found {
                Some((ji, j)) => {
                    applied[ji] = true;
                    // Qualified names on both sides; flip so the left
                    // attribute belongs to the tree.
                    let (left_attr, op, right_attr) = if in_tree.contains(&j.left_table) {
                        (
                            format!("{}.{}", q.tables[j.left_table].alias, j.left_attr),
                            j.op,
                            format!("{}.{}", q.tables[j.right_table].alias, j.right_attr),
                        )
                    } else {
                        (
                            format!("{}.{}", q.tables[j.right_table].alias, j.right_attr),
                            j.op.flipped(),
                            format!("{}.{}", q.tables[j.left_table].alias, j.left_attr),
                        )
                    };
                    let algo = if op == CompareOp::Eq {
                        PhysicalJoinAlgo::Hash
                    } else {
                        PhysicalJoinAlgo::NestedLoop
                    };
                    PhysicalPlan::Join {
                        algo,
                        left: Box::new(plan),
                        right: Box::new(right),
                        predicate: JoinPredicate {
                            left_attr,
                            op,
                            right_attr,
                        },
                    }
                }
                None => {
                    // Cross product via an always-true nested loop is not
                    // expressible with JoinPredicate; emulate with a
                    // self-comparing predicate only when a join truly is
                    // missing.
                    return Err(DiscoError::Unsupported(format!(
                        "query requires a cross product involving `{}`; add a join condition",
                        q.tables[next].alias
                    )));
                }
            };
            in_tree.push(next);
        }
        // Residual join conditions (cycles in the join graph) become
        // mediator filters comparing two columns — not expressible as
        // SelectPredicate; reject for now.
        if applied.iter().zip(&q.joins).any(|(a, _)| !a) && q.joins.len() > order.len() - 1 {
            return Err(DiscoError::Unsupported(
                "cyclic join graphs are not supported yet".into(),
            ));
        }
        Ok(plan)
    }

    /// Stack the post-join operators and estimate the complete plan.
    fn cost_full(
        &self,
        q: &AnalyzedQuery,
        join_plan: &PhysicalPlan,
        limit: Option<f64>,
        counters: &mut Counters,
    ) -> Result<Option<NodeCost>> {
        let plan = self.finish_plan(q, join_plan.clone())?;
        let estimator = Estimator::new(self.registry, self.catalog);
        let opts = EstimateOptions {
            cost_limit: limit,
            wrapper: None,
        };
        counters.considered += 1;
        let report = estimator.estimate_report(&to_logical(&plan), &opts)?;
        if let Some(r) = &report {
            counters.nodes += r.nodes_visited;
            counters.rules += r.rules_evaluated;
        }
        Ok(report.map(|r| r.cost))
    }

    /// Aggregate / project / distinct / sort on top of the join tree.
    fn finish_plan(&self, q: &AnalyzedQuery, mut plan: PhysicalPlan) -> Result<PhysicalPlan> {
        if q.is_aggregate() {
            plan = PhysicalPlan::Aggregate {
                input: Box::new(plan),
                group_by: q.group_by.clone(),
                aggs: q.aggs.clone(),
            };
        }
        plan = PhysicalPlan::Project {
            input: Box::new(plan),
            columns: q.output.clone(),
        };
        if q.distinct {
            plan = PhysicalPlan::Dedup {
                input: Box::new(plan),
            };
        }
        if !q.order_by.is_empty() {
            plan = PhysicalPlan::Sort {
                input: Box::new(plan),
                keys: q.order_by.clone(),
            };
        }
        Ok(plan)
    }
}

#[derive(Default)]
struct Counters {
    considered: usize,
    pruned: usize,
    nodes: usize,
    rules: usize,
}

/// One table's chosen access plan.
#[derive(Debug, Clone)]
struct AccessPlan {
    #[allow(dead_code)]
    table: usize,
    plan: PhysicalPlan,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::sql::parse_query;
    use disco_catalog::AttributeStats;
    use disco_catalog::{Capabilities, CollectionStats, ExtentStats};
    use disco_common::{AttributeDef, DataType, Schema, Value};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register_wrapper("a", Capabilities::full()).unwrap();
        c.register_wrapper("b", Capabilities::scan_only()).unwrap();
        c.register_collection(
            "a",
            "Big",
            Schema::new(vec![
                AttributeDef::new("id", DataType::Long),
                AttributeDef::new("k", DataType::Long),
            ]),
            CollectionStats::new(ExtentStats::of(100_000, 64)).with_attribute(
                "id",
                AttributeStats::indexed(100_000, Value::Long(0), Value::Long(99_999)),
            ),
        )
        .unwrap();
        c.register_collection(
            "a",
            "Small",
            Schema::new(vec![
                AttributeDef::new("sid", DataType::Long),
                AttributeDef::new("label", DataType::Str),
            ]),
            CollectionStats::new(ExtentStats::of(50, 32)).with_attribute(
                "sid",
                AttributeStats::indexed(50, Value::Long(0), Value::Long(49)),
            ),
        )
        .unwrap();
        c.register_collection(
            "b",
            "File",
            Schema::new(vec![AttributeDef::new("fid", DataType::Long)]),
            CollectionStats::new(ExtentStats::of(500, 16)),
        )
        .unwrap();
        c
    }

    fn optimize(sql: &str) -> OptimizedPlan {
        let cat = catalog();
        let reg = RuleRegistry::with_default_model();
        let q = analyze(&parse_query(sql).unwrap(), &cat).unwrap();
        Optimizer::new(&cat, &reg, OptimizerOptions::default())
            .optimize(&q)
            .unwrap()
    }

    fn count_kind(p: &PhysicalPlan, pred: &dyn Fn(&PhysicalPlan) -> bool) -> usize {
        pred(p) as usize
            + p.children()
                .iter()
                .map(|c| count_kind(c, pred))
                .sum::<usize>()
    }

    #[test]
    fn to_logical_preserves_shape() {
        let plan = optimize("SELECT id FROM Big WHERE id < 10").physical;
        let logical = to_logical(&plan);
        // One submit, projection on top.
        assert!(matches!(
            logical.kind(),
            disco_algebra::OperatorKind::Project
        ));
        assert_eq!(logical.collections().len(), 1);
    }

    #[test]
    fn selection_pushed_into_capable_wrapper() {
        let plan = optimize("SELECT id FROM Big WHERE id < 10").physical;
        // No mediator-side Filter: selection went into the submit.
        let filters = count_kind(&plan, &|p| matches!(p, PhysicalPlan::Filter { .. }));
        assert_eq!(filters, 0);
    }

    #[test]
    fn scan_only_wrapper_filtered_at_mediator() {
        let plan = optimize("SELECT fid FROM File WHERE fid < 10").physical;
        let filters = count_kind(&plan, &|p| matches!(p, PhysicalPlan::Filter { .. }));
        assert_eq!(filters, 1);
        // The submit contains a bare scan.
        fn submit_plan(p: &PhysicalPlan) -> Option<&LogicalPlan> {
            if let PhysicalPlan::SubmitRemote { plan, .. } = p {
                return Some(plan);
            }
            p.children().iter().find_map(|c| submit_plan(c))
        }
        let sub = submit_plan(&plan).unwrap();
        assert!(matches!(sub.kind(), disco_algebra::OperatorKind::Scan));
    }

    #[test]
    fn join_order_puts_selective_side_sensibly() {
        let out = optimize("SELECT b.id FROM Big b, Small s WHERE b.k = s.sid AND b.id < 100");
        assert!(out.plans_considered >= 2);
        // Estimate exists and join output is bounded by inputs.
        assert!(out.estimated.count_object > 0.0);
    }

    #[test]
    fn cross_product_rejected() {
        let cat = catalog();
        let reg = RuleRegistry::with_default_model();
        let q = analyze(
            &parse_query("SELECT b.id FROM Big b, Small s").unwrap(),
            &cat,
        )
        .unwrap();
        let e = Optimizer::new(&cat, &reg, OptimizerOptions::default())
            .optimize(&q)
            .unwrap_err();
        assert_eq!(e.kind(), "unsupported");
    }

    #[test]
    fn greedy_path_used_beyond_threshold() {
        let cat = catalog();
        let reg = RuleRegistry::with_default_model();
        let q = analyze(
            &parse_query("SELECT b.id FROM Big b, Small s WHERE b.k = s.sid AND b.id < 10")
                .unwrap(),
            &cat,
        )
        .unwrap();
        let opts = OptimizerOptions {
            exhaustive_up_to: 1,
            ..Default::default()
        };
        let out = Optimizer::new(&cat, &reg, opts).optimize(&q).unwrap();
        // Greedy considers exactly one complete plan.
        assert_eq!(out.plans_considered, 1);
    }

    #[test]
    fn count_only_query_still_ships_a_column() {
        let plan = optimize("SELECT COUNT(*) AS n FROM Big").physical;
        let logical = to_logical(&plan);
        assert!(logical.output_schema().unwrap().index_of("n").is_some());
    }
}

//! Plan enumeration and cost-based selection (paper §2.2, §4).
//!
//! "From a declarative query, the mediator can generate multiple access
//! plans involving local operations at the data source level and global
//! ones at the mediator level." The optimizer enumerates:
//!
//! * **pushdown variants** per table — execute selections/projections at
//!   the wrapper (when its capabilities allow) or compensate at the
//!   mediator;
//! * **join orders** — left-deep trees, connected-subgraph-first.
//!
//! Join-order search is Selinger-style **dynamic programming over table
//! subsets** ([`JoinEnumeration::Dp`], the default): a bitset-keyed memo
//! holds the best joined prefix per subset (a small Pareto set over the
//! five cost variables, which keeps the search exact even when orders of
//! one subset differ in cardinality estimates), giving O(2ⁿ·n) candidate
//! costings instead of the O(n!) complete plans of the exhaustive
//! permutation enumerator (kept as [`JoinEnumeration::Permutation`] — the
//! equivalence oracle and perf baseline). Candidate estimation runs over
//! two shared caches (subplan cost memo + rule-resolution cache, see
//! [`disco_core::cache`]), and independent candidates of one DP frontier
//! are costed concurrently on scoped threads. Beyond
//! [`OptimizerOptions::exhaustive_up_to`] tables, ordering is greedy by
//! estimated cardinality.
//!
//! With [`OptimizerOptions::pruning`] (default on) the best complete
//! plan's cost becomes the estimator's cost limit, abandoning estimation
//! of worse candidates midway (§4.3.2); the DP seeds that limit with a
//! greedy complete plan so even frontier subplans can be abandoned.
//!
//! **Small-query fast path.** The DP's fixed costs — cache setup, the
//! greedy seed plan, scoped-thread fan-out — only pay off once the
//! permutation space is large. `BENCH_optimizer.json` puts the
//! wall-clock crossover at about five tables (wall_speedup < 1 below
//! it), so joins of at most [`OptimizerOptions::small_query_threshold`]
//! tables are routed through direct uncached enumeration even when DP
//! is selected; [`OptimizedPlan::fast_path`] records when that happened.
//!
//! **Objective.** Plans are ranked by [`OptimizerOptions::objective`]:
//! `TotalTime` (the default — throughput) or `TimeFirst` (latency to the
//! first answer tuple, the cost model's `TimeFirst` variable). A `LIMIT`
//! or interactive hint selects `TimeFirst`, pairing with the executor's
//! streaming path which can stop early. The DP memo's Pareto set already
//! keeps `time_first`-optimal prefixes, so only the final ranking (and
//! the access-variant choice) re-keys; §4.3.2 cost-limit pruning is
//! disabled under `TimeFirst` because the estimator's abandon check
//! compares accumulated *total* time, not time-to-first.

use disco_algebra::{
    CompareOp, JoinKind, JoinPredicate, LogicalPlan, OperatorKind, PhysicalJoinAlgo, PhysicalPlan,
    Predicate, ScalarExpr, SelectPredicate,
};
use disco_catalog::{CapabilityProfile, Catalog};
use disco_common::{DiscoError, HealthTracker, QualifiedName, Result};
use disco_core::{
    EstimateOptions, EstimateReport, Estimator, EstimatorCache, NodeCost, RuleRegistry,
};

use crate::analyze::AnalyzedQuery;

/// Join-order search strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinEnumeration {
    /// Subset dynamic programming with memoized prefixes (the default).
    #[default]
    Dp,
    /// Exhaustive left-deep permutation enumeration — the pre-DP
    /// baseline, kept as the equivalence oracle for tests and the
    /// speedup baseline for experiments. Runs without the estimation
    /// caches so its work counters reflect the original cost.
    Permutation,
}

/// Hard ceiling on DP table count: the memo is a dense `2^n` vector.
const DP_MAX_TABLES: usize = 16;

/// Which cost variable ranks complete plans (paper §3: the mediator
/// cost model exposes several optimization goals, not just one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Objective {
    /// Minimize `TotalTime` — best full-answer throughput (default).
    #[default]
    TotalTime,
    /// Minimize `TimeFirst` — best latency to the first answer tuple.
    /// Chosen for `LIMIT`/interactive queries executed by the streaming
    /// pipeline, which delivers rows as wrappers produce them.
    TimeFirst,
}

/// Tuning knobs for one optimization run.
#[derive(Debug, Clone)]
pub struct OptimizerOptions {
    /// Abandon plans whose partial cost exceeds the best found so far
    /// (§4.3.2). On by default.
    pub pruning: bool,
    /// Up to this many tables, search join orders optimally (DP or
    /// permutation per `enumeration`); beyond, order greedily by
    /// estimated cardinality.
    pub exhaustive_up_to: usize,
    /// Join-order search strategy.
    pub enumeration: JoinEnumeration,
    /// With [`JoinEnumeration::Dp`], queries of at most this many tables
    /// skip the DP machinery (estimation caches, greedy seed, memo) and
    /// run direct uncached enumeration instead — the measured wall-clock
    /// crossover from `BENCH_optimizer.json` (wall_speedup < 1 for
    /// n ≤ 5). Set to 0 to force DP at every size.
    pub small_query_threshold: usize,
    /// Cost variable that ranks plans (see [`Objective`]).
    pub objective: Objective,
    /// Run the capability-negotiation pass after join enumeration
    /// (fusing same-wrapper joins and pushing grouped aggregates when
    /// the estimator prices the pushed form no worse). On by default;
    /// off isolates the enumerator, e.g. for DP-vs-oracle equivalence.
    pub negotiation: bool,
}

impl Default for OptimizerOptions {
    fn default() -> Self {
        OptimizerOptions {
            pruning: true,
            exhaustive_up_to: 12,
            enumeration: JoinEnumeration::Dp,
            small_query_threshold: 5,
            objective: Objective::TotalTime,
            negotiation: true,
        }
    }
}

/// The optimizer's output: the chosen plan plus work accounting.
#[derive(Debug, Clone)]
pub struct OptimizedPlan {
    pub physical: PhysicalPlan,
    /// Blended-model estimate of the chosen plan.
    pub estimated: NodeCost,
    /// Complete plans costed.
    pub plans_considered: usize,
    /// Candidates abandoned by the cost limit (only with pruning):
    /// complete plans under permutation search, complete plans and DP
    /// frontier subplans under DP search.
    pub plans_pruned: usize,
    /// Total estimator node visits across the run (memo hits count one
    /// visit; the subtree walk they skip counts nothing).
    pub estimator_nodes: usize,
    /// Total rule-body evaluations across the run.
    pub estimator_rules: usize,
    /// Subplan cost-memo hits across the run (0 for the permutation
    /// baseline, which runs uncached).
    pub memo_hits: usize,
    /// Rule-resolution cache hits across the run.
    pub rule_cache_hits: usize,
    /// Whether the small-query fast path handled join ordering (DP was
    /// selected but the table count sat at or below
    /// [`OptimizerOptions::small_query_threshold`]).
    pub fast_path: bool,
    /// `LIMIT n` carried from the query: the executor caps the answer
    /// (and, streaming, stops pulling) at `n` rows. Not part of the
    /// plan tree — enforcement is an executor concern.
    pub limit: Option<u64>,
    /// Constant-free decisions extracted from the *pre-negotiation*
    /// plan (the left-deep per-table shape [`Optimizer::replay`]
    /// rebuilds; negotiation re-runs deterministically on replay).
    /// `None` for shapes the replay path cannot rebuild.
    pub decisions: Option<PlanDecisions>,
    /// Human-readable capability-negotiation outcome, one line per
    /// operator: what was pushed into which wrapper, what was lifted
    /// into the mediator's combine plan, and why. Rendered by EXPLAIN.
    pub negotiation: Vec<String>,
}

/// The constant-free residue of one optimization run: which wrapper
/// served each table, which operators were pushed down, and the join
/// order. A plan cache stores this instead of the [`PhysicalPlan`]
/// itself so a later query with the same *shape* but different
/// constants can be rebuilt by [`Optimizer::replay`] — the incoming
/// query's own predicates are re-injected, never the cached ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanDecisions {
    /// Per-table (indexed like `AnalyzedQuery::tables`) access choice.
    access: Vec<AccessDecision>,
    /// Left-deep join order as table indices.
    order: Vec<usize>,
}

/// One table's access-path choice (see [`PlanDecisions`]).
#[derive(Debug, Clone, PartialEq, Eq)]
struct AccessDecision {
    wrapper: String,
    push_select: bool,
    push_project: bool,
}

impl PlanDecisions {
    /// Extract the decisions that produced `plan` for `q`. Returns
    /// `None` for shapes the replay path cannot rebuild (anything but
    /// a left-deep tree of single-submit leaves) — callers then simply
    /// skip caching.
    pub fn of(q: &AnalyzedQuery, plan: &PhysicalPlan) -> Option<PlanDecisions> {
        // Strip the post-join operators finish_plan stacked on top:
        // Sort? → Dedup? → Project(output) → Aggregate? → join tree.
        let mut p = plan;
        if let PhysicalPlan::Sort { input, .. } = p {
            p = input;
        }
        if let PhysicalPlan::Dedup { input } = p {
            p = input;
        }
        let PhysicalPlan::Project { input, .. } = p else {
            return None;
        };
        let mut p = input.as_ref();
        if let PhysicalPlan::Aggregate { input, .. } = p {
            p = input;
        }
        let mut leaves = Vec::new();
        collect_leaves(p, &mut leaves);
        if leaves.len() != q.tables.len() {
            return None;
        }
        let mut access: Vec<Option<AccessDecision>> = vec![None; q.tables.len()];
        let mut order = Vec::with_capacity(leaves.len());
        for leaf in leaves {
            let (t, d) = leaf_decision(q, leaf)?;
            if access[t].is_some() {
                return None;
            }
            access[t] = Some(d);
            order.push(t);
        }
        Some(PlanDecisions {
            access: access.into_iter().collect::<Option<Vec<_>>>()?,
            order,
        })
    }
}

/// Flatten a left-deep join tree into its leaves, leftmost first.
fn collect_leaves<'p>(p: &'p PhysicalPlan, out: &mut Vec<&'p PhysicalPlan>) {
    if let PhysicalPlan::Join { left, right, .. } = p {
        collect_leaves(left, out);
        collect_leaves(right, out);
    } else {
        out.push(p);
    }
}

/// Parse one access-plan leaf (mediator Project? → Filter? → submit)
/// back into the table it serves and the decisions that built it.
fn leaf_decision(q: &AnalyzedQuery, leaf: &PhysicalPlan) -> Option<(usize, AccessDecision)> {
    let mut p = leaf;
    let mut mediator_cols: Option<&[(String, ScalarExpr)]> = None;
    if let PhysicalPlan::Project { input, columns } = p {
        mediator_cols = Some(columns);
        p = input;
    }
    if let PhysicalPlan::Filter { input, .. } = p {
        p = input;
    }
    let PhysicalPlan::SubmitRemote { wrapper, plan, .. } = p else {
        return None;
    };
    // Inside the submit: Project? → Select? → Scan (access_variant's
    // construction order). The alias-qualified rename lives in
    // whichever Project exists.
    let mut inner = plan;
    let mut pushed_cols: Option<&[(String, ScalarExpr)]> = None;
    if let LogicalPlan::Project { input, columns } = inner {
        pushed_cols = Some(columns);
        inner = input;
    }
    let push_select = matches!(inner, LogicalPlan::Select { .. });
    let push_project = mediator_cols.is_none();
    if push_project != pushed_cols.is_some() {
        return None;
    }
    let rename = mediator_cols.or(pushed_cols)?;
    let (alias, _) = rename.first()?.0.split_once('.')?;
    let t = q.tables.iter().position(|b| b.alias == alias)?;
    Some((
        t,
        AccessDecision {
            wrapper: wrapper.clone(),
            push_select,
            push_project,
        },
    ))
}

/// Cost-based optimizer over a catalog and rule registry.
pub struct Optimizer<'a> {
    catalog: &'a Catalog,
    registry: &'a RuleRegistry,
    options: OptimizerOptions,
    tracer: Option<disco_obs::Tracer>,
    health: Option<&'a HealthTracker>,
    shared_cache: Option<&'a EstimatorCache>,
}

/// Convert a physical plan to the logical form the estimator prices.
pub fn to_logical(plan: &PhysicalPlan) -> LogicalPlan {
    match plan {
        PhysicalPlan::SubmitRemote { wrapper, plan, .. } => LogicalPlan::Submit {
            wrapper: wrapper.clone(),
            input: Box::new(plan.clone()),
        },
        PhysicalPlan::Filter { input, predicate } => LogicalPlan::Select {
            input: Box::new(to_logical(input)),
            predicate: predicate.clone(),
        },
        PhysicalPlan::Project { input, columns } => LogicalPlan::Project {
            input: Box::new(to_logical(input)),
            columns: columns.clone(),
        },
        PhysicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(to_logical(input)),
            keys: keys.clone(),
        },
        PhysicalPlan::Join {
            left,
            right,
            predicate,
            ..
        } => LogicalPlan::Join {
            left: Box::new(to_logical(left)),
            right: Box::new(to_logical(right)),
            predicate: predicate.clone(),
            kind: JoinKind::Inner,
        },
        PhysicalPlan::Union { left, right } => LogicalPlan::Union {
            left: Box::new(to_logical(left)),
            right: Box::new(to_logical(right)),
        },
        PhysicalPlan::Dedup { input } => LogicalPlan::Dedup {
            input: Box::new(to_logical(input)),
        },
        PhysicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => LogicalPlan::Aggregate {
            input: Box::new(to_logical(input)),
            group_by: group_by.clone(),
            aggs: aggs.clone(),
        },
    }
}

/// Iterate the set bit positions of a mask, ascending.
fn bits(mut mask: u64) -> impl Iterator<Item = usize> {
    std::iter::from_fn(move || {
        if mask == 0 {
            None
        } else {
            let i = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            Some(i)
        }
    })
}

/// Map `f` over `items` on scoped threads, preserving order. Falls back
/// to a serial map for tiny inputs or single-core hosts. `f` must be
/// deterministic: results are reduced sequentially afterwards, so the
/// outcome is independent of thread scheduling.
fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map_or(1, |p| p.get())
        .min(items.len());
    if threads <= 1 || items.len() < 2 {
        return items.into_iter().map(f).collect();
    }
    let chunk_size = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(chunk_size).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| s.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("costing worker panicked"))
            .collect()
    })
}

/// Estimate through the cache when one is in play.
fn estimate(
    estimator: &Estimator<'_>,
    cache: Option<&EstimatorCache>,
    logical: &LogicalPlan,
    opts: &EstimateOptions,
) -> Result<Option<EstimateReport>> {
    match cache {
        Some(c) => estimator.estimate_report_cached(logical, opts, c),
        None => estimator.estimate_report(logical, opts),
    }
}

impl<'a> Optimizer<'a> {
    /// The value of the configured objective on one plan estimate.
    fn objective_value(&self, c: &NodeCost) -> f64 {
        match self.options.objective {
            Objective::TotalTime => c.total_time,
            Objective::TimeFirst => c.time_first,
        }
    }

    /// §4.3.2 pruning is sound only when the objective matches the
    /// estimator's abandon check, which accumulates total time.
    fn pruning_on(&self) -> bool {
        self.options.pruning && self.options.objective == Objective::TotalTime
    }

    /// Build an optimizer.
    pub fn new(
        catalog: &'a Catalog,
        registry: &'a RuleRegistry,
        options: OptimizerOptions,
    ) -> Self {
        Optimizer {
            catalog,
            registry,
            options,
            tracer: None,
            health: None,
            shared_cache: None,
        }
    }

    /// Use an externally-owned estimation cache instead of a fresh
    /// per-run one, so successive (and concurrent — the cache is
    /// thread-safe) optimizations amortize one another's subplan
    /// costings. The caller owns invalidation: cached entries assume a
    /// fixed registry, catalog, and health state, so the cache must be
    /// replaced whenever any of those change.
    pub fn with_cache(mut self, cache: Option<&'a EstimatorCache>) -> Self {
        self.shared_cache = cache;
        self
    }

    /// Attach a tracer; `optimize` then records `access-plans` and
    /// `join-enumeration` phase spans with work-counter events.
    pub fn with_tracer(mut self, tracer: disco_obs::Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Consult a health tracker when pricing submits (builder style):
    /// penalized wrappers estimate slower and lose access plans to
    /// their replicas.
    pub fn with_health(mut self, health: Option<&'a HealthTracker>) -> Self {
        self.health = health;
        self
    }

    /// Rank candidate plans by `objective` instead of the default
    /// `TotalTime` (builder style). See [`Objective`].
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.options.objective = objective;
        self
    }

    /// Optimize an analyzed query into a physical plan.
    pub fn optimize(&self, q: &AnalyzedQuery) -> Result<OptimizedPlan> {
        if q.tables.is_empty() {
            return Err(DiscoError::Plan("query has no tables".into()));
        }
        let mut counters = Counters::default();
        let estimator = Estimator::new(self.registry, self.catalog).with_health(self.health);
        let cache_store = EstimatorCache::new();
        let n = q.tables.len();
        // Small-query fast path: below the measured DP crossover, direct
        // enumeration wins on wall clock. It runs uncached — the caches'
        // setup and key hashing are part of the overhead it avoids.
        let fast_path = matches!(self.options.enumeration, JoinEnumeration::Dp)
            && n > 1
            && n <= self
                .options
                .small_query_threshold
                .min(self.options.exhaustive_up_to);
        let cache = (matches!(self.options.enumeration, JoinEnumeration::Dp) && !fast_path)
            .then_some(self.shared_cache.unwrap_or(&cache_store));

        // Phase 1: best access variant per table (independent — costed
        // in parallel).
        let span = self.tracer.as_ref().map(|t| t.start("access-plans"));
        let access_results = parallel_map((0..q.tables.len()).collect::<Vec<_>>(), |t| {
            self.best_access(q, t, &estimator, cache)
        });
        let mut access: Vec<AccessPlan> = Vec::with_capacity(q.tables.len());
        for result in access_results {
            let (plan, used) = result?;
            counters.merge(used);
            access.push(plan);
        }
        if let Some(s) = span {
            if let Some(t) = &self.tracer {
                t.event("tables", n);
            }
            s.finish();
        }

        // Phase 2: join order.
        let strategy = if n == 1 {
            "single-table"
        } else if fast_path {
            "fast-path"
        } else {
            match self.options.enumeration {
                JoinEnumeration::Dp if n <= self.options.exhaustive_up_to.min(DP_MAX_TABLES) => {
                    "dp"
                }
                JoinEnumeration::Permutation if n <= self.options.exhaustive_up_to => "permutation",
                _ => "greedy",
            }
        };
        let span = self.tracer.as_ref().map(|t| t.start("join-enumeration"));
        let (best_join, best_cost) = if n == 1 {
            let plan = access[0].plan.clone();
            let (cost, used) = self.cost_full(q, &plan, None, &estimator, cache)?;
            counters.merge(used);
            counters.considered += 1;
            let cost = cost.ok_or_else(|| {
                DiscoError::Cost("single-table plan was pruned without a limit".into())
            })?;
            (plan, cost)
        } else if fast_path {
            self.enumerate_orders(q, &access, &estimator, cache, &mut counters)?
        } else {
            match self.options.enumeration {
                JoinEnumeration::Dp if n <= self.options.exhaustive_up_to.min(DP_MAX_TABLES) => {
                    self.dp_orders(q, &access, &estimator, cache, &mut counters)?
                }
                JoinEnumeration::Permutation if n <= self.options.exhaustive_up_to => {
                    self.enumerate_orders(q, &access, &estimator, cache, &mut counters)?
                }
                _ => self.greedy_order(q, &access, &estimator, cache, &mut counters)?,
            }
        };

        if let Some(s) = span {
            if let Some(t) = &self.tracer {
                t.event("strategy", strategy);
                t.event("plans_considered", counters.considered);
                t.event("plans_pruned", counters.pruned);
                t.event("estimator_nodes", counters.nodes);
                t.event("estimator_rules", counters.rules);
                t.event("memo_hits", cache.map_or(0, |c| c.cost_hits()));
                t.event("rule_cache_hits", cache.map_or(0, |c| c.rule_hits()));
            }
            s.finish();
        }
        // Publish the run's cache counters (cumulative) and hit-rate
        // gauges to the global registry.
        if let Some(c) = cache {
            c.publish_metrics();
        }

        let physical = self.finish_plan(q, best_join)?;
        // Decisions are extracted from the pre-negotiation plan: the
        // negotiation pass may fuse leaves into multi-table submits,
        // which the replay path rebuilds by re-running negotiation.
        let decisions = PlanDecisions::of(q, &physical);
        let (physical, best_cost, negotiation) = if self.options.negotiation {
            self.negotiate(
                q,
                physical,
                best_cost,
                decisions.as_ref(),
                &estimator,
                cache,
                &mut counters,
            )?
        } else {
            (physical, best_cost, Vec::new())
        };
        Ok(OptimizedPlan {
            physical,
            estimated: best_cost,
            plans_considered: counters.considered,
            plans_pruned: counters.pruned,
            estimator_nodes: counters.nodes,
            estimator_rules: counters.rules,
            memo_hits: cache.map_or(0, |c| c.cost_hits()),
            rule_cache_hits: cache.map_or(0, |c| c.rule_hits()),
            fast_path,
            limit: q.limit,
            decisions,
            negotiation,
        })
    }

    /// Rebuild a plan for `q` from cached [`PlanDecisions`] without any
    /// enumeration: one access variant per table, one join tree, one
    /// estimate. The incoming query's own selections and projections
    /// are re-injected, so constants differing from the run that
    /// produced the decisions yield a correct (if possibly no longer
    /// optimal — standard prepared-statement semantics) plan. Errors
    /// when the decisions no longer fit the query or catalog; callers
    /// fall back to [`Self::optimize`].
    pub fn replay(&self, q: &AnalyzedQuery, decisions: &PlanDecisions) -> Result<OptimizedPlan> {
        let n = q.tables.len();
        if decisions.access.len() != n || decisions.order.len() != n || n == 0 {
            return Err(DiscoError::Plan(
                "cached decisions do not match query shape".into(),
            ));
        }
        let mut access: Vec<AccessPlan> = Vec::with_capacity(n);
        for (t, d) in decisions.access.iter().enumerate() {
            let binding = &q.tables[t];
            let sels: Vec<&SelectPredicate> = q
                .selections
                .iter()
                .filter(|(ti, _)| *ti == t)
                .map(|(_, p)| p)
                .collect();
            let mut cols: Vec<String> = q.needed[t].clone();
            if cols.is_empty() {
                cols.push(binding.schema.attributes()[0].name.clone());
            }
            let plan = self.access_variant(
                q,
                t,
                &d.wrapper,
                &cols,
                &sels,
                (d.push_select && !sels.is_empty(), d.push_project),
            )?;
            access.push(plan);
        }
        let join = if n == 1 {
            access[0].plan.clone()
        } else {
            self.build_join_tree(q, &access, &decisions.order)?
        };
        let physical = self.finish_plan(q, join)?;
        let estimator = Estimator::new(self.registry, self.catalog).with_health(self.health);
        let report = estimator
            .estimate_report(&to_logical(&physical), &EstimateOptions::default())?
            .ok_or_else(|| DiscoError::Cost("replay estimate abandoned without a limit".into()))?;
        // Negotiation is deterministic given catalog + registry + health,
        // so replaying the cached decisions re-derives the same pushdown
        // split the original optimization chose.
        let mut counters = Counters::default();
        let (physical, estimated, negotiation) = if self.options.negotiation {
            self.negotiate(
                q,
                physical,
                report.cost,
                Some(decisions),
                &estimator,
                None,
                &mut counters,
            )?
        } else {
            (physical, report.cost, Vec::new())
        };
        Ok(OptimizedPlan {
            physical,
            estimated,
            plans_considered: 0,
            plans_pruned: 0,
            estimator_nodes: report.nodes_visited + counters.nodes,
            estimator_rules: report.rules_evaluated + counters.rules,
            memo_hits: 0,
            rule_cache_hits: 0,
            fast_path: false,
            limit: q.limit,
            decisions: Some(decisions.clone()),
            negotiation,
        })
    }

    /// Enumerate pushdown variants (and replica wrappers) for one table
    /// and keep the cheapest.
    fn best_access(
        &self,
        q: &AnalyzedQuery,
        t: usize,
        estimator: &Estimator<'_>,
        cache: Option<&EstimatorCache>,
    ) -> Result<(AccessPlan, Counters)> {
        let binding = &q.tables[t];
        // The resolved wrapper comes first so it wins cost ties; declared
        // replica peers compete when health penalties or cost models make
        // them cheaper.
        let mut candidates: Vec<String> = vec![binding.qname.wrapper.clone()];
        candidates.extend(self.catalog.replica_peers(&binding.qname));

        let sels: Vec<&SelectPredicate> = q
            .selections
            .iter()
            .filter(|(ti, _)| *ti == t)
            .map(|(_, p)| p)
            .collect();

        // Columns shipped out of the wrapper, with their qualified names.
        let mut cols: Vec<String> = q.needed[t].clone();
        if cols.is_empty() {
            // Count-only queries still need one physical column.
            cols.push(binding.schema.attributes()[0].name.clone());
        }

        let mut used = Counters::default();
        let mut best: Option<(f64, AccessPlan)> = None;
        for wrapper in &candidates {
            let caps = &self
                .catalog
                .wrapper(wrapper)
                .ok_or_else(|| DiscoError::Catalog(format!("wrapper `{wrapper}` not registered")))?
                .capabilities;
            let can_select = caps.supports(OperatorKind::Select);
            let can_project = caps.supports(OperatorKind::Project);

            let mut variants: Vec<(bool, bool)> = Vec::new();
            for ps in [can_select && !sels.is_empty(), false] {
                for pp in [can_project, false] {
                    if !variants.contains(&(ps, pp)) {
                        variants.push((ps, pp));
                    }
                }
            }

            for (push_select, push_project) in variants {
                let plan =
                    self.access_variant(q, t, wrapper, &cols, &sels, (push_select, push_project))?;
                let logical = to_logical(&plan.plan);
                let report = estimate(estimator, cache, &logical, &EstimateOptions::default())?
                    .expect("no cost limit set");
                used.nodes += report.nodes_visited;
                used.rules += report.rules_evaluated;
                let cost = self.objective_value(&report.cost);
                if best.as_ref().map(|(c, _)| cost < *c).unwrap_or(true) {
                    best = Some((
                        cost,
                        AccessPlan {
                            cost: report.cost,
                            ..plan
                        },
                    ));
                }
            }
        }
        Ok((best.expect("at least one variant").1, used))
    }

    fn access_variant(
        &self,
        q: &AnalyzedQuery,
        t: usize,
        wrapper: &str,
        cols: &[String],
        sels: &[&SelectPredicate],
        (push_select, push_project): (bool, bool),
    ) -> Result<AccessPlan> {
        let binding = &q.tables[t];
        let qname = if wrapper == binding.qname.wrapper {
            binding.qname.clone()
        } else {
            QualifiedName::new(wrapper, &binding.qname.collection)
        };
        let rename: Vec<(String, ScalarExpr)> = cols
            .iter()
            .map(|c| {
                (
                    format!("{}.{c}", binding.alias),
                    ScalarExpr::attr(c.clone()),
                )
            })
            .collect();

        let mut inner = LogicalPlan::Scan {
            collection: qname,
            schema: binding.schema.clone(),
        };
        if push_select && !sels.is_empty() {
            inner = LogicalPlan::Select {
                input: Box::new(inner),
                predicate: Predicate::all(sels.iter().map(|p| (*p).clone()).collect()),
            };
        }
        if push_project {
            inner = LogicalPlan::Project {
                input: Box::new(inner),
                columns: rename.clone(),
            };
        }
        let schema = inner.output_schema()?;
        let mut phys = PhysicalPlan::SubmitRemote {
            wrapper: wrapper.to_string(),
            plan: inner,
            schema,
        };
        if !push_select && !sels.is_empty() {
            // Names seen at the mediator depend on whether the wrapper
            // already renamed.
            let preds: Vec<SelectPredicate> = sels
                .iter()
                .map(|p| {
                    let attr = if push_project {
                        format!("{}.{}", binding.alias, p.attribute)
                    } else {
                        p.attribute.clone()
                    };
                    SelectPredicate::new(attr, p.op, p.value.clone())
                })
                .collect();
            phys = PhysicalPlan::Filter {
                input: Box::new(phys),
                predicate: Predicate::all(preds),
            };
        }
        if !push_project {
            phys = PhysicalPlan::Project {
                input: Box::new(phys),
                columns: rename,
            };
        }
        Ok(AccessPlan {
            table: t,
            plan: phys,
            cost: NodeCost::ZERO,
        })
    }

    /// Selinger-style DP over table subsets: the memo holds, per
    /// connected subset, the Pareto-optimal joined prefixes (usually a
    /// single entry). Each frontier extends a memoized prefix by one
    /// adjacent table; candidates are costed concurrently, and shared
    /// prefixes are estimated once thanks to the subplan cost memo.
    fn dp_orders(
        &self,
        q: &AnalyzedQuery,
        access: &[AccessPlan],
        estimator: &Estimator<'_>,
        cache: Option<&EstimatorCache>,
        counters: &mut Counters,
    ) -> Result<(PhysicalPlan, NodeCost)> {
        let n = access.len();
        let full: u64 = (1u64 << n) - 1;

        // The join graph must connect every table (left-deep trees over
        // cross products are rejected, as in the permutation path) and
        // must be acyclic (residual join conditions are unsupported).
        let mut reach: u64 = 1;
        loop {
            let grown = reach | q.adjacent_to(reach);
            if grown == reach {
                break;
            }
            reach = grown;
        }
        if reach != full {
            let missing = bits(full & !reach).next().expect("unreached table");
            return Err(DiscoError::Unsupported(format!(
                "query requires a cross product involving `{}`; add a join condition",
                q.tables[missing].alias
            )));
        }
        if q.joins.len() > n - 1 {
            return Err(DiscoError::Unsupported(
                "cyclic join graphs are not supported yet".into(),
            ));
        }

        // §4.3.2 seed: a greedy complete plan bounds the cost limit so
        // frontier subplans can already be abandoned. The greedy plan is
        // itself in the DP's search space, so the bound is attainable.
        let mut best: Option<(f64, PhysicalPlan, NodeCost)> = None;
        if self.pruning_on() {
            let (plan, cost) = self.greedy_order(q, access, estimator, cache, counters)?;
            best = Some((self.objective_value(&cost), plan, cost));
        }

        let mut memo: Vec<Vec<DpEntry>> = vec![Vec::new(); full as usize + 1];
        for (t, a) in access.iter().enumerate() {
            memo[1usize << t].push(DpEntry {
                plan: a.plan.clone(),
                cost: a.cost,
            });
        }

        for size in 2..=n {
            // Extend every memoized prefix of size-1 by one adjacent
            // table (connected-subgraph-first: non-adjacent extensions
            // would be cross products).
            let mut cands: Vec<(u64, PhysicalPlan)> = Vec::new();
            for (prev, entries) in memo.iter().enumerate().skip(1) {
                let prev_mask = prev as u64;
                if prev_mask.count_ones() as usize != size - 1 || entries.is_empty() {
                    continue;
                }
                for t in bits(q.adjacent_to(prev_mask)) {
                    for entry in entries {
                        let plan = self.extend_join(q, entry.plan.clone(), prev_mask, t, access)?;
                        cands.push((prev_mask | (1 << t), plan));
                    }
                }
            }
            let limit = if self.pruning_on() {
                best.as_ref().map(|(c, _, _)| *c)
            } else {
                None
            };
            if size < n {
                // Frontier subplans: price the join subtree alone.
                let results = parallel_map(cands, |(subset, plan)| {
                    let opts = EstimateOptions {
                        cost_limit: limit,
                        wrapper: None,
                    };
                    estimate(estimator, cache, &to_logical(&plan), &opts)
                        .map(|report| (subset, plan, report))
                });
                for result in results {
                    let (subset, plan, report) = result?;
                    match report {
                        Some(report) => {
                            counters.nodes += report.nodes_visited;
                            counters.rules += report.rules_evaluated;
                            pareto_insert(
                                &mut memo[subset as usize],
                                DpEntry {
                                    plan,
                                    cost: report.cost,
                                },
                            );
                        }
                        None => counters.pruned += 1,
                    }
                }
            } else {
                // Final layer: complete plans with post-join operators.
                let results = parallel_map(cands, |(_, plan)| {
                    self.cost_full(q, &plan, limit, estimator, cache)
                        .map(|(cost, used)| (plan, cost, used))
                });
                for result in results {
                    let (plan, cost, used) = result?;
                    counters.merge(used);
                    counters.considered += 1;
                    match cost {
                        Some(cost) => {
                            let v = self.objective_value(&cost);
                            if best.as_ref().map(|(c, _, _)| v < *c).unwrap_or(true) {
                                best = Some((v, plan, cost));
                            }
                        }
                        None => counters.pruned += 1,
                    }
                }
            }
        }
        let (_, plan, cost) = best.ok_or_else(|| DiscoError::Plan("no join order found".into()))?;
        Ok((plan, cost))
    }

    /// Join `next`'s access plan onto `tree` using the (unique, the
    /// graph being acyclic) condition connecting `next` to `tree_mask` —
    /// the same edge choice and orientation as [`Self::build_join_tree`].
    fn extend_join(
        &self,
        q: &AnalyzedQuery,
        tree: PhysicalPlan,
        tree_mask: u64,
        next: usize,
        access: &[AccessPlan],
    ) -> Result<PhysicalPlan> {
        let j = q
            .joins
            .iter()
            .find(|j| {
                (j.left_table == next && tree_mask >> j.right_table & 1 == 1)
                    || (j.right_table == next && tree_mask >> j.left_table & 1 == 1)
            })
            .ok_or_else(|| DiscoError::Plan("adjacent table lost its join condition".into()))?;
        let (left_attr, op, right_attr) = if tree_mask >> j.left_table & 1 == 1 {
            (
                format!("{}.{}", q.tables[j.left_table].alias, j.left_attr),
                j.op,
                format!("{}.{}", q.tables[j.right_table].alias, j.right_attr),
            )
        } else {
            (
                format!("{}.{}", q.tables[j.right_table].alias, j.right_attr),
                j.op.flipped(),
                format!("{}.{}", q.tables[j.left_table].alias, j.left_attr),
            )
        };
        let algo = if op == CompareOp::Eq {
            PhysicalJoinAlgo::Hash
        } else {
            PhysicalJoinAlgo::NestedLoop
        };
        Ok(PhysicalPlan::Join {
            algo,
            left: Box::new(tree),
            right: Box::new(access[next].plan.clone()),
            predicate: JoinPredicate {
                left_attr,
                op,
                right_attr,
            },
        })
    }

    /// Exhaustive left-deep join-order enumeration with a
    /// connected-subgraph-first constraint — the permutation oracle.
    fn enumerate_orders(
        &self,
        q: &AnalyzedQuery,
        access: &[AccessPlan],
        estimator: &Estimator<'_>,
        cache: Option<&EstimatorCache>,
        counters: &mut Counters,
    ) -> Result<(PhysicalPlan, NodeCost)> {
        let n = access.len();
        let mut best: Option<(f64, PhysicalPlan, NodeCost)> = None;
        let mut order: Vec<usize> = Vec::with_capacity(n);
        self.recurse_orders(
            q, access, &mut order, 0, &mut best, estimator, cache, counters,
        )?;
        let (_, plan, cost) = best.ok_or_else(|| DiscoError::Plan("no join order found".into()))?;
        Ok((plan, cost))
    }

    #[allow(clippy::too_many_arguments)]
    fn recurse_orders(
        &self,
        q: &AnalyzedQuery,
        access: &[AccessPlan],
        order: &mut Vec<usize>,
        used_mask: u64,
        best: &mut Option<(f64, PhysicalPlan, NodeCost)>,
        estimator: &Estimator<'_>,
        cache: Option<&EstimatorCache>,
        counters: &mut Counters,
    ) -> Result<()> {
        let n = access.len();
        if order.len() == n {
            let plan = self.build_join_tree(q, access, order)?;
            let limit = if self.pruning_on() {
                best.as_ref().map(|(c, _, _)| *c)
            } else {
                None
            };
            let (cost, used) = self.cost_full(q, &plan, limit, estimator, cache)?;
            counters.merge(used);
            counters.considered += 1;
            match cost {
                Some(cost) => {
                    let v = self.objective_value(&cost);
                    if best.as_ref().map(|(c, _, _)| v < *c).unwrap_or(true) {
                        *best = Some((v, plan, cost));
                    }
                }
                None => counters.pruned += 1,
            }
            return Ok(());
        }
        // Prefer tables connected to the current prefix (O(1) bitset
        // adjacency); allow cross products only when nothing is
        // connected.
        let unused = !used_mask & ((1u64 << n) - 1);
        let connected = if order.is_empty() {
            0
        } else {
            q.adjacent_to(used_mask)
        };
        let candidates = if connected == 0 { unused } else { connected };
        for i in bits(candidates) {
            order.push(i);
            self.recurse_orders(
                q,
                access,
                order,
                used_mask | 1 << i,
                best,
                estimator,
                cache,
                counters,
            )?;
            order.pop();
        }
        Ok(())
    }

    /// Greedy order for many-table queries: smallest estimated access
    /// cardinality first (reusing the access-phase estimates), then
    /// connected tables.
    fn greedy_order(
        &self,
        q: &AnalyzedQuery,
        access: &[AccessPlan],
        estimator: &Estimator<'_>,
        cache: Option<&EstimatorCache>,
        counters: &mut Counters,
    ) -> Result<(PhysicalPlan, NodeCost)> {
        let n = access.len();
        let mut order = Vec::with_capacity(n);
        let mut used_mask = 0u64;
        for _ in 0..n {
            let unused = !used_mask & ((1u64 << n) - 1);
            let connected = if order.is_empty() {
                unused
            } else {
                q.adjacent_to(used_mask)
            };
            let candidates = if connected == 0 { unused } else { connected };
            let next = bits(candidates)
                .min_by(|&a, &b| {
                    access[a]
                        .cost
                        .count_object
                        .total_cmp(&access[b].cost.count_object)
                })
                .expect("tables remain");
            used_mask |= 1 << next;
            order.push(next);
        }
        let plan = self.build_join_tree(q, access, &order)?;
        let (cost, used) = self.cost_full(q, &plan, None, estimator, cache)?;
        counters.merge(used);
        counters.considered += 1;
        Ok((plan, cost.expect("no limit set")))
    }

    /// Left-deep join tree over the given table order.
    fn build_join_tree(
        &self,
        q: &AnalyzedQuery,
        access: &[AccessPlan],
        order: &[usize],
    ) -> Result<PhysicalPlan> {
        let mut in_tree: u64 = 1 << order[0];
        let mut plan = access[order[0]].plan.clone();
        let mut applied = vec![false; q.joins.len()];
        for &next in &order[1..] {
            // Find a join condition connecting `next` to the tree.
            let found = q.joins.iter().enumerate().find(|(ji, j)| {
                !applied[*ji]
                    && ((j.left_table == next && in_tree >> j.right_table & 1 == 1)
                        || (j.right_table == next && in_tree >> j.left_table & 1 == 1))
            });
            let right = access[next].plan.clone();
            plan = match found {
                Some((ji, j)) => {
                    applied[ji] = true;
                    // Qualified names on both sides; flip so the left
                    // attribute belongs to the tree.
                    let (left_attr, op, right_attr) = if in_tree >> j.left_table & 1 == 1 {
                        (
                            format!("{}.{}", q.tables[j.left_table].alias, j.left_attr),
                            j.op,
                            format!("{}.{}", q.tables[j.right_table].alias, j.right_attr),
                        )
                    } else {
                        (
                            format!("{}.{}", q.tables[j.right_table].alias, j.right_attr),
                            j.op.flipped(),
                            format!("{}.{}", q.tables[j.left_table].alias, j.left_attr),
                        )
                    };
                    let algo = if op == CompareOp::Eq {
                        PhysicalJoinAlgo::Hash
                    } else {
                        PhysicalJoinAlgo::NestedLoop
                    };
                    PhysicalPlan::Join {
                        algo,
                        left: Box::new(plan),
                        right: Box::new(right),
                        predicate: JoinPredicate {
                            left_attr,
                            op,
                            right_attr,
                        },
                    }
                }
                None => {
                    // Cross product via an always-true nested loop is not
                    // expressible with JoinPredicate; emulate with a
                    // self-comparing predicate only when a join truly is
                    // missing.
                    return Err(DiscoError::Unsupported(format!(
                        "query requires a cross product involving `{}`; add a join condition",
                        q.tables[next].alias
                    )));
                }
            };
            in_tree |= 1 << next;
        }
        // Residual join conditions (cycles in the join graph) become
        // mediator filters comparing two columns — not expressible as
        // SelectPredicate; reject for now.
        if applied.iter().zip(&q.joins).any(|(a, _)| !a) && q.joins.len() > order.len() - 1 {
            return Err(DiscoError::Unsupported(
                "cyclic join graphs are not supported yet".into(),
            ));
        }
        Ok(plan)
    }

    /// Stack the post-join operators and estimate the complete plan.
    /// Returns the estimate (`None` = abandoned by the limit) plus the
    /// estimation work performed, so callers can run concurrently.
    fn cost_full(
        &self,
        q: &AnalyzedQuery,
        join_plan: &PhysicalPlan,
        limit: Option<f64>,
        estimator: &Estimator<'_>,
        cache: Option<&EstimatorCache>,
    ) -> Result<(Option<NodeCost>, Counters)> {
        let plan = self.finish_plan(q, join_plan.clone())?;
        let opts = EstimateOptions {
            cost_limit: limit,
            wrapper: None,
        };
        let report = estimate(estimator, cache, &to_logical(&plan), &opts)?;
        let mut used = Counters::default();
        if let Some(r) = &report {
            used.nodes = r.nodes_visited;
            used.rules = r.rules_evaluated;
        }
        Ok((report.map(|r| r.cost), used))
    }

    /// Aggregate / project / distinct / sort on top of the join tree.
    fn finish_plan(&self, q: &AnalyzedQuery, mut plan: PhysicalPlan) -> Result<PhysicalPlan> {
        if q.is_aggregate() {
            plan = PhysicalPlan::Aggregate {
                input: Box::new(plan),
                group_by: q.group_by.clone(),
                aggs: q.aggs.clone(),
            };
        }
        plan = PhysicalPlan::Project {
            input: Box::new(plan),
            columns: q.output.clone(),
        };
        if q.distinct {
            plan = PhysicalPlan::Dedup {
                input: Box::new(plan),
            };
        }
        if !q.order_by.is_empty() {
            plan = PhysicalPlan::Sort {
                input: Box::new(plan),
                keys: q.order_by.clone(),
            };
        }
        Ok(plan)
    }

    /// Capability-driven pushdown negotiation (the post-plan rewrite).
    ///
    /// The access phase already negotiates select/project pushdown per
    /// table against declared capabilities; this pass handles the
    /// *multi-table* operators. Joins whose two sides land on the same
    /// Join-capable wrapper are fused into one submit, and a grouped
    /// aggregate sitting directly on a lone submit is pushed into an
    /// Aggregate-capable wrapper. Each rewrite is adopted only when the
    /// estimator prices it no worse than the mediator-side original
    /// under the configured objective, so a wrapper whose exported cost
    /// rules make source-side joins expensive keeps them in the combine
    /// plan. The returned notes record every pushed/lifted decision and
    /// why; EXPLAIN renders them.
    #[allow(clippy::too_many_arguments)]
    fn negotiate(
        &self,
        q: &AnalyzedQuery,
        plan: PhysicalPlan,
        cost: NodeCost,
        decisions: Option<&PlanDecisions>,
        estimator: &Estimator<'_>,
        cache: Option<&EstimatorCache>,
        counters: &mut Counters,
    ) -> Result<(PhysicalPlan, NodeCost, Vec<String>)> {
        let mut plan = plan;
        let mut cost = cost;
        let price = |cand: &PhysicalPlan, counters: &mut Counters| -> Result<NodeCost> {
            let report = estimate(
                estimator,
                cache,
                &to_logical(cand),
                &EstimateOptions::default(),
            )?
            .expect("no cost limit set");
            counters.nodes += report.nodes_visited;
            counters.rules += report.rules_evaluated;
            Ok(report.cost)
        };
        // Join fusion: price every variant and adopt the cheapest one
        // that is no worse than the mediator-side plan. Taking the min
        // over both orientations keeps the outcome independent of how
        // the enumerator tie-broke commuted join orders.
        let mut best: Option<(PhysicalPlan, NodeCost)> = None;
        for cand in fusion_variants(&plan, self.catalog) {
            let c = price(&cand, counters)?;
            let admissible = self.objective_value(&c) <= self.objective_value(&cost);
            let improves = best
                .as_ref()
                .is_none_or(|(_, b)| self.objective_value(&c) < self.objective_value(b));
            if admissible && improves {
                best = Some((cand, c));
            }
        }
        if let Some((p, c)) = best {
            plan = p;
            cost = c;
        }
        if q.is_aggregate() {
            let (pushed, changed) = push_aggregate(&plan, self.catalog);
            if changed {
                let c = price(&pushed, counters)?;
                if self.objective_value(&c) <= self.objective_value(&cost) {
                    plan = pushed;
                    cost = c;
                }
            }
        }
        let notes = self.negotiation_notes(q, decisions, &plan);
        Ok((plan, cost, notes))
    }

    /// Derive the pushed-vs-lifted report from the final plan: which
    /// operators execute inside which wrapper, which were lifted into
    /// the mediator combine plan because a profile forbids them, and
    /// which stayed local by cost.
    fn negotiation_notes(
        &self,
        q: &AnalyzedQuery,
        decisions: Option<&PlanDecisions>,
        plan: &PhysicalPlan,
    ) -> Vec<String> {
        let mut notes = Vec::new();
        let profile = |w: &str| -> &'static str {
            self.catalog
                .wrapper(w)
                .map(|e| CapabilityProfile::classify(&e.capabilities))
                .unwrap_or("unknown")
        };
        let supports = |w: &str, op: OperatorKind| -> bool {
            self.catalog
                .wrapper(w)
                .is_some_and(|e| e.capabilities.supports(op))
        };
        if let Some(d) = decisions {
            for (t, a) in d.access.iter().enumerate() {
                let alias = &q.tables[t].alias;
                if q.selections.iter().any(|(ti, _)| *ti == t) {
                    if a.push_select {
                        notes.push(format!("select on `{alias}`: pushed to `{}`", a.wrapper));
                    } else if !supports(&a.wrapper, OperatorKind::Select) {
                        notes.push(format!(
                            "select on `{alias}`: lifted to mediator combine plan \
                             (profile `{}` of `{}` forbids select)",
                            profile(&a.wrapper),
                            a.wrapper
                        ));
                    } else {
                        notes.push(format!("select on `{alias}`: kept at mediator by cost"));
                    }
                }
                if a.push_project {
                    notes.push(format!("project on `{alias}`: pushed to `{}`", a.wrapper));
                } else if !supports(&a.wrapper, OperatorKind::Project) {
                    notes.push(format!(
                        "project on `{alias}`: lifted to mediator combine plan \
                         (profile `{}` of `{}` forbids project)",
                        profile(&a.wrapper),
                        a.wrapper
                    ));
                } else {
                    notes.push(format!("project on `{alias}`: kept at mediator by cost"));
                }
            }
        }
        let mut stack = vec![plan];
        while let Some(p) = stack.pop() {
            match p {
                PhysicalPlan::Join {
                    left,
                    right,
                    predicate,
                    ..
                } => {
                    let mut all = left.wrappers();
                    for w in right.wrappers() {
                        if !all.contains(&w) {
                            all.push(w);
                        }
                    }
                    if all.len() > 1 {
                        notes.push(format!(
                            "join ({predicate}): combined at mediator (cross-wrapper: {})",
                            all.join(", ")
                        ));
                    } else if let Some(w) = all.first() {
                        if !supports(w, OperatorKind::Join) {
                            notes.push(format!(
                                "join ({predicate}): lifted to mediator combine plan \
                                 (profile `{}` of `{w}` forbids join)",
                                profile(w)
                            ));
                        } else {
                            notes.push(format!("join ({predicate}): kept at mediator by cost"));
                        }
                    }
                }
                PhysicalPlan::Aggregate {
                    input, group_by, ..
                } => {
                    let ws = input.wrappers();
                    if group_by.is_empty() {
                        notes.push(
                            "aggregate: kept at mediator (global aggregates must \
                             survive partial answers)"
                                .into(),
                        );
                    } else if ws.len() > 1 {
                        notes.push(
                            "aggregate: combined at mediator (inputs span multiple wrappers)"
                                .into(),
                        );
                    } else if !matches!(input.as_ref(), PhysicalPlan::SubmitRemote { .. }) {
                        notes.push(
                            "aggregate: combined at mediator (input is not a single subquery)"
                                .into(),
                        );
                    } else if let Some(w) = ws.first() {
                        if !supports(w, OperatorKind::Aggregate) {
                            notes.push(format!(
                                "aggregate: lifted to mediator combine plan \
                                 (profile `{}` of `{w}` forbids aggregate)",
                                profile(w)
                            ));
                        } else {
                            notes.push("aggregate: kept at mediator by cost".into());
                        }
                    }
                }
                PhysicalPlan::SubmitRemote {
                    wrapper,
                    plan: inner,
                    ..
                } => {
                    let mut istack = vec![inner];
                    while let Some(ip) = istack.pop() {
                        match ip {
                            LogicalPlan::Join { predicate, .. } => {
                                notes.push(format!("join ({predicate}): pushed to `{wrapper}`"));
                            }
                            LogicalPlan::Aggregate { .. } => {
                                notes.push(format!("aggregate: pushed to `{wrapper}`"));
                            }
                            _ => {}
                        }
                        istack.extend(ip.children());
                    }
                }
                _ => {}
            }
            stack.extend(p.children());
        }
        notes
    }
}

/// Per-node cap on fusion variants, keeping the product of choices at
/// nested joins bounded.
const FUSION_VARIANT_CAP: usize = 16;

/// All distinct fused rewrites of `plan`: every way of collapsing
/// `Join(Submit(w, A), Submit(w, B))` into `Submit(w, Join(A, B))` when
/// `w` declares Join capability and both subqueries already export the
/// alias-qualified schema the predicate names (pushed projects). Both
/// join orientations are produced — the generic join formula is
/// asymmetric (index join needs the inner side) and the enumerator may
/// have tie-broken orientation arbitrarily, so the negotiated outcome
/// must not depend on it. Applied recursively, so three or more tables
/// homed on one relational wrapper fuse into a single submit. The
/// unchanged plan is not among the variants.
fn fusion_variants(plan: &PhysicalPlan, catalog: &Catalog) -> Vec<PhysicalPlan> {
    let mut out = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    for (cand, changed) in fusion_variants_node(plan, catalog) {
        if changed && seen.insert(format!("{cand:?}")) {
            out.push(cand);
        }
    }
    out
}

/// Fuse one `Join(Submit, Submit)` pair, orienting `outer ⋈ inner`.
fn fuse_pair(
    outer: &PhysicalPlan,
    inner: &PhysicalPlan,
    predicate: &JoinPredicate,
    commute: bool,
    catalog: &Catalog,
) -> Option<PhysicalPlan> {
    let (
        PhysicalPlan::SubmitRemote {
            wrapper: lw,
            plan: lp,
            schema: ls,
        },
        PhysicalPlan::SubmitRemote {
            wrapper: rw,
            plan: rp,
            schema: rs,
        },
    ) = (outer, inner)
    else {
        return None;
    };
    let capable = lw == rw
        && catalog
            .wrapper(lw)
            .is_some_and(|w| w.capabilities.supports(OperatorKind::Join));
    if !capable
        || ls.index_of(&predicate.left_attr).is_none()
        || rs.index_of(&predicate.right_attr).is_none()
    {
        return None;
    }
    let fused = if commute {
        LogicalPlan::Join {
            left: Box::new(rp.clone()),
            right: Box::new(lp.clone()),
            predicate: JoinPredicate {
                left_attr: predicate.right_attr.clone(),
                op: predicate.op.flipped(),
                right_attr: predicate.left_attr.clone(),
            },
            kind: JoinKind::Inner,
        }
    } else {
        LogicalPlan::Join {
            left: Box::new(lp.clone()),
            right: Box::new(rp.clone()),
            predicate: predicate.clone(),
            kind: JoinKind::Inner,
        }
    };
    let schema = fused.output_schema().ok()?;
    Some(PhysicalPlan::SubmitRemote {
        wrapper: lw.clone(),
        plan: fused,
        schema,
    })
}

/// Recursive variant enumeration: each entry pairs a rewritten subtree
/// with whether any fusion happened inside it.
fn fusion_variants_node(plan: &PhysicalPlan, catalog: &Catalog) -> Vec<(PhysicalPlan, bool)> {
    let unary = |input: &PhysicalPlan, rebuild: &dyn Fn(PhysicalPlan) -> PhysicalPlan| {
        fusion_variants_node(input, catalog)
            .into_iter()
            .map(|(i, c)| (rebuild(i), c))
            .collect::<Vec<_>>()
    };
    let mut out = match plan {
        PhysicalPlan::Join {
            algo,
            left,
            right,
            predicate,
        } => {
            let lv = fusion_variants_node(left, catalog);
            let rv = fusion_variants_node(right, catalog);
            let mut out = Vec::new();
            for (l, lc) in &lv {
                for (r, rc) in &rv {
                    if let Some(fused) = fuse_pair(l, r, predicate, false, catalog) {
                        out.push((fused, true));
                    }
                    if let Some(fused) = fuse_pair(l, r, predicate, true, catalog) {
                        out.push((fused, true));
                    }
                    out.push((
                        PhysicalPlan::Join {
                            algo: *algo,
                            left: Box::new(l.clone()),
                            right: Box::new(r.clone()),
                            predicate: predicate.clone(),
                        },
                        *lc || *rc,
                    ));
                }
            }
            out
        }
        PhysicalPlan::Filter { input, predicate } => unary(input, &|i| PhysicalPlan::Filter {
            input: Box::new(i),
            predicate: predicate.clone(),
        }),
        PhysicalPlan::Project { input, columns } => unary(input, &|i| PhysicalPlan::Project {
            input: Box::new(i),
            columns: columns.clone(),
        }),
        PhysicalPlan::Sort { input, keys } => unary(input, &|i| PhysicalPlan::Sort {
            input: Box::new(i),
            keys: keys.clone(),
        }),
        PhysicalPlan::Dedup { input } => {
            unary(input, &|i| PhysicalPlan::Dedup { input: Box::new(i) })
        }
        PhysicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => unary(input, &|i| PhysicalPlan::Aggregate {
            input: Box::new(i),
            group_by: group_by.clone(),
            aggs: aggs.clone(),
        }),
        PhysicalPlan::Union { left, right } => {
            let lv = fusion_variants_node(left, catalog);
            let rv = fusion_variants_node(right, catalog);
            let mut out = Vec::new();
            for (l, lc) in &lv {
                for (r, rc) in &rv {
                    out.push((
                        PhysicalPlan::Union {
                            left: Box::new(l.clone()),
                            right: Box::new(r.clone()),
                        },
                        *lc || *rc,
                    ));
                }
            }
            out
        }
        PhysicalPlan::SubmitRemote { .. } => vec![(plan.clone(), false)],
    };
    out.truncate(FUSION_VARIANT_CAP);
    out
}

/// Push a *grouped* aggregate sitting directly on a lone submit into an
/// Aggregate-capable wrapper. Global aggregates stay at the mediator:
/// their empty-input semantics (one `Count = 0` row) must survive a
/// failed wrapper degrading the submit to an empty partial answer, which
/// a pushed aggregate cannot honor.
fn push_aggregate(plan: &PhysicalPlan, catalog: &Catalog) -> (PhysicalPlan, bool) {
    match plan {
        PhysicalPlan::Sort { input, keys } => {
            let (i, c) = push_aggregate(input, catalog);
            (
                PhysicalPlan::Sort {
                    input: Box::new(i),
                    keys: keys.clone(),
                },
                c,
            )
        }
        PhysicalPlan::Dedup { input } => {
            let (i, c) = push_aggregate(input, catalog);
            (PhysicalPlan::Dedup { input: Box::new(i) }, c)
        }
        PhysicalPlan::Project { input, columns } => {
            let (i, c) = push_aggregate(input, catalog);
            (
                PhysicalPlan::Project {
                    input: Box::new(i),
                    columns: columns.clone(),
                },
                c,
            )
        }
        PhysicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            if !group_by.is_empty() {
                if let PhysicalPlan::SubmitRemote {
                    wrapper,
                    plan: inner,
                    ..
                } = input.as_ref()
                {
                    let capable = catalog
                        .wrapper(wrapper)
                        .is_some_and(|w| w.capabilities.supports(OperatorKind::Aggregate));
                    if capable {
                        let pushed = LogicalPlan::Aggregate {
                            input: Box::new(inner.clone()),
                            group_by: group_by.clone(),
                            aggs: aggs.clone(),
                        };
                        // `output_schema` doubles as the check that every
                        // grouping/aggregate name resolves inside the
                        // subquery's exported schema.
                        if let Ok(schema) = pushed.output_schema() {
                            return (
                                PhysicalPlan::SubmitRemote {
                                    wrapper: wrapper.clone(),
                                    plan: pushed,
                                    schema,
                                },
                                true,
                            );
                        }
                    }
                }
            }
            (plan.clone(), false)
        }
        other => (other.clone(), false),
    }
}

/// One memoized joined prefix.
#[derive(Debug, Clone)]
struct DpEntry {
    plan: PhysicalPlan,
    cost: NodeCost,
}

/// `a` is at least as good as `b` on every cost variable.
fn dominates(a: &NodeCost, b: &NodeCost) -> bool {
    a.total_time <= b.total_time
        && a.time_first <= b.time_first
        && a.time_next <= b.time_next
        && a.count_object <= b.count_object
        && a.total_size <= b.total_size
}

/// Keep `entries` a Pareto set: drop the candidate if an existing entry
/// dominates it (ties keep the earlier entry, so insertion order — which
/// is deterministic — breaks ties), else insert it and drop the entries
/// it dominates. Parent costs are monotone in child cost vectors, so a
/// dominated prefix can never complete into a better plan.
fn pareto_insert(entries: &mut Vec<DpEntry>, cand: DpEntry) {
    if entries.iter().any(|e| dominates(&e.cost, &cand.cost)) {
        return;
    }
    entries.retain(|e| !dominates(&cand.cost, &e.cost));
    entries.push(cand);
}

#[derive(Debug, Default, Clone, Copy)]
struct Counters {
    considered: usize,
    pruned: usize,
    nodes: usize,
    rules: usize,
}

impl Counters {
    fn merge(&mut self, other: Counters) {
        self.considered += other.considered;
        self.pruned += other.pruned;
        self.nodes += other.nodes;
        self.rules += other.rules;
    }
}

/// One table's chosen access plan with its blended estimate.
#[derive(Debug, Clone)]
struct AccessPlan {
    #[allow(dead_code)]
    table: usize,
    plan: PhysicalPlan,
    cost: NodeCost,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::sql::parse_query;
    use disco_catalog::AttributeStats;
    use disco_catalog::{Capabilities, CollectionStats, ExtentStats};
    use disco_common::{AttributeDef, DataType, Schema, Value};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register_wrapper("a", Capabilities::full()).unwrap();
        c.register_wrapper("b", Capabilities::scan_only()).unwrap();
        c.register_collection(
            "a",
            "Big",
            Schema::new(vec![
                AttributeDef::new("id", DataType::Long),
                AttributeDef::new("k", DataType::Long),
            ]),
            CollectionStats::new(ExtentStats::of(100_000, 64)).with_attribute(
                "id",
                AttributeStats::indexed(100_000, Value::Long(0), Value::Long(99_999)),
            ),
        )
        .unwrap();
        c.register_collection(
            "a",
            "Small",
            Schema::new(vec![
                AttributeDef::new("sid", DataType::Long),
                AttributeDef::new("label", DataType::Str),
            ]),
            CollectionStats::new(ExtentStats::of(50, 32)).with_attribute(
                "sid",
                AttributeStats::indexed(50, Value::Long(0), Value::Long(49)),
            ),
        )
        .unwrap();
        c.register_collection(
            "b",
            "File",
            Schema::new(vec![AttributeDef::new("fid", DataType::Long)]),
            CollectionStats::new(ExtentStats::of(500, 16)),
        )
        .unwrap();
        c
    }

    fn optimize(sql: &str) -> OptimizedPlan {
        let cat = catalog();
        let reg = RuleRegistry::with_default_model();
        let q = analyze(&parse_query(sql).unwrap(), &cat).unwrap();
        Optimizer::new(&cat, &reg, OptimizerOptions::default())
            .optimize(&q)
            .unwrap()
    }

    fn count_kind(p: &PhysicalPlan, pred: &dyn Fn(&PhysicalPlan) -> bool) -> usize {
        pred(p) as usize
            + p.children()
                .iter()
                .map(|c| count_kind(c, pred))
                .sum::<usize>()
    }

    #[test]
    fn to_logical_preserves_shape() {
        let plan = optimize("SELECT id FROM Big WHERE id < 10").physical;
        let logical = to_logical(&plan);
        // One submit, projection on top.
        assert!(matches!(
            logical.kind(),
            disco_algebra::OperatorKind::Project
        ));
        assert_eq!(logical.collections().len(), 1);
    }

    #[test]
    fn selection_pushed_into_capable_wrapper() {
        let plan = optimize("SELECT id FROM Big WHERE id < 10").physical;
        // No mediator-side Filter: selection went into the submit.
        let filters = count_kind(&plan, &|p| matches!(p, PhysicalPlan::Filter { .. }));
        assert_eq!(filters, 0);
    }

    #[test]
    fn scan_only_wrapper_filtered_at_mediator() {
        let plan = optimize("SELECT fid FROM File WHERE fid < 10").physical;
        let filters = count_kind(&plan, &|p| matches!(p, PhysicalPlan::Filter { .. }));
        assert_eq!(filters, 1);
        // The submit contains a bare scan.
        fn submit_plan(p: &PhysicalPlan) -> Option<&LogicalPlan> {
            if let PhysicalPlan::SubmitRemote { plan, .. } = p {
                return Some(plan);
            }
            p.children().iter().find_map(|c| submit_plan(c))
        }
        let sub = submit_plan(&plan).unwrap();
        assert!(matches!(sub.kind(), disco_algebra::OperatorKind::Scan));
    }

    #[test]
    fn join_order_puts_selective_side_sensibly() {
        let out = optimize("SELECT b.id FROM Big b, Small s WHERE b.k = s.sid AND b.id < 100");
        assert!(out.plans_considered >= 2);
        // Estimate exists and join output is bounded by inputs.
        assert!(out.estimated.count_object > 0.0);
    }

    #[test]
    fn cross_product_rejected() {
        let cat = catalog();
        let reg = RuleRegistry::with_default_model();
        let q = analyze(
            &parse_query("SELECT b.id FROM Big b, Small s").unwrap(),
            &cat,
        )
        .unwrap();
        let e = Optimizer::new(&cat, &reg, OptimizerOptions::default())
            .optimize(&q)
            .unwrap_err();
        assert_eq!(e.kind(), "unsupported");
    }

    #[test]
    fn greedy_path_used_beyond_threshold() {
        let cat = catalog();
        let reg = RuleRegistry::with_default_model();
        let q = analyze(
            &parse_query("SELECT b.id FROM Big b, Small s WHERE b.k = s.sid AND b.id < 10")
                .unwrap(),
            &cat,
        )
        .unwrap();
        let opts = OptimizerOptions {
            exhaustive_up_to: 1,
            ..Default::default()
        };
        let out = Optimizer::new(&cat, &reg, opts).optimize(&q).unwrap();
        // Greedy considers exactly one complete plan.
        assert_eq!(out.plans_considered, 1);
    }

    #[test]
    fn count_only_query_still_ships_a_column() {
        let plan = optimize("SELECT COUNT(*) AS n FROM Big").physical;
        let logical = to_logical(&plan);
        assert!(logical.output_schema().unwrap().index_of("n").is_some());
    }

    #[test]
    fn dp_matches_permutation_oracle() {
        let cat = catalog();
        let reg = RuleRegistry::with_default_model();
        let q = analyze(
            &parse_query("SELECT b.id FROM Big b, Small s WHERE b.k = s.sid AND b.id < 100")
                .unwrap(),
            &cat,
        )
        .unwrap();
        // Threshold 0 forces the DP even at two tables.
        let dp = Optimizer::new(
            &cat,
            &reg,
            OptimizerOptions {
                small_query_threshold: 0,
                ..Default::default()
            },
        )
        .optimize(&q)
        .unwrap();
        let oracle = Optimizer::new(
            &cat,
            &reg,
            OptimizerOptions {
                pruning: false,
                enumeration: JoinEnumeration::Permutation,
                ..Default::default()
            },
        )
        .optimize(&q)
        .unwrap();
        assert_eq!(dp.estimated.total_time, oracle.estimated.total_time);
        assert!(dp.memo_hits > 0, "DP run should hit the subplan memo");
        assert_eq!(oracle.memo_hits, 0, "oracle runs uncached");
    }

    #[test]
    fn decisions_roundtrip_replay_matches_optimize() {
        let cat = catalog();
        let reg = RuleRegistry::with_default_model();
        let sql = "SELECT b.id FROM Big b, Small s WHERE b.k = s.sid AND b.id < 100";
        let q = analyze(&parse_query(sql).unwrap(), &cat).unwrap();
        let opt = Optimizer::new(&cat, &reg, OptimizerOptions::default());
        let out = opt.optimize(&q).unwrap();
        let d = out.decisions.clone().expect("decisions extractable");
        let replayed = opt.replay(&q, &d).unwrap();
        assert_eq!(
            format!("{:?}", replayed.physical),
            format!("{:?}", out.physical),
            "replay must rebuild the identical plan"
        );
        assert_eq!(replayed.estimated.total_time, out.estimated.total_time);
        // Same shape, different constant: the replayed plan carries the
        // *new* constant and matches a fresh optimization of it.
        let sql2 = "SELECT b.id FROM Big b, Small s WHERE b.k = s.sid AND b.id < 7";
        let q2 = analyze(&parse_query(sql2).unwrap(), &cat).unwrap();
        let replayed2 = opt.replay(&q2, &d).unwrap();
        let out2 = opt.optimize(&q2).unwrap();
        assert_eq!(
            format!("{:?}", replayed2.physical),
            format!("{:?}", out2.physical)
        );
    }

    #[test]
    fn same_wrapper_join_fuses_into_one_submit() {
        let out = optimize("SELECT b.id FROM Big b, Small s WHERE b.k = s.sid AND b.id < 100");
        let submits = count_kind(&out.physical, &|p| {
            matches!(p, PhysicalPlan::SubmitRemote { .. })
        });
        let joins = count_kind(&out.physical, &|p| matches!(p, PhysicalPlan::Join { .. }));
        assert_eq!(
            submits, 1,
            "same-wrapper join should fuse: {:?}",
            out.physical
        );
        assert_eq!(joins, 0);
        assert!(
            out.negotiation.iter().any(|n| n.contains("pushed to `a`")),
            "negotiation notes should record the pushed join: {:?}",
            out.negotiation
        );
    }

    #[test]
    fn cross_wrapper_join_stays_at_mediator() {
        let out = optimize("SELECT b.id FROM Big b, File f WHERE b.k = f.fid");
        let submits = count_kind(&out.physical, &|p| {
            matches!(p, PhysicalPlan::SubmitRemote { .. })
        });
        let joins = count_kind(&out.physical, &|p| matches!(p, PhysicalPlan::Join { .. }));
        assert_eq!(submits, 2);
        assert_eq!(joins, 1);
        assert!(
            out.negotiation.iter().any(|n| n.contains("cross-wrapper")),
            "{:?}",
            out.negotiation
        );
        // The scan-only wrapper's lifted select shows up too.
        let out = optimize("SELECT b.id FROM Big b, File f WHERE b.k = f.fid AND f.fid < 10");
        assert!(
            out.negotiation
                .iter()
                .any(|n| n.contains("forbids select") && n.contains("scan-only")),
            "{:?}",
            out.negotiation
        );
    }

    #[test]
    fn no_join_profile_lifts_same_wrapper_join() {
        let mut cat = catalog();
        cat.register_wrapper(
            "nj",
            disco_catalog::CapabilityProfile::NoJoin.capabilities(),
        )
        .unwrap();
        for (name, key) in [("L", "lid"), ("M", "mid")] {
            cat.register_collection(
                "nj",
                name,
                Schema::new(vec![AttributeDef::new(key, DataType::Long)]),
                CollectionStats::new(ExtentStats::of(100, 16)),
            )
            .unwrap();
        }
        let reg = RuleRegistry::with_default_model();
        let q = analyze(
            &parse_query("SELECT l.lid FROM L l, M m WHERE l.lid = m.mid").unwrap(),
            &cat,
        )
        .unwrap();
        let out = Optimizer::new(&cat, &reg, OptimizerOptions::default())
            .optimize(&q)
            .unwrap();
        let joins = count_kind(&out.physical, &|p| matches!(p, PhysicalPlan::Join { .. }));
        assert_eq!(joins, 1, "no-join profile must keep the join local");
        assert!(
            out.negotiation
                .iter()
                .any(|n| n.contains("forbids join") && n.contains("no-join")),
            "{:?}",
            out.negotiation
        );
    }

    #[test]
    fn grouped_aggregate_pushes_global_stays() {
        let grouped = optimize("SELECT k, COUNT(*) AS n FROM Big GROUP BY k");
        let local_aggs = count_kind(&grouped.physical, &|p| {
            matches!(p, PhysicalPlan::Aggregate { .. })
        });
        assert_eq!(
            local_aggs, 0,
            "grouped aggregate should push: {:?}",
            grouped.physical
        );
        assert!(
            grouped
                .negotiation
                .iter()
                .any(|n| n.contains("aggregate: pushed to `a`")),
            "{:?}",
            grouped.negotiation
        );
        // Global aggregates keep their empty-input row at the mediator.
        let global = optimize("SELECT COUNT(*) AS n FROM Big");
        let local_aggs = count_kind(&global.physical, &|p| {
            matches!(p, PhysicalPlan::Aggregate { .. })
        });
        assert_eq!(local_aggs, 1);
        assert!(
            global
                .negotiation
                .iter()
                .any(|n| n.contains("survive partial answers")),
            "{:?}",
            global.negotiation
        );
    }

    /// A skewed 5-table star catalog: the center joins four leaves whose
    /// cardinalities differ by orders of magnitude.
    fn star_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register_wrapper("w", Capabilities::full()).unwrap();
        c.register_collection(
            "w",
            "Center",
            Schema::new(vec![
                AttributeDef::new("id", DataType::Long),
                AttributeDef::new("k1", DataType::Long),
                AttributeDef::new("k2", DataType::Long),
                AttributeDef::new("k3", DataType::Long),
                AttributeDef::new("k4", DataType::Long),
            ]),
            CollectionStats::new(ExtentStats::of(10_000, 80)),
        )
        .unwrap();
        for (i, card) in [(1usize, 20u64), (2, 1_000_000), (3, 500_000), (4, 60)] {
            c.register_collection(
                "w",
                format!("Leaf{i}"),
                Schema::new(vec![
                    AttributeDef::new("id", DataType::Long),
                    AttributeDef::new("v", DataType::Long),
                ]),
                CollectionStats::new(ExtentStats::of(card, 32)).with_attribute(
                    "id",
                    AttributeStats::indexed(card, Value::Long(0), Value::Long(card as i64 - 1)),
                ),
            )
            .unwrap();
        }
        c
    }

    const STAR_SQL: &str = "SELECT c.id FROM Center c, Leaf1 l1, Leaf2 l2, Leaf3 l3, Leaf4 l4 \
         WHERE c.k1 = l1.id AND c.k2 = l2.id AND c.k3 = l3.id AND c.k4 = l4.id";

    #[test]
    fn dp_pruning_abandons_candidates_on_star_query() {
        let cat = star_catalog();
        let reg = RuleRegistry::with_default_model();
        let q = analyze(&parse_query(STAR_SQL).unwrap(), &cat).unwrap();
        // DP enumeration with pruning enabled (threshold 0 keeps the
        // five-table star on the DP rather than the fast path).
        let out = Optimizer::new(
            &cat,
            &reg,
            OptimizerOptions {
                small_query_threshold: 0,
                ..Default::default()
            },
        )
        .optimize(&q)
        .unwrap();
        assert!(
            out.plans_pruned > 0,
            "cost-limit pruning abandoned no candidates: {out:?}"
        );
        // Pruning must not change the chosen plan's quality.
        let oracle = Optimizer::new(
            &cat,
            &reg,
            OptimizerOptions {
                pruning: false,
                enumeration: JoinEnumeration::Permutation,
                ..Default::default()
            },
        )
        .optimize(&q)
        .unwrap();
        assert_eq!(out.estimated.total_time, oracle.estimated.total_time);
    }

    #[test]
    fn dp_does_far_less_estimation_work_than_permutation() {
        let cat = star_catalog();
        let reg = RuleRegistry::with_default_model();
        let q = analyze(&parse_query(STAR_SQL).unwrap(), &cat).unwrap();
        let dp = Optimizer::new(
            &cat,
            &reg,
            OptimizerOptions {
                small_query_threshold: 0,
                ..Default::default()
            },
        )
        .optimize(&q)
        .unwrap();
        let perm = Optimizer::new(
            &cat,
            &reg,
            OptimizerOptions {
                pruning: false,
                enumeration: JoinEnumeration::Permutation,
                ..Default::default()
            },
        )
        .optimize(&q)
        .unwrap();
        assert!(
            dp.estimator_nodes * 2 <= perm.estimator_nodes,
            "dp={} perm={}",
            dp.estimator_nodes,
            perm.estimator_nodes
        );
        assert!(dp.plans_considered <= perm.plans_considered);
    }

    #[test]
    fn time_first_objective_never_loses_on_latency() {
        let cat = star_catalog();
        let reg = RuleRegistry::with_default_model();
        let q = analyze(&parse_query(STAR_SQL).unwrap(), &cat).unwrap();
        let tt = Optimizer::new(&cat, &reg, OptimizerOptions::default())
            .optimize(&q)
            .unwrap();
        let tf = Optimizer::new(
            &cat,
            &reg,
            OptimizerOptions {
                objective: Objective::TimeFirst,
                ..Default::default()
            },
        )
        .optimize(&q)
        .unwrap();
        // Each objective is at least as good as the other on its own
        // metric; both searched the same space.
        assert!(tf.estimated.time_first <= tt.estimated.time_first + 1e-9);
        assert!(tt.estimated.total_time <= tf.estimated.total_time + 1e-9);
    }

    #[test]
    fn small_query_fast_path_matches_dp_and_runs_uncached() {
        let cat = star_catalog();
        let reg = RuleRegistry::with_default_model();
        let q = analyze(&parse_query(STAR_SQL).unwrap(), &cat).unwrap();
        // Five tables sits exactly at the default threshold: the fast
        // path handles ordering and skips the estimation caches.
        let fast = Optimizer::new(&cat, &reg, OptimizerOptions::default())
            .optimize(&q)
            .unwrap();
        assert!(fast.fast_path);
        assert_eq!(fast.memo_hits, 0, "fast path runs uncached");
        assert_eq!(fast.rule_cache_hits, 0, "fast path runs uncached");
        // The plan chosen must be exactly as good as the DP's.
        let dp = Optimizer::new(
            &cat,
            &reg,
            OptimizerOptions {
                small_query_threshold: 0,
                ..Default::default()
            },
        )
        .optimize(&q)
        .unwrap();
        assert!(!dp.fast_path);
        assert_eq!(fast.estimated.total_time, dp.estimated.total_time);
        // One table past the threshold the DP takes over again.
        let opts = OptimizerOptions::default();
        assert!(!matches!(opts.enumeration, JoinEnumeration::Permutation));
        assert_eq!(opts.small_query_threshold, 5);
    }
}

//! Plan execution (steps 4–6 of Figure 2).
//!
//! The executor walks the physical plan, submits wrapper subqueries,
//! combines subanswers with the shared in-memory operators, and accounts
//! *measured* time on a mediator-side virtual clock: wrapper-reported
//! elapsed time + uniform communication cost + mediator CPU. Per-submit
//! accounting supports both sequential and parallel submission semantics
//! (Figure 2 shows steps 4a/4b issued concurrently) via
//! [`ExecutionTrace::sequential_ms`] and [`ExecutionTrace::parallel_ms`].

use std::collections::BTreeMap;

use disco_algebra::{LogicalPlan, PhysicalJoinAlgo, PhysicalPlan};
use disco_common::{DiscoError, Result, Schema, Tuple};
use disco_core::{NodeCost, RuleRegistry};
use disco_sources::exec;
use disco_sources::{ExecStats, VirtualClock};
use disco_wrapper::Wrapper;

/// Record of one submitted subquery.
#[derive(Debug, Clone)]
pub struct SubmitTrace {
    pub wrapper: String,
    pub plan: LogicalPlan,
    pub stats: ExecStats,
    pub tuples: usize,
    /// Size of the shipped subanswer in bytes.
    pub bytes: u64,
    /// Communication time charged for this subanswer (ms).
    pub comm_ms: f64,
}

/// Accounting for one query execution.
#[derive(Debug, Clone, Default)]
pub struct ExecutionTrace {
    pub submits: Vec<SubmitTrace>,
    /// Mediator-side CPU time (ms).
    pub mediator_ms: f64,
    /// Communication time (ms).
    pub communication_ms: f64,
    /// Sum of wrapper-reported elapsed times (ms).
    pub wrapper_ms: f64,
}

impl ExecutionTrace {
    /// End-to-end time with sequential subquery submission: all wrapper
    /// and communication time accumulates.
    pub fn sequential_ms(&self) -> f64 {
        self.wrapper_ms + self.communication_ms + self.mediator_ms
    }

    /// End-to-end time with parallel submission (steps 4a/4b of Figure 2
    /// issued concurrently): the slowest subquery dominates.
    pub fn parallel_ms(&self) -> f64 {
        let slowest = self
            .submits
            .iter()
            .map(|s| s.stats.elapsed_ms + s.comm_ms)
            .fold(0.0, f64::max);
        slowest + self.mediator_ms
    }
}

/// A completed query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    pub schema: Schema,
    pub tuples: Vec<Tuple>,
    /// End-to-end simulated response time (ms).
    pub measured_ms: f64,
    /// The optimizer's estimate for the executed plan.
    pub estimated: NodeCost,
    pub trace: ExecutionTrace,
}

/// Executes physical plans against registered wrappers.
pub struct Executor<'a> {
    wrappers: &'a BTreeMap<String, Box<dyn Wrapper>>,
    registry: &'a RuleRegistry,
}

impl<'a> Executor<'a> {
    /// Build an executor over the wrapper table and registry (for the
    /// mediator-side cost constants).
    pub fn new(
        wrappers: &'a BTreeMap<String, Box<dyn Wrapper>>,
        registry: &'a RuleRegistry,
    ) -> Self {
        Executor { wrappers, registry }
    }

    fn param(&self, name: &str, default: f64) -> f64 {
        self.registry.params().get_f64(name).unwrap_or(default)
    }

    /// Execute a plan, returning tuples, schema and the trace.
    pub fn execute(&self, plan: &PhysicalPlan) -> Result<(Schema, Vec<Tuple>, ExecutionTrace)> {
        let mut clock = VirtualClock::new();
        let mut trace = ExecutionTrace::default();
        let (schema, tuples) = self.run(plan, &mut clock, &mut trace)?;
        trace.mediator_ms = clock.now();
        Ok((schema, tuples, trace))
    }

    fn run(
        &self,
        plan: &PhysicalPlan,
        clock: &mut VirtualClock,
        trace: &mut ExecutionTrace,
    ) -> Result<(Schema, Vec<Tuple>)> {
        let cpu_pred = self.param("CpuPred", 0.05);
        let cpu_hash = self.param("CpuHash", 0.02);
        match plan {
            PhysicalPlan::SubmitRemote {
                wrapper,
                plan,
                schema: expected_schema,
            } => {
                let w = self.wrappers.get(wrapper).ok_or_else(|| {
                    DiscoError::Exec(format!("wrapper `{wrapper}` is not registered"))
                })?;
                let answer = w.execute(plan)?;
                // A wrapper returning a different shape than it registered
                // would silently misalign downstream column lookups.
                if answer.schema.arity() != expected_schema.arity() {
                    return Err(DiscoError::Exec(format!(
                        "wrapper `{wrapper}` returned {} columns, plan expected {}",
                        answer.schema.arity(),
                        expected_schema.arity()
                    )));
                }
                let bytes: u64 = answer.tuples.iter().map(Tuple::width).sum();
                let comm =
                    self.param("MsgLatency", 100.0) + bytes as f64 * self.param("PerByte", 0.001);
                trace.wrapper_ms += answer.stats.elapsed_ms;
                trace.communication_ms += comm;
                trace.submits.push(SubmitTrace {
                    wrapper: wrapper.clone(),
                    plan: plan.clone(),
                    stats: answer.stats,
                    tuples: answer.tuples.len(),
                    bytes,
                    comm_ms: comm,
                });
                Ok((answer.schema, answer.tuples))
            }
            PhysicalPlan::Filter { input, predicate } => {
                let (schema, tuples) = self.run(input, clock, trace)?;
                clock.charge(tuples.len() as f64 * predicate.conjuncts.len() as f64 * cpu_pred);
                let out = exec::filter(&schema, &tuples, predicate)?;
                Ok((schema, out))
            }
            PhysicalPlan::Project { input, columns } => {
                let (schema, tuples) = self.run(input, clock, trace)?;
                clock.charge(tuples.len() as f64 * cpu_hash);
                exec::project(&schema, &tuples, columns)
            }
            PhysicalPlan::Sort { input, keys } => {
                let (schema, mut tuples) = self.run(input, clock, trace)?;
                let n = tuples.len() as f64;
                clock.charge(self.param("SortFactor", 0.02) * n * n.max(2.0).log2());
                exec::sort(&schema, &mut tuples, keys)?;
                Ok((schema, tuples))
            }
            PhysicalPlan::Join {
                algo,
                left,
                right,
                predicate,
            } => {
                let (ls, lt) = self.run(left, clock, trace)?;
                let (rs, rt) = self.run(right, clock, trace)?;
                let out_schema = ls.join(&rs);
                let out = match algo {
                    PhysicalJoinAlgo::Hash => {
                        clock.charge((lt.len() + rt.len()) as f64 * cpu_hash);
                        let out = exec::hash_join(&ls, &lt, &rs, &rt, predicate)?;
                        clock.charge(out.len() as f64 * cpu_hash);
                        out
                    }
                    PhysicalJoinAlgo::SortMerge => {
                        // Executed as sort + hash match; charged as the
                        // sort-based algorithm it models.
                        let sf = self.param("SortFactor", 0.02);
                        let (nl, nr) = (lt.len() as f64, rt.len() as f64);
                        clock.charge(sf * nl * nl.max(2.0).log2() + sf * nr * nr.max(2.0).log2());
                        clock.charge((nl + nr) * cpu_pred);
                        exec::hash_join(&ls, &lt, &rs, &rt, predicate)?
                    }
                    PhysicalJoinAlgo::NestedLoop => {
                        clock.charge((lt.len() * rt.len()) as f64 * cpu_pred);
                        exec::nested_loop_join(&ls, &lt, &rs, &rt, predicate)?
                    }
                };
                Ok((out_schema, out))
            }
            PhysicalPlan::Union { left, right } => {
                let (ls, mut lt) = self.run(left, clock, trace)?;
                let (rs, rt) = self.run(right, clock, trace)?;
                if ls.arity() != rs.arity() {
                    return Err(DiscoError::Exec("union arity mismatch".into()));
                }
                clock.charge(rt.len() as f64 * cpu_hash);
                lt.extend(rt);
                Ok((ls, lt))
            }
            PhysicalPlan::Dedup { input } => {
                let (schema, tuples) = self.run(input, clock, trace)?;
                clock.charge(tuples.len() as f64 * cpu_hash);
                Ok((schema, exec::dedup(&tuples)))
            }
            PhysicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let (schema, tuples) = self.run(input, clock, trace)?;
                clock.charge(tuples.len() as f64 * cpu_hash);
                let out = exec::aggregate(&schema, &tuples, group_by, aggs)?;
                let out_schema = to_agg_schema(&schema, group_by, aggs)?;
                Ok((out_schema, out))
            }
        }
    }
}

/// Output schema of an aggregate over a known input schema.
fn to_agg_schema(
    input: &Schema,
    group_by: &[String],
    aggs: &[disco_algebra::logical::AggExpr],
) -> Result<Schema> {
    use disco_algebra::AggFunc;
    use disco_common::{AttributeDef, DataType};
    let mut attrs = Vec::with_capacity(group_by.len() + aggs.len());
    for g in group_by {
        let a = input
            .attribute(g)
            .ok_or_else(|| DiscoError::Exec(format!("unknown group-by attribute `{g}`")))?;
        attrs.push(a.clone());
    }
    for a in aggs {
        let ty = match a.func {
            AggFunc::Count => DataType::Long,
            AggFunc::Sum | AggFunc::Avg => DataType::Double,
            AggFunc::Min | AggFunc::Max => a
                .arg
                .as_ref()
                .and_then(|arg| input.attribute(arg))
                .map(|d| d.ty)
                .unwrap_or(DataType::Double),
        };
        attrs.push(AttributeDef::new(a.name.clone(), ty));
    }
    Ok(Schema::new(attrs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_algebra::{CompareOp, JoinPredicate, PlanBuilder, Predicate, SelectPredicate};
    use disco_common::{AttributeDef, DataType, QualifiedName, Value};
    use disco_sources::{CollectionBuilder, CostProfile, PagedStore};
    use disco_wrapper::SourceWrapper;

    fn wrappers() -> BTreeMap<String, Box<dyn Wrapper>> {
        let schema = Schema::new(vec![
            AttributeDef::new("id", DataType::Long),
            AttributeDef::new("v", DataType::Long),
        ]);
        let mut store = PagedStore::new("s", CostProfile::relational());
        store
            .add_collection(
                "T",
                CollectionBuilder::new(schema)
                    .rows((0..100i64).map(|i| vec![Value::Long(i), Value::Long(i % 7)]))
                    .object_size(16)
                    .index("id"),
            )
            .unwrap();
        let mut map: BTreeMap<String, Box<dyn Wrapper>> = BTreeMap::new();
        map.insert("s".into(), Box::new(SourceWrapper::new("s", store)));
        map
    }

    fn submit(v_max: i64) -> PhysicalPlan {
        let schema = Schema::new(vec![
            AttributeDef::new("id", DataType::Long),
            AttributeDef::new("v", DataType::Long),
        ]);
        let plan = PlanBuilder::scan(QualifiedName::new("s", "T"), schema.clone())
            .select("id", CompareOp::Lt, v_max)
            .build();
        PhysicalPlan::SubmitRemote {
            wrapper: "s".into(),
            schema: plan.output_schema().unwrap(),
            plan,
        }
    }

    fn run(plan: &PhysicalPlan) -> (Schema, Vec<disco_common::Tuple>, ExecutionTrace) {
        let w = wrappers();
        let reg = disco_core::RuleRegistry::with_default_model();
        // The registry must outlive the executor borrowing it.
        let exec = Executor::new(&w, &reg);
        exec.execute(plan).unwrap()
    }

    #[test]
    fn submit_executes_and_traces() {
        let (schema, tuples, trace) = run(&submit(10));
        assert_eq!(schema.arity(), 2);
        assert_eq!(tuples.len(), 10);
        assert_eq!(trace.submits.len(), 1);
        assert!(trace.submits[0].comm_ms > 0.0);
        assert!(trace.wrapper_ms > 0.0);
        assert_eq!(trace.sequential_ms(), trace.parallel_ms());
    }

    #[test]
    fn parallel_accounting_takes_max() {
        let plan = PhysicalPlan::Union {
            left: Box::new(submit(80)),
            right: Box::new(submit(5)),
        };
        let (_, tuples, trace) = run(&plan);
        assert_eq!(tuples.len(), 85);
        let slow = trace
            .submits
            .iter()
            .map(|s| s.stats.elapsed_ms + s.comm_ms)
            .fold(0.0f64, f64::max);
        let sum: f64 = trace
            .submits
            .iter()
            .map(|s| s.stats.elapsed_ms + s.comm_ms)
            .sum();
        assert!((trace.parallel_ms() - (slow + trace.mediator_ms)).abs() < 1e-9);
        assert!((trace.sequential_ms() - (sum + trace.mediator_ms)).abs() < 1e-9);
        assert!(trace.parallel_ms() < trace.sequential_ms());
    }

    #[test]
    fn join_algorithms_agree_on_output() {
        let pred = JoinPredicate::equi("v", "v");
        let variants = [
            PhysicalJoinAlgo::Hash,
            PhysicalJoinAlgo::SortMerge,
            PhysicalJoinAlgo::NestedLoop,
        ];
        let mut sizes = Vec::new();
        for algo in variants {
            let plan = PhysicalPlan::Join {
                algo,
                left: Box::new(submit(10)),
                right: Box::new(submit(10)),
                predicate: pred.clone(),
            };
            let (_, tuples, _) = run(&plan);
            sizes.push(tuples.len());
        }
        assert_eq!(sizes[0], sizes[1]);
        assert_eq!(sizes[0], sizes[2]);
        assert!(sizes[0] > 0);
    }

    #[test]
    fn mediator_filter_sort_dedup_pipeline() {
        let filtered = PhysicalPlan::Filter {
            input: Box::new(submit(50)),
            predicate: Predicate::single(SelectPredicate::new("v", CompareOp::Eq, Value::Long(3))),
        };
        let deduped = PhysicalPlan::Dedup {
            input: Box::new(PhysicalPlan::Project {
                input: Box::new(filtered),
                columns: vec![("v".into(), disco_algebra::ScalarExpr::attr("v"))],
            }),
        };
        let sorted = PhysicalPlan::Sort {
            input: Box::new(deduped),
            keys: vec![("v".into(), true)],
        };
        let (_, tuples, trace) = run(&sorted);
        assert_eq!(tuples.len(), 1);
        assert_eq!(tuples[0].get(0).unwrap().as_i64(), Some(3));
        assert!(trace.mediator_ms > 0.0);
    }

    #[test]
    fn missing_wrapper_is_an_exec_error() {
        let w: BTreeMap<String, Box<dyn Wrapper>> = BTreeMap::new();
        let reg = disco_core::RuleRegistry::with_default_model();
        let exec = Executor::new(&w, &reg);
        let err = exec.execute(&submit(10)).unwrap_err();
        assert_eq!(err.kind(), "exec");
    }
}

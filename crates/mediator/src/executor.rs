//! Plan execution (steps 4–6 of Figure 2).
//!
//! Execution is two-phase. The *fetch* phase collects every
//! `SubmitRemote` site of the physical plan and obtains its subanswer —
//! sequentially, or concurrently on scoped threads when parallel
//! submission is enabled (Figure 2 shows steps 4a/4b issued in parallel);
//! the fan-out's wall-clock time is measured. The *combine* phase then
//! walks the plan, consuming fetched subanswers at the submit sites and
//! running the vectorized columnar operators ([`disco_sources::vexec`])
//! on a mediator-side virtual clock.
//!
//! Subanswers enter the combine phase as [`BatchAnswer`]s: over a
//! transport the reply bytes decode straight into column vectors
//! (fetched rows are never built as `Tuple`s), and in-process answers
//! are columnarized inside the fetch workers. The pipeline stays
//! columnar end-to-end; rows materialize exactly once, at the final
//! answer boundary in [`Executor::execute`]. Virtual-clock charges are
//! per-tuple formulas over operator cardinalities, so they are
//! identical to the row-at-a-time engine's.
//!
//! Wrappers are reached either in-process (the seed's trait-object table)
//! or through a [`TransportClient`] — the byte-level RPC boundary with
//! per-endpoint network simulation, deadlines, retries and circuit
//! breaking. Over a transport, a subquery that keeps failing transiently
//! (timeouts, unavailability) can be tolerated instead of fatal: with
//! partial answers enabled the submit contributes an empty subanswer and
//! the affected collections are reported in
//! [`ExecutionTrace::missing`] — a degraded result, not an error.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

use disco_algebra::{LogicalPlan, PhysicalJoinAlgo, PhysicalPlan};
use disco_common::{Batch, DiscoError, QualifiedName, Result, Schema, Tuple};
use disco_core::{MeasuredNode, NodeCost, RuleRegistry};
use disco_sources::vexec;
use disco_sources::vstream::{self, BatchStream};
use disco_sources::{BatchAnswer, ExecStats, VirtualClock};
use disco_transport::{
    HedgeTarget, ResiliencePolicy, SubmitOptions, SubmitStream, TransportClient,
};
use disco_wrapper::Wrapper;

use crate::adaptive::{ReplanEvent, Replanner, SiteObservation};

/// Record of one submitted subquery.
#[derive(Debug, Clone)]
pub struct SubmitTrace {
    pub wrapper: String,
    pub plan: LogicalPlan,
    pub stats: ExecStats,
    pub tuples: usize,
    /// Size of the shipped subanswer in bytes.
    pub bytes: u64,
    /// Communication time charged for this subanswer (ms, simulated).
    pub comm_ms: f64,
    /// Measured wall-clock time of the submit, retries included (ms).
    pub wall_ms: f64,
    /// Transport attempts spent (1 = first try; 0 = never answered).
    pub attempts: u32,
    /// The submit exhausted its retry budget and was substituted with an
    /// empty subanswer (partial-answer mode).
    pub failed: bool,
    /// Replica that actually answered (equals `wrapper` unless a hedge
    /// or failover won the race; empty when the submit failed).
    pub served_by: String,
    /// Straggler-triggered hedges this submit launched.
    pub hedges: u32,
    /// Measured time-to-first-row (ms, simulated): the wrapper's
    /// `TimeFirst` plus the communication time of whatever carried the
    /// first row — the whole reply in two-phase mode, the first stream
    /// frame in pipelined mode. `0` when the submit failed or its stream
    /// was abandoned before its end-of-stream stats arrived.
    pub first_ms: f64,
    /// The subanswer was delivered in full: the wrapper answered and its
    /// stream (if any) ran to end-of-stream, so [`tuples`](Self::tuples)
    /// is the subquery's true cardinality and [`stats`](Self::stats) are
    /// the wrapper's final numbers. `false` for failed submits *and* for
    /// streams truncated early (LIMIT satisfied, budget expired) — whose
    /// partial counts must not teach the §4.3 history.
    pub complete: bool,
}

/// The cost model's prediction for one submit site, aligned with the
/// plan's submit order. Drives predicted deadlines (`TotalTime`) and
/// straggler thresholds (`TimeFirst`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SitePrediction {
    /// Predicted `TotalTime` for the subplan, simulated ms.
    pub total_ms: f64,
    /// Predicted `TimeFirst` for the subplan, simulated ms.
    pub first_ms: f64,
    /// Predicted subanswer cardinality (`count_object`) — the number the
    /// adaptive re-optimizer compares against measured cardinalities.
    pub rows: f64,
}

/// Accounting for one query execution.
#[derive(Debug, Clone, Default)]
pub struct ExecutionTrace {
    pub submits: Vec<SubmitTrace>,
    /// Mediator-side CPU time (ms, simulated).
    pub mediator_ms: f64,
    /// Communication time (ms, simulated).
    pub communication_ms: f64,
    /// Sum of wrapper-reported elapsed times (ms, simulated).
    pub wrapper_ms: f64,
    /// Measured wall-clock time of the whole fetch phase (ms).
    pub submit_wall_ms: f64,
    /// Submits were actually fanned out on threads over a transport, so
    /// [`submit_wall_ms`](Self::submit_wall_ms) reflects real concurrency.
    pub concurrent: bool,
    /// Collections whose wrapper stayed down past the retry budget; their
    /// tuples are absent from the result (partial answer). Sorted and
    /// deduplicated, so degraded output is deterministic.
    pub missing: Vec<QualifiedName>,
    /// Per-node measurements of the executed plan (rows produced and
    /// cumulative simulated time), mirroring the plan tree — the measured
    /// half of EXPLAIN ANALYZE.
    pub measured: Option<MeasuredNode>,
    /// Straggler-triggered hedges launched across all submits.
    pub hedges: u32,
    /// The query-level time budget ran out before every submit was
    /// issued; skipped submits appear in [`missing`](Self::missing).
    /// Under streaming execution a budget that expires mid-stream
    /// truncates the affected streams instead: the rows already
    /// delivered stay in the answer and the submit trace records them.
    pub budget_exhausted: bool,
    /// Wall-clock ms until the first non-empty root chunk was produced
    /// (streaming execution only; `None` in two-phase mode, where the
    /// first row is only available with the last).
    pub first_row_wall_ms: Option<f64>,
    /// Mid-query re-optimization decisions, in the order they were
    /// considered: one entry per time measured cardinalities crossed the
    /// adaptive error threshold (whether or not the plan switched).
    pub replans: Vec<ReplanEvent>,
    /// The combine plan the answer was actually produced with, when a
    /// re-plan abandoned the optimizer's order mid-query. `None` when the
    /// original plan ran to completion.
    pub final_plan: Option<PhysicalPlan>,
}

impl ExecutionTrace {
    /// End-to-end time with sequential subquery submission: all wrapper
    /// and communication time accumulates (simulated).
    pub fn sequential_ms(&self) -> f64 {
        self.wrapper_ms + self.communication_ms + self.mediator_ms
    }

    /// The *analytic* parallel-submission estimate the seed used: the
    /// slowest subquery dominates (simulated).
    pub fn predicted_parallel_ms(&self) -> f64 {
        let slowest = self
            .submits
            .iter()
            .map(|s| s.stats.elapsed_ms + s.comm_ms)
            .fold(0.0, f64::max);
        slowest + self.mediator_ms
    }

    /// End-to-end time with parallel submission. When submits really ran
    /// concurrently over a transport this is *measured*: the fetch
    /// fan-out's wall clock plus mediator CPU. Otherwise it falls back to
    /// the analytic [`predicted_parallel_ms`](Self::predicted_parallel_ms).
    pub fn parallel_ms(&self) -> f64 {
        if self.concurrent {
            self.submit_wall_ms + self.mediator_ms
        } else {
            self.predicted_parallel_ms()
        }
    }

    /// `true` when every wrapper answered (no degraded collections).
    pub fn is_complete(&self) -> bool {
        self.missing.is_empty()
    }
}

/// A completed query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    pub schema: Schema,
    pub tuples: Vec<Tuple>,
    /// End-to-end simulated response time (ms).
    pub measured_ms: f64,
    /// The optimizer's estimate for the executed plan.
    pub estimated: NodeCost,
    pub trace: ExecutionTrace,
}

impl QueryResult {
    /// `true` when some wrapper stayed down and the result is a partial
    /// answer (see [`ExecutionTrace::missing`]).
    pub fn is_partial(&self) -> bool {
        !self.trace.missing.is_empty()
    }
}

/// How the executor reaches wrappers.
enum Backend<'a> {
    /// In-process trait objects (the seed path; no real network).
    Local(&'a BTreeMap<String, Box<dyn Wrapper>>),
    /// Byte-level RPC through a transport client.
    Remote(&'a TransportClient),
}

/// One `SubmitRemote` site, in combine-phase order. (The expected schema
/// stays on the plan node; the combine phase checks it there.)
struct SubmitSite<'p> {
    wrapper: &'p str,
    plan: &'p LogicalPlan,
}

/// The fetch phase's product for one site.
struct Fetched {
    outcome: Result<FetchedAnswer>,
    /// The site was never submitted: the query budget ran out first.
    /// Always degrades to an empty subanswer, even when partial answers
    /// are off — an exhausted budget is a policy decision, not a fault.
    budget_skipped: bool,
}

struct FetchedAnswer {
    answer: BatchAnswer,
    comm_ms: f64,
    wall_ms: f64,
    attempts: u32,
    /// Replica that answered (the site's wrapper unless a hedge won).
    served_by: String,
    /// Straggler-triggered hedges launched for this site.
    hedges: u32,
}

/// Executes physical plans against registered wrappers.
pub struct Executor<'a> {
    backend: Backend<'a>,
    registry: &'a RuleRegistry,
    parallel: bool,
    partial_answers: bool,
    resilience: Option<ResiliencePolicy>,
    /// Cost predictions per submit site, in submit (collect) order.
    predictions: Vec<Option<SitePrediction>>,
    /// Fallback replica wrappers per primary wrapper, in failover order.
    replicas: BTreeMap<String, Vec<String>>,
    /// Mid-query re-optimizer; `None` runs every plan to completion.
    adaptive: Option<Replanner<'a>>,
}

impl<'a> Executor<'a> {
    /// Build an executor over the in-process wrapper table and registry
    /// (for the mediator-side cost constants).
    pub fn new(
        wrappers: &'a BTreeMap<String, Box<dyn Wrapper>>,
        registry: &'a RuleRegistry,
    ) -> Self {
        Executor {
            backend: Backend::Local(wrappers),
            registry,
            parallel: false,
            partial_answers: false,
            resilience: None,
            predictions: Vec::new(),
            replicas: BTreeMap::new(),
            adaptive: None,
        }
    }

    /// Build an executor that submits through a transport client.
    pub fn remote(client: &'a TransportClient, registry: &'a RuleRegistry) -> Self {
        Executor {
            backend: Backend::Remote(client),
            registry,
            parallel: false,
            partial_answers: false,
            resilience: None,
            predictions: Vec::new(),
            replicas: BTreeMap::new(),
            adaptive: None,
        }
    }

    /// Fan submits out on scoped threads (builder style).
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Tolerate wrappers that stay down past the retry budget by
    /// substituting empty subanswers and reporting the affected
    /// collections (builder style).
    pub fn with_partial_answers(mut self, partial: bool) -> Self {
        self.partial_answers = partial;
        self
    }

    /// Derive deadlines, budgets and hedging from the cost model
    /// (builder style). Only affects the transport backend.
    pub fn with_resilience(mut self, policy: ResiliencePolicy) -> Self {
        self.resilience = Some(policy);
        self
    }

    /// Attach the optimizer's per-site cost predictions, aligned with
    /// the plan's submit order (builder style). Sites without a
    /// prediction fall back to flat deadlines.
    pub fn with_predictions(mut self, predictions: Vec<Option<SitePrediction>>) -> Self {
        self.predictions = predictions;
        self
    }

    /// Attach failover replica lists: for each wrapper, the peers (in
    /// preference order) that serve the same collections and can absorb
    /// a hedge or failover (builder style).
    pub fn with_replicas(mut self, replicas: BTreeMap<String, Vec<String>>) -> Self {
        self.replicas = replicas;
        self
    }

    /// Attach a mid-query re-optimizer (builder style). After the fetch
    /// phase (or, under streaming, as subanswer cardinalities become
    /// known) measured cardinalities are compared against the attached
    /// [`SitePrediction`]s; a large enough error re-enumerates the
    /// combine plan and may abandon the running order.
    pub fn with_adaptive(mut self, replanner: Option<Replanner<'a>>) -> Self {
        self.adaptive = replanner;
        self
    }

    fn param(&self, name: &str, default: f64) -> f64 {
        self.registry.params().get_f64(name).unwrap_or(default)
    }

    /// Execute a plan, returning tuples, schema and the trace.
    pub fn execute(&self, plan: &PhysicalPlan) -> Result<(Schema, Vec<Tuple>, ExecutionTrace)> {
        let mut trace = ExecutionTrace::default();

        // Fetch phase: obtain every subanswer up front, possibly in
        // parallel, measuring the fan-out's wall-clock time.
        let mut sites = Vec::new();
        collect_submits(plan, &mut sites);
        let started = Instant::now();
        let budget_deadline = self
            .resilience
            .as_ref()
            .and_then(|p| p.query_budget_ms)
            .filter(|ms| ms.is_finite() && *ms >= 0.0)
            .map(|ms| started + Duration::from_micros((ms * 1e3) as u64));
        let fetched = self.fetch_all(&sites, budget_deadline);
        trace.submit_wall_ms = started.elapsed().as_secs_f64() * 1e3;
        trace.budget_exhausted = fetched.iter().any(|f| f.budget_skipped);
        if trace.budget_exhausted && disco_obs::enabled() {
            disco_obs::counter(disco_obs::names::BUDGET_EXHAUSTED, &[]).inc();
        }
        // Only a threaded fan-out over a real transport yields a wall
        // clock that means anything: in-process wrappers have no network,
        // so their "measured" communication would be zero.
        trace.concurrent =
            self.parallel && sites.len() > 1 && matches!(self.backend, Backend::Remote(_));

        // Adaptive checkpoint: every subanswer cardinality is now known.
        // If the measurements contradict the optimizer's predictions,
        // re-enumerate the combine plan before any join work starts —
        // fetched subanswers are a sunk cost, the combine order is not.
        let mut switched: Option<PhysicalPlan> = None;
        if let Some(replanner) = &self.adaptive {
            let observations = two_phase_observations(&sites, &fetched, &self.predictions);
            if let Some(outcome) = replanner.consider(plan, &observations, "two_phase") {
                if let Some(new_plan) = outcome.new_plan {
                    trace.final_plan = Some(new_plan.clone());
                    switched = Some(new_plan);
                }
                trace.replans.push(outcome.event);
            }
        }
        let plan = switched.as_ref().unwrap_or(plan);

        // Combine phase: walk the plan, consuming fetched answers at the
        // submit sites and running the vectorized mediator-side
        // operators on columnar batches. The pool maps each submit site
        // to its fetched answer by (wrapper, subplan) so a re-planned
        // order still consumes the answers fetched for the original —
        // nothing is re-fetched.
        let mut clock = VirtualClock::new();
        let mut fetched = FetchPool::new(&sites, fetched);
        let (schema, batch, measured) = self.run(plan, &mut clock, &mut trace, &mut fetched)?;
        trace.mediator_ms = clock.now();
        trace.measured = Some(measured);
        trace.missing.sort();
        trace.missing.dedup();
        // The one place rows materialize: the final answer boundary.
        Ok((schema, batch.to_tuples(), trace))
    }

    /// Obtain subanswers for all sites, in site order. The straggler
    /// hedge allowance is shared across sites (per-query cap).
    fn fetch_all(
        &self,
        sites: &[SubmitSite<'_>],
        budget_deadline: Option<Instant>,
    ) -> Vec<Fetched> {
        let hedge_budget = AtomicU32::new(
            self.resilience
                .as_ref()
                .map_or(0, |p| p.max_hedges_per_query),
        );
        if self.parallel && sites.len() > 1 {
            match self.backend {
                Backend::Local(wrappers) => {
                    let msg = self.param("MsgLatency", 100.0);
                    let byte = self.param("PerByte", 0.001);
                    std::thread::scope(|s| {
                        let handles: Vec<_> = sites
                            .iter()
                            .map(|site| s.spawn(move || fetch_local(wrappers, site, msg, byte)))
                            .collect();
                        handles.into_iter().map(join_fetch).collect()
                    })
                }
                Backend::Remote(client) => std::thread::scope(|s| {
                    let hedge_budget = &hedge_budget;
                    let handles: Vec<_> = sites
                        .iter()
                        .enumerate()
                        .map(|(i, site)| {
                            s.spawn(move || {
                                self.fetch_remote_site(
                                    client,
                                    site,
                                    i,
                                    hedge_budget,
                                    budget_deadline,
                                )
                            })
                        })
                        .collect();
                    handles.into_iter().map(join_fetch).collect()
                }),
            }
        } else {
            sites
                .iter()
                .enumerate()
                .map(|(i, site)| match self.backend {
                    Backend::Local(wrappers) => fetch_local(
                        wrappers,
                        site,
                        self.param("MsgLatency", 100.0),
                        self.param("PerByte", 0.001),
                    ),
                    Backend::Remote(client) => {
                        self.fetch_remote_site(client, site, i, &hedge_budget, budget_deadline)
                    }
                })
                .collect()
        }
    }

    /// Fetch one subanswer over the transport, applying the resilience
    /// policy when one is attached: predicted deadlines (capped by the
    /// remaining query budget), hedged replica submits and failover.
    /// Without a policy this is the seed's plain submit.
    fn fetch_remote_site(
        &self,
        client: &TransportClient,
        site: &SubmitSite<'_>,
        index: usize,
        hedge_budget: &AtomicU32,
        budget_deadline: Option<Instant>,
    ) -> Fetched {
        let Some(policy) = &self.resilience else {
            return fetch_remote(client, site);
        };

        // Query budget: a site reached after the budget ran out is never
        // submitted; remaining time caps the per-attempt deadline.
        let remaining_ms = budget_deadline.map(|d| {
            let now = Instant::now();
            if now >= d {
                0.0
            } else {
                (d - now).as_secs_f64() * 1e3
            }
        });
        if remaining_ms.is_some_and(|ms| ms < 1.0) {
            return Fetched {
                outcome: Err(DiscoError::Timeout(format!(
                    "query budget exhausted before submit to `{}`",
                    site.wrapper
                ))),
                budget_skipped: true,
            };
        }

        let prediction = self.predictions.get(index).copied().flatten();
        let total = prediction.map(|p| p.total_ms);
        let mut opts = SubmitOptions {
            deadline_ms: policy.wall_deadline_ms(total),
            sim_deadline_ms: policy.sim_deadline_ms(total),
            predicted_total_ms: total,
        };
        if let Some(rem) = remaining_ms {
            let cap = rem.ceil().max(1.0) as u64;
            opts.deadline_ms = Some(opts.deadline_ms.map_or(cap, |d| d.min(cap)));
        }

        let mut targets = vec![HedgeTarget {
            endpoint: site.wrapper.to_string(),
            plan: site.plan.clone(),
            opts,
        }];
        if policy.hedge {
            if let Some(peers) = self.replicas.get(site.wrapper) {
                for peer in peers {
                    targets.push(HedgeTarget {
                        endpoint: peer.clone(),
                        plan: site.plan.retargeted(peer),
                        opts,
                    });
                }
            }
        }
        let wait = policy
            .straggler_wait_ms(prediction.map(|p| p.first_ms))
            .map(Duration::from_millis);
        let allowance = hedge_budget.load(Ordering::Relaxed);

        let outcome = client
            .submit_batch_hedged(&targets, wait, allowance)
            .map(|h| {
                if h.hedges > 0 {
                    let _ = hedge_budget.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                        Some(v.saturating_sub(h.hedges))
                    });
                }
                FetchedAnswer {
                    served_by: targets[h.winner].endpoint.clone(),
                    hedges: h.hedges,
                    answer: h.outcome.answer,
                    comm_ms: h.outcome.comm_ms,
                    wall_ms: h.outcome.wall_ms,
                    attempts: h.outcome.attempts,
                }
            });
        Fetched {
            outcome,
            budget_skipped: false,
        }
    }

    /// One combine-phase node: measures the simulated time of its whole
    /// subtree (virtual-clock charges plus wrapper and communication
    /// time — the same cumulative convention as `NodeCost::total_time`)
    /// and records rows produced, building the measured half of
    /// EXPLAIN ANALYZE as execution proceeds.
    fn run(
        &self,
        plan: &PhysicalPlan,
        clock: &mut VirtualClock,
        trace: &mut ExecutionTrace,
        fetched: &mut FetchPool,
    ) -> Result<(Schema, Batch, MeasuredNode)> {
        let before = clock.now() + trace.wrapper_ms + trace.communication_ms;
        let (schema, batch, operator, failed, pages, first_row_ms, children) =
            self.run_node(plan, clock, trace, fetched)?;
        let elapsed_ms = clock.now() + trace.wrapper_ms + trace.communication_ms - before;
        let node = MeasuredNode {
            operator,
            rows: batch.len() as u64,
            elapsed_ms,
            failed,
            pages,
            first_row_ms,
            children,
        };
        Ok((schema, batch, node))
    }

    /// The combine phase proper: columnar batches flow between
    /// operators; virtual-clock charges use batch cardinalities with
    /// the same per-tuple formulas as the row engine.
    #[allow(clippy::type_complexity)]
    fn run_node(
        &self,
        plan: &PhysicalPlan,
        clock: &mut VirtualClock,
        trace: &mut ExecutionTrace,
        fetched: &mut FetchPool,
    ) -> Result<(
        Schema,
        Batch,
        String,
        bool,
        Option<u64>,
        Option<f64>,
        Vec<MeasuredNode>,
    )> {
        let cpu_pred = self.param("CpuPred", 0.05);
        let cpu_hash = self.param("CpuHash", 0.02);
        match plan {
            PhysicalPlan::SubmitRemote {
                wrapper,
                plan,
                schema: expected_schema,
            } => {
                let operator = format!("submit {wrapper}");
                let next = fetched
                    .take(wrapper, plan)
                    .ok_or_else(|| DiscoError::Exec("submit site without a fetch".into()))?;
                let budget_skipped = next.budget_skipped;
                match next.outcome {
                    Ok(f) => {
                        // A wrapper returning a different shape than it
                        // registered would silently misalign downstream
                        // column lookups.
                        if f.answer.schema.arity() != expected_schema.arity() {
                            return Err(DiscoError::Exec(format!(
                                "wrapper `{wrapper}` returned {} columns, plan expected {}",
                                f.answer.schema.arity(),
                                expected_schema.arity()
                            )));
                        }
                        let bytes = f.answer.batch.byte_width();
                        let pages = Some(f.answer.stats.pages_read);
                        // Two-phase: nothing arrives before the whole
                        // reply, so first-row time pays the full comm.
                        let first_ms = f.answer.stats.time_first_ms + f.comm_ms;
                        trace.wrapper_ms += f.answer.stats.elapsed_ms;
                        trace.communication_ms += f.comm_ms;
                        trace.hedges += f.hedges;
                        trace.submits.push(SubmitTrace {
                            wrapper: wrapper.clone(),
                            plan: plan.clone(),
                            stats: f.answer.stats,
                            tuples: f.answer.batch.len(),
                            bytes,
                            comm_ms: f.comm_ms,
                            wall_ms: f.wall_ms,
                            attempts: f.attempts,
                            failed: false,
                            served_by: f.served_by,
                            hedges: f.hedges,
                            first_ms,
                            complete: true,
                        });
                        Ok((
                            f.answer.schema,
                            f.answer.batch,
                            operator,
                            false,
                            pages,
                            Some(first_ms),
                            vec![],
                        ))
                    }
                    Err(e) if (self.partial_answers && e.is_transient()) || budget_skipped => {
                        // The wrapper stayed down past the retry budget:
                        // contribute an empty, schema-correct subanswer
                        // and report what is missing (degraded result).
                        trace
                            .missing
                            .extend(plan.collections().into_iter().cloned());
                        trace.submits.push(SubmitTrace {
                            wrapper: wrapper.clone(),
                            plan: plan.clone(),
                            stats: ExecStats::default(),
                            tuples: 0,
                            bytes: 0,
                            comm_ms: 0.0,
                            wall_ms: 0.0,
                            attempts: 0,
                            failed: true,
                            served_by: String::new(),
                            hedges: 0,
                            first_ms: 0.0,
                            complete: false,
                        });
                        Ok((
                            expected_schema.clone(),
                            Batch::empty(expected_schema.arity()),
                            operator,
                            true,
                            None,
                            None,
                            vec![],
                        ))
                    }
                    Err(e) => Err(e),
                }
            }
            PhysicalPlan::Filter { input, predicate } => {
                let (schema, batch, child) = self.run(input, clock, trace, fetched)?;
                clock.charge(batch.len() as f64 * predicate.conjuncts.len() as f64 * cpu_pred);
                let out = vexec::filter(&schema, &batch, predicate)?;
                Ok((schema, out, "filter".into(), false, None, None, vec![child]))
            }
            PhysicalPlan::Project { input, columns } => {
                let (schema, batch, child) = self.run(input, clock, trace, fetched)?;
                clock.charge(batch.len() as f64 * cpu_hash);
                let (out_schema, out) = vexec::project(&schema, &batch, columns)?;
                Ok((
                    out_schema,
                    out,
                    "project".into(),
                    false,
                    None,
                    None,
                    vec![child],
                ))
            }
            PhysicalPlan::Sort { input, keys } => {
                let (schema, batch, child) = self.run(input, clock, trace, fetched)?;
                let n = batch.len() as f64;
                clock.charge(self.param("SortFactor", 0.02) * n * n.max(2.0).log2());
                let out = vexec::sort(&schema, &batch, keys)?;
                Ok((schema, out, "sort".into(), false, None, None, vec![child]))
            }
            PhysicalPlan::Join {
                algo,
                left,
                right,
                predicate,
            } => {
                let (ls, lb, lc) = self.run(left, clock, trace, fetched)?;
                let (rs, rb, rc) = self.run(right, clock, trace, fetched)?;
                let out_schema = ls.join(&rs);
                let out = match algo {
                    PhysicalJoinAlgo::Hash => {
                        clock.charge((lb.len() + rb.len()) as f64 * cpu_hash);
                        let out = vexec::hash_join(&ls, &lb, &rs, &rb, predicate)?;
                        clock.charge(out.len() as f64 * cpu_hash);
                        out
                    }
                    PhysicalJoinAlgo::SortMerge => {
                        // Executed as sort + hash match; charged as the
                        // sort-based algorithm it models.
                        let sf = self.param("SortFactor", 0.02);
                        let (nl, nr) = (lb.len() as f64, rb.len() as f64);
                        clock.charge(sf * nl * nl.max(2.0).log2() + sf * nr * nr.max(2.0).log2());
                        clock.charge((nl + nr) * cpu_pred);
                        vexec::hash_join(&ls, &lb, &rs, &rb, predicate)?
                    }
                    PhysicalJoinAlgo::NestedLoop => {
                        clock.charge((lb.len() * rb.len()) as f64 * cpu_pred);
                        vexec::nested_loop_join(&ls, &lb, &rs, &rb, predicate)?
                    }
                };
                let operator = format!("join ({algo:?})").to_lowercase();
                Ok((out_schema, out, operator, false, None, None, vec![lc, rc]))
            }
            PhysicalPlan::Union { left, right } => {
                let (ls, lb, lc) = self.run(left, clock, trace, fetched)?;
                let (rs, rb, rc) = self.run(right, clock, trace, fetched)?;
                if ls.arity() != rs.arity() {
                    return Err(DiscoError::Exec("union arity mismatch".into()));
                }
                clock.charge(rb.len() as f64 * cpu_hash);
                let out = vexec::union(&lb, &rb)?;
                Ok((ls, out, "union".into(), false, None, None, vec![lc, rc]))
            }
            PhysicalPlan::Dedup { input } => {
                let (schema, batch, child) = self.run(input, clock, trace, fetched)?;
                clock.charge(batch.len() as f64 * cpu_hash);
                let out = vexec::dedup(&batch);
                Ok((schema, out, "dedup".into(), false, None, None, vec![child]))
            }
            PhysicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let (schema, batch, child) = self.run(input, clock, trace, fetched)?;
                clock.charge(batch.len() as f64 * cpu_hash);
                let out = vexec::aggregate(&schema, &batch, group_by, aggs)?;
                let out_schema = to_agg_schema(&schema, group_by, aggs)?;
                Ok((
                    out_schema,
                    out,
                    "aggregate".into(),
                    false,
                    None,
                    None,
                    vec![child],
                ))
            }
        }
    }

    /// Execute a plan with pipelined streaming: wrappers stream their
    /// subanswers in bounded chunks which flow straight through
    /// pull-based combine operators ([`disco_sources::vstream`]), so the
    /// first rows of the answer materialize before the slowest wrapper
    /// finishes (the runtime counterpart of the cost model's
    /// `TimeFirst`). Chunk reassembly is byte-identical to
    /// [`execute`](Self::execute) and virtual-clock charges use the same
    /// per-tuple formulas, summed per chunk.
    ///
    /// `limit` caps the answer and stops pulling once satisfied — the
    /// early-stop that rewards `TimeFirst`-optimal plans. A query budget
    /// that expires mid-stream truncates the affected streams, keeping
    /// the rows already delivered (see
    /// [`ExecutionTrace::budget_exhausted`]).
    pub fn execute_streaming(
        &self,
        plan: &PhysicalPlan,
        chunk_rows: u32,
        limit: Option<u64>,
    ) -> Result<(Schema, Vec<Tuple>, ExecutionTrace)> {
        let mut trace = ExecutionTrace::default();
        let mut sites = Vec::new();
        collect_submits(plan, &mut sites);
        let started = Instant::now();
        let budget_deadline = self
            .resilience
            .as_ref()
            .and_then(|p| p.query_budget_ms)
            .filter(|ms| ms.is_finite() && *ms >= 0.0)
            .map(|ms| started + Duration::from_micros((ms * 1e3) as u64));
        let opened = self.open_all(&sites, budget_deadline, chunk_rows);
        trace.concurrent =
            self.parallel && sites.len() > 1 && matches!(self.backend, Backend::Remote(_));

        // Arm the adaptive trip-wire: site streams buffer their chunks
        // and abort the combine when measurements contradict predictions.
        let trigger = self.adaptive.as_ref().and_then(|r| {
            let policy = r.policy();
            (policy.enabled && policy.max_replans >= 1).then(|| {
                Rc::new(StreamTrigger {
                    policy: policy.clone(),
                    fired: Cell::new(false),
                })
            })
        });
        let ctx = StreamCtx {
            clock: Rc::new(RefCell::new(VirtualClock::new())),
            site_states: RefCell::new(Vec::new()),
            site_modes: RefCell::new(Vec::new()),
            site_schemas: RefCell::new(Vec::new()),
            trigger,
            replay: false,
            budget_deadline,
            chunk_rows: chunk_rows.max(1) as usize,
            cpu_pred: self.param("CpuPred", 0.05),
            cpu_hash: self.param("CpuHash", 0.02),
            sort_factor: self.param("SortFactor", 0.02),
        };
        let mut opened = opened.into_iter();
        let (root, mut tally) = self.build_stream_node(plan, &mut opened, &ctx)?;
        let mut root: Box<dyn BatchStream> = match limit {
            Some(n) => Box::new(vstream::LimitStream::new(root, n)),
            None => root,
        };
        let schema = root.schema().clone();
        let mut chunks: Vec<Batch> = Vec::new();
        // After a re-plan the per-submit accounting comes from the
        // re-driven tree's states, aligned with the new plan's submit
        // order; `None` means the original plan ran to completion.
        let mut assembly: Option<Vec<SiteAssembly>> = None;
        loop {
            match root.next_batch() {
                Ok(Some(b)) => {
                    if trace.first_row_wall_ms.is_none() && !b.is_empty() {
                        trace.first_row_wall_ms = Some(started.elapsed().as_secs_f64() * 1e3);
                    }
                    chunks.push(b);
                }
                Ok(None) => break,
                Err(DiscoError::Replan(_)) => {
                    // Abandon the in-flight combine: drop the operator
                    // tree (discarding its intermediate results) but keep
                    // the shared site handles, then finish draining every
                    // subanswer — the re-drive consumes what was already
                    // shipped; no wrapper is re-fetched.
                    drop(root);
                    let modes: Vec<_> = ctx.site_modes.borrow().clone();
                    let states: Vec<_> = ctx.site_states.borrow().clone();
                    for (mode, state) in modes.iter().zip(&states) {
                        drain_site(mode, state, budget_deadline, self.partial_answers)?;
                    }
                    let schemas: Vec<Schema> = ctx.site_schemas.borrow().clone();
                    let observations: Vec<SiteObservation> = sites
                        .iter()
                        .zip(&states)
                        .map(|(site, st)| {
                            let st = st.borrow();
                            SiteObservation {
                                wrapper: site.wrapper.to_string(),
                                plan: site.plan.clone(),
                                predicted_rows: st.predicted_rows,
                                observed_rows: st.tuples as f64,
                                observed_bytes: st.bytes as f64,
                                failed: st.failed,
                            }
                        })
                        .collect();
                    let replanner = self.adaptive.as_ref().ok_or_else(|| {
                        DiscoError::Exec("replan raised without a replanner".into())
                    })?;
                    let mut drive: Option<PhysicalPlan> = None;
                    if let Some(outcome) = replanner.consider(plan, &observations, "streaming") {
                        if let Some(new_plan) = outcome.new_plan {
                            trace.final_plan = Some(new_plan.clone());
                            drive = Some(new_plan);
                        }
                        trace.replans.push(outcome.event);
                    }
                    let drive = drive.unwrap_or_else(|| plan.clone());

                    // Re-drive the combine from the materialized
                    // subanswers on the same virtual clock — the
                    // abandoned combine's charges stay in `mediator_ms`;
                    // abandonment is not free. Fresh states, no trigger:
                    // one re-plan per execution.
                    let mut pool = ReplayPool::new(&sites, &states, &schemas)?;
                    let ctx2 = StreamCtx {
                        clock: Rc::clone(&ctx.clock),
                        site_states: RefCell::new(Vec::new()),
                        site_modes: RefCell::new(Vec::new()),
                        site_schemas: RefCell::new(Vec::new()),
                        trigger: None,
                        replay: true,
                        budget_deadline: None,
                        chunk_rows: ctx.chunk_rows,
                        cpu_pred: ctx.cpu_pred,
                        cpu_hash: ctx.cpu_hash,
                        sort_factor: ctx.sort_factor,
                    };
                    let mut new_sites = Vec::new();
                    collect_submits(&drive, &mut new_sites);
                    let mut reopened = Vec::with_capacity(new_sites.len());
                    let mut snaps = Vec::with_capacity(new_sites.len());
                    for site in &new_sites {
                        let (opened_site, snap) = pool.take(site.wrapper, site.plan)?;
                        reopened.push(opened_site);
                        snaps.push(snap);
                    }
                    let (r2, t2) =
                        self.build_stream_node(&drive, &mut reopened.into_iter(), &ctx2)?;
                    // The rebuilt materialized sources recompute derived
                    // accounting at build time; restore the fields only
                    // the abandoned live streams knew.
                    for (state, snap) in ctx2.site_states.borrow().iter().zip(&snaps) {
                        let mut st = state.borrow_mut();
                        st.failed = snap.failed;
                        st.budget_skipped = snap.budget_skipped;
                        st.hedges = snap.hedges;
                        st.attempts = snap.attempts;
                        st.pages = snap.pages;
                        st.first_ms = snap.first_ms;
                        st.bytes = snap.bytes;
                        st.complete = snap.complete;
                    }
                    assembly = Some(
                        new_sites
                            .iter()
                            .zip(ctx2.site_states.borrow().iter())
                            .map(|(site, st)| {
                                (site.wrapper.to_string(), site.plan.clone(), Rc::clone(st))
                            })
                            .collect(),
                    );
                    tally = t2;
                    root = match limit {
                        Some(n) => Box::new(vstream::LimitStream::new(r2, n)),
                        None => r2,
                    };
                    chunks.clear();
                    trace.first_row_wall_ms = None;
                }
                Err(e) => return Err(e),
            }
        }
        // Dropping the tree abandons any undrained streams, releasing
        // their transport workers (the LIMIT early-stop).
        drop(root);
        trace.submit_wall_ms = started.elapsed().as_secs_f64() * 1e3;
        trace.mediator_ms = ctx.clock.borrow().now();

        let assembly: Vec<SiteAssembly> = match assembly {
            Some(a) => a,
            None => sites
                .iter()
                .zip(ctx.site_states.borrow().iter())
                .map(|(site, st)| (site.wrapper.to_string(), site.plan.clone(), Rc::clone(st)))
                .collect(),
        };
        for (wrapper, site_plan, state) in &assembly {
            let st = state.borrow();
            if st.failed {
                trace
                    .missing
                    .extend(site_plan.collections().into_iter().cloned());
            }
            trace.budget_exhausted |= st.budget_skipped;
            trace.wrapper_ms += st.stats.elapsed_ms;
            trace.communication_ms += st.comm_ms;
            trace.hedges += st.hedges;
            trace.submits.push(SubmitTrace {
                wrapper: wrapper.clone(),
                plan: site_plan.clone(),
                stats: st.stats,
                tuples: st.tuples,
                bytes: st.bytes,
                comm_ms: st.comm_ms,
                wall_ms: st.wall_ms,
                attempts: st.attempts,
                failed: st.failed,
                served_by: st.served_by.clone(),
                hedges: st.hedges,
                first_ms: st.first_ms.unwrap_or(0.0),
                complete: st.complete,
            });
        }
        if trace.budget_exhausted && disco_obs::enabled() {
            disco_obs::counter(disco_obs::names::BUDGET_EXHAUSTED, &[]).inc();
        }
        trace.measured = Some(measured_from_tally(&tally).0);
        trace.missing.sort();
        trace.missing.dedup();
        let batch = if chunks.is_empty() {
            Batch::empty(schema.arity())
        } else {
            let refs: Vec<&Batch> = chunks.iter().collect();
            Batch::concat(&refs)?
        };
        Ok((schema, batch.to_tuples(), trace))
    }

    /// Open every submit site's stream, in site order — the streaming
    /// counterpart of [`fetch_all`](Self::fetch_all): the same fan-out
    /// and budget rules, but each site returns a live stream (with its
    /// first chunk) instead of a complete answer.
    fn open_all(
        &self,
        sites: &[SubmitSite<'_>],
        budget_deadline: Option<Instant>,
        chunk_rows: u32,
    ) -> Vec<OpenedSite> {
        let hedge_budget = AtomicU32::new(
            self.resilience
                .as_ref()
                .map_or(0, |p| p.max_hedges_per_query),
        );
        if self.parallel && sites.len() > 1 {
            match self.backend {
                Backend::Local(wrappers) => {
                    let msg = self.param("MsgLatency", 100.0);
                    let byte = self.param("PerByte", 0.001);
                    std::thread::scope(|s| {
                        let handles: Vec<_> = sites
                            .iter()
                            .map(|site| s.spawn(move || open_local(wrappers, site, msg, byte)))
                            .collect();
                        handles.into_iter().map(join_open).collect()
                    })
                }
                Backend::Remote(client) => std::thread::scope(|s| {
                    let hedge_budget = &hedge_budget;
                    let handles: Vec<_> = sites
                        .iter()
                        .enumerate()
                        .map(|(i, site)| {
                            s.spawn(move || {
                                self.open_remote_site(
                                    client,
                                    site,
                                    i,
                                    hedge_budget,
                                    budget_deadline,
                                    chunk_rows,
                                )
                            })
                        })
                        .collect();
                    handles.into_iter().map(join_open).collect()
                }),
            }
        } else {
            sites
                .iter()
                .enumerate()
                .map(|(i, site)| match self.backend {
                    Backend::Local(wrappers) => open_local(
                        wrappers,
                        site,
                        self.param("MsgLatency", 100.0),
                        self.param("PerByte", 0.001),
                    ),
                    Backend::Remote(client) => self.open_remote_site(
                        client,
                        site,
                        i,
                        &hedge_budget,
                        budget_deadline,
                        chunk_rows,
                    ),
                })
                .collect()
        }
    }

    /// Open one site's stream over the transport, mirroring
    /// [`fetch_remote_site`](Self::fetch_remote_site): the same budget
    /// pre-check, predicted deadlines and hedged replica targets — but
    /// racing replicas to the *first chunk* instead of the full answer.
    fn open_remote_site(
        &self,
        client: &TransportClient,
        site: &SubmitSite<'_>,
        index: usize,
        hedge_budget: &AtomicU32,
        budget_deadline: Option<Instant>,
        chunk_rows: u32,
    ) -> OpenedSite {
        let Some(policy) = &self.resilience else {
            let outcome = client
                .submit_stream_opts(
                    site.wrapper,
                    site.plan,
                    &SubmitOptions::default(),
                    chunk_rows,
                )
                .and_then(|s| open_source(s, site.wrapper.to_string(), 0));
            return OpenedSite {
                outcome,
                budget_skipped: false,
            };
        };

        let remaining_ms = budget_deadline.map(|d| {
            let now = Instant::now();
            if now >= d {
                0.0
            } else {
                (d - now).as_secs_f64() * 1e3
            }
        });
        if remaining_ms.is_some_and(|ms| ms < 1.0) {
            return OpenedSite {
                outcome: Err(DiscoError::Timeout(format!(
                    "query budget exhausted before submit to `{}`",
                    site.wrapper
                ))),
                budget_skipped: true,
            };
        }

        let prediction = self.predictions.get(index).copied().flatten();
        let total = prediction.map(|p| p.total_ms);
        let mut opts = SubmitOptions {
            deadline_ms: policy.wall_deadline_ms(total),
            sim_deadline_ms: policy.sim_deadline_ms(total),
            predicted_total_ms: total,
        };
        if let Some(rem) = remaining_ms {
            let cap = rem.ceil().max(1.0) as u64;
            opts.deadline_ms = Some(opts.deadline_ms.map_or(cap, |d| d.min(cap)));
        }

        let mut targets = vec![HedgeTarget {
            endpoint: site.wrapper.to_string(),
            plan: site.plan.clone(),
            opts,
        }];
        if policy.hedge {
            if let Some(peers) = self.replicas.get(site.wrapper) {
                for peer in peers {
                    targets.push(HedgeTarget {
                        endpoint: peer.clone(),
                        plan: site.plan.retargeted(peer),
                        opts,
                    });
                }
            }
        }
        let wait = policy
            .straggler_wait_ms(prediction.map(|p| p.first_ms))
            .map(Duration::from_millis);
        let allowance = hedge_budget.load(Ordering::Relaxed);

        let outcome = client
            .submit_stream_hedged(&targets, wait, allowance, chunk_rows)
            .and_then(|h| {
                if h.hedges > 0 {
                    let _ = hedge_budget.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                        Some(v.saturating_sub(h.hedges))
                    });
                }
                open_source(h.stream, targets[h.winner].endpoint.clone(), h.hedges)
            });
        OpenedSite {
            outcome,
            budget_skipped: false,
        }
    }

    /// One node of the streaming tree: builds the operator stream and
    /// its charge/row tally, consuming opened sources at submit sites in
    /// the same depth-first order as the two-phase combine.
    fn build_stream_node(
        &self,
        plan: &PhysicalPlan,
        opened: &mut std::vec::IntoIter<OpenedSite>,
        ctx: &StreamCtx,
    ) -> Result<(Box<dyn BatchStream>, TallyNode)> {
        match plan {
            PhysicalPlan::SubmitRemote {
                wrapper,
                plan: _,
                schema: expected_schema,
            } => {
                let operator = format!("submit {wrapper}");
                let next = opened
                    .next()
                    .ok_or_else(|| DiscoError::Exec("submit site without a fetch".into()))?;
                let budget_skipped = next.budget_skipped;
                let state = Rc::new(RefCell::new(SiteState::default()));
                if ctx.trigger.is_some() {
                    // Predictions align with submit order, which is also
                    // the order sites are pushed into the context.
                    let site_idx = ctx.site_states.borrow().len();
                    state.borrow_mut().predicted_rows = self
                        .predictions
                        .get(site_idx)
                        .copied()
                        .flatten()
                        .map(|p| p.rows);
                }
                let (schema, mode) = match next.outcome {
                    Ok(OpenedSource::Stream {
                        stream,
                        first,
                        schema,
                        served_by,
                        hedges,
                    }) => {
                        if schema.arity() != expected_schema.arity() {
                            return Err(DiscoError::Exec(format!(
                                "wrapper `{wrapper}` returned {} columns, plan expected {}",
                                schema.arity(),
                                expected_schema.arity()
                            )));
                        }
                        {
                            let mut st = state.borrow_mut();
                            st.attempts = stream.attempts();
                            st.wall_ms = stream.wall_first_ms();
                            st.comm_ms = stream.comm_ms();
                            st.served_by = served_by;
                            st.hedges = hedges;
                        }
                        (
                            schema,
                            SiteMode::Remote {
                                stream,
                                pending: Some(first),
                                done: false,
                            },
                        )
                    }
                    Ok(OpenedSource::Whole {
                        answer,
                        comm_ms,
                        wall_ms,
                        attempts,
                        served_by,
                    }) => {
                        if answer.schema.arity() != expected_schema.arity() {
                            return Err(DiscoError::Exec(format!(
                                "wrapper `{wrapper}` returned {} columns, plan expected {}",
                                answer.schema.arity(),
                                expected_schema.arity()
                            )));
                        }
                        {
                            let mut st = state.borrow_mut();
                            st.stats = answer.stats;
                            st.pages = Some(answer.stats.pages_read);
                            st.bytes = answer.batch.byte_width();
                            st.comm_ms = comm_ms;
                            st.wall_ms = wall_ms;
                            st.attempts = attempts;
                            st.served_by = served_by;
                            st.first_ms = Some(answer.stats.time_first_ms + comm_ms);
                        }
                        let schema = answer.schema.clone();
                        let source =
                            vstream::BatchSource::new(answer.schema, answer.batch, ctx.chunk_rows);
                        (
                            schema,
                            SiteMode::Whole {
                                source,
                                truth: !ctx.replay,
                            },
                        )
                    }
                    Err(e) if (self.partial_answers && e.is_transient()) || budget_skipped => {
                        {
                            let mut st = state.borrow_mut();
                            st.failed = true;
                            st.budget_skipped = budget_skipped;
                        }
                        (expected_schema.clone(), SiteMode::Empty { served: false })
                    }
                    Err(e) => return Err(e),
                };
                ctx.site_states.borrow_mut().push(Rc::clone(&state));
                let mode = Rc::new(RefCell::new(mode));
                ctx.site_modes.borrow_mut().push(Rc::clone(&mode));
                ctx.site_schemas.borrow_mut().push(schema.clone());
                let stream = SiteStream {
                    schema,
                    state: Rc::clone(&state),
                    mode,
                    budget_deadline: ctx.budget_deadline,
                    partial: self.partial_answers,
                    trigger: ctx.trigger.clone(),
                };
                Ok(counted(
                    Box::new(stream),
                    operator,
                    Rc::new(Cell::new(0.0)),
                    Some(state),
                    vec![],
                ))
            }
            PhysicalPlan::Filter { input, predicate } => {
                let (input, child) = self.build_stream_node(input, opened, ctx)?;
                let charge = Rc::new(Cell::new(0.0));
                let s = vstream::FilterStream::new(
                    input,
                    predicate.clone(),
                    meter_for(&ctx.clock, &charge),
                    predicate.conjuncts.len() as f64 * ctx.cpu_pred,
                );
                Ok(counted(
                    Box::new(s),
                    "filter".into(),
                    charge,
                    None,
                    vec![child],
                ))
            }
            PhysicalPlan::Project { input, columns } => {
                let (input, child) = self.build_stream_node(input, opened, ctx)?;
                let charge = Rc::new(Cell::new(0.0));
                let s = vstream::ProjectStream::new(
                    input,
                    columns.clone(),
                    meter_for(&ctx.clock, &charge),
                    ctx.cpu_hash,
                )?;
                Ok(counted(
                    Box::new(s),
                    "project".into(),
                    charge,
                    None,
                    vec![child],
                ))
            }
            PhysicalPlan::Sort { input, keys } => {
                let (input, child) = self.build_stream_node(input, opened, ctx)?;
                let charge = Rc::new(Cell::new(0.0));
                let s = vstream::SortStream::new(
                    input,
                    keys.clone(),
                    meter_for(&ctx.clock, &charge),
                    ctx.sort_factor,
                );
                Ok(counted(
                    Box::new(s),
                    "sort".into(),
                    charge,
                    None,
                    vec![child],
                ))
            }
            PhysicalPlan::Join {
                algo,
                left,
                right,
                predicate,
            } => {
                let (l, lc) = self.build_stream_node(left, opened, ctx)?;
                let (r, rc) = self.build_stream_node(right, opened, ctx)?;
                let charge = Rc::new(Cell::new(0.0));
                let meter = meter_for(&ctx.clock, &charge);
                let s: Box<dyn BatchStream> = match algo {
                    PhysicalJoinAlgo::Hash => Box::new(vstream::HashJoinStream::new(
                        l,
                        r,
                        predicate.clone(),
                        meter,
                        ctx.cpu_hash,
                    )),
                    PhysicalJoinAlgo::SortMerge => Box::new(vstream::SortMergeStream::new(
                        l,
                        r,
                        predicate.clone(),
                        meter,
                        ctx.sort_factor,
                        ctx.cpu_pred,
                    )),
                    PhysicalJoinAlgo::NestedLoop => Box::new(vstream::NestedLoopStream::new(
                        l,
                        r,
                        predicate.clone(),
                        meter,
                        ctx.cpu_pred,
                    )),
                };
                let operator = format!("join ({algo:?})").to_lowercase();
                Ok(counted(s, operator, charge, None, vec![lc, rc]))
            }
            PhysicalPlan::Union { left, right } => {
                let (l, lc) = self.build_stream_node(left, opened, ctx)?;
                let (r, rc) = self.build_stream_node(right, opened, ctx)?;
                let charge = Rc::new(Cell::new(0.0));
                let s =
                    vstream::UnionStream::new(l, r, meter_for(&ctx.clock, &charge), ctx.cpu_hash)?;
                Ok(counted(
                    Box::new(s),
                    "union".into(),
                    charge,
                    None,
                    vec![lc, rc],
                ))
            }
            PhysicalPlan::Dedup { input } => {
                let (input, child) = self.build_stream_node(input, opened, ctx)?;
                let charge = Rc::new(Cell::new(0.0));
                let s =
                    vstream::DedupStream::new(input, meter_for(&ctx.clock, &charge), ctx.cpu_hash);
                Ok(counted(
                    Box::new(s),
                    "dedup".into(),
                    charge,
                    None,
                    vec![child],
                ))
            }
            PhysicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let (input, child) = self.build_stream_node(input, opened, ctx)?;
                let out_schema = to_agg_schema(input.schema(), group_by, aggs)?;
                let charge = Rc::new(Cell::new(0.0));
                let s = vstream::AggregateStream::new(
                    input,
                    group_by.clone(),
                    aggs.clone(),
                    out_schema,
                    meter_for(&ctx.clock, &charge),
                    ctx.cpu_hash,
                );
                Ok(counted(
                    Box::new(s),
                    "aggregate".into(),
                    charge,
                    None,
                    vec![child],
                ))
            }
        }
    }
}

/// Key identifying one submit site's fetch: a re-planned combine order
/// permutes submit sites but never changes their `(wrapper, subplan)`
/// pairs, so the key re-associates already-fetched answers with their
/// sites under any order.
fn pool_key(wrapper: &str, plan: &LogicalPlan) -> String {
    format!("{wrapper}|{plan:?}")
}

/// Fetched subanswers keyed by submit site. For the original plan this
/// degenerates to in-order consumption (sites are pushed and taken in
/// the same depth-first order); after a mid-query re-plan it hands each
/// submit site the answer fetched for it under the old order. Duplicate
/// sites (same wrapper and subplan submitted twice) consume distinct
/// entries in first-in-first-out order.
struct FetchPool {
    entries: Vec<(String, Option<Fetched>)>,
}

impl FetchPool {
    fn new(sites: &[SubmitSite<'_>], fetched: Vec<Fetched>) -> Self {
        FetchPool {
            entries: sites
                .iter()
                .zip(fetched)
                .map(|(site, f)| (pool_key(site.wrapper, site.plan), Some(f)))
                .collect(),
        }
    }

    fn take(&mut self, wrapper: &str, plan: &LogicalPlan) -> Option<Fetched> {
        let key = pool_key(wrapper, plan);
        self.entries
            .iter_mut()
            .find(|(k, f)| *k == key && f.is_some())
            .and_then(|(_, f)| f.take())
    }
}

/// Pair each fetched subanswer with its prediction for the adaptive
/// checkpoint. Failed or budget-skipped sites observe zero rows and are
/// flagged so they can correct the re-enumeration's cardinalities
/// without themselves triggering a re-plan.
fn two_phase_observations(
    sites: &[SubmitSite<'_>],
    fetched: &[Fetched],
    predictions: &[Option<SitePrediction>],
) -> Vec<SiteObservation> {
    sites
        .iter()
        .zip(fetched)
        .enumerate()
        .map(|(i, (site, f))| {
            let (observed_rows, observed_bytes, failed) = match &f.outcome {
                Ok(fa) => (
                    fa.answer.batch.len() as f64,
                    fa.answer.batch.byte_width() as f64,
                    false,
                ),
                Err(_) => (0.0, 0.0, true),
            };
            SiteObservation {
                wrapper: site.wrapper.to_string(),
                plan: site.plan.clone(),
                predicted_rows: predictions.get(i).copied().flatten().map(|p| p.rows),
                observed_rows,
                observed_bytes,
                failed,
            }
        })
        .collect()
}

/// Submit sites of a plan in fetch order (depth-first, left before
/// right): `(wrapper, subplan)` pairs. The mediator aligns per-site
/// cost predictions with this order.
pub(crate) fn submit_sites(plan: &PhysicalPlan) -> Vec<(&str, &LogicalPlan)> {
    let mut sites = Vec::new();
    collect_submits(plan, &mut sites);
    sites.into_iter().map(|s| (s.wrapper, s.plan)).collect()
}

/// Collect `SubmitRemote` sites in the same order `run` reaches them
/// (depth-first, left before right).
fn collect_submits<'p>(plan: &'p PhysicalPlan, out: &mut Vec<SubmitSite<'p>>) {
    match plan {
        PhysicalPlan::SubmitRemote { wrapper, plan, .. } => out.push(SubmitSite { wrapper, plan }),
        PhysicalPlan::Filter { input, .. }
        | PhysicalPlan::Project { input, .. }
        | PhysicalPlan::Sort { input, .. }
        | PhysicalPlan::Dedup { input }
        | PhysicalPlan::Aggregate { input, .. } => collect_submits(input, out),
        PhysicalPlan::Join { left, right, .. } | PhysicalPlan::Union { left, right } => {
            collect_submits(left, out);
            collect_submits(right, out);
        }
    }
}

/// Fetch one subanswer from an in-process wrapper, charging the seed's
/// uniform analytic communication cost.
fn fetch_local(
    wrappers: &BTreeMap<String, Box<dyn Wrapper>>,
    site: &SubmitSite<'_>,
    msg_latency: f64,
    per_byte: f64,
) -> Fetched {
    let started = Instant::now();
    let outcome = wrappers
        .get(site.wrapper)
        .ok_or_else(|| DiscoError::Exec(format!("wrapper `{}` is not registered", site.wrapper)))
        .and_then(|w| w.execute(site.plan))
        .map(|answer| {
            let bytes: u64 = answer.tuples.iter().map(Tuple::width).sum();
            FetchedAnswer {
                comm_ms: msg_latency + bytes as f64 * per_byte,
                wall_ms: started.elapsed().as_secs_f64() * 1e3,
                attempts: 1,
                served_by: site.wrapper.to_string(),
                hedges: 0,
                answer: BatchAnswer::from(answer),
            }
        });
    Fetched {
        outcome,
        budget_skipped: false,
    }
}

/// Fetch one subanswer over the transport: deadlines, retries and circuit
/// breaking live in the client; the simulated network model supplies the
/// communication time.
fn fetch_remote(client: &TransportClient, site: &SubmitSite<'_>) -> Fetched {
    let outcome = client
        .submit_batch(site.wrapper, site.plan)
        .map(|o| FetchedAnswer {
            answer: o.answer,
            comm_ms: o.comm_ms,
            wall_ms: o.wall_ms,
            attempts: o.attempts,
            served_by: site.wrapper.to_string(),
            hedges: 0,
        });
    Fetched {
        outcome,
        budget_skipped: false,
    }
}

fn join_fetch(handle: std::thread::ScopedJoinHandle<'_, Fetched>) -> Fetched {
    handle.join().unwrap_or_else(|_| Fetched {
        outcome: Err(DiscoError::Exec("submit worker thread panicked".into())),
        budget_skipped: false,
    })
}

/// Output schema of an aggregate over a known input schema.
fn to_agg_schema(
    input: &Schema,
    group_by: &[String],
    aggs: &[disco_algebra::logical::AggExpr],
) -> Result<Schema> {
    use disco_algebra::AggFunc;
    use disco_common::{AttributeDef, DataType};
    let mut attrs = Vec::with_capacity(group_by.len() + aggs.len());
    for g in group_by {
        let a = input
            .attribute(g)
            .ok_or_else(|| DiscoError::Exec(format!("unknown group-by attribute `{g}`")))?;
        attrs.push(a.clone());
    }
    for a in aggs {
        let ty = match a.func {
            AggFunc::Count => DataType::Long,
            AggFunc::Sum | AggFunc::Avg => DataType::Double,
            AggFunc::Min | AggFunc::Max => a
                .arg
                .as_ref()
                .and_then(|arg| input.attribute(arg))
                .map(|d| d.ty)
                .unwrap_or(DataType::Double),
        };
        attrs.push(AttributeDef::new(a.name.clone(), ty));
    }
    Ok(Schema::new(attrs))
}

// ---- streaming (pipelined) execution support ----

/// Shared context for building one streaming operator tree.
struct StreamCtx {
    /// The mediator's virtual clock, shared by every operator meter.
    clock: Rc<RefCell<VirtualClock>>,
    /// Per-site live accounting, pushed in submit (site) order.
    site_states: RefCell<Vec<Rc<RefCell<SiteState>>>>,
    /// Per-site source handles, aligned with `site_states`. Kept outside
    /// the operator tree so a re-plan can drop the tree yet keep draining
    /// the live streams it abandoned.
    site_modes: RefCell<Vec<Rc<RefCell<SiteMode>>>>,
    /// Per-site subanswer schemas, aligned with `site_states` — needed to
    /// rebuild materialized sources after a re-plan.
    site_schemas: RefCell<Vec<Schema>>,
    /// Armed when adaptive re-optimization is on: site streams buffer
    /// what they deliver and raise [`DiscoError::Replan`] when measured
    /// cardinalities cross the policy's error threshold.
    trigger: Option<Rc<StreamTrigger>>,
    /// This tree re-drives a re-plan from replayed (possibly partial)
    /// materialized subanswers: exhausting a source proves nothing about
    /// true cardinalities.
    replay: bool,
    budget_deadline: Option<Instant>,
    chunk_rows: usize,
    cpu_pred: f64,
    cpu_hash: f64,
    sort_factor: f64,
}

/// Shared adaptive trip-wire for one streaming execution. `fired` is
/// set by the first site stream whose measured cardinality contradicts
/// its prediction badly enough; at most one re-plan is raised per
/// execution (the re-driven tree is built without a trigger).
struct StreamTrigger {
    policy: crate::adaptive::AdaptivePolicy,
    fired: Cell<bool>,
}

impl StreamTrigger {
    /// Underestimate check, valid mid-stream: the site has *already*
    /// delivered `threshold ×` its predicted cardinality and is still
    /// going — no need to wait for end-of-stream to know the prediction
    /// was wrong.
    fn fire_if_exceeded(&self, predicted: Option<f64>, observed: f64) -> Result<()> {
        match predicted {
            Some(p) if observed > p && self.policy.triggers(p, observed) => self.fire(p, observed),
            _ => Ok(()),
        }
    }

    /// Either-direction check, valid only at end-of-stream (an
    /// overestimate can only be confirmed once the stream is done).
    fn fire_if_wrong(&self, predicted: Option<f64>, observed: f64) -> Result<()> {
        match predicted {
            Some(p) if self.policy.triggers(p, observed) => self.fire(p, observed),
            _ => Ok(()),
        }
    }

    fn fire(&self, predicted: f64, observed: f64) -> Result<()> {
        if self.fired.get() {
            return Ok(());
        }
        self.fired.set(true);
        Err(DiscoError::Replan(format!(
            "predicted {predicted:.0} rows, observed {observed:.0}"
        )))
    }
}

/// Live accounting for one streamed submit site, updated by its source
/// adapter as chunks arrive and read after the pull loop to assemble
/// [`SubmitTrace`]s. An abandoned stream (LIMIT satisfied early) keeps
/// whatever had arrived when pulling stopped — under-counting
/// `wrapper_ms` there is the point of early termination.
/// Per-submit accounting triple for the streaming engine: wrapper name,
/// the subquery it ran, and the shared state its stream wrote into.
type SiteAssembly = (String, LogicalPlan, Rc<RefCell<SiteState>>);

#[derive(Default)]
struct SiteState {
    stats: ExecStats,
    tuples: usize,
    bytes: u64,
    comm_ms: f64,
    wall_ms: f64,
    first_ms: Option<f64>,
    attempts: u32,
    failed: bool,
    served_by: String,
    hedges: u32,
    budget_skipped: bool,
    pages: Option<u64>,
    /// The stream ran to end-of-stream (final stats arrived), so
    /// `tuples` is the subquery's true cardinality.
    complete: bool,
    /// Predicted cardinality for this site (adaptive executions only).
    predicted_rows: Option<f64>,
    /// Every chunk this site has delivered, buffered only while an
    /// adaptive trigger is armed — the materialized subanswer a re-plan
    /// re-drives the combine from without re-fetching.
    delivered: Vec<Batch>,
}

/// The open phase's product for one submit site — the streaming
/// counterpart of [`Fetched`].
struct OpenedSite {
    outcome: Result<OpenedSource>,
    /// Never submitted: the query budget ran out first.
    budget_skipped: bool,
}

enum OpenedSource {
    /// A live stream with its schema-bearing first chunk pre-pulled (so
    /// retries and hedging are fully settled before the tree is built).
    Stream {
        stream: SubmitStream,
        first: Batch,
        schema: Schema,
        served_by: String,
        hedges: u32,
    },
    /// A fully materialized in-process answer, served to the pipeline in
    /// bounded chunks.
    Whole {
        answer: BatchAnswer,
        comm_ms: f64,
        wall_ms: f64,
        attempts: u32,
        served_by: String,
    },
}

/// Pull the schema-bearing first chunk off a freshly opened stream.
fn open_source(mut stream: SubmitStream, served_by: String, hedges: u32) -> Result<OpenedSource> {
    let first = stream
        .next_chunk()?
        .ok_or_else(|| DiscoError::Exec("stream ended before delivering a schema chunk".into()))?;
    Ok(OpenedSource::Stream {
        schema: first.schema,
        first: first.batch,
        stream,
        served_by,
        hedges,
    })
}

/// Open one in-process site: the wrapper executes eagerly (it has no
/// streaming interface), and the answer is served to the pipeline in
/// bounded chunks with the seed's analytic communication charge.
fn open_local(
    wrappers: &BTreeMap<String, Box<dyn Wrapper>>,
    site: &SubmitSite<'_>,
    msg_latency: f64,
    per_byte: f64,
) -> OpenedSite {
    let f = fetch_local(wrappers, site, msg_latency, per_byte);
    OpenedSite {
        outcome: f.outcome.map(|fa| OpenedSource::Whole {
            answer: fa.answer,
            comm_ms: fa.comm_ms,
            wall_ms: fa.wall_ms,
            attempts: fa.attempts,
            served_by: fa.served_by,
        }),
        budget_skipped: f.budget_skipped,
    }
}

fn join_open(handle: std::thread::ScopedJoinHandle<'_, OpenedSite>) -> OpenedSite {
    handle.join().unwrap_or_else(|_| OpenedSite {
        outcome: Err(DiscoError::Exec("submit worker thread panicked".into())),
        budget_skipped: false,
    })
}

/// How one submit site feeds the streaming pipeline.
enum SiteMode {
    /// Live remote stream; the schema-bearing first chunk is pending.
    Remote {
        stream: SubmitStream,
        pending: Option<Batch>,
        done: bool,
    },
    /// Materialized answer served in bounded chunks.
    Whole {
        source: vstream::BatchSource,
        /// Exhausting this source proves the subquery's true cardinality
        /// (a complete in-process answer). `false` when the source
        /// replays a re-plan's possibly-partial materialized subanswer —
        /// exhausting it must not overwrite the snapshot's
        /// [`SiteState::complete`].
        truth: bool,
    },
    /// Open failed (tolerated) or was budget-skipped: one empty chunk.
    Empty { served: bool },
}

/// Drain one abandoned site to completion, appending whatever is still
/// in flight to its delivered buffer — the same budget-truncation and
/// tolerated-fault rules as [`SiteStream::next_batch`], minus the
/// downstream delivery and the (already fired) trigger.
fn drain_site(
    mode: &Rc<RefCell<SiteMode>>,
    state: &Rc<RefCell<SiteState>>,
    budget_deadline: Option<Instant>,
    partial: bool,
) -> Result<()> {
    let mut mode = mode.borrow_mut();
    loop {
        match &mut *mode {
            SiteMode::Empty { served } => {
                *served = true;
                return Ok(());
            }
            SiteMode::Whole { source, truth } => match source.next_batch()? {
                Some(b) => {
                    let mut st = state.borrow_mut();
                    st.tuples += b.len();
                    st.delivered.push(b);
                }
                None => {
                    if *truth {
                        state.borrow_mut().complete = true;
                    }
                    return Ok(());
                }
            },
            SiteMode::Remote {
                stream,
                pending,
                done,
            } => {
                if *done {
                    return Ok(());
                }
                if let Some(b) = pending.take() {
                    let mut st = state.borrow_mut();
                    st.tuples += b.len();
                    st.bytes += b.byte_width();
                    st.delivered.push(b);
                    continue;
                }
                if budget_deadline.is_some_and(|d| Instant::now() >= d) {
                    *done = true;
                    let mut st = state.borrow_mut();
                    st.failed = true;
                    st.budget_skipped = true;
                    st.comm_ms = stream.comm_ms();
                    return Ok(());
                }
                let before = Instant::now();
                match stream.next_chunk() {
                    Ok(Some(chunk)) => {
                        let mut st = state.borrow_mut();
                        st.wall_ms += before.elapsed().as_secs_f64() * 1e3;
                        st.tuples += chunk.batch.len();
                        st.bytes += chunk.batch.byte_width();
                        st.comm_ms = stream.comm_ms();
                        st.delivered.push(chunk.batch);
                    }
                    Ok(None) => {
                        *done = true;
                        let mut st = state.borrow_mut();
                        st.wall_ms += before.elapsed().as_secs_f64() * 1e3;
                        st.comm_ms = stream.comm_ms();
                        if let Some(stats) = stream.stats() {
                            st.stats = stats;
                            st.pages = Some(stats.pages_read);
                            st.first_ms = Some(stats.time_first_ms + stream.first_frame_comm_ms());
                            st.complete = true;
                        }
                        return Ok(());
                    }
                    Err(e) if partial && e.is_transient() => {
                        *done = true;
                        let mut st = state.borrow_mut();
                        st.failed = true;
                        st.comm_ms = stream.comm_ms();
                        return Ok(());
                    }
                    Err(e) => return Err(e),
                }
            }
        }
    }
}

/// Snapshot of the accounting fields a rebuilt materialized source
/// cannot reconstruct, captured from the abandoned live site and
/// restored onto the re-driven tree's fresh [`SiteState`].
struct ReplaySnap {
    failed: bool,
    budget_skipped: bool,
    hedges: u32,
    attempts: u32,
    pages: Option<u64>,
    first_ms: Option<f64>,
    bytes: u64,
    complete: bool,
}

/// Materialized subanswers keyed by submit site for the re-drive — the
/// streaming counterpart of [`FetchPool`]: the re-planned order permutes
/// sites, the pool hands each one the subanswer its wrapper already
/// shipped.
struct ReplayPool {
    entries: Vec<(String, Option<(OpenedSite, ReplaySnap)>)>,
}

impl ReplayPool {
    fn new(
        sites: &[SubmitSite<'_>],
        states: &[Rc<RefCell<SiteState>>],
        schemas: &[Schema],
    ) -> Result<Self> {
        let mut entries = Vec::with_capacity(sites.len());
        for ((site, state), schema) in sites.iter().zip(states).zip(schemas) {
            let st = state.borrow();
            let refs: Vec<&Batch> = st.delivered.iter().collect();
            let batch = if refs.is_empty() {
                Batch::empty(schema.arity())
            } else {
                Batch::concat(&refs)?
            };
            let opened = OpenedSite {
                outcome: Ok(OpenedSource::Whole {
                    answer: BatchAnswer {
                        schema: schema.clone(),
                        batch,
                        stats: st.stats,
                    },
                    comm_ms: st.comm_ms,
                    wall_ms: st.wall_ms,
                    attempts: st.attempts,
                    served_by: st.served_by.clone(),
                }),
                budget_skipped: st.budget_skipped,
            };
            let snap = ReplaySnap {
                failed: st.failed,
                budget_skipped: st.budget_skipped,
                hedges: st.hedges,
                attempts: st.attempts,
                pages: st.pages,
                first_ms: st.first_ms,
                bytes: st.bytes,
                complete: st.complete,
            };
            entries.push((pool_key(site.wrapper, site.plan), Some((opened, snap))));
        }
        Ok(ReplayPool { entries })
    }

    fn take(&mut self, wrapper: &str, plan: &LogicalPlan) -> Result<(OpenedSite, ReplaySnap)> {
        let key = pool_key(wrapper, plan);
        self.entries
            .iter_mut()
            .find(|(k, e)| *k == key && e.is_some())
            .and_then(|(_, e)| e.take())
            .ok_or_else(|| {
                DiscoError::Exec(format!(
                    "re-planned order references unfetched submit site `{wrapper}`"
                ))
            })
    }
}

/// Source adapter: serves one submit site's chunks into the operator
/// tree while keeping its [`SiteState`] current — including budget
/// truncation (stop pulling, keep the rows already delivered) and
/// tolerated mid-stream faults. The mode handle is shared with the
/// [`StreamCtx`] so an adaptive re-plan can keep draining the source
/// after the operator tree (and this adapter) is dropped.
struct SiteStream {
    schema: Schema,
    state: Rc<RefCell<SiteState>>,
    mode: Rc<RefCell<SiteMode>>,
    budget_deadline: Option<Instant>,
    partial: bool,
    /// Armed for adaptive executions: buffer delivered chunks and raise
    /// [`DiscoError::Replan`] on a bad-enough cardinality misestimate.
    trigger: Option<Rc<StreamTrigger>>,
}

impl SiteStream {
    /// Record a delivered chunk against the site state; with a trigger
    /// armed, also buffer it and run the mid-stream underestimate check.
    fn deliver(&self, b: &Batch, st: &mut SiteState) -> Result<()> {
        st.tuples += b.len();
        if let Some(t) = &self.trigger {
            st.delivered.push(b.clone());
            t.fire_if_exceeded(st.predicted_rows, st.tuples as f64)?;
        }
        Ok(())
    }

    /// End-of-stream: the measured cardinality is final, so an armed
    /// trigger may now confirm an overestimate too.
    fn finish(&self, st: &SiteState) -> Result<()> {
        match &self.trigger {
            Some(t) => t.fire_if_wrong(st.predicted_rows, st.tuples as f64),
            None => Ok(()),
        }
    }
}

impl BatchStream for SiteStream {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        let mode = Rc::clone(&self.mode);
        let mut mode = mode.borrow_mut();
        match &mut *mode {
            SiteMode::Empty { served } => {
                if *served {
                    return Ok(None);
                }
                *served = true;
                Ok(Some(Batch::empty(self.schema.arity())))
            }
            SiteMode::Whole { source, truth } => match source.next_batch()? {
                None => {
                    let mut st = self.state.borrow_mut();
                    if *truth {
                        st.complete = true;
                        self.finish(&st)?;
                    }
                    Ok(None)
                }
                Some(b) => {
                    self.deliver(&b, &mut self.state.borrow_mut())?;
                    Ok(Some(b))
                }
            },
            SiteMode::Remote {
                stream,
                pending,
                done,
            } => {
                if *done {
                    return Ok(None);
                }
                if let Some(b) = pending.take() {
                    let mut st = self.state.borrow_mut();
                    st.bytes += b.byte_width();
                    self.deliver(&b, &mut st)?;
                    return Ok(Some(b));
                }
                // The query budget expired mid-stream: truncate here,
                // keeping the rows already delivered downstream.
                if self.budget_deadline.is_some_and(|d| Instant::now() >= d) {
                    *done = true;
                    let mut st = self.state.borrow_mut();
                    st.failed = true;
                    st.budget_skipped = true;
                    st.comm_ms = stream.comm_ms();
                    return Ok(None);
                }
                let before = Instant::now();
                match stream.next_chunk() {
                    Ok(Some(chunk)) => {
                        let mut st = self.state.borrow_mut();
                        st.wall_ms += before.elapsed().as_secs_f64() * 1e3;
                        st.bytes += chunk.batch.byte_width();
                        st.comm_ms = stream.comm_ms();
                        self.deliver(&chunk.batch, &mut st)?;
                        Ok(Some(chunk.batch))
                    }
                    Ok(None) => {
                        *done = true;
                        let mut st = self.state.borrow_mut();
                        st.wall_ms += before.elapsed().as_secs_f64() * 1e3;
                        st.comm_ms = stream.comm_ms();
                        if let Some(stats) = stream.stats() {
                            st.stats = stats;
                            st.pages = Some(stats.pages_read);
                            st.first_ms = Some(stats.time_first_ms + stream.first_frame_comm_ms());
                            st.complete = true;
                        }
                        self.finish(&st)?;
                        Ok(None)
                    }
                    Err(e) if self.partial && e.is_transient() => {
                        // The stream died after delivering rows: degrade
                        // to a partial answer with what already arrived.
                        *done = true;
                        let mut st = self.state.borrow_mut();
                        st.failed = true;
                        st.comm_ms = stream.comm_ms();
                        Ok(None)
                    }
                    Err(e) => Err(e),
                }
            }
        }
    }
}

/// Row-counting pass-through wrapped around every streaming operator.
struct CountedStream {
    inner: Box<dyn BatchStream>,
    rows: Rc<Cell<u64>>,
}

impl BatchStream for CountedStream {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        let b = self.inner.next_batch()?;
        if let Some(b) = &b {
            self.rows.set(self.rows.get() + b.len() as u64);
        }
        Ok(b)
    }
}

/// Parallel accounting tree mirroring the plan: per-node virtual-clock
/// charges and output rows, folded into [`MeasuredNode`]s after the
/// pull loop using the cumulative-time convention of the two-phase
/// path.
struct TallyNode {
    operator: String,
    charge: Rc<Cell<f64>>,
    rows: Rc<Cell<u64>>,
    site: Option<Rc<RefCell<SiteState>>>,
    children: Vec<TallyNode>,
}

/// A meter charging both the shared clock and one node's tally.
fn meter_for(clock: &Rc<RefCell<VirtualClock>>, charge: &Rc<Cell<f64>>) -> vstream::Meter {
    let clock = Rc::clone(clock);
    let charge = Rc::clone(charge);
    Rc::new(move |ms| {
        clock.borrow_mut().charge(ms);
        charge.set(charge.get() + ms);
    })
}

/// Wrap an operator stream with its row counter and build its tally.
fn counted(
    inner: Box<dyn BatchStream>,
    operator: String,
    charge: Rc<Cell<f64>>,
    site: Option<Rc<RefCell<SiteState>>>,
    children: Vec<TallyNode>,
) -> (Box<dyn BatchStream>, TallyNode) {
    let rows = Rc::new(Cell::new(0));
    let tally = TallyNode {
        operator,
        charge,
        rows: Rc::clone(&rows),
        site,
        children,
    };
    (Box::new(CountedStream { inner, rows }), tally)
}

/// Fold a tally tree into measured nodes. Returns the node and its
/// cumulative simulated time (subtree charges plus wrapper and
/// communication time — the same convention as the two-phase walk).
fn measured_from_tally(t: &TallyNode) -> (MeasuredNode, f64) {
    let mut children = Vec::new();
    let mut cum = 0.0;
    for c in &t.children {
        let (node, ms) = measured_from_tally(c);
        cum += ms;
        children.push(node);
    }
    let (submit_extra, failed, pages, first) =
        t.site.as_ref().map_or((0.0, false, None, None), |s| {
            let s = s.borrow();
            (
                s.stats.elapsed_ms + s.comm_ms,
                s.failed,
                s.pages,
                s.first_ms,
            )
        });
    cum += t.charge.get() + submit_extra;
    (
        MeasuredNode {
            operator: t.operator.clone(),
            rows: t.rows.get(),
            elapsed_ms: cum,
            failed,
            pages,
            first_row_ms: first,
            children,
        },
        cum,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_algebra::{CompareOp, JoinPredicate, PlanBuilder, Predicate, SelectPredicate};
    use disco_common::{AttributeDef, DataType, QualifiedName, Value};
    use disco_sources::{CollectionBuilder, CostProfile, PagedStore};
    use disco_wrapper::SourceWrapper;

    fn wrappers() -> BTreeMap<String, Box<dyn Wrapper>> {
        let schema = Schema::new(vec![
            AttributeDef::new("id", DataType::Long),
            AttributeDef::new("v", DataType::Long),
        ]);
        let mut store = PagedStore::new("s", CostProfile::relational());
        store
            .add_collection(
                "T",
                CollectionBuilder::new(schema)
                    .rows((0..100i64).map(|i| vec![Value::Long(i), Value::Long(i % 7)]))
                    .object_size(16)
                    .index("id"),
            )
            .unwrap();
        let mut map: BTreeMap<String, Box<dyn Wrapper>> = BTreeMap::new();
        map.insert("s".into(), Box::new(SourceWrapper::new("s", store)));
        map
    }

    fn submit(v_max: i64) -> PhysicalPlan {
        let schema = Schema::new(vec![
            AttributeDef::new("id", DataType::Long),
            AttributeDef::new("v", DataType::Long),
        ]);
        let plan = PlanBuilder::scan(QualifiedName::new("s", "T"), schema.clone())
            .select("id", CompareOp::Lt, v_max)
            .build();
        PhysicalPlan::SubmitRemote {
            wrapper: "s".into(),
            schema: plan.output_schema().unwrap(),
            plan,
        }
    }

    fn run(plan: &PhysicalPlan) -> (Schema, Vec<disco_common::Tuple>, ExecutionTrace) {
        let w = wrappers();
        let reg = disco_core::RuleRegistry::with_default_model();
        // The registry must outlive the executor borrowing it.
        let exec = Executor::new(&w, &reg);
        exec.execute(plan).unwrap()
    }

    #[test]
    fn submit_executes_and_traces() {
        let (schema, tuples, trace) = run(&submit(10));
        assert_eq!(schema.arity(), 2);
        assert_eq!(tuples.len(), 10);
        assert_eq!(trace.submits.len(), 1);
        assert!(trace.submits[0].comm_ms > 0.0);
        assert!(!trace.submits[0].failed);
        assert_eq!(trace.submits[0].attempts, 1);
        assert!(trace.wrapper_ms > 0.0);
        assert!(trace.is_complete());
        // One submit: nothing to overlap, so all accountings agree.
        assert_eq!(trace.sequential_ms(), trace.parallel_ms());
        assert_eq!(trace.parallel_ms(), trace.predicted_parallel_ms());
    }

    #[test]
    fn analytic_parallel_prediction_takes_max() {
        let plan = PhysicalPlan::Union {
            left: Box::new(submit(80)),
            right: Box::new(submit(5)),
        };
        let (_, tuples, trace) = run(&plan);
        assert_eq!(tuples.len(), 85);
        let slow = trace
            .submits
            .iter()
            .map(|s| s.stats.elapsed_ms + s.comm_ms)
            .fold(0.0f64, f64::max);
        let sum: f64 = trace
            .submits
            .iter()
            .map(|s| s.stats.elapsed_ms + s.comm_ms)
            .sum();
        assert!((trace.predicted_parallel_ms() - (slow + trace.mediator_ms)).abs() < 1e-9);
        assert!((trace.sequential_ms() - (sum + trace.mediator_ms)).abs() < 1e-9);
        assert!(trace.predicted_parallel_ms() < trace.sequential_ms());
        // In-process submits never measure real concurrency: parallel_ms
        // stays the analytic prediction.
        assert!(!trace.concurrent);
        assert_eq!(trace.parallel_ms(), trace.predicted_parallel_ms());
    }

    #[test]
    fn local_parallel_fan_out_matches_sequential_results() {
        let plan = PhysicalPlan::Union {
            left: Box::new(submit(80)),
            right: Box::new(submit(5)),
        };
        let w = wrappers();
        let reg = disco_core::RuleRegistry::with_default_model();
        let exec = Executor::new(&w, &reg).with_parallel(true);
        let (_, tuples, trace) = exec.execute(&plan).unwrap();
        assert_eq!(tuples.len(), 85);
        assert_eq!(trace.submits.len(), 2);
        assert!(trace.submit_wall_ms >= 0.0);
        // Local backend: measured wall has no network in it, so the
        // analytic prediction remains authoritative.
        assert!(!trace.concurrent);
    }

    #[test]
    fn join_algorithms_agree_on_output() {
        let pred = JoinPredicate::equi("v", "v");
        let variants = [
            PhysicalJoinAlgo::Hash,
            PhysicalJoinAlgo::SortMerge,
            PhysicalJoinAlgo::NestedLoop,
        ];
        let mut sizes = Vec::new();
        for algo in variants {
            let plan = PhysicalPlan::Join {
                algo,
                left: Box::new(submit(10)),
                right: Box::new(submit(10)),
                predicate: pred.clone(),
            };
            let (_, tuples, _) = run(&plan);
            sizes.push(tuples.len());
        }
        assert_eq!(sizes[0], sizes[1]);
        assert_eq!(sizes[0], sizes[2]);
        assert!(sizes[0] > 0);
    }

    #[test]
    fn mediator_filter_sort_dedup_pipeline() {
        let filtered = PhysicalPlan::Filter {
            input: Box::new(submit(50)),
            predicate: Predicate::single(SelectPredicate::new("v", CompareOp::Eq, Value::Long(3))),
        };
        let deduped = PhysicalPlan::Dedup {
            input: Box::new(PhysicalPlan::Project {
                input: Box::new(filtered),
                columns: vec![("v".into(), disco_algebra::ScalarExpr::attr("v"))],
            }),
        };
        let sorted = PhysicalPlan::Sort {
            input: Box::new(deduped),
            keys: vec![("v".into(), true)],
        };
        let (_, tuples, trace) = run(&sorted);
        assert_eq!(tuples.len(), 1);
        assert_eq!(tuples[0].get(0).unwrap().as_i64(), Some(3));
        assert!(trace.mediator_ms > 0.0);
    }

    #[test]
    fn measured_tree_mirrors_plan_and_accounts_all_time() {
        let plan = PhysicalPlan::Join {
            algo: PhysicalJoinAlgo::Hash,
            left: Box::new(submit(10)),
            right: Box::new(submit(20)),
            predicate: JoinPredicate::equi("v", "v"),
        };
        let (_, tuples, trace) = run(&plan);
        let root = trace.measured.as_ref().expect("measured tree recorded");
        assert!(root.operator.starts_with("join"), "{}", root.operator);
        assert_eq!(root.rows as usize, tuples.len());
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].operator, "submit s");
        assert_eq!(root.children[0].rows, 10);
        assert_eq!(root.children[1].rows, 20);
        // Cumulative convention: the root's measured time is the whole
        // query's sequential time, children are strictly within it.
        assert!((root.elapsed_ms - trace.sequential_ms()).abs() < 1e-9);
        for c in &root.children {
            assert!(c.elapsed_ms > 0.0);
            assert!(c.elapsed_ms < root.elapsed_ms);
        }
    }

    #[test]
    fn streaming_matches_two_phase_on_combine_pipeline() {
        let pred = JoinPredicate::equi("v", "v");
        let plans = [
            submit(10),
            PhysicalPlan::Union {
                left: Box::new(submit(80)),
                right: Box::new(submit(5)),
            },
            PhysicalPlan::Join {
                algo: PhysicalJoinAlgo::Hash,
                left: Box::new(submit(10)),
                right: Box::new(submit(20)),
                predicate: pred.clone(),
            },
            PhysicalPlan::Sort {
                input: Box::new(PhysicalPlan::Dedup {
                    input: Box::new(PhysicalPlan::Project {
                        input: Box::new(submit(50)),
                        columns: vec![("v".into(), disco_algebra::ScalarExpr::attr("v"))],
                    }),
                }),
                keys: vec![("v".into(), true)],
            },
        ];
        let w = wrappers();
        let reg = disco_core::RuleRegistry::with_default_model();
        let exec = Executor::new(&w, &reg);
        for plan in &plans {
            let (s1, t1, tr1) = exec.execute(plan).unwrap();
            let (s2, t2, tr2) = exec.execute_streaming(plan, 7, None).unwrap();
            assert_eq!(s1, s2);
            assert_eq!(t1, t2);
            assert_eq!(tr1.submits.len(), tr2.submits.len());
            // Chunked metering sums the same analytic charges; allow
            // float reassociation noise.
            assert!((tr1.mediator_ms - tr2.mediator_ms).abs() < 1e-6);
            let m1 = tr1.measured.unwrap();
            let m2 = tr2.measured.unwrap();
            assert_eq!(m1.operator, m2.operator);
            assert_eq!(m1.rows, m2.rows);
            assert!((m1.elapsed_ms - m2.elapsed_ms).abs() < 1e-6);
        }
    }

    #[test]
    fn streaming_limit_truncates_answer() {
        let (schema, tuples, trace) = {
            let w = wrappers();
            let reg = disco_core::RuleRegistry::with_default_model();
            let exec = Executor::new(&w, &reg);
            exec.execute_streaming(&submit(50), 8, Some(5)).unwrap()
        };
        assert_eq!(schema.arity(), 2);
        assert_eq!(tuples.len(), 5);
        assert!(trace.first_row_wall_ms.is_some());
        assert!(trace.is_complete());
    }

    #[test]
    fn streaming_records_first_row_time_per_submit() {
        let w = wrappers();
        let reg = disco_core::RuleRegistry::with_default_model();
        let exec = Executor::new(&w, &reg);
        let (_, _, trace) = exec.execute_streaming(&submit(10), 4, None).unwrap();
        assert_eq!(trace.submits.len(), 1);
        // In-process answers materialize whole: first-row time is the
        // wrapper's TimeFirst plus the full communication charge.
        let s = &trace.submits[0];
        assert!((s.first_ms - (s.stats.time_first_ms + s.comm_ms)).abs() < 1e-9);
        assert!(s.first_ms > 0.0);
        let m = trace.measured.unwrap();
        assert_eq!(m.children.len(), 0);
        assert_eq!(m.first_row_ms, Some(s.first_ms));
    }

    #[test]
    fn missing_wrapper_is_an_exec_error() {
        let w: BTreeMap<String, Box<dyn Wrapper>> = BTreeMap::new();
        let reg = disco_core::RuleRegistry::with_default_model();
        let exec = Executor::new(&w, &reg);
        let err = exec.execute(&submit(10)).unwrap_err();
        assert_eq!(err.kind(), "exec");
    }

    #[test]
    fn missing_wrapper_is_not_masked_by_partial_answers() {
        // Partial answers cover *transient* transport failures; a plan
        // naming an unregistered wrapper is a configuration bug and must
        // stay loud.
        let w: BTreeMap<String, Box<dyn Wrapper>> = BTreeMap::new();
        let reg = disco_core::RuleRegistry::with_default_model();
        let exec = Executor::new(&w, &reg).with_partial_answers(true);
        let err = exec.execute(&submit(10)).unwrap_err();
        assert_eq!(err.kind(), "exec");
    }
}

//! The DISCO mediator (paper §2).
//!
//! The mediator accepts declarative queries ("written in simple
//! object/relational SQL", §2.2), decomposes them into algebraic
//! subqueries — one per wrapper — plus a composition plan, optimizes the
//! decomposition with the blended cost model of `disco-core`, executes the
//! best plan by submitting subqueries to wrappers, and combines the
//! subanswers.
//!
//! Modules:
//!
//! * [`sql`] — lexer, AST and parser for the query language;
//! * [`analyze`] — name resolution against the catalog, predicate
//!   classification (selections vs joins), output/aggregate validation;
//! * [`optimizer`] — pushdown enumeration and dynamic-programming join
//!   ordering, costed by the blended estimator; optional cost-limit
//!   pruning (§4.3.2);
//! * [`executor`] — pull-style execution: submit subqueries, combine
//!   subanswers, account mediator-side virtual time;
//! * [`adaptive`] — mid-query re-optimization: when measured subanswer
//!   cardinalities contradict the optimizer's predictions, re-enumerate
//!   the combine plan with corrected cardinalities and abandon the
//!   running order for a cheaper one (runtime §4.3.2);
//! * [`mediator`] — the facade tying registration (Figure 1) and query
//!   processing (Figure 2) together;
//! * [`serving`] — the multi-tenant serving layer: a shared concurrent
//!   mediator with a decision-replay plan cache and cost-driven
//!   admission control.

pub mod adaptive;
pub mod analyze;
pub mod executor;
pub mod mediator;
pub mod optimizer;
pub mod serving;
pub mod sql;

pub use adaptive::{AdaptivePolicy, ReplanEvent, Replanner, SiteObservation};
pub use analyze::{AnalyzedQuery, TableBinding};
pub use disco_transport::ResiliencePolicy;
pub use executor::{ExecutionTrace, Executor, QueryResult, SitePrediction, SubmitTrace};
pub use mediator::{AnalyzeReport, Mediator, MediatorOptions};
pub use optimizer::{
    to_logical, JoinEnumeration, OptimizedPlan, Optimizer, OptimizerOptions, PlanDecisions,
};
pub use serving::{
    AdmissionController, AdmissionPermit, AdmissionPolicy, PlanCacheStats, PlanSource, QueryClass,
    ServedQuery, SharedMediator,
};
pub use sql::{parse_query, parse_statement, Statement};

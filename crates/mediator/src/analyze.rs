//! Semantic analysis: resolve a parsed query against the catalog.
//!
//! Produces the mediator's internal form: table bindings, per-table
//! selections, cross-table join conditions, the final projection (over
//! `alias.column`-qualified names, which keeps attribute names unique
//! after joins), optional aggregation, and per-table column requirements
//! (for projection pushdown).

use disco_algebra::expr::ArithOp;
use disco_algebra::logical::AggExpr;
use disco_algebra::{CompareOp, ScalarExpr, SelectPredicate};
use disco_catalog::Catalog;
use disco_common::{DiscoError, QualifiedName, Result, Schema};

use crate::sql::{ArithTok, ColRef, Condition, Query, SqlExpr};

/// One FROM-clause table resolved against the catalog.
#[derive(Debug, Clone, PartialEq)]
pub struct TableBinding {
    /// Alias (or collection name) used to qualify columns.
    pub alias: String,
    /// Registered collection address.
    pub qname: QualifiedName,
    /// The collection's schema (raw attribute names).
    pub schema: Schema,
}

/// A cross-table join condition (raw attribute names on both sides).
#[derive(Debug, Clone, PartialEq)]
pub struct JoinCond {
    pub left_table: usize,
    pub left_attr: String,
    pub op: CompareOp,
    pub right_table: usize,
    pub right_attr: String,
}

/// The analyzed query.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzedQuery {
    pub tables: Vec<TableBinding>,
    /// Per-table restrictions, raw attribute names.
    pub selections: Vec<(usize, SelectPredicate)>,
    /// Cross-table joins.
    pub joins: Vec<JoinCond>,
    /// Final projection over qualified (`alias.column`) names.
    pub output: Vec<(String, ScalarExpr)>,
    /// Group-by keys (qualified names); meaningful when `aggs` is
    /// non-empty or `group_by` was written explicitly.
    pub group_by: Vec<String>,
    /// Aggregate outputs (arguments use qualified names).
    pub aggs: Vec<AggExpr>,
    pub distinct: bool,
    /// Order-by over *output* column names.
    pub order_by: Vec<(String, bool)>,
    /// `LIMIT n` cap on the answer, if written.
    pub limit: Option<u64>,
    /// Raw columns needed from each table (projection pushdown).
    pub needed: Vec<Vec<String>>,
    /// Join-graph adjacency as bitsets: bit `j` of `adjacency[i]` is set
    /// when a join condition connects tables `i` and `j`. Lets the
    /// optimizer's enumerators test connectivity against a table subset
    /// in O(1) instead of scanning the join list per candidate.
    pub adjacency: Vec<u64>,
}

impl AnalyzedQuery {
    /// `true` when the query aggregates.
    pub fn is_aggregate(&self) -> bool {
        !self.aggs.is_empty() || !self.group_by.is_empty()
    }

    /// Tables (as a bitset) joined to at least one table of `subset`.
    pub fn adjacent_to(&self, subset: u64) -> u64 {
        let mut adj = 0u64;
        for (i, &m) in self.adjacency.iter().enumerate() {
            if subset & (1 << i) != 0 {
                adj |= m;
            }
        }
        adj & !subset
    }
}

/// Bitset adjacency over the join conditions; errors beyond 64 tables
/// (far past anything the optimizer enumerates).
fn build_adjacency(n_tables: usize, joins: &[JoinCond]) -> Result<Vec<u64>> {
    if n_tables > 64 {
        return Err(DiscoError::Unsupported(format!(
            "queries over more than 64 tables are not supported ({n_tables} given)"
        )));
    }
    let mut adjacency = vec![0u64; n_tables];
    for j in joins {
        adjacency[j.left_table] |= 1 << j.right_table;
        adjacency[j.right_table] |= 1 << j.left_table;
    }
    Ok(adjacency)
}

/// Analyze a parsed query against the catalog.
pub fn analyze(query: &Query, catalog: &Catalog) -> Result<AnalyzedQuery> {
    // --- FROM: resolve tables -----------------------------------------
    let mut tables: Vec<TableBinding> = Vec::with_capacity(query.from.len());
    for t in &query.from {
        let qname = match &t.wrapper {
            Some(w) => {
                let q = QualifiedName::new(w.clone(), t.collection.clone());
                catalog.collection(&q)?;
                q
            }
            None => catalog.resolve(&t.collection)?,
        };
        let schema = catalog.collection(&qname)?.schema.clone();
        let alias = t.binding_name().to_owned();
        if tables.iter().any(|b| b.alias == alias) {
            return Err(DiscoError::Catalog(format!(
                "duplicate table alias `{alias}` in FROM"
            )));
        }
        tables.push(TableBinding {
            alias,
            qname,
            schema,
        });
    }

    let resolver = Resolver { tables: &tables };

    // --- WHERE: classify conditions ------------------------------------
    let mut selections = Vec::new();
    let mut joins = Vec::new();
    for cond in &query.where_ {
        match cond {
            Condition::Restriction { col, op, value } => {
                let (t, attr) = resolver.resolve(col)?;
                selections.push((t, SelectPredicate::new(attr, *op, value.clone())));
            }
            Condition::ColCompare { left, op, right } => {
                let (lt, la) = resolver.resolve(left)?;
                let (rt, ra) = resolver.resolve(right)?;
                if lt == rt {
                    return Err(DiscoError::Unsupported(format!(
                        "same-table column comparison `{left} {op} {right}` is not supported"
                    )));
                }
                // Normalize so left_table < right_table.
                let jc = if lt < rt {
                    JoinCond {
                        left_table: lt,
                        left_attr: la,
                        op: *op,
                        right_table: rt,
                        right_attr: ra,
                    }
                } else {
                    JoinCond {
                        left_table: rt,
                        left_attr: ra,
                        op: op.flipped(),
                        right_table: lt,
                        right_attr: la,
                    }
                };
                joins.push(jc);
            }
        }
    }

    // --- SELECT list ----------------------------------------------------
    let mut output: Vec<(String, ScalarExpr)> = Vec::new();
    let mut aggs: Vec<AggExpr> = Vec::new();
    let group_by: Vec<String> = query
        .group_by
        .iter()
        .map(|c| resolver.qualified(c))
        .collect::<Result<_>>()?;

    match &query.select {
        None => {
            // SELECT *: every column of every table; bare names when
            // unique, qualified otherwise.
            for (ti, b) in tables.iter().enumerate() {
                for a in b.schema.attributes() {
                    let unique = tables
                        .iter()
                        .enumerate()
                        .filter(|(tj, o)| *tj != ti && o.schema.index_of(&a.name).is_some())
                        .count()
                        == 0;
                    let out_name = if unique {
                        a.name.clone()
                    } else {
                        format!("{}.{}", b.alias, a.name)
                    };
                    let qualified = format!("{}.{}", b.alias, a.name);
                    output.push((out_name, ScalarExpr::attr(qualified)));
                }
            }
            if !group_by.is_empty() {
                return Err(DiscoError::Unsupported(
                    "SELECT * cannot be combined with GROUP BY".into(),
                ));
            }
        }
        Some(items) => {
            let has_agg = items.iter().any(|i| matches!(i.expr, SqlExpr::Agg(..)));
            for (i, item) in items.iter().enumerate() {
                match &item.expr {
                    SqlExpr::Agg(func, arg) => {
                        let arg_q = match arg {
                            Some(c) => Some(resolver.qualified(c)?),
                            None => None,
                        };
                        let name = item.alias.clone().unwrap_or_else(|| match &arg_q {
                            Some(a) => format!("{}_{}", func.name(), a.replace('.', "_")),
                            None => func.name().to_owned(),
                        });
                        aggs.push(AggExpr {
                            name: name.clone(),
                            func: *func,
                            arg: arg_q,
                        });
                        // Projection keeps the aggregate output by name.
                        output.push((name.clone(), ScalarExpr::attr(name)));
                    }
                    expr => {
                        let scalar = resolver.scalar(expr)?;
                        let name = item.alias.clone().unwrap_or_else(|| match expr {
                            SqlExpr::Col(c) => c.column.clone(),
                            _ => format!("col{}", i + 1),
                        });
                        if has_agg || !group_by.is_empty() {
                            // Non-aggregate items must be group-by keys.
                            let q = match expr {
                                SqlExpr::Col(c) => resolver.qualified(c)?,
                                _ => {
                                    return Err(DiscoError::Unsupported(
                                        "non-column expressions beside aggregates must appear \
                                         in GROUP BY"
                                            .into(),
                                    ))
                                }
                            };
                            if !group_by.contains(&q) {
                                return Err(DiscoError::Plan(format!(
                                    "`{q}` appears in SELECT but not in GROUP BY"
                                )));
                            }
                            output.push((name, ScalarExpr::attr(q)));
                        } else {
                            output.push((name, scalar));
                        }
                    }
                }
            }
            if !group_by.is_empty() && !has_agg && aggs.is_empty() {
                // GROUP BY without aggregates behaves like DISTINCT on keys;
                // model with a count we drop at projection time? Keep strict:
                return Err(DiscoError::Unsupported(
                    "GROUP BY without aggregates is not supported; use DISTINCT".into(),
                ));
            }
        }
    }

    // Duplicate output names are ambiguous downstream.
    for (i, (n, _)) in output.iter().enumerate() {
        if output.iter().skip(i + 1).any(|(m, _)| m == n) {
            return Err(DiscoError::Plan(format!("duplicate output column `{n}`")));
        }
    }

    // --- ORDER BY: must name an output column ---------------------------
    let mut order_by = Vec::new();
    for (col, asc) in &query.order_by {
        let name = resolve_order_col(col, &output, &resolver)?;
        order_by.push((name, *asc));
    }

    // --- needed columns per table ---------------------------------------
    let mut needed: Vec<Vec<String>> = vec![Vec::new(); tables.len()];
    let need = |t: usize, col: &str, needed: &mut Vec<Vec<String>>| {
        if !needed[t].iter().any(|c| c == col) {
            needed[t].push(col.to_owned());
        }
    };
    for (t, p) in &selections {
        need(*t, &p.attribute, &mut needed);
    }
    for j in &joins {
        need(j.left_table, &j.left_attr, &mut needed);
        need(j.right_table, &j.right_attr, &mut needed);
    }
    // Qualified references in output, group-by and aggregates.
    let mut qualified_refs: Vec<String> = Vec::new();
    for (_, e) in &output {
        let mut attrs = Vec::new();
        e.collect_attrs(&mut attrs);
        qualified_refs.extend(attrs.iter().map(|s| (*s).to_owned()));
    }
    qualified_refs.extend(group_by.iter().cloned());
    qualified_refs.extend(aggs.iter().filter_map(|a| a.arg.clone()));
    for q in qualified_refs {
        if let Some((alias, col)) = q.split_once('.') {
            if let Some(t) = tables.iter().position(|b| b.alias == alias) {
                if tables[t].schema.index_of(col).is_some() {
                    need(t, col, &mut needed);
                }
            }
        }
    }

    let adjacency = build_adjacency(tables.len(), &joins)?;
    Ok(AnalyzedQuery {
        tables,
        selections,
        joins,
        output,
        group_by,
        aggs,
        distinct: query.distinct,
        order_by,
        limit: query.limit,
        needed,
        adjacency,
    })
}

fn resolve_order_col(
    col: &ColRef,
    output: &[(String, ScalarExpr)],
    resolver: &Resolver<'_>,
) -> Result<String> {
    // A bare name matching an output column wins.
    if col.table.is_none() && output.iter().any(|(n, _)| *n == col.column) {
        return Ok(col.column.clone());
    }
    // Otherwise the column must be projected; find the output whose
    // expression is exactly that attribute.
    let q = resolver.qualified(col)?;
    if let Some((name, _)) = output
        .iter()
        .find(|(_, e)| matches!(e, ScalarExpr::Attr(a) if *a == q))
    {
        return Ok(name.clone());
    }
    Err(DiscoError::Plan(format!(
        "ORDER BY column `{col}` must appear in the SELECT list"
    )))
}

struct Resolver<'a> {
    tables: &'a [TableBinding],
}

impl Resolver<'_> {
    /// Resolve to `(table index, raw attribute name)`.
    fn resolve(&self, col: &ColRef) -> Result<(usize, String)> {
        match &col.table {
            Some(alias) => {
                let t = self
                    .tables
                    .iter()
                    .position(|b| b.alias == *alias)
                    .ok_or_else(|| DiscoError::Catalog(format!("unknown table alias `{alias}`")))?;
                if self.tables[t].schema.index_of(&col.column).is_none() {
                    return Err(DiscoError::Catalog(format!(
                        "collection `{}` has no attribute `{}`",
                        self.tables[t].qname, col.column
                    )));
                }
                Ok((t, col.column.clone()))
            }
            None => {
                let matches: Vec<usize> = self
                    .tables
                    .iter()
                    .enumerate()
                    .filter(|(_, b)| b.schema.index_of(&col.column).is_some())
                    .map(|(i, _)| i)
                    .collect();
                match matches.as_slice() {
                    [t] => Ok((*t, col.column.clone())),
                    [] => Err(DiscoError::Catalog(format!(
                        "unknown column `{}`",
                        col.column
                    ))),
                    _ => Err(DiscoError::Catalog(format!(
                        "column `{}` is ambiguous across tables; qualify it",
                        col.column
                    ))),
                }
            }
        }
    }

    /// Fully qualified (`alias.column`) name.
    fn qualified(&self, col: &ColRef) -> Result<String> {
        let (t, attr) = self.resolve(col)?;
        Ok(format!("{}.{attr}", self.tables[t].alias))
    }

    /// Convert a scalar SQL expression (no aggregates) to a plan
    /// expression over qualified names.
    fn scalar(&self, e: &SqlExpr) -> Result<ScalarExpr> {
        match e {
            SqlExpr::Col(c) => Ok(ScalarExpr::attr(self.qualified(c)?)),
            SqlExpr::Const(v) => Ok(ScalarExpr::Const(v.clone())),
            SqlExpr::Agg(..) => Err(DiscoError::Unsupported(
                "aggregates cannot be nested inside expressions".into(),
            )),
            SqlExpr::Arith { op, left, right } => Ok(ScalarExpr::Binary {
                op: match op {
                    ArithTok::Add => ArithOp::Add,
                    ArithTok::Sub => ArithOp::Sub,
                    ArithTok::Mul => ArithOp::Mul,
                    ArithTok::Div => ArithOp::Div,
                },
                left: Box::new(self.scalar(left)?),
                right: Box::new(self.scalar(right)?),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parse_query;
    use disco_catalog::{Capabilities, CollectionStats, ExtentStats};
    use disco_common::{AttributeDef, DataType};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register_wrapper("hr", Capabilities::full()).unwrap();
        c.register_wrapper("fin", Capabilities::full()).unwrap();
        c.register_collection(
            "hr",
            "Employee",
            Schema::new(vec![
                AttributeDef::new("id", DataType::Long),
                AttributeDef::new("name", DataType::Str),
                AttributeDef::new("salary", DataType::Long),
                AttributeDef::new("dept_id", DataType::Long),
            ]),
            CollectionStats::new(ExtentStats::of(1000, 64)),
        )
        .unwrap();
        c.register_collection(
            "fin",
            "Dept",
            Schema::new(vec![
                AttributeDef::new("id", DataType::Long),
                AttributeDef::new("budget", DataType::Long),
            ]),
            CollectionStats::new(ExtentStats::of(50, 32)),
        )
        .unwrap();
        c
    }

    fn analyze_str(sql: &str) -> Result<AnalyzedQuery> {
        analyze(&parse_query(sql).unwrap(), &catalog())
    }

    #[test]
    fn resolves_tables_selections_joins() {
        let a = analyze_str(
            "SELECT e.name FROM Employee e, Dept d WHERE e.dept_id = d.id AND e.salary > 100",
        )
        .unwrap();
        assert_eq!(a.tables.len(), 2);
        assert_eq!(a.tables[0].qname, QualifiedName::new("hr", "Employee"));
        assert_eq!(a.tables[1].qname, QualifiedName::new("fin", "Dept"));
        assert_eq!(a.selections.len(), 1);
        assert_eq!(a.selections[0].0, 0);
        assert_eq!(a.joins.len(), 1);
        let j = &a.joins[0];
        assert_eq!((j.left_table, j.right_table), (0, 1));
        assert_eq!(j.left_attr, "dept_id");
        // Needed columns include join + selection + output attributes.
        assert!(a.needed[0].contains(&"name".to_string()));
        assert!(a.needed[0].contains(&"dept_id".to_string()));
        assert!(a.needed[0].contains(&"salary".to_string()));
        assert_eq!(a.needed[1], vec!["id".to_string()]);
    }

    #[test]
    fn adjacency_bitsets_mirror_join_graph() {
        let a = analyze_str(
            "SELECT e.name FROM Employee e, Dept d WHERE e.dept_id = d.id AND e.salary > 100",
        )
        .unwrap();
        assert_eq!(a.adjacency, vec![0b10, 0b01]);
        // Neighbours of {e} are {d} and vice versa; the union has none.
        assert_eq!(a.adjacent_to(0b01), 0b10);
        assert_eq!(a.adjacent_to(0b10), 0b01);
        assert_eq!(a.adjacent_to(0b11), 0);
    }

    #[test]
    fn join_condition_normalized() {
        // Written right-to-left: d.id = e.dept_id.
        let a =
            analyze_str("SELECT e.name FROM Employee e, Dept d WHERE d.id = e.dept_id").unwrap();
        let j = &a.joins[0];
        assert_eq!(j.left_table, 0);
        assert_eq!(j.left_attr, "dept_id");
        assert_eq!(j.right_attr, "id");
    }

    #[test]
    fn unqualified_unique_columns_resolve() {
        let a = analyze_str("SELECT name FROM Employee e WHERE salary > 10").unwrap();
        assert_eq!(a.output[0].0, "name");
        // `id` exists in both tables → ambiguous.
        let e = analyze_str("SELECT id FROM Employee e, Dept d WHERE e.dept_id = d.id");
        assert!(e.unwrap_err().message().contains("ambiguous"));
    }

    #[test]
    fn select_star_qualifies_duplicates() {
        let a = analyze_str("SELECT * FROM Employee e, Dept d WHERE e.dept_id = d.id").unwrap();
        assert_eq!(a.output.len(), 6);
        // `id` appears in both → qualified; `name` unique → bare.
        assert!(a.output.iter().any(|(n, _)| n == "e.id"));
        assert!(a.output.iter().any(|(n, _)| n == "d.id"));
        assert!(a.output.iter().any(|(n, _)| n == "name"));
    }

    #[test]
    fn aggregates_with_group_by() {
        let a = analyze_str(
            "SELECT d.id, COUNT(*) AS n, SUM(e.salary) FROM Employee e, Dept d \
             WHERE e.dept_id = d.id GROUP BY d.id",
        )
        .unwrap();
        assert!(a.is_aggregate());
        assert_eq!(a.group_by, vec!["d.id".to_string()]);
        assert_eq!(a.aggs.len(), 2);
        assert_eq!(a.aggs[0].name, "n");
        assert_eq!(a.aggs[1].arg.as_deref(), Some("e.salary"));
        assert_eq!(a.output.len(), 3);
    }

    #[test]
    fn non_grouped_select_item_rejected() {
        let e = analyze_str(
            "SELECT e.name, COUNT(*) FROM Employee e, Dept d WHERE e.dept_id = d.id \
             GROUP BY d.id",
        );
        assert!(e.unwrap_err().message().contains("GROUP BY"));
    }

    #[test]
    fn order_by_output_names() {
        let a = analyze_str("SELECT e.name AS who FROM Employee e ORDER BY who").unwrap();
        assert_eq!(a.order_by, vec![("who".to_string(), true)]);
        let a = analyze_str("SELECT e.name FROM Employee e ORDER BY e.name DESC").unwrap();
        assert_eq!(a.order_by, vec![("name".to_string(), false)]);
        let e = analyze_str("SELECT e.name FROM Employee e ORDER BY e.salary");
        assert!(e.is_err());
    }

    #[test]
    fn same_table_compare_rejected() {
        let e = analyze_str("SELECT e.name FROM Employee e WHERE e.id = e.dept_id");
        assert_eq!(e.unwrap_err().kind(), "unsupported");
    }

    #[test]
    fn duplicate_alias_rejected() {
        let e = analyze_str("SELECT 1 FROM Employee e, Dept e");
        assert!(e.unwrap_err().message().contains("duplicate"));
    }

    #[test]
    fn wrapper_qualified_table() {
        let a = analyze_str("SELECT name FROM hr.Employee").unwrap();
        assert_eq!(a.tables[0].qname.wrapper, "hr");
        assert!(analyze_str("SELECT name FROM fin.Employee").is_err());
    }

    #[test]
    fn expression_output() {
        let a = analyze_str("SELECT e.salary * 2 AS pay FROM Employee e").unwrap();
        assert_eq!(a.output[0].0, "pay");
        assert!(matches!(a.output[0].1, ScalarExpr::Binary { .. }));
        assert!(a.needed[0].contains(&"salary".to_string()));
    }
}

//! The mediator's query language: a classical conjunctive SQL subset.
//!
//! ```sql
//! SELECT e.name, d.budget * 2 AS double_budget
//! FROM hr.Employee e, Dept AS d
//! WHERE e.dept_id = d.id AND e.salary > 1000
//! ORDER BY e.name DESC
//! ```
//!
//! Supported: `SELECT [DISTINCT]` with expressions and aggregates
//! (`COUNT/SUM/AVG/MIN/MAX`), comma-style `FROM` with aliases and
//! optionally wrapper-qualified collection names, conjunctive `WHERE`
//! (`attr op constant` and `attr op attr` joins), `GROUP BY`, `ORDER BY`,
//! `LIMIT`. A `LIMIT` also signals the optimizer to prefer
//! `TimeFirst`-optimal plans and the executor to stream (see DESIGN.md
//! "Streaming execution").

use std::fmt;

use disco_algebra::{AggFunc, CompareOp};
use disco_common::{DiscoError, Result, Value};

/// A column reference, optionally qualified by a table alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColRef {
    pub table: Option<String>,
    pub column: String,
}

impl fmt::Display for ColRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => f.write_str(&self.column),
        }
    }
}

/// A scalar or aggregate expression in the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    Col(ColRef),
    Const(Value),
    /// Aggregate call; `None` argument means `count(*)`.
    Agg(AggFunc, Option<ColRef>),
    Arith {
        op: ArithTok,
        left: Box<SqlExpr>,
        right: Box<SqlExpr>,
    },
}

/// Arithmetic operators in select expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithTok {
    Add,
    Sub,
    Mul,
    Div,
}

/// One item of the select list.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    pub expr: SqlExpr,
    pub alias: Option<String>,
}

/// A table reference with optional wrapper qualification and alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// Wrapper name, when written `wrapper.Collection`.
    pub wrapper: Option<String>,
    pub collection: String,
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this table is referred to by in column qualifiers.
    pub fn binding_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.collection)
    }
}

/// One parsed WHERE conjunct. `BETWEEN` desugars to two
/// [`Condition::Restriction`]s during parsing, so this enum stays binary.
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// `col op constant`.
    Restriction {
        col: ColRef,
        op: CompareOp,
        value: Value,
    },
    /// `col op col` — a join (or same-table) comparison.
    ColCompare {
        left: ColRef,
        op: CompareOp,
        right: ColRef,
    },
}

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub distinct: bool,
    /// `None` = `SELECT *`.
    pub select: Option<Vec<SelectItem>>,
    pub from: Vec<TableRef>,
    pub where_: Vec<Condition>,
    pub group_by: Vec<ColRef>,
    pub order_by: Vec<(ColRef, bool)>,
    /// `LIMIT n` — cap on the number of answer tuples.
    pub limit: Option<u64>,
}

/// A full statement: one query, or a `UNION [ALL]` chain of queries with
/// an optional trailing `ORDER BY` applying to the combined result.
#[derive(Debug, Clone, PartialEq)]
pub struct Statement {
    /// The union branches, in order (a single-branch statement is a plain
    /// query).
    pub branches: Vec<Query>,
    /// `true` if every combining `UNION` was `UNION ALL` (bag semantics);
    /// any plain `UNION` makes the whole result set-semantics, per SQL.
    pub all: bool,
    /// Statement-level ordering over the combined output.
    pub order_by: Vec<(ColRef, bool)>,
    /// Statement-level cap on the combined output.
    pub limit: Option<u64>,
}

/// Parse a single query (no `UNION`).
pub fn parse_query(src: &str) -> Result<Query> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, i: 0 };
    let q = p.query()?;
    p.expect_eof()?;
    Ok(q)
}

/// Parse a full statement, including `UNION [ALL]` chains.
pub fn parse_statement(src: &str) -> Result<Statement> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, i: 0 };
    let mut branches = vec![p.query()?];
    let mut all = true;
    while p.eat_kw("UNION") {
        if !p.eat_kw("ALL") {
            all = false;
        }
        branches.push(p.query()?);
    }
    // In a union, ORDER BY and LIMIT belong to the statement;
    // Parser::query eagerly parses them into the last branch — lift
    // them out.
    let mut order_by = Vec::new();
    let mut limit = None;
    let n = branches.len();
    if n > 1 {
        for (i, b) in branches.iter_mut().enumerate() {
            if !b.order_by.is_empty() || b.limit.is_some() {
                if i + 1 != n {
                    return Err(DiscoError::Parse(
                        "ORDER BY / LIMIT may only follow the final UNION branch".into(),
                    ));
                }
                order_by = std::mem::take(&mut b.order_by);
                limit = b.limit.take();
            }
        }
    } else {
        order_by = std::mem::take(&mut branches[0].order_by);
        limit = branches[0].limit.take();
    }
    p.expect_eof()?;
    Ok(Statement {
        branches,
        all,
        order_by,
        limit,
    })
}

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    /// Identifier (original case preserved).
    Ident(String),
    /// Keyword (upper-cased identifier matching the keyword set).
    Kw(&'static str),
    Number(f64),
    Str(String),
    Comma,
    Dot,
    Star,
    LParen,
    RParen,
    Plus,
    Minus,
    Slash,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Eof,
}

const KEYWORDS: [&str; 19] = [
    "SELECT", "DISTINCT", "FROM", "WHERE", "AND", "GROUP", "ORDER", "BY", "AS", "ASC", "DESC",
    "COUNT", "SUM", "AVG", "MIN", "BETWEEN", "UNION", "ALL", "LIMIT",
];
// MAX handled separately to keep the array tidy.

fn keyword_of(word: &str) -> Option<&'static str> {
    let up = word.to_ascii_uppercase();
    if up == "MAX" {
        return Some("MAX");
    }
    KEYWORDS.iter().find(|k| **k == up).copied()
}

fn lex(src: &str) -> Result<Vec<Tok>> {
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            ',' => {
                out.push(Tok::Comma);
                i += 1;
            }
            '.' => {
                out.push(Tok::Dot);
                i += 1;
            }
            '*' => {
                out.push(Tok::Star);
                i += 1;
            }
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            '+' => {
                out.push(Tok::Plus);
                i += 1;
            }
            '-' => {
                out.push(Tok::Minus);
                i += 1;
            }
            '/' => {
                out.push(Tok::Slash);
                i += 1;
            }
            '=' => {
                out.push(Tok::Eq);
                i += 1;
            }
            '!' if chars.get(i + 1) == Some(&'=') => {
                out.push(Tok::Ne);
                i += 2;
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Tok::Le);
                    i += 2;
                } else if chars.get(i + 1) == Some(&'>') {
                    out.push(Tok::Ne);
                    i += 2;
                } else {
                    out.push(Tok::Lt);
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Tok::Ge);
                    i += 2;
                } else {
                    out.push(Tok::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        Some('\'') if chars.get(i + 1) == Some(&'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(c) => {
                            s.push(*c);
                            i += 1;
                        }
                        None => {
                            return Err(DiscoError::Parse("unterminated string literal".into()))
                        }
                    }
                }
                out.push(Tok::Str(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while matches!(chars.get(i), Some(c) if c.is_ascii_digit()) {
                    i += 1;
                }
                if chars.get(i) == Some(&'.')
                    && matches!(chars.get(i + 1), Some(c) if c.is_ascii_digit())
                {
                    i += 1;
                    while matches!(chars.get(i), Some(c) if c.is_ascii_digit()) {
                        i += 1;
                    }
                }
                let text: String = chars[start..i].iter().collect();
                let n: f64 = text
                    .parse()
                    .map_err(|_| DiscoError::Parse(format!("bad number `{text}`")))?;
                out.push(Tok::Number(n));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while matches!(chars.get(i), Some(c) if c.is_ascii_alphanumeric() || *c == '_') {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                match keyword_of(&word) {
                    Some(kw) => out.push(Tok::Kw(kw)),
                    None => out.push(Tok::Ident(word)),
                }
            }
            other => {
                return Err(DiscoError::Parse(format!(
                    "unexpected character `{other}` in query"
                )))
            }
        }
    }
    out.push(Tok::Eof);
    Ok(out)
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser {
    tokens: Vec<Tok>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.i.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.i.min(self.tokens.len() - 1)].clone();
        if self.i < self.tokens.len() - 1 {
            self.i += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &'static str) -> bool {
        if *self.peek() == Tok::Kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &'static str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(DiscoError::Parse(format!(
                "expected `{kw}`, found {:?}",
                self.peek()
            )))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if *self.peek() == Tok::Eof {
            Ok(())
        } else {
            Err(DiscoError::Parse(format!(
                "trailing input: {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(DiscoError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn query(&mut self) -> Result<Query> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let select = if *self.peek() == Tok::Star {
            self.bump();
            None
        } else {
            let mut items = vec![self.select_item()?];
            while *self.peek() == Tok::Comma {
                self.bump();
                items.push(self.select_item()?);
            }
            Some(items)
        };
        self.expect_kw("FROM")?;
        let mut from = vec![self.table_ref()?];
        while *self.peek() == Tok::Comma {
            self.bump();
            from.push(self.table_ref()?);
        }
        let mut where_ = Vec::new();
        if self.eat_kw("WHERE") {
            self.condition_into(&mut where_)?;
            while self.eat_kw("AND") {
                self.condition_into(&mut where_)?;
            }
        }
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            group_by.push(self.col_ref()?);
            while *self.peek() == Tok::Comma {
                self.bump();
                group_by.push(self.col_ref()?);
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let col = self.col_ref()?;
                let asc = if self.eat_kw("DESC") {
                    false
                } else {
                    self.eat_kw("ASC");
                    true
                };
                order_by.push((col, asc));
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            match self.bump() {
                Tok::Number(n) if n.fract() == 0.0 && (0.0..9e15).contains(&n) => Some(n as u64),
                other => {
                    return Err(DiscoError::Parse(format!(
                        "expected non-negative integer after LIMIT, found {other:?}"
                    )))
                }
            }
        } else {
            None
        };
        Ok(Query {
            distinct,
            select,
            from,
            where_,
            group_by,
            order_by,
            limit,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        let expr = self.expr()?;
        let alias = if self.eat_kw("AS") {
            Some(self.ident()?)
        } else if let Tok::Ident(_) = self.peek() {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(SelectItem { expr, alias })
    }

    fn expr(&mut self) -> Result<SqlExpr> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => ArithTok::Add,
                Tok::Minus => ArithTok::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.term()?;
            lhs = SqlExpr::Arith {
                op,
                left: Box::new(lhs),
                right: Box::new(rhs),
            };
        }
    }

    fn term(&mut self) -> Result<SqlExpr> {
        let mut lhs = self.primary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => ArithTok::Mul,
                Tok::Slash => ArithTok::Div,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.primary()?;
            lhs = SqlExpr::Arith {
                op,
                left: Box::new(lhs),
                right: Box::new(rhs),
            };
        }
    }

    fn primary(&mut self) -> Result<SqlExpr> {
        match self.bump() {
            Tok::Number(n) => Ok(SqlExpr::Const(num_value(n))),
            Tok::Str(s) => Ok(SqlExpr::Const(Value::Str(s))),
            Tok::LParen => {
                let e = self.expr()?;
                match self.bump() {
                    Tok::RParen => Ok(e),
                    other => Err(DiscoError::Parse(format!("expected `)`, found {other:?}"))),
                }
            }
            Tok::Kw(kw @ ("COUNT" | "SUM" | "AVG" | "MIN" | "MAX")) => {
                let func = match kw {
                    "COUNT" => AggFunc::Count,
                    "SUM" => AggFunc::Sum,
                    "AVG" => AggFunc::Avg,
                    "MIN" => AggFunc::Min,
                    "MAX" => AggFunc::Max,
                    _ => unreachable!(),
                };
                match self.bump() {
                    Tok::LParen => {}
                    other => {
                        return Err(DiscoError::Parse(format!(
                            "expected `(` after aggregate, found {other:?}"
                        )))
                    }
                }
                let arg = if *self.peek() == Tok::Star {
                    self.bump();
                    if func != AggFunc::Count {
                        return Err(DiscoError::Parse(format!("`{kw}(*)` is not valid")));
                    }
                    None
                } else {
                    Some(self.col_ref()?)
                };
                match self.bump() {
                    Tok::RParen => Ok(SqlExpr::Agg(func, arg)),
                    other => Err(DiscoError::Parse(format!("expected `)`, found {other:?}"))),
                }
            }
            Tok::Ident(first) => {
                if *self.peek() == Tok::Dot {
                    self.bump();
                    let col = self.ident()?;
                    Ok(SqlExpr::Col(ColRef {
                        table: Some(first),
                        column: col,
                    }))
                } else {
                    Ok(SqlExpr::Col(ColRef {
                        table: None,
                        column: first,
                    }))
                }
            }
            other => Err(DiscoError::Parse(format!(
                "unexpected {other:?} in expression"
            ))),
        }
    }

    fn col_ref(&mut self) -> Result<ColRef> {
        let first = self.ident()?;
        if *self.peek() == Tok::Dot {
            self.bump();
            let col = self.ident()?;
            Ok(ColRef {
                table: Some(first),
                column: col,
            })
        } else {
            Ok(ColRef {
                table: None,
                column: first,
            })
        }
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let first = self.ident()?;
        let (wrapper, collection) = if *self.peek() == Tok::Dot {
            self.bump();
            (Some(first), self.ident()?)
        } else {
            (None, first)
        };
        let alias = if self.eat_kw("AS") {
            Some(self.ident()?)
        } else if let Tok::Ident(_) = self.peek() {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(TableRef {
            wrapper,
            collection,
            alias,
        })
    }

    /// Parse one condition, desugaring `BETWEEN lo AND hi` into
    /// `>= lo` and `<= hi` conjuncts.
    fn condition_into(&mut self, out: &mut Vec<Condition>) -> Result<()> {
        let save = self.i;
        let left = self.col_ref()?;
        if *self.peek() == Tok::Kw("BETWEEN") {
            self.bump();
            let lo = self.constant()?;
            self.expect_kw("AND")?;
            let hi = self.constant()?;
            out.push(Condition::Restriction {
                col: left.clone(),
                op: CompareOp::Ge,
                value: lo,
            });
            out.push(Condition::Restriction {
                col: left,
                op: CompareOp::Le,
                value: hi,
            });
            return Ok(());
        }
        self.i = save;
        out.push(self.condition()?);
        Ok(())
    }

    fn constant(&mut self) -> Result<Value> {
        match self.bump() {
            Tok::Number(n) => Ok(num_value(n)),
            Tok::Minus => match self.bump() {
                Tok::Number(n) => Ok(num_value(-n)),
                other => Err(DiscoError::Parse(format!(
                    "expected number, found {other:?}"
                ))),
            },
            Tok::Str(s) => Ok(Value::Str(s)),
            other => Err(DiscoError::Parse(format!(
                "expected constant, found {other:?}"
            ))),
        }
    }

    fn condition(&mut self) -> Result<Condition> {
        let left = self.col_ref()?;
        let op = match self.bump() {
            Tok::Eq => CompareOp::Eq,
            Tok::Ne => CompareOp::Ne,
            Tok::Lt => CompareOp::Lt,
            Tok::Le => CompareOp::Le,
            Tok::Gt => CompareOp::Gt,
            Tok::Ge => CompareOp::Ge,
            other => {
                return Err(DiscoError::Parse(format!(
                    "expected comparison operator, found {other:?}"
                )))
            }
        };
        match self.bump() {
            Tok::Number(n) => Ok(Condition::Restriction {
                col: left,
                op,
                value: num_value(n),
            }),
            Tok::Minus => match self.bump() {
                Tok::Number(n) => Ok(Condition::Restriction {
                    col: left,
                    op,
                    value: num_value(-n),
                }),
                other => Err(DiscoError::Parse(format!(
                    "expected number, found {other:?}"
                ))),
            },
            Tok::Str(s) => Ok(Condition::Restriction {
                col: left,
                op,
                value: Value::Str(s),
            }),
            Tok::Ident(first) => {
                let right = if *self.peek() == Tok::Dot {
                    self.bump();
                    ColRef {
                        table: Some(first),
                        column: self.ident()?,
                    }
                } else {
                    ColRef {
                        table: None,
                        column: first,
                    }
                };
                Ok(Condition::ColCompare { left, op, right })
            }
            other => Err(DiscoError::Parse(format!(
                "expected constant or column, found {other:?}"
            ))),
        }
    }
}

fn num_value(n: f64) -> Value {
    if n.fract() == 0.0 && n.abs() < 9e15 {
        Value::Long(n as i64)
    } else {
        Value::Double(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_projection_selection_join() {
        let q = parse_query(
            "SELECT e.name, d.budget FROM hr.Employee e, Dept AS d \
             WHERE e.dept_id = d.id AND e.salary > 1000 ORDER BY e.name DESC",
        )
        .unwrap();
        assert_eq!(q.from.len(), 2);
        assert_eq!(q.from[0].wrapper.as_deref(), Some("hr"));
        assert_eq!(q.from[0].binding_name(), "e");
        assert_eq!(q.from[1].binding_name(), "d");
        assert_eq!(q.where_.len(), 2);
        assert!(matches!(
            &q.where_[0],
            Condition::ColCompare {
                op: CompareOp::Eq,
                ..
            }
        ));
        assert!(matches!(
            &q.where_[1],
            Condition::Restriction {
                op: CompareOp::Gt,
                value: Value::Long(1000),
                ..
            }
        ));
        assert_eq!(q.order_by.len(), 1);
        assert!(!q.order_by[0].1);
    }

    #[test]
    fn select_star_and_distinct() {
        let q = parse_query("SELECT DISTINCT * FROM Employee").unwrap();
        assert!(q.distinct);
        assert!(q.select.is_none());
    }

    #[test]
    fn aggregates_and_group_by() {
        let q = parse_query(
            "SELECT d.name, COUNT(*) AS n, AVG(e.salary) FROM Emp e, Dept d \
             WHERE e.d = d.id GROUP BY d.name",
        )
        .unwrap();
        let items = q.select.unwrap();
        assert_eq!(items.len(), 3);
        assert!(matches!(items[1].expr, SqlExpr::Agg(AggFunc::Count, None)));
        assert_eq!(items[1].alias.as_deref(), Some("n"));
        assert!(matches!(items[2].expr, SqlExpr::Agg(AggFunc::Avg, Some(_))));
        assert_eq!(q.group_by.len(), 1);
    }

    #[test]
    fn arithmetic_in_select() {
        let q = parse_query("SELECT salary * 2 + 1 AS x FROM Emp").unwrap();
        let items = q.select.unwrap();
        match &items[0].expr {
            SqlExpr::Arith {
                op: ArithTok::Add,
                left,
                ..
            } => {
                assert!(matches!(
                    **left,
                    SqlExpr::Arith {
                        op: ArithTok::Mul,
                        ..
                    }
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn string_literals_and_escapes() {
        let q = parse_query("SELECT * FROM T WHERE name = 'O''Brien'").unwrap();
        assert!(matches!(
            &q.where_[0],
            Condition::Restriction { value: Value::Str(s), .. } if s == "O'Brien"
        ));
    }

    #[test]
    fn negative_and_float_constants() {
        let q = parse_query("SELECT * FROM T WHERE x > -5 AND y <= 2.5").unwrap();
        assert!(matches!(
            &q.where_[0],
            Condition::Restriction {
                value: Value::Long(-5),
                ..
            }
        ));
        assert!(matches!(
            &q.where_[1],
            Condition::Restriction { value: Value::Double(v), .. } if *v == 2.5
        ));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert!(parse_query("select * from T where x = 1 order by x asc").is_ok());
    }

    #[test]
    fn count_star_only() {
        assert!(parse_query("SELECT SUM(*) FROM T").is_err());
        assert!(parse_query("SELECT COUNT(*) FROM T").is_ok());
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_query("SELECT FROM T").is_err());
        assert!(parse_query("SELECT * T").is_err());
        assert!(parse_query("SELECT * FROM T WHERE").is_err());
        assert!(parse_query("SELECT * FROM T trailing junk !").is_err());
        assert!(parse_query("SELECT * FROM T WHERE name = 'open").is_err());
    }

    #[test]
    fn limit_parses_and_lifts_from_union() {
        let q = parse_query("SELECT * FROM T ORDER BY x LIMIT 10").unwrap();
        assert_eq!(q.limit, Some(10));
        let s = parse_statement("SELECT * FROM T UNION ALL SELECT * FROM U LIMIT 3").unwrap();
        assert_eq!(s.limit, Some(3));
        assert!(s.branches.iter().all(|b| b.limit.is_none()));
        assert!(parse_statement("SELECT * FROM T LIMIT 3 UNION ALL SELECT * FROM U").is_err());
        assert!(parse_query("SELECT * FROM T LIMIT -1").is_err());
        assert!(parse_query("SELECT * FROM T LIMIT 2.5").is_err());
    }

    #[test]
    fn ne_spellings() {
        let a = parse_query("SELECT * FROM T WHERE x != 1").unwrap();
        let b = parse_query("SELECT * FROM T WHERE x <> 1").unwrap();
        assert_eq!(a.where_, b.where_);
    }
}

#[cfg(test)]
mod between_tests {
    use super::*;

    #[test]
    fn between_desugars_to_range_conjuncts() {
        let q = parse_query("SELECT * FROM T WHERE x BETWEEN 10 AND 20 AND y = 1").unwrap();
        assert_eq!(q.where_.len(), 3);
        assert!(matches!(
            &q.where_[0],
            Condition::Restriction {
                op: CompareOp::Ge,
                value: Value::Long(10),
                ..
            }
        ));
        assert!(matches!(
            &q.where_[1],
            Condition::Restriction {
                op: CompareOp::Le,
                value: Value::Long(20),
                ..
            }
        ));
        assert!(matches!(
            &q.where_[2],
            Condition::Restriction {
                op: CompareOp::Eq,
                value: Value::Long(1),
                ..
            }
        ));
    }

    #[test]
    fn between_requires_constants() {
        assert!(parse_query("SELECT * FROM T WHERE x BETWEEN a AND b").is_err());
        assert!(parse_query("SELECT * FROM T WHERE x BETWEEN 1").is_err());
    }

    #[test]
    fn between_with_negative_and_string_bounds() {
        let q = parse_query("SELECT * FROM T WHERE x BETWEEN -5 AND 5").unwrap();
        assert!(matches!(
            &q.where_[0],
            Condition::Restriction {
                value: Value::Long(-5),
                ..
            }
        ));
        let q = parse_query("SELECT * FROM T WHERE n BETWEEN 'a' AND 'm'").unwrap();
        assert_eq!(q.where_.len(), 2);
    }
}

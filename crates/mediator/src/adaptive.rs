//! Mid-query adaptive re-optimization (ROADMAP item 4).
//!
//! The paper's §4.3 feedback loop corrects cost estimates *between*
//! queries and its §4.3.2 branch-and-bound abandons plans *during
//! optimization*; this module generalizes both into **runtime plan
//! abandonment**. Once subanswers materialize (after the two-phase fetch
//! phase, or mid-stream under pipelined execution), the executor compares
//! measured cardinalities against the optimizer's per-site predictions.
//! When the relative error crosses [`AdaptivePolicy::error_threshold`]
//! (outside the [`AdaptivePolicy::min_rows`] dead zone), the
//! [`Replanner`] re-enumerates left-deep join orders over the combine
//! plan with the *measured* cardinalities substituted at the submit
//! leaves ([`disco_core::CardinalityOverrides`]) and switches only when
//! the predicted win exceeds [`AdaptivePolicy::switch_margin`]. Already
//! fetched subanswers are never re-fetched: the executor re-drives the
//! combine from the materialized batches.
//!
//! Re-planning is pure mediator-side arithmetic over the memoized
//! estimator — BENCH_optimizer.json shows enumeration is microseconds at
//! combine-plan sizes — so the cost of *considering* a switch is noise
//! next to one mis-ordered join.

use disco_algebra::{CompareOp, JoinPredicate, LogicalPlan, PhysicalJoinAlgo, PhysicalPlan};
use disco_catalog::Catalog;
use disco_common::HealthTracker;
use disco_core::{CardinalityOverrides, EstimateOptions, Estimator, EstimatorCache, RuleRegistry};

use crate::optimizer::to_logical;

/// Knobs for mid-query re-optimization, carried on
/// [`MediatorOptions`](crate::mediator::MediatorOptions).
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptivePolicy {
    /// Master switch; off by default (static plans, zero overhead).
    pub enabled: bool,
    /// Trigger when `max(observed/predicted, predicted/observed)` for
    /// some subanswer reaches this factor (a *ratio*, so 4.0 means 4×
    /// off in either direction).
    pub error_threshold: f64,
    /// Dead zone: ignore misestimates whose absolute row difference is
    /// below this — tiny subanswers are cheap to combine in any order,
    /// and re-planning them would only add noise.
    pub min_rows: f64,
    /// Switch plans only when the re-estimated combine cost beats the
    /// corrected cost of the current plan by this fraction (0.1 = the
    /// candidate must be ≥10% cheaper), so estimate jitter cannot cause
    /// plan thrashing.
    pub switch_margin: f64,
    /// At most this many re-plans per query (abandoning a combine and
    /// re-driving it is cheap but not free).
    pub max_replans: usize,
}

impl Default for AdaptivePolicy {
    fn default() -> Self {
        AdaptivePolicy {
            enabled: false,
            error_threshold: 4.0,
            min_rows: 256.0,
            switch_margin: 0.1,
            max_replans: 1,
        }
    }
}

impl AdaptivePolicy {
    /// An enabled policy with the default thresholds.
    pub fn enabled() -> Self {
        AdaptivePolicy {
            enabled: true,
            ..Default::default()
        }
    }

    /// True when `observed` vs `predicted` rows crosses the trigger
    /// (threshold ratio outside the dead zone).
    pub fn triggers(&self, predicted: f64, observed: f64) -> bool {
        if (observed - predicted).abs() < self.min_rows {
            return false;
        }
        let p = predicted.max(1.0);
        let o = observed.max(1.0);
        (o / p).max(p / o) >= self.error_threshold
    }
}

/// One submit site's measured outcome, aligned with the plan's submit
/// (fetch) order.
#[derive(Debug, Clone)]
pub struct SiteObservation {
    pub wrapper: String,
    /// The logical subplan shipped to the wrapper (the override key).
    pub plan: LogicalPlan,
    /// The optimizer's predicted result cardinality, when it priced this
    /// site.
    pub predicted_rows: Option<f64>,
    pub observed_rows: f64,
    pub observed_bytes: f64,
    /// The site failed or was truncated: its measurement is a lower
    /// bound, not a cardinality — it still corrects the override (the
    /// materialized input really is that small) but never *triggers* a
    /// re-plan.
    pub failed: bool,
}

/// A recorded re-plan decision, threaded into the execution trace and
/// rendered by EXPLAIN ANALYZE.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplanEvent {
    /// The wrapper whose misestimate triggered the check (worst error).
    pub wrapper: String,
    pub predicted_rows: f64,
    pub observed_rows: f64,
    /// Corrected estimate of the *current* combine plan (ms), with the
    /// already-spent fetch costs excluded as sunk.
    pub old_cost_ms: f64,
    /// Corrected estimate of the best candidate order (ms), same basis.
    pub new_cost_ms: f64,
    /// Whether the win cleared the switch margin and the plan was
    /// actually abandoned.
    pub switched: bool,
    /// `"two_phase"` or `"streaming"`.
    pub engine: &'static str,
}

impl ReplanEvent {
    /// One-line rendering, e.g.
    /// `re-optimized: predicted 1k rows, observed 800k at `s` — switched
    /// join order (est. 1234.0ms -> 56.0ms)`.
    pub fn render(&self) -> String {
        let verdict = if self.switched {
            format!(
                "switched join order (est. {:.1}ms -> {:.1}ms)",
                self.old_cost_ms, self.new_cost_ms
            )
        } else {
            format!(
                "kept plan (best candidate {:.1}ms vs {:.1}ms, within margin)",
                self.new_cost_ms, self.old_cost_ms
            )
        };
        format!(
            "re-optimized: predicted {} rows, observed {} at `{}` — {}",
            fmt_rows(self.predicted_rows),
            fmt_rows(self.observed_rows),
            self.wrapper,
            verdict
        )
    }
}

fn fmt_rows(n: f64) -> String {
    if n >= 10_000.0 {
        format!("{:.0}k", n / 1000.0)
    } else {
        format!("{n:.0}")
    }
}

/// Outcome of one [`Replanner::consider`] call that crossed the trigger.
#[derive(Debug, Clone)]
pub struct ReplanOutcome {
    pub event: ReplanEvent,
    /// The replacement plan when the event switched.
    pub new_plan: Option<PhysicalPlan>,
}

/// Re-entrant join enumeration over an executed combine plan: decompose
/// the join tree into opaque leaves (each an already-fetched submit
/// subtree, possibly fused or filtered), re-enumerate left-deep orders
/// with measured cardinalities substituted at the submit nodes, and
/// propose a switch when one clears the margin.
pub struct Replanner<'a> {
    registry: &'a RuleRegistry,
    catalog: &'a Catalog,
    health: Option<&'a HealthTracker>,
    policy: AdaptivePolicy,
}

/// One leaf of the decomposed join tree with its resolved output schema.
struct Leaf {
    plan: PhysicalPlan,
    schema: disco_common::Schema,
    /// Measured output rows (sum of overrides inside the leaf, else the
    /// static estimate) — drives the greedy fallback order.
    rows: f64,
}

/// A join predicate re-anchored to leaf indices.
struct Edge {
    a: usize,
    a_attr: String,
    op: CompareOp,
    b: usize,
    b_attr: String,
    used: bool,
}

/// Mediator-side unary operators stripped off the top of the plan before
/// the join tree, reapplied verbatim over the re-ordered tree.
enum Suffix {
    Filter(disco_algebra::Predicate),
    Project(Vec<(String, disco_algebra::ScalarExpr)>),
    Sort(Vec<(String, bool)>),
    Dedup,
    Aggregate {
        group_by: Vec<String>,
        aggs: Vec<disco_algebra::logical::AggExpr>,
    },
}

/// Beyond this many leaves the order search degrades to greedy
/// (smallest measured input first) — same spirit as the optimizer's
/// `exhaustive_up_to` bound, scaled to combine-plan sizes.
const EXHAUSTIVE_LEAVES: usize = 8;

impl<'a> Replanner<'a> {
    /// Build a replanner over the mediator's catalog/registry/health.
    pub fn new(
        registry: &'a RuleRegistry,
        catalog: &'a Catalog,
        health: Option<&'a HealthTracker>,
        policy: AdaptivePolicy,
    ) -> Self {
        Replanner {
            registry,
            catalog,
            health,
            policy,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> &AdaptivePolicy {
        &self.policy
    }

    /// Compare observations against predictions; when the worst error
    /// crosses the trigger, re-enumerate the combine plan with corrected
    /// cardinalities. `None` = nothing crossed the trigger (the dead
    /// zone and threshold held) or the plan has no reorderable join
    /// tree. `Some` always carries a [`ReplanEvent`] for the trace; the
    /// plan inside is `Some` only when the win cleared the margin.
    pub fn consider(
        &self,
        plan: &PhysicalPlan,
        observations: &[SiteObservation],
        engine: &'static str,
    ) -> Option<ReplanOutcome> {
        if !self.policy.enabled {
            return None;
        }
        // Worst misestimate among trustworthy (fully measured) sites.
        let worst = observations
            .iter()
            .filter(|o| !o.failed)
            .filter_map(|o| {
                let p = o.predicted_rows?;
                self.policy
                    .triggers(p, o.observed_rows)
                    .then(|| (o, (o.observed_rows.max(1.0) / p.max(1.0)).ln().abs()))
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))?
            .0;

        if disco_obs::enabled() {
            disco_obs::counter(disco_obs::names::REPLAN_CONSIDERED, &[("engine", engine)]).inc();
        }

        let mut event = ReplanEvent {
            wrapper: worst.wrapper.clone(),
            predicted_rows: worst.predicted_rows.unwrap_or(0.0),
            observed_rows: worst.observed_rows,
            old_cost_ms: 0.0,
            new_cost_ms: 0.0,
            switched: false,
            engine,
        };

        // Every observation (failed ones included) corrects its submit
        // leaf: the materialized input *is* that size now.
        let mut overrides = CardinalityOverrides::new();
        for o in observations {
            overrides.insert(&o.wrapper, &o.plan, o.observed_rows, o.observed_bytes);
        }

        let (suffix, tree) = split_suffix(plan);
        let Some((leaves, edges)) = decompose(tree, &overrides, self) else {
            // Nothing reorderable (single site, undecomposable tree):
            // record that the trigger fired but the plan stands.
            return Some(ReplanOutcome {
                event,
                new_plan: None,
            });
        };

        // Overrides bake into memoized costs, so the cache must be fresh
        // for this override set (see `CardinalityOverrides`).
        let cache = EstimatorCache::new();
        let estimator = Estimator::new(self.registry, self.catalog)
            .with_health(self.health)
            .with_overrides(Some(&overrides));
        let Some(current) = self.price(tree, &estimator, &cache, None) else {
            return Some(ReplanOutcome {
                event,
                new_plan: None,
            });
        };
        // The fetches are sunk: every candidate order consumes the same
        // already-materialized subanswers, so the margin is judged on the
        // combine-side cost alone — leaving the identical submit terms in
        // would dilute any join-order win below the margin.
        let sunk: f64 = leaves
            .iter()
            .filter_map(|l| self.price(&l.plan, &estimator, &cache, None))
            .sum();
        event.old_cost_ms = (current - sunk).max(0.0);
        event.new_cost_ms = event.old_cost_ms;

        let Some(best) = self.search(&leaves, &edges, &estimator, &cache, current) else {
            // Every candidate priced (or pruned) at or above the current
            // order: keep the plan.
            return Some(ReplanOutcome {
                event,
                new_plan: None,
            });
        };
        event.new_cost_ms = (best.1 - sunk).max(0.0);

        if event.new_cost_ms < event.old_cost_ms * (1.0 - self.policy.switch_margin) {
            event.switched = true;
            if disco_obs::enabled() {
                disco_obs::counter(disco_obs::names::REPLAN_EXECUTED, &[("engine", engine)]).inc();
                disco_obs::histogram(disco_obs::names::REPLAN_WIN_MS, &[("engine", engine)])
                    .observe(event.old_cost_ms - event.new_cost_ms);
            }
            let new_plan = apply_suffix(suffix, best.0);
            return Some(ReplanOutcome {
                event,
                new_plan: Some(new_plan),
            });
        }
        Some(ReplanOutcome {
            event,
            new_plan: None,
        })
    }

    /// Corrected `TotalTime` of a combine tree (submit leaves priced at
    /// their measured cardinality; `limit` prunes hopeless candidates —
    /// §4.3.2 with the current plan as the bound).
    fn price(
        &self,
        tree: &PhysicalPlan,
        estimator: &Estimator<'_>,
        cache: &EstimatorCache,
        limit: Option<f64>,
    ) -> Option<f64> {
        let opts = EstimateOptions {
            cost_limit: limit,
            wrapper: None,
        };
        estimator
            .estimate_report_cached(&to_logical(tree), &opts, cache)
            .ok()
            .flatten()
            .map(|r| r.cost.total_time)
    }

    /// Enumerate connected left-deep orders over the leaves (exhaustive
    /// up to [`EXHAUSTIVE_LEAVES`], greedy smallest-first beyond) and
    /// return the cheapest rebuilt tree with its corrected cost.
    fn search(
        &self,
        leaves: &[Leaf],
        edges: &[Edge],
        estimator: &Estimator<'_>,
        cache: &EstimatorCache,
        current: f64,
    ) -> Option<(PhysicalPlan, f64)> {
        let n = leaves.len();
        let orders: Vec<Vec<usize>> = if n <= EXHAUSTIVE_LEAVES {
            let mut all = Vec::new();
            let mut prefix = Vec::with_capacity(n);
            enumerate_connected(n, edges, &mut prefix, &mut all);
            all
        } else {
            greedy_order(leaves, edges).into_iter().collect()
        };
        let mut best: Option<(PhysicalPlan, f64)> = None;
        for order in orders {
            let Some(tree) = build_tree(leaves, edges, &order) else {
                continue;
            };
            let bound = best.as_ref().map_or(current, |b| b.1.min(current));
            let Some(cost) = self.price(&tree, estimator, cache, Some(bound)) else {
                continue; // pruned: already worse than the bound
            };
            if best.as_ref().is_none_or(|b| cost < b.1) {
                best = Some((tree, cost));
            }
        }
        best
    }
}

/// Strip mediator-side unary operators off the top of the plan until the
/// join tree (or whatever else) is exposed, outermost first.
fn split_suffix(plan: &PhysicalPlan) -> (Vec<Suffix>, &PhysicalPlan) {
    let mut suffix = Vec::new();
    let mut cur = plan;
    loop {
        match cur {
            PhysicalPlan::Filter { input, predicate } => {
                suffix.push(Suffix::Filter(predicate.clone()));
                cur = input;
            }
            PhysicalPlan::Project { input, columns } => {
                suffix.push(Suffix::Project(columns.clone()));
                cur = input;
            }
            PhysicalPlan::Sort { input, keys } => {
                suffix.push(Suffix::Sort(keys.clone()));
                cur = input;
            }
            PhysicalPlan::Dedup { input } => {
                suffix.push(Suffix::Dedup);
                cur = input;
            }
            PhysicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                suffix.push(Suffix::Aggregate {
                    group_by: group_by.clone(),
                    aggs: aggs.clone(),
                });
                cur = input;
            }
            _ => return (suffix, cur),
        }
    }
}

/// Reapply stripped operators (innermost last in `suffix`, so rebuild in
/// reverse).
fn apply_suffix(suffix: Vec<Suffix>, mut tree: PhysicalPlan) -> PhysicalPlan {
    for s in suffix.into_iter().rev() {
        tree = match s {
            Suffix::Filter(predicate) => PhysicalPlan::Filter {
                input: Box::new(tree),
                predicate,
            },
            Suffix::Project(columns) => PhysicalPlan::Project {
                input: Box::new(tree),
                columns,
            },
            Suffix::Sort(keys) => PhysicalPlan::Sort {
                input: Box::new(tree),
                keys,
            },
            Suffix::Dedup => PhysicalPlan::Dedup {
                input: Box::new(tree),
            },
            Suffix::Aggregate { group_by, aggs } => PhysicalPlan::Aggregate {
                input: Box::new(tree),
                group_by,
                aggs,
            },
        };
    }
    tree
}

/// Flatten the join tree into leaves (any non-`Join` subtree is opaque —
/// a submit, a fused multi-table submit, a filtered submit, even a
/// union) and predicates re-anchored to leaf indices. `None` when the
/// tree is not a cleanly decomposable inner-equi/theta join tree (an
/// attribute resolving to zero or several leaves, a join algorithm we
/// could not rebuild, …) — in that case the plan is left alone, which is
/// always safe.
fn decompose(
    tree: &PhysicalPlan,
    overrides: &CardinalityOverrides,
    rp: &Replanner<'_>,
) -> Option<(Vec<Leaf>, Vec<Edge>)> {
    let mut leaf_plans: Vec<&PhysicalPlan> = Vec::new();
    let mut preds: Vec<&JoinPredicate> = Vec::new();
    collect(tree, &mut leaf_plans, &mut preds);
    if leaf_plans.len() < 2 || preds.len() != leaf_plans.len() - 1 {
        return None;
    }

    let estimator = Estimator::new(rp.registry, rp.catalog)
        .with_health(rp.health)
        .with_overrides(Some(overrides));
    let mut leaves = Vec::with_capacity(leaf_plans.len());
    for lp in &leaf_plans {
        let logical = to_logical(lp);
        let schema = logical.output_schema().ok()?;
        // Leaf cardinality under overrides, for the greedy fallback.
        let rows = estimator
            .estimate(&logical)
            .map(|c| c.count_object)
            .unwrap_or(f64::MAX);
        leaves.push(Leaf {
            plan: (*lp).clone(),
            schema,
            rows,
        });
    }

    let mut edges = Vec::with_capacity(preds.len());
    for p in preds {
        let a = owner(&leaves, &p.left_attr)?;
        let b = owner(&leaves, &p.right_attr)?;
        if a == b {
            return None;
        }
        edges.push(Edge {
            a,
            a_attr: p.left_attr.clone(),
            op: p.op,
            b,
            b_attr: p.right_attr.clone(),
            used: false,
        });
    }
    Some((leaves, edges))
}

/// Collect join-tree leaves and predicates depth-first, left before
/// right (matching submit/fetch order).
fn collect<'p>(
    plan: &'p PhysicalPlan,
    leaves: &mut Vec<&'p PhysicalPlan>,
    preds: &mut Vec<&'p JoinPredicate>,
) {
    match plan {
        PhysicalPlan::Join {
            left,
            right,
            predicate,
            ..
        } => {
            preds.push(predicate);
            collect(left, leaves, preds);
            collect(right, leaves, preds);
        }
        other => leaves.push(other),
    }
}

/// The unique leaf whose output schema contains `attr` (attributes are
/// alias-qualified, so ambiguity means the tree is not safely
/// decomposable).
fn owner(leaves: &[Leaf], attr: &str) -> Option<usize> {
    let mut found = None;
    for (i, l) in leaves.iter().enumerate() {
        if l.schema.index_of(attr).is_some() {
            if found.is_some() {
                return None;
            }
            found = Some(i);
        }
    }
    found
}

/// All left-deep orders where each next leaf connects to the prefix by
/// some edge (the optimizer's connected-subgraph-first constraint).
fn enumerate_connected(
    n: usize,
    edges: &[Edge],
    prefix: &mut Vec<usize>,
    out: &mut Vec<Vec<usize>>,
) {
    if prefix.len() == n {
        out.push(prefix.clone());
        return;
    }
    for next in 0..n {
        if prefix.contains(&next) {
            continue;
        }
        if !prefix.is_empty() && !connects(edges, prefix, next) {
            continue;
        }
        prefix.push(next);
        enumerate_connected(n, edges, prefix, out);
        prefix.pop();
    }
}

fn connects(edges: &[Edge], prefix: &[usize], next: usize) -> bool {
    edges
        .iter()
        .any(|e| (e.a == next && prefix.contains(&e.b)) || (e.b == next && prefix.contains(&e.a)))
}

/// Greedy connected order by measured leaf cardinality (smallest first).
fn greedy_order(leaves: &[Leaf], edges: &[Edge]) -> Option<Vec<usize>> {
    let n = leaves.len();
    let mut order = Vec::with_capacity(n);
    while order.len() < n {
        let next = (0..n)
            .filter(|i| !order.contains(i))
            .filter(|&i| order.is_empty() || connects(edges, &order, i))
            .min_by(|&a, &b| leaves[a].rows.total_cmp(&leaves[b].rows))?;
        order.push(next);
    }
    Some(order)
}

/// Rebuild a left-deep join tree over `order`, consuming one connecting
/// edge per step with the optimizer's orientation rule (left attribute
/// belongs to the tree; flip the comparison otherwise) and algorithm
/// rule (equality ⇒ hash, else nested loop).
fn build_tree(leaves: &[Leaf], edges: &[Edge], order: &[usize]) -> Option<PhysicalPlan> {
    let mut used: Vec<bool> = edges.iter().map(|e| e.used).collect();
    let mut in_tree = vec![false; leaves.len()];
    in_tree[order[0]] = true;
    let mut tree = leaves[order[0]].plan.clone();
    for &next in &order[1..] {
        let (ei, e) = edges.iter().enumerate().find(|(ei, e)| {
            !used[*ei] && ((e.a == next && in_tree[e.b]) || (e.b == next && in_tree[e.a]))
        })?;
        used[ei] = true;
        let (left_attr, op, right_attr) = if in_tree[e.a] {
            (e.a_attr.clone(), e.op, e.b_attr.clone())
        } else {
            (e.b_attr.clone(), e.op.flipped(), e.a_attr.clone())
        };
        let algo = if op == CompareOp::Eq {
            PhysicalJoinAlgo::Hash
        } else {
            PhysicalJoinAlgo::NestedLoop
        };
        tree = PhysicalPlan::Join {
            algo,
            left: Box::new(tree),
            right: Box::new(leaves[next].plan.clone()),
            predicate: JoinPredicate {
                left_attr,
                op,
                right_attr,
            },
        };
        in_tree[next] = true;
    }
    Some(tree)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_dead_zone_and_threshold() {
        let p = AdaptivePolicy {
            enabled: true,
            error_threshold: 4.0,
            min_rows: 100.0,
            ..Default::default()
        };
        // Inside the dead zone: 10 vs 90 rows is 9x off but only 80 rows.
        assert!(!p.triggers(10.0, 90.0));
        // Outside the dead zone and over the threshold, both directions.
        assert!(p.triggers(100.0, 5000.0));
        assert!(p.triggers(5000.0, 100.0));
        // Outside the dead zone but under the threshold.
        assert!(!p.triggers(1000.0, 2000.0));
    }

    #[test]
    fn event_renders_the_roadmap_line() {
        let e = ReplanEvent {
            wrapper: "s".into(),
            predicted_rows: 1000.0,
            observed_rows: 800_000.0,
            old_cost_ms: 1234.0,
            new_cost_ms: 56.0,
            switched: true,
            engine: "two_phase",
        };
        let line = e.render();
        assert!(line.starts_with("re-optimized: predicted 1000 rows, observed 800k"));
        assert!(line.contains("switched join order"));
    }
}

//! Tier-1 slice of the chaos soak: a small seed × query matrix runs on
//! every `cargo test`, the full 8-seed soak lives in the `chaos_soak`
//! binary (CI's `chaos` job).

use disco_bench::chaos;

#[test]
fn chaotic_answers_match_the_fault_free_oracle() {
    for seed in [1u64, 2] {
        let rep = chaos::run_seed(seed, 24);
        assert!(
            rep.passed(),
            "seed {seed} diverged from the oracle: {:#?}\nreplay: \
             cargo run --release -p disco-bench --bin chaos_soak -- {seed}",
            rep.mismatches
        );
        assert_eq!(rep.complete + rep.partial, 24);
    }
}

#[test]
fn streaming_chaotic_answers_match_the_fault_free_oracle() {
    for seed in [1u64, 2] {
        let rep = chaos::run_seed_streaming(seed, 24);
        assert!(
            rep.passed(),
            "seed {seed} (streaming) diverged from the oracle: {:#?}",
            rep.mismatches
        );
        assert_eq!(rep.complete + rep.partial, 24);
        // The streamed run degrades exactly like the two-phase run: same
        // per-query completeness, same failovers.
        let two_phase = chaos::run_seed(seed, 24);
        assert_eq!(rep.complete, two_phase.complete, "seed {seed}");
        assert_eq!(rep.partial, two_phase.partial, "seed {seed}");
        assert_eq!(rep.failovers, two_phase.failovers, "seed {seed}");
    }
}

#[test]
fn same_seed_produces_identical_transcripts() {
    let a = chaos::run_seed(7, 18);
    let b = chaos::run_seed(7, 18);
    assert_eq!(a, b, "chaos runs must be deterministic per seed");
}

#[test]
fn fault_free_seedless_run_is_fully_complete() {
    // Seed 0 may still draw fault windows; what must hold everywhere:
    // nothing straggler-hedges (failover-only posture) and every query
    // matches its oracle.
    let rep = chaos::run_seed(0, chaos::QUERIES.len());
    assert!(rep.passed(), "{:#?}", rep.mismatches);
    assert_eq!(rep.hedges, 0, "straggler timer must never fire under chaos");
}

#[test]
fn adaptive_chaotic_answers_match_the_fault_free_oracle() {
    for seed in [1u64, 2] {
        let rep = chaos::run_seed_adaptive(seed, 24);
        assert!(
            rep.passed(),
            "seed {seed} (adaptive) diverged from the oracle: {:#?}",
            rep.mismatches
        );
        assert_eq!(rep.complete + rep.partial, 24);
        // Determinism holds with the re-planner in the loop.
        assert_eq!(rep, chaos::run_seed_adaptive(seed, 24), "seed {seed}");
    }
}

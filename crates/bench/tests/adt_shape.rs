//! E10 shape assertion: exporting an expensive ADT predicate cost changes
//! the chosen plan and avoids a large measured penalty.

use disco_common::{AttributeDef, DataType, Schema, Value};
use disco_mediator::Mediator;
use disco_sources::{CollectionBuilder, CostProfile, PagedStore};
use disco_wrapper::SourceWrapper;

const IMAGES: i64 = 500;

fn image_store() -> PagedStore {
    let profile = CostProfile {
        cpu_pred_ms: 500.0,
        ..CostProfile::object_store()
    };
    let mut s = PagedStore::new("img", profile);
    s.add_collection(
        "Images",
        CollectionBuilder::new(Schema::new(vec![
            AttributeDef::new("img_id", DataType::Long),
            AttributeDef::new("quality", DataType::Long),
        ]))
        .rows((0..IMAGES).map(|i| vec![Value::Long(i), Value::Long((i * 37) % 100)]))
        .object_size(4_096)
        .index("img_id"),
    )
    .expect("load");
    s
}

fn run(export: &str) -> f64 {
    let mut m = Mediator::new();
    m.register(Box::new(
        SourceWrapper::new("img", image_store()).with_cost_rules(export),
    ))
    .expect("register");
    m.query("SELECT img_id FROM Images WHERE quality > 90")
        .expect("runs")
        .measured_ms
}

#[test]
fn exported_adt_cost_avoids_the_trap() {
    let generic = run("");
    let blended = run("let CpuPred = 500;");
    // The ADT-aware plan avoids per-object source predicates and is far
    // cheaper in measured (simulated) time.
    assert!(
        generic > 2.0 * blended,
        "generic {generic} vs blended {blended}"
    );
}

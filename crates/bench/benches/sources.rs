//! Micro-benches of the simulated source substrate: B+-tree
//! operations and subplan execution.

use disco_bench::micro::Micro;

use disco_algebra::CompareOp;
use disco_common::Value;
use disco_oo7::{index_scan_selectivity, Oo7Config};
use disco_sources::{BPlusTree, DataSource};

fn bench_btree(c: &mut Micro) {
    let tree = BPlusTree::build((0..100_000i64).map(|i| (Value::Long(i), i as u32)));
    c.bench_function("btree_lookup", |b| {
        let mut k = 0i64;
        b.iter(|| {
            k = (k + 7_919) % 100_000;
            tree.lookup(&Value::Long(k)).len()
        })
    });
    c.bench_function("btree_range_1pct", |b| {
        b.iter(|| tree.scan(CompareOp::Lt, &Value::Long(1_000)).unwrap().len())
    });
}

fn bench_index_scan(c: &mut Micro) {
    let config = Oo7Config::small();
    let store = disco_oo7::build_store(&config).unwrap();
    let plan = index_scan_selectivity("oo7", &config, 0.1);
    c.bench_function("paged_store_index_scan_10pct", |b| {
        b.iter(|| store.execute(&plan).unwrap().stats.pages_read)
    });
}

fn main() {
    let mut c = Micro::from_args();
    bench_btree(&mut c);
    bench_index_scan(&mut c);
}

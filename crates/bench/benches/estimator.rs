//! Micro-benches of the cost estimator (E5 companion): plan
//! estimation latency under growing registered-rule counts, with and
//! without matching-relevant scopes.

use disco_bench::micro::{BenchmarkId, Micro};

use disco_core::{EstimateOptions, Estimator, Provenance, RuleRegistry};
use disco_costlang::{compile_document, parse_document};
use disco_oo7::{index_scan_selectivity, Oo7Config};
use disco_sources::DataSource;
use disco_wrapper::{SourceWrapper, Wrapper};

fn env_with_rules(n_rules: usize) -> (disco_catalog::Catalog, RuleRegistry) {
    let config = Oo7Config::small();
    let store = disco_oo7::build_store(&config).unwrap();
    let wrapper = SourceWrapper::new("oo7", store);
    let reg_payload = wrapper.registration().unwrap();

    let mut catalog = disco_catalog::Catalog::new();
    catalog
        .register_wrapper("oo7", reg_payload.capabilities.clone())
        .unwrap();
    for (c, s, st) in &reg_payload.collections {
        catalog
            .register_collection("oo7", c.clone(), s.clone(), st.clone())
            .unwrap();
    }
    let mut registry = RuleRegistry::with_default_model();
    // Register n query-scope rules for distinct constants (the
    // "proliferation of query-specific cost rules" of §3.3.2).
    let mut doc = String::new();
    for i in 0..n_rules {
        doc.push_str(&format!(
            "rule select(AtomicParts, Id = {i}) {{ TotalTime = {i}; }}\n"
        ));
    }
    let compiled = compile_document(&parse_document(&doc).unwrap()).unwrap();
    for rule in compiled.rules {
        registry
            .register_compiled(Provenance::Wrapper("oo7".into()), rule)
            .unwrap();
    }
    let _ = wrapper.source().statistics("AtomicParts");
    (catalog, registry)
}

fn bench_estimation(c: &mut Micro) {
    let config = Oo7Config::small();
    let plan = index_scan_selectivity("oo7", &config, 0.3);
    let mut group = c.benchmark_group("estimate_under_rule_load");
    for n in [0usize, 100, 1_000, 5_000] {
        let (catalog, registry) = env_with_rules(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let est = Estimator::new(&registry, &catalog);
            b.iter(|| {
                est.estimate_report(&plan, &EstimateOptions::default())
                    .unwrap()
                    .unwrap()
                    .cost
                    .total_time
            });
        });
    }
    group.finish();
}

fn bench_matching(c: &mut Micro) {
    use disco_core::pattern::match_head;
    let config = Oo7Config::small();
    let plan = index_scan_selectivity("oo7", &config, 0.3);
    let doc =
        compile_document(&parse_document("rule select($C, $A < $V) { TotalTime = 1; }").unwrap())
            .unwrap();
    let head = doc.rules[0].head.clone();
    c.bench_function("match_head_select", |b| {
        b.iter(|| match_head(&head, &plan, None).is_some())
    });
}

fn main() {
    let mut c = Micro::from_args();
    bench_estimation(&mut c);
    bench_matching(&mut c);
}

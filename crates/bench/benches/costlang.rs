//! Micro-benches of the cost communication language: parse,
//! compile, and VM evaluation throughput — the paper ships compiled
//! formulas precisely because "fast evaluation times are a requirement
//! due to the computational intensity of query optimization" (§2.4).

use disco_bench::micro::Micro;

use disco_common::Value;
use disco_costlang::ast::PathLeaf;
use disco_costlang::bytecode::{AttrSpec, CollSpec};
use disco_costlang::{compile_document, eval_program, parse_document, CostVar, EvalEnv};

const YAO_DOC: &str = r#"
let PageSize = 4096;
let IO = 25.0;
let Output = 9.0;
rule select(AtomicParts, Id < $V) {
    let CountPage = AtomicParts.TotalSize / PageSize;
    CountObject = AtomicParts.CountObject * selectivity("Id", $V);
    TotalSize = CountObject * AtomicParts.ObjectSize;
    TimeFirst = 145;
    TimeNext = Output;
    TotalTime = IO * yao(CountObject, CountPage) + CountObject * Output;
}
"#;

struct BenchEnv;

impl EvalEnv for BenchEnv {
    fn path(&self, _c: &CollSpec, _a: Option<&AttrSpec>, leaf: PathLeaf) -> Option<Value> {
        Some(match leaf {
            PathLeaf::Stat(disco_catalog::StatName::TotalSize) => Value::Double(3_920_000.0),
            PathLeaf::Stat(disco_catalog::StatName::ObjectSize) => Value::Double(56.0),
            PathLeaf::Stat(_) => Value::Double(70_000.0),
            PathLeaf::Cost(_) => Value::Double(70_000.0),
        })
    }
    fn binding(&self, _n: &str) -> Option<Value> {
        Some(Value::Long(7_000))
    }
    fn param(&self, name: &str) -> Option<Value> {
        Some(Value::Double(match name {
            "PageSize" => 4_096.0,
            "IO" => 25.0,
            _ => 9.0,
        }))
    }
    fn self_var(&self, _v: CostVar) -> Option<f64> {
        None
    }
    fn call(&self, func: &str, args: &[Value]) -> Option<Value> {
        match func {
            "selectivity" => Some(Value::Double(0.1)),
            "yao" => {
                let (k, m) = (args[0].as_f64()?, args[1].as_f64()?);
                Some(Value::Double(m * (1.0 - (-k / m).exp())))
            }
            _ => None,
        }
    }
}

fn bench_parse_compile(c: &mut Micro) {
    c.bench_function("parse_document_yao", |b| {
        b.iter(|| parse_document(YAO_DOC).unwrap())
    });
    let parsed = parse_document(YAO_DOC).unwrap();
    c.bench_function("compile_document_yao", |b| {
        b.iter(|| compile_document(&parsed).unwrap())
    });
}

fn bench_vm(c: &mut Micro) {
    let compiled = compile_document(&parse_document(YAO_DOC).unwrap()).unwrap();
    let body = &compiled.rules[0].body;
    let env = BenchEnv;
    c.bench_function("vm_eval_yao_rule", |b| {
        b.iter(|| eval_program(&body.program, &env).unwrap())
    });
}

fn main() {
    let mut c = Micro::from_args();
    bench_parse_compile(&mut c);
    bench_vm(&mut c);
}

//! Table formatting and error metrics for experiment output.

/// A simple fixed-width table printer.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&format!("{c:>width$}", width = widths[i]));
            }
            out.push('\n');
        };
        fmt_row(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }
}

/// Mean and maximum absolute relative error of estimates vs measurements.
///
/// Pairs with a zero measurement are skipped.
pub fn error_stats(pairs: &[(f64, f64)]) -> (f64, f64) {
    let mut sum = 0.0;
    let mut max: f64 = 0.0;
    let mut n = 0usize;
    for (estimate, measured) in pairs {
        if *measured == 0.0 {
            continue;
        }
        let rel = ((estimate - measured) / measured).abs();
        sum += rel;
        max = max.max(rel);
        n += 1;
    }
    if n == 0 {
        (0.0, 0.0)
    } else {
        (sum / n as f64, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["sel", "time"]);
        t.row(vec!["0.1".into(), "69.2".into()]);
        t.row(vec!["0.70".into(), "466.0".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("sel") && lines[0].contains("time"));
        assert!(lines[3].trim_start().starts_with("0.70"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn error_stats_mean_and_max() {
        let (mean, max) = error_stats(&[(110.0, 100.0), (80.0, 100.0), (100.0, 0.0)]);
        assert!((mean - 0.15).abs() < 1e-12);
        assert!((max - 0.2).abs() < 1e-12);
        assert_eq!(error_stats(&[]), (0.0, 0.0));
    }
}

//! Minimal micro-benchmark harness (criterion-shaped, dependency-free).
//!
//! The workspace builds in offline environments, so the Criterion
//! dependency was replaced by this small harness exposing the subset of
//! its API the benches use: [`Micro::bench_function`], benchmark groups
//! with [`Group::bench_with_input`], and [`Bencher::iter`]. Passing
//! `--test` (as CI's `cargo bench -- --test` smoke step does) runs every
//! body exactly once instead of measuring.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target measuring time per benchmark.
const MEASURE_FOR: Duration = Duration::from_millis(200);
/// Warm-up time before measurement.
const WARMUP_FOR: Duration = Duration::from_millis(50);

/// The harness: construct with [`Micro::from_args`] in `main`.
pub struct Micro {
    test_mode: bool,
}

impl Micro {
    /// Parse harness flags (`--test` = smoke mode). Unknown flags are
    /// ignored so `cargo bench`'s `--bench` pass-through is harmless.
    pub fn from_args() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Micro { test_mode }
    }

    /// Benchmark one closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut b = Bencher {
            test_mode: self.test_mode,
            ns_per_iter: 0.0,
            iters: 0,
        };
        f(&mut b);
        report(name, &b);
    }

    /// Start a named group (purely a label prefix).
    pub fn benchmark_group(&mut self, name: &str) -> Group<'_> {
        Group {
            micro: self,
            name: name.to_owned(),
        }
    }
}

/// A labelled group of benchmarks.
pub struct Group<'a> {
    micro: &'a mut Micro,
    name: String,
}

impl Group<'_> {
    /// Benchmark one closure with an input parameter label.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        let mut b = Bencher {
            test_mode: self.micro.test_mode,
            ns_per_iter: 0.0,
            iters: 0,
        };
        f(&mut b, input);
        report(&label, &b);
    }

    /// End the group (no-op; kept for criterion API compatibility).
    pub fn finish(self) {}
}

/// A benchmark parameter label.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Label from the parameter's `Display` form.
    pub fn from_parameter(p: impl std::fmt::Display) -> Self {
        BenchmarkId(p.to_string())
    }
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the body.
pub struct Bencher {
    test_mode: bool,
    ns_per_iter: f64,
    iters: u64,
}

impl Bencher {
    /// Measure the closure (or run it once in `--test` smoke mode).
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut body: F) {
        if self.test_mode {
            black_box(body());
            self.iters = 1;
            return;
        }
        // Warm up.
        let start = Instant::now();
        while start.elapsed() < WARMUP_FOR {
            black_box(body());
        }
        // Measure in growing batches until the time budget is spent.
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        let mut batch: u64 = 1;
        while total < MEASURE_FOR {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(body());
            }
            total += t0.elapsed();
            iters += batch;
            batch = (batch * 2).min(1 << 20);
        }
        self.ns_per_iter = total.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

fn report(name: &str, b: &Bencher) {
    if b.iters <= 1 {
        println!("{name:<44} ok (smoke)");
    } else {
        println!(
            "{name:<44} {:>12.1} ns/iter ({} iters)",
            b.ns_per_iter, b.iters
        );
    }
}

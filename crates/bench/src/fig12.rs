//! Experiment E1/E2 — Figure 12: "Validation on OO7: Index Scan".
//!
//! Response time of an index scan over `AtomicParts` as selectivity
//! varies, three series:
//!
//! * **Experiment** — the simulated ObjectStore actually executes the
//!   scan: the store fetches each qualifying object's page through a cold
//!   buffer pool (25 ms per fault) and delivers each object (9 ms);
//! * **Calibration** — the mediator's generic model, whose index-scan
//!   formula assumes pages fetched ∝ objects fetched;
//! * **Yao formula** — the wrapper-exported Figure 13 rule, parsed,
//!   compiled to bytecode and evaluated by the mediator's VM.

use disco_common::Result;
use disco_core::{Estimator, NodeCost};
use disco_oo7::{index_scan_selectivity, rules, Oo7Config};
use disco_sources::DataSource;

use crate::setup::oo7_env;

/// One row of the Figure 12 reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig12Row {
    pub selectivity: f64,
    /// Measured (simulated execution) response time, seconds.
    pub experiment_s: f64,
    /// Generic calibrated estimate, seconds.
    pub calibration_s: f64,
    /// Wrapper Yao-rule estimate, seconds.
    pub yao_s: f64,
    /// Pages actually faulted by the run.
    pub pages_touched: u64,
    /// Yao's formula evaluated at the returned cardinality: the page
    /// count the cost model believes the run faulted.
    pub predicted_pages: f64,
    /// Relative error of `predicted_pages` against `pages_touched`
    /// (`None` when no page was touched but pages were predicted).
    pub pages_error: Option<f64>,
    /// Objects returned.
    pub objects: usize,
}

/// Run the Figure 12 sweep at the given selectivities.
pub fn run_fig12(config: &Oo7Config, selectivities: &[f64]) -> Result<Vec<Fig12Row>> {
    // Two registered environments over the same store: one with no
    // wrapper rules (pure calibration) and one with the Figure 13 rules.
    let cal = oo7_env(config, &rules::calibrated())?;
    let yao = oo7_env(config, &rules::yao_rules())?;
    let cal_est = Estimator::new(&cal.registry, &cal.catalog);
    let yao_est = Estimator::new(&yao.registry, &yao.catalog);

    let mut rows = Vec::with_capacity(selectivities.len());
    for &sel in selectivities {
        let plan = index_scan_selectivity("oo7", config, sel);
        let answer = cal.store.execute(&plan)?;
        let calibration = cal_est.estimate(&plan)?;
        let yao_cost: NodeCost = yao_est.estimate(&plan)?;
        let predicted_pages = disco_core::yao::yao_pages_exact(
            config.atomic_parts as u64,
            config.atomic_pages(),
            answer.tuples.len() as u64,
        );
        rows.push(Fig12Row {
            selectivity: sel,
            experiment_s: answer.stats.elapsed_ms / 1_000.0,
            calibration_s: calibration.total_time / 1_000.0,
            yao_s: yao_cost.total_time / 1_000.0,
            pages_touched: answer.stats.pages_read,
            predicted_pages,
            pages_error: disco_core::relative_error(
                predicted_pages,
                answer.stats.pages_read as f64,
            ),
            objects: answer.tuples.len(),
        });
    }
    Ok(rows)
}

/// The paper's x-axis: selectivity 0 → 0.7.
pub fn paper_selectivities() -> Vec<f64> {
    vec![0.01, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::error_stats;

    /// The shape assertions of DESIGN.md §3 (E1), on the small config so
    /// the test stays fast.
    #[test]
    fn figure_12_shape_holds() {
        let config = Oo7Config::small();
        let rows = run_fig12(&config, &[0.005, 0.02, 0.1, 0.3, 0.5, 0.7]).unwrap();

        // Yao estimate tracks the experiment closely (< 5% mean error).
        let yao_pairs: Vec<(f64, f64)> = rows.iter().map(|r| (r.yao_s, r.experiment_s)).collect();
        let (yao_mean, _) = error_stats(&yao_pairs);
        assert!(yao_mean < 0.05, "Yao mean relative error {yao_mean}");

        // Calibration over-estimates grossly at high selectivity…
        let last = rows.last().unwrap();
        assert!(
            last.calibration_s > 2.0 * last.experiment_s,
            "calibration {} vs experiment {}",
            last.calibration_s,
            last.experiment_s
        );
        // …and its error grows with selectivity.
        let cal_errs: Vec<f64> = rows
            .iter()
            .map(|r| (r.calibration_s - r.experiment_s) / r.experiment_s)
            .collect();
        assert!(
            cal_errs.windows(2).all(|w| w[1] >= w[0] - 0.05),
            "calibration error not growing: {cal_errs:?}"
        );

        // Yao's page prediction lands within 15 % of the pages the
        // simulated random placement actually faulted, per selectivity.
        for r in &rows {
            let err = r.pages_error.expect("pages touched");
            assert!(
                err.abs() < 0.15,
                "sel {}: Yao predicted {:.1} pages, measured {} ({:+.1}%)",
                r.selectivity,
                r.predicted_pages,
                r.pages_touched,
                err * 100.0
            );
        }

        // The experiment curve is concave: page faults saturate, so the
        // per-selectivity slope before saturation (sel < 1/objects-per-
        // page regime) far exceeds the slope afterwards.
        assert!(rows.last().unwrap().pages_touched <= 100);
        let early_slope = (rows[1].experiment_s - rows[0].experiment_s) / (0.02 - 0.005);
        let late_slope = (rows[5].experiment_s - rows[4].experiment_s) / (0.7 - 0.5);
        assert!(
            early_slope > 1.5 * late_slope,
            "experiment curve not concave: early {early_slope}, late {late_slope}"
        );
    }

    #[test]
    fn experiment_is_deterministic() {
        let config = Oo7Config::small();
        let a = run_fig12(&config, &[0.2]).unwrap();
        let b = run_fig12(&config, &[0.2]).unwrap();
        assert_eq!(a, b);
    }
}

//! Experiment harness for the paper's evaluation (DESIGN.md §3).
//!
//! Each experiment id (E1–E7) has a library runner here — so integration
//! tests can assert on the *shapes* the paper reports — and a binary under
//! `src/bin/` that prints the same rows the paper's figure/table shows.

pub mod chaos;
pub mod fig12;
pub mod historical;
pub mod micro;
pub mod plan_quality;
pub mod report;
pub mod serving;
pub mod setup;
pub mod store_bench;

pub use fig12::{run_fig12, Fig12Row};
pub use plan_quality::{run_plan_quality, PlanQualityRow};
pub use report::{error_stats, Table};

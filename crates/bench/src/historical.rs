//! Experiment E6 — historical costs and parameter adjustment (§4.3.1).

use disco_common::Result;
use disco_core::{fit_param, Estimator, HistoryRecorder, NodeCost, ParamAdjuster};
use disco_oo7::{index_scan_selectivity, rules, Oo7Config};
use disco_sources::DataSource;

use crate::setup::oo7_env;

/// Error of the estimate for one subquery before and after the
/// subquery's real cost was recorded as a query-scope rule.
#[derive(Debug, Clone)]
pub struct HistoryRow {
    pub selectivity: f64,
    pub measured_s: f64,
    pub estimate_before_s: f64,
    /// Re-estimate after recording THIS subquery.
    pub estimate_after_s: f64,
    /// Estimate of a *perturbed* subquery (different constant) after
    /// recording — shows the cache does not generalize (the limitation
    /// the paper notes).
    pub perturbed_estimate_s: f64,
    pub perturbed_measured_s: f64,
}

/// Run the history experiment over a selectivity set.
pub fn run_history(config: &Oo7Config, selectivities: &[f64]) -> Result<Vec<HistoryRow>> {
    let mut env = oo7_env(config, &rules::calibrated())?;
    let mut recorder = HistoryRecorder::new();
    let mut rows = Vec::new();
    for &sel in selectivities {
        let plan = index_scan_selectivity("oo7", config, sel);
        let perturbed = index_scan_selectivity("oo7", config, sel * 0.9);

        let before = Estimator::new(&env.registry, &env.catalog).estimate(&plan)?;
        let answer = env.store.execute(&plan)?;
        let measured = NodeCost {
            time_first: answer.stats.time_first_ms,
            time_next: 0.0,
            total_time: answer.stats.elapsed_ms,
            count_object: answer.tuples.len() as f64,
            total_size: answer
                .tuples
                .iter()
                .map(disco_common::Tuple::width)
                .sum::<u64>() as f64,
        };
        recorder.record(&mut env.registry, "oo7", &plan, measured)?;

        let est = Estimator::new(&env.registry, &env.catalog);
        let after = est.estimate(&plan)?;
        let perturbed_est = est.estimate(&perturbed)?;
        let perturbed_ans = env.store.execute(&perturbed)?;

        rows.push(HistoryRow {
            selectivity: sel,
            measured_s: answer.stats.elapsed_ms / 1_000.0,
            estimate_before_s: before.total_time / 1_000.0,
            estimate_after_s: after.total_time / 1_000.0,
            perturbed_estimate_s: perturbed_est.total_time / 1_000.0,
            perturbed_measured_s: perturbed_ans.stats.elapsed_ms / 1_000.0,
        });
    }
    Ok(rows)
}

/// Parameter adjustment: fit the wrapper's `IO` parameter so the Figure 13
/// formula's estimate matches one observed execution, then report the
/// estimate error across the whole sweep with the adjusted parameter.
/// Returns (mean error before, mean error after).
pub fn run_param_adjustment(config: &Oo7Config) -> Result<(f64, f64)> {
    // Start from a *mis-calibrated* wrapper document: IO twice reality.
    let doc = rules::yao_rules().replace("let IO = 25.0;", "let IO = 50.0;");
    let mut env = oo7_env(config, &doc)?;

    let sweep = [0.05, 0.1, 0.2, 0.4, 0.6];
    let measure = |env: &crate::setup::Oo7Env, sel: f64| -> Result<(f64, f64)> {
        let plan = index_scan_selectivity("oo7", config, sel);
        let est = Estimator::new(&env.registry, &env.catalog).estimate(&plan)?;
        let ans = env.store.execute(&plan)?;
        Ok((est.total_time, ans.stats.elapsed_ms))
    };

    let mut before_pairs = Vec::new();
    for &sel in &sweep {
        before_pairs.push(measure(&env, sel)?);
    }

    // Observe one execution at sel = 0.2 and fit IO (the formula is
    // monotone in IO).
    let calib_sel = 0.2;
    let observed = {
        let plan = index_scan_selectivity("oo7", config, calib_sel);
        env.store.execute(&plan)?.stats.elapsed_ms
    };
    let fitted = fit_param(
        |io| {
            let mut trial = env.registry.clone();
            trial
                .wrapper_params_mut("oo7")
                .set("IO", disco_common::Value::Double(io));
            let plan = index_scan_selectivity("oo7", config, calib_sel);
            Estimator::new(&trial, &env.catalog)
                .estimate(&plan)
                .map(|c| c.total_time)
                .unwrap_or(f64::INFINITY)
        },
        observed,
        1.0,
        200.0,
    )
    .expect("bracket is valid");
    ParamAdjuster::store_param(&mut env.registry, "oo7", "IO", fitted);

    let mut after_pairs = Vec::new();
    for &sel in &sweep {
        after_pairs.push(measure(&env, sel)?);
    }

    let (before_err, _) = crate::report::error_stats(&before_pairs);
    let (after_err, _) = crate::report::error_stats(&after_pairs);
    Ok((before_err, after_err))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorded_subqueries_estimate_exactly() {
        let config = Oo7Config::small();
        let rows = run_history(&config, &[0.1, 0.4]).unwrap();
        for r in &rows {
            // After recording, the estimate IS the measurement.
            assert!((r.estimate_after_s - r.measured_s).abs() < 1e-9, "{r:?}");
            // The perturbed query is NOT served by the cache; its estimate
            // stays at calibration quality (over-estimate at these sels).
            assert!(
                (r.perturbed_estimate_s - r.perturbed_measured_s).abs()
                    > (r.estimate_after_s - r.measured_s).abs() + 1e-9,
                "{r:?}"
            );
        }
    }

    #[test]
    fn param_adjustment_reduces_error() {
        let config = Oo7Config::small();
        let (before, after) = run_param_adjustment(&config).unwrap();
        assert!(after < before, "before {before}, after {after}");
        assert!(after < 0.1, "adjusted error still {after}");
    }
}

//! Experiment E4 — end-to-end optimizer benefit.
//!
//! The mediator must decide whether to push a selection into the wrapper
//! (index scan at the source, few tuples shipped) or fetch the collection
//! and filter locally. The generic model's linear index-scan formula
//! over-prices the pushdown at moderate selectivities and flips to the
//! fetch-all plan far too early; the wrapper's Yao rule keeps the
//! estimate honest. We measure the *executed* time of each model's chosen
//! plan and compare with the oracle (cheapest measured plan).

use disco_common::Result;
use disco_mediator::Mediator;
use disco_oo7::{build_store, rules, Oo7Config};
use disco_wrapper::SourceWrapper;

/// One sweep point.
#[derive(Debug, Clone)]
pub struct PlanQualityRow {
    pub selectivity: f64,
    /// Measured time of the generic-model mediator's chosen plan (s).
    pub generic_s: f64,
    /// Did the generic-model mediator push the selection down?
    pub generic_pushed: bool,
    /// Measured time of the blended-model mediator's chosen plan (s).
    pub blended_s: f64,
    /// Did the blended-model mediator push the selection down?
    pub blended_pushed: bool,
    /// Best measured time over both choices (s).
    pub oracle_s: f64,
}

fn mediator_with(config: &Oo7Config, cost_doc: &str) -> Result<Mediator> {
    let mut m = Mediator::new();
    m.register(Box::new(
        SourceWrapper::new("oo7", build_store(config)?).with_cost_rules(cost_doc),
    ))?;
    Ok(m)
}

/// Whether the chosen plan pushes a selection into the wrapper.
fn pushes_select(plan: &disco_algebra::PhysicalPlan) -> bool {
    use disco_algebra::{LogicalPlan, PhysicalPlan};
    fn submitted_has_select(p: &LogicalPlan) -> bool {
        matches!(p, LogicalPlan::Select { .. })
            || p.children().iter().any(|c| submitted_has_select(c))
    }
    fn walk(p: &PhysicalPlan) -> bool {
        if let PhysicalPlan::SubmitRemote { plan, .. } = p {
            if submitted_has_select(plan) {
                return true;
            }
        }
        p.children().iter().any(|c| walk(c))
    }
    walk(plan)
}

/// Run the sweep: for each selectivity, plan + execute the same query
/// under both models.
pub fn run_plan_quality(config: &Oo7Config, selectivities: &[f64]) -> Result<Vec<PlanQualityRow>> {
    let mut generic = mediator_with(config, &rules::calibrated())?;
    let mut blended = mediator_with(config, &rules::yao_rules())?;

    let mut rows = Vec::new();
    for &sel in selectivities {
        let k = (sel * config.atomic_parts as f64).round() as i64;
        let sql = format!("SELECT X FROM AtomicParts WHERE Id < {k}");

        let gplan = generic.plan(&sql)?;
        let generic_pushed = pushes_select(&gplan.physical);
        let gres = generic.execute_plan(gplan)?;

        let bplan = blended.plan(&sql)?;
        let blended_pushed = pushes_select(&bplan.physical);
        let bres = blended.execute_plan(bplan)?;

        rows.push(PlanQualityRow {
            selectivity: sel,
            generic_s: gres.measured_ms / 1_000.0,
            generic_pushed,
            blended_s: bres.measured_ms / 1_000.0,
            blended_pushed,
            oracle_s: gres.measured_ms.min(bres.measured_ms) / 1_000.0,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blended_never_loses_and_sometimes_wins() {
        let config = Oo7Config::small();
        let rows = run_plan_quality(&config, &[0.05, 0.35, 0.6]).unwrap();
        for r in &rows {
            assert!(
                r.blended_s <= r.generic_s * 1.05,
                "blended {} worse than generic {} at sel {}",
                r.blended_s,
                r.generic_s,
                r.selectivity
            );
            assert!(r.blended_s <= r.oracle_s * 1.05);
        }
        // At some moderate selectivity the generic model flips to the
        // fetch-all plan while Yao keeps pushing — with a real measured
        // penalty.
        let flipped: Vec<&PlanQualityRow> = rows
            .iter()
            .filter(|r| !r.generic_pushed && r.blended_pushed)
            .collect();
        assert!(
            !flipped.is_empty(),
            "expected the generic model to mis-plan somewhere: {rows:?}"
        );
        for r in flipped {
            assert!(
                r.generic_s > 1.5 * r.blended_s,
                "expected a real penalty at sel {}: {} vs {}",
                r.selectivity,
                r.generic_s,
                r.blended_s
            );
        }
    }
}

//! E4 — optimizer plan quality: generic-only vs blended cost model.
//!
//! The mediator chooses between pushing a selection into the wrapper
//! (index scan at the source) and fetching the collection to filter
//! locally. The generic model's linear index-scan formula flips to the
//! fetch-all plan too early; the wrapper's Yao rule keeps the pushdown.
//! We report *measured* execution times of each model's chosen plan.
//!
//! ```text
//! cargo run --release -p disco-bench --bin plan_quality
//! ```

use disco_bench::{run_plan_quality, Table};
use disco_oo7::Oo7Config;

fn main() {
    let config = Oo7Config::paper();
    let sels = [0.05, 0.15, 0.25, 0.35, 0.45, 0.6, 0.75, 0.9];
    let rows = run_plan_quality(&config, &sels).expect("runs");

    println!("E4 — measured execution time of the chosen plan (seconds)\n");
    let mut t = Table::new(&[
        "selectivity",
        "generic model",
        "gen. pushed?",
        "blended model",
        "bl. pushed?",
        "oracle",
        "generic/oracle",
    ]);
    for r in &rows {
        t.row(vec![
            format!("{:.2}", r.selectivity),
            format!("{:.1}", r.generic_s),
            if r.generic_pushed { "yes" } else { "no" }.into(),
            format!("{:.1}", r.blended_s),
            if r.blended_pushed { "yes" } else { "no" }.into(),
            format!("{:.1}", r.oracle_s),
            format!("{:.2}x", r.generic_s / r.oracle_s),
        ]);
    }
    println!("{}", t.render());
    let worst = rows
        .iter()
        .map(|r| r.generic_s / r.oracle_s)
        .fold(0.0f64, f64::max);
    println!("worst generic-model slowdown vs oracle: {worst:.2}x");
    println!(
        "blended model matches the oracle at every point: {}",
        rows.iter().all(|r| r.blended_s <= r.oracle_s * 1.01)
    );
}

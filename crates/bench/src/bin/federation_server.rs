//! Multi-tenant federation server: a TCP front end over the shared
//! concurrent mediator ([`disco_mediator::SharedMediator`]) with the
//! cost-driven admission controller gating every query.
//!
//! Line protocol (one request per line, UTF-8):
//!
//! * `TENANT <name>` — set the connection's tenant (default `default`);
//!   reply `OK tenant <name>`.
//! * `SHUTDOWN` — reply `OK bye`, then stop accepting connections and
//!   drain in-flight handlers.
//! * anything else — treated as SQL. Reply `OK <rows> <plan-source>
//!   <class> <wait-ms>` followed by one `ROW <tab-separated values>`
//!   line per tuple and a final `END`, or `ERR <message>`.
//!
//! Modes:
//!
//! * `federation_server --port <n>` — serve on 127.0.0.1:<n> until a
//!   client sends `SHUTDOWN`.
//! * `federation_server --smoke` — bind an ephemeral port, drive four
//!   concurrent clients through a short mixed workload over real TCP,
//!   shut down cleanly, and exit 0 (used by the CI serving smoke job).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use disco_bench::serving::{admission_policy, mixed_sql, shared_federation, tenant_name};
use disco_mediator::{AdmissionController, SharedMediator};

struct Server {
    mediator: Arc<SharedMediator>,
    admission: AdmissionController,
    shutdown: AtomicBool,
    served: AtomicU64,
}

impl Server {
    fn new(sleep_scale: f64) -> Server {
        let mediator = shared_federation(sleep_scale);
        let admission = AdmissionController::new(admission_policy(&mediator));
        Server {
            mediator,
            admission,
            shutdown: AtomicBool::new(false),
            served: AtomicU64::new(0),
        }
    }

    /// Answer one SQL line: plan (through the shared cache), classify by
    /// the prediction, admit, execute, render.
    fn serve_sql(&self, tenant: &str, sql: &str, out: &mut impl Write) -> std::io::Result<()> {
        let (plan, source) = match self.mediator.plan(sql) {
            Ok(p) => p,
            Err(e) => return writeln!(out, "ERR {e}"),
        };
        let class = self.admission.policy().classify(plan.estimated.total_time);
        let permit = self.admission.admit(tenant, class);
        let served = match self.mediator.execute(plan) {
            Ok(s) => s,
            Err(e) => return writeln!(out, "ERR {e}"),
        };
        let waited = permit.waited_ms();
        drop(permit);
        self.served.fetch_add(1, Ordering::Relaxed);
        writeln!(
            out,
            "OK {} {:?} {} {:.2}",
            served.result.tuples.len(),
            source,
            class.label(),
            waited
        )?;
        for row in &served.result.tuples {
            let rendered: Vec<String> = row.values().iter().map(|v| format!("{v:?}")).collect();
            writeln!(out, "ROW {}", rendered.join("\t"))?;
        }
        writeln!(out, "END")
    }

    fn handle_connection(&self, stream: TcpStream) -> std::io::Result<()> {
        let mut out = stream.try_clone()?;
        let reader = BufReader::new(stream);
        let mut tenant = "default".to_string();
        for line in reader.lines() {
            let line = line?;
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix("TENANT ") {
                tenant = name.trim().to_string();
                writeln!(out, "OK tenant {tenant}")?;
            } else if line == "SHUTDOWN" {
                writeln!(out, "OK bye")?;
                self.shutdown.store(true, Ordering::SeqCst);
                return Ok(());
            } else {
                self.serve_sql(&tenant, line, &mut out)?;
            }
        }
        Ok(())
    }

    /// Accept loop; returns once `SHUTDOWN` has been seen and all
    /// connection handlers have drained.
    fn run(self: &Arc<Self>, listener: TcpListener) {
        let addr = listener.local_addr().expect("listener has an address");
        let mut handlers = Vec::new();
        for stream in listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            let server = Arc::clone(self);
            handlers.push(std::thread::spawn(move || {
                let _ = server.handle_connection(stream);
                // The shutdown connection unblocks the accept loop so it
                // can observe the flag (a no-op while serving normally).
                if server.shutdown.load(Ordering::SeqCst) {
                    let _ = TcpStream::connect(addr);
                }
            }));
        }
        for h in handlers {
            let _ = h.join();
        }
    }
}

/// Smoke client: one tenant, `queries` mixed statements, counting rows
/// and verifying every reply completes with `END`.
fn smoke_client(addr: std::net::SocketAddr, client: usize, queries: usize) -> (u64, u64) {
    let stream = TcpStream::connect(addr).expect("smoke client connects");
    let mut out = stream.try_clone().expect("stream clones");
    let mut lines = BufReader::new(stream).lines();
    let mut next = || {
        lines
            .next()
            .expect("server keeps the connection open")
            .expect("line reads")
    };
    writeln!(out, "TENANT {}", tenant_name(client)).unwrap();
    assert!(next().starts_with("OK tenant"), "tenant handshake");
    let (mut ok, mut rows) = (0u64, 0u64);
    for j in 0..queries {
        writeln!(out, "{}", mixed_sql(client, j)).unwrap();
        let head = next();
        assert!(head.starts_with("OK "), "query {j} failed: {head}");
        ok += 1;
        loop {
            let line = next();
            if line == "END" {
                break;
            }
            assert!(line.starts_with("ROW "), "unexpected body line: {line}");
            rows += 1;
        }
    }
    (ok, rows)
}

fn run_smoke() {
    let server = Arc::new(Server::new(0.0));
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral bind");
    let addr = listener.local_addr().expect("bound address");
    let accept = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.run(listener))
    };

    const CLIENTS: usize = 4;
    const QUERIES: usize = 32;
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| std::thread::spawn(move || smoke_client(addr, c, QUERIES)))
        .collect();
    let (mut ok, mut rows) = (0u64, 0u64);
    for h in clients {
        let (o, r) = h.join().expect("smoke client joins");
        ok += o;
        rows += r;
    }

    let mut shut = TcpStream::connect(addr).expect("shutdown connect");
    writeln!(shut, "SHUTDOWN").unwrap();
    let mut reply = String::new();
    BufReader::new(shut).read_line(&mut reply).unwrap();
    assert_eq!(reply.trim(), "OK bye", "shutdown acknowledged");
    accept.join().expect("accept loop joins");

    let stats = server.mediator.cache_stats();
    assert_eq!(ok, (CLIENTS * QUERIES) as u64, "every query answered OK");
    assert!(rows > 0, "queries returned rows");
    assert!(
        server.served.load(Ordering::Relaxed) >= ok,
        "server counted the served queries"
    );
    println!(
        "serving smoke: {CLIENTS} clients x {QUERIES} queries over {addr}, \
         {rows} rows, plan cache hit rate {:.3}, clean shutdown",
        stats.hit_rate()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--smoke") => run_smoke(),
        Some("--port") => {
            let port: u16 = args
                .get(1)
                .and_then(|p| p.parse().ok())
                .expect("usage: federation_server --port <n> | --smoke");
            let server = Arc::new(Server::new(0.0));
            let listener = TcpListener::bind(("127.0.0.1", port)).expect("port binds");
            println!(
                "federation server listening on {} ({} wrappers behind admission)",
                listener.local_addr().unwrap(),
                disco_bench::serving::TABLES
            );
            server.run(listener);
            println!(
                "federation server shut down after {} queries",
                server.served.load(Ordering::Relaxed)
            );
        }
        _ => {
            eprintln!("usage: federation_server --port <n> | --smoke");
            std::process::exit(2);
        }
    }
}

//! E1 — Figure 12: "Validation on OO7: Index Scan", at the paper's full
//! scale (70 000 AtomicParts, 1 000 pages).
//!
//! ```text
//! cargo run --release -p disco-bench --bin fig12_index_scan
//! ```

use disco_bench::{error_stats, run_fig12, Table};
use disco_oo7::Oo7Config;

fn main() {
    let config = Oo7Config::paper();
    let sels = disco_bench::fig12::paper_selectivities();
    let rows = run_fig12(&config, &sels).expect("experiment runs");

    println!("Figure 12 — Validation on OO7: Index Scan");
    println!(
        "AtomicParts: {} objects x {} B, {} pages, uniform indexed Id; IO=25ms, Output=9ms\n",
        config.atomic_parts,
        config.atomic_object_size,
        config.atomic_pages()
    );
    let mut t = Table::new(&[
        "selectivity",
        "Experiment (s)",
        "Calibration (s)",
        "Yao formula (s)",
        "pages",
        "pages (Yao)",
        "page err",
        "objects",
    ]);
    for r in &rows {
        t.row(vec![
            format!("{:.2}", r.selectivity),
            format!("{:.1}", r.experiment_s),
            format!("{:.1}", r.calibration_s),
            format!("{:.1}", r.yao_s),
            r.pages_touched.to_string(),
            format!("{:.1}", r.predicted_pages),
            r.pages_error
                .map_or("n/a".into(), |e| format!("{:+.1}%", e * 100.0)),
            r.objects.to_string(),
        ]);
    }
    println!("{}", t.render());

    let cal: Vec<(f64, f64)> = rows
        .iter()
        .map(|r| (r.calibration_s, r.experiment_s))
        .collect();
    let yao: Vec<(f64, f64)> = rows.iter().map(|r| (r.yao_s, r.experiment_s)).collect();
    let (cal_mean, cal_max) = error_stats(&cal);
    let (yao_mean, yao_max) = error_stats(&yao);
    println!(
        "Calibration estimate error: mean {:.1}%  max {:.1}%",
        cal_mean * 100.0,
        cal_max * 100.0
    );
    println!(
        "Yao-rule estimate error:    mean {:.1}%  max {:.1}%",
        yao_mean * 100.0,
        yao_max * 100.0
    );
    let pages: Vec<(f64, f64)> = rows
        .iter()
        .map(|r| (r.predicted_pages, r.pages_touched as f64))
        .collect();
    let (pages_mean, pages_max) = error_stats(&pages);
    println!(
        "Yao page-count error:       mean {:.1}%  max {:.1}%",
        pages_mean * 100.0,
        pages_max * 100.0
    );
    println!(
        "\nShape check: the calibrated linear formula over-estimates once qualifying\n\
         objects share pages; the wrapper-exported Yao rule follows the measured curve."
    );
}

//! E5 — estimation overhead vs registered-rule count (§3.3.2: "the
//! drawback to this expressiveness is the proliferation of query-specific
//! cost rules that tends to slow down the cost estimate process").
//!
//! Registers N query-scope rules and measures wall-clock estimation
//! latency of a fixed plan, plus the estimator's work counters. Also
//! shows the §4.2 cut-off: a constant-formula rule at the root skips the
//! whole subtree.
//!
//! ```text
//! cargo run --release -p disco-bench --bin rule_overhead
//! ```

use std::time::Instant;

use disco_bench::setup::oo7_env;
use disco_bench::Table;
use disco_core::{EstimateOptions, Estimator, Provenance};
use disco_costlang::{compile_document, parse_document};
use disco_oo7::{index_scan_selectivity, rules, Oo7Config};

fn main() {
    let config = Oo7Config::paper();
    let plan = index_scan_selectivity("oo7", &config, 0.3);

    println!("E5 — estimation latency vs registered rule count\n");
    let mut t = Table::new(&["rules", "est. latency (µs)", "nodes visited", "rule evals"]);
    for n in [0usize, 10, 100, 1_000, 10_000] {
        let mut env = oo7_env(&config, &rules::yao_rules()).expect("setup");
        // N query-scope rules for other constants — they must be
        // considered (same operator) but not match.
        let mut doc = String::new();
        for i in 0..n {
            doc.push_str(&format!(
                "rule select(AtomicParts, Id = {}) {{ TotalTime = {i}; }}\n",
                1_000_000 + i as i64
            ));
        }
        let compiled = compile_document(&parse_document(&doc).unwrap()).unwrap();
        for rule in compiled.rules {
            env.registry
                .register_compiled(Provenance::Wrapper("oo7".into()), rule)
                .unwrap();
        }
        let est = Estimator::new(&env.registry, &env.catalog);
        // Warm up, then time.
        let report = est
            .estimate_report(&plan, &EstimateOptions::default())
            .unwrap()
            .unwrap();
        let iters = 200;
        let start = Instant::now();
        for _ in 0..iters {
            let _ = est
                .estimate_report(&plan, &EstimateOptions::default())
                .unwrap()
                .unwrap();
        }
        let us = start.elapsed().as_micros() as f64 / iters as f64;
        t.row(vec![
            n.to_string(),
            format!("{us:.1}"),
            report.nodes_visited.to_string(),
            report.rules_evaluated.to_string(),
        ]);
    }
    println!("{}", t.render());

    // Cut-off demonstration (§4.2): constant root formulas skip children.
    println!("\nrequired-variable cut-off (§4.2):");
    let env = oo7_env(&config, &rules::calibrated()).expect("setup");
    let est = Estimator::new(&env.registry, &env.catalog);
    let full = est
        .estimate_report(&plan, &EstimateOptions::default())
        .unwrap()
        .unwrap();

    let mut env2 = oo7_env(
        &config,
        "rule select($C, $P) {
            CountObject = 10; TotalSize = 560;
            TimeFirst = 1; TimeNext = 1; TotalTime = 100;
        }",
    )
    .expect("setup");
    let _ = &mut env2;
    let est2 = Estimator::new(&env2.registry, &env2.catalog);
    let cut = est2
        .estimate_report(&plan, &EstimateOptions::default())
        .unwrap()
        .unwrap();
    println!(
        "  generic model:       {} nodes visited",
        full.nodes_visited
    );
    println!(
        "  constant-rule model: {} nodes visited (subtree cut)",
        cut.nodes_visited
    );
}

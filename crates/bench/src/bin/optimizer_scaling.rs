//! E11 — join-enumeration scaling: memoized subset DP vs the exhaustive
//! permutation baseline.
//!
//! Sweeps chain queries of 2–10 tables over a synthetic catalog with
//! skewed cardinalities and reports, for each width: complete plans
//! costed, estimator node visits, cache hits and wall time for both
//! enumerators, plus the reduction factors. Besides the table it writes
//! `BENCH_optimizer.json` (machine-readable, consumed by CI as an
//! artifact).
//!
//! ```text
//! cargo run --release -p disco-bench --bin optimizer_scaling
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use disco_bench::Table;
use disco_catalog::{AttributeStats, Capabilities, Catalog, CollectionStats, ExtentStats};
use disco_common::{AttributeDef, DataType, Schema, Value};
use disco_core::RuleRegistry;
use disco_mediator::analyze::analyze;
use disco_mediator::{parse_query, JoinEnumeration, OptimizedPlan, Optimizer, OptimizerOptions};

const MAX_TABLES: usize = 10;

/// Deterministic, deliberately skewed cardinalities: the optimizer has
/// real ordering decisions to make at every width.
const CARDS: [u64; MAX_TABLES] = [500, 120_000, 3_000, 45, 70_000, 900, 25_000, 10, 8_000, 300];

/// A catalog holding chain tables T0..T{n-1}: `T{i}.nxt` joins
/// `T{i+1}.id`.
fn chain_catalog(n: usize) -> Catalog {
    let mut c = Catalog::new();
    c.register_wrapper("rel", Capabilities::full()).unwrap();
    let schema = Schema::new(vec![
        AttributeDef::new("id", DataType::Long),
        AttributeDef::new("nxt", DataType::Long),
    ]);
    for (t, &card) in CARDS.iter().enumerate().take(n) {
        let mut stats = CollectionStats::new(ExtentStats::of(card, 48));
        // Every other table carries an index on `id` so access paths
        // differ too.
        if t % 2 == 0 {
            stats = stats.with_attribute(
                "id",
                AttributeStats::indexed(card, Value::Long(0), Value::Long(card as i64 - 1)),
            );
        }
        c.register_collection("rel", format!("T{t}"), schema.clone(), stats)
            .unwrap();
    }
    c
}

fn chain_sql(n: usize) -> String {
    let from: Vec<String> = (0..n).map(|t| format!("T{t} t{t}")).collect();
    let mut conds: Vec<String> = (0..n - 1)
        .map(|t| format!("t{t}.nxt = t{}.id", t + 1))
        .collect();
    conds.push("t0.id < 250".into());
    format!(
        "SELECT t0.id FROM {} WHERE {}",
        from.join(", "),
        conds.join(" AND ")
    )
}

struct Measured {
    plan: OptimizedPlan,
    wall_ms: f64,
}

fn run(catalog: &Catalog, registry: &RuleRegistry, sql: &str, opts: OptimizerOptions) -> Measured {
    let q = analyze(&parse_query(sql).unwrap(), catalog).unwrap();
    let optimizer = Optimizer::new(catalog, registry, opts);
    let start = Instant::now();
    let plan = optimizer.optimize(&q).expect("optimizes");
    Measured {
        plan,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
    }
}

fn main() {
    let registry = RuleRegistry::with_default_model();
    println!("E11 — join-enumeration scaling: subset DP vs permutation baseline\n");
    let mut t = Table::new(&[
        "tables",
        "plans (perm)",
        "plans (dp)",
        "nodes (perm)",
        "nodes (dp)",
        "node redux",
        "memo hits",
        "rule hits",
        "ms (perm)",
        "ms (dp)",
        "speedup",
    ]);
    let mut json_rows = String::new();
    for n in 2..=MAX_TABLES {
        let catalog = chain_catalog(n);
        let sql = chain_sql(n);
        // Widen the optimal-search window to cover the whole sweep so the
        // greedy fallback never kicks in, and pin the small-query
        // threshold to 0 so every width measures the DP itself (the
        // fast path would otherwise hand n ≤ 5 to the baseline's own
        // algorithm and the speedup column would read 1.0 by fiat).
        let dp = run(
            &catalog,
            &registry,
            &sql,
            OptimizerOptions {
                exhaustive_up_to: MAX_TABLES,
                small_query_threshold: 0,
                ..Default::default()
            },
        );
        let perm = run(
            &catalog,
            &registry,
            &sql,
            OptimizerOptions {
                pruning: false,
                exhaustive_up_to: MAX_TABLES,
                enumeration: JoinEnumeration::Permutation,
                ..Default::default()
            },
        );
        assert_eq!(
            dp.plan.estimated.total_time, perm.plan.estimated.total_time,
            "DP and baseline disagree at n={n}"
        );
        let node_redux = perm.plan.estimator_nodes as f64 / dp.plan.estimator_nodes.max(1) as f64;
        let speedup = perm.wall_ms / dp.wall_ms.max(1e-9);
        t.row(vec![
            n.to_string(),
            perm.plan.plans_considered.to_string(),
            dp.plan.plans_considered.to_string(),
            perm.plan.estimator_nodes.to_string(),
            dp.plan.estimator_nodes.to_string(),
            format!("{node_redux:.1}x"),
            dp.plan.memo_hits.to_string(),
            dp.plan.rule_cache_hits.to_string(),
            format!("{:.2}", perm.wall_ms),
            format!("{:.2}", dp.wall_ms),
            format!("{speedup:.1}x"),
        ]);
        if !json_rows.is_empty() {
            json_rows.push(',');
        }
        write!(
            json_rows,
            "\n    {{\"tables\": {n}, \
             \"dp\": {{\"plans_considered\": {}, \"plans_pruned\": {}, \
             \"estimator_nodes\": {}, \"estimator_rules\": {}, \
             \"memo_hits\": {}, \"rule_cache_hits\": {}, \"wall_ms\": {:.3}}}, \
             \"permutation\": {{\"plans_considered\": {}, \"estimator_nodes\": {}, \
             \"estimator_rules\": {}, \"wall_ms\": {:.3}}}, \
             \"node_visit_reduction\": {:.3}, \"wall_speedup\": {:.3}, \
             \"fast_path\": {}}}",
            dp.plan.plans_considered,
            dp.plan.plans_pruned,
            dp.plan.estimator_nodes,
            dp.plan.estimator_rules,
            dp.plan.memo_hits,
            dp.plan.rule_cache_hits,
            dp.wall_ms,
            perm.plan.plans_considered,
            perm.plan.estimator_nodes,
            perm.plan.estimator_rules,
            perm.wall_ms,
            node_redux,
            speedup,
            n <= OptimizerOptions::default().small_query_threshold,
        )
        .expect("write json row");
    }
    println!("{}", t.render());
    println!(
        "DP prices each connected subset once (memo + rule cache); the \
         permutation baseline re-estimates every complete plan from scratch."
    );

    let threshold = OptimizerOptions::default().small_query_threshold;
    let json = format!(
        "{{\n  \"bench\": \"optimizer_scaling\",\n  \"workload\": \"chain\",\n  \
         \"tables\": [2, {MAX_TABLES}],\n  \"fast_path_threshold\": {threshold},\n  \
         \"rows\": [{json_rows}\n  ]\n}}\n"
    );
    std::fs::write("BENCH_optimizer.json", &json).expect("write BENCH_optimizer.json");
    println!("\nwrote BENCH_optimizer.json");
}

//! E9 (extension) — estimate accuracy across the OO7 query suite.
//!
//! [GST96] validated its calibration "running the OO7 benchmark … that
//! real execution time are closely estimated by the calibrated formulas";
//! this binary produces the equivalent table for our reproduction: every
//! OO7-style query, measured (simulated) time vs the generic-model
//! estimate vs the blended (Figure 13 rules) estimate.
//!
//! ```text
//! cargo run --release -p disco-bench --bin oo7_suite
//! ```

use disco_bench::setup::oo7_env;
use disco_bench::{error_stats, Table};
use disco_core::Estimator;
use disco_oo7::{index_scan_selectivity, rules, Oo7Config, Oo7Query};
use disco_sources::DataSource;

fn main() {
    let config = Oo7Config::paper();
    let cal = oo7_env(&config, &rules::calibrated()).expect("setup");
    let yao = oo7_env(&config, &rules::yao_rules()).expect("setup");
    let cal_est = Estimator::new(&cal.registry, &cal.catalog);
    let yao_est = Estimator::new(&yao.registry, &yao.catalog);

    let queries: Vec<(String, disco_algebra::LogicalPlan)> = vec![
        (
            "Q1 exact-match Id".into(),
            Oo7Query::ExactMatch { id: 42_123 }.plan("oo7", &config),
        ),
        (
            "Q2 1% BuildDate".into(),
            Oo7Query::BuildDateRange {
                fraction_percent: 1,
            }
            .plan("oo7", &config),
        ),
        (
            "Q3 10% BuildDate".into(),
            Oo7Query::BuildDateRange {
                fraction_percent: 10,
            }
            .plan("oo7", &config),
        ),
        (
            "Q7 100% BuildDate".into(),
            Oo7Query::BuildDateRange {
                fraction_percent: 100,
            }
            .plan("oo7", &config),
        ),
        (
            "index scan 5%".into(),
            index_scan_selectivity("oo7", &config, 0.05),
        ),
        (
            "index scan 30%".into(),
            index_scan_selectivity("oo7", &config, 0.3),
        ),
        (
            "Q4 docs⋈composites".into(),
            Oo7Query::DocumentsOfComposites.plan("oo7", &config),
        ),
        (
            "Q8 atomic⋈documents".into(),
            Oo7Query::AtomicWithDocuments.plan("oo7", &config),
        ),
        (
            "connections of parts".into(),
            Oo7Query::ConnectionsOfParts { max_from_id: 1_000 }.plan("oo7", &config),
        ),
        (
            "parts per build date".into(),
            Oo7Query::PartsPerBuildDate.plan("oo7", &config),
        ),
    ];

    println!("E9 — OO7 suite: measured vs estimated response time (seconds)\n");
    let mut t = Table::new(&["query", "rows", "measured", "generic est", "blended est"]);
    let mut cal_pairs = Vec::new();
    let mut yao_pairs = Vec::new();
    for (name, plan) in &queries {
        let ans = cal.store.execute(plan).expect("runs");
        let measured = ans.stats.elapsed_ms / 1e3;
        let g = cal_est.estimate(plan).expect("est").total_time / 1e3;
        let b = yao_est.estimate(plan).expect("est").total_time / 1e3;
        cal_pairs.push((g, measured));
        yao_pairs.push((b, measured));
        t.row(vec![
            name.clone(),
            ans.tuples.len().to_string(),
            format!("{measured:.1}"),
            format!("{g:.1}"),
            format!("{b:.1}"),
        ]);
    }
    println!("{}", t.render());
    let (gm, gx) = error_stats(&cal_pairs);
    let (bm, bx) = error_stats(&yao_pairs);
    println!(
        "generic model error: mean {:.0}%  max {:.0}%",
        gm * 100.0,
        gx * 100.0
    );
    println!(
        "blended model error: mean {:.0}%  max {:.0}%",
        bm * 100.0,
        bx * 100.0
    );
    println!(
        "\nThe blended rules only cover indexed `Id` selections — exactly where the\n\
         generic model is wrong; everything else estimates identically."
    );
}

//! E15 — disco-store: Yao's formula validated against actual disk I/O,
//! at the paper's full scale (70 000 objects, 1 000 pages).
//!
//! Four sweeps over a real paged file behind an LRU buffer pool (see
//! `store_bench` for the experiment definitions), asserting the
//! acceptance bound — cold-run measured faults within 15 % of Yao's
//! prediction for uniform placement, at every swept selectivity — and
//! writing `BENCH_store.json` (machine-readable, consumed by CI as an
//! artifact).
//!
//! ```text
//! cargo run --release -p disco-bench --bin store_scaling
//! ```

use std::fmt::Write as _;

use disco_bench::store_bench::{
    run_clustered_divergence, run_crossover, run_hit_rate_sweep, run_yao_validation, store_env,
    wall_crossover,
};
use disco_bench::Table;

/// Paper scale: 70 000 × 56 B objects, 70 per 4 KB page, 1 000 pages.
const OBJECTS: usize = 70_000;

/// The acceptance bound on |predicted − measured| / measured, cold pool,
/// uniform random placement.
const YAO_TOLERANCE: f64 = 0.15;

const YAO_SELECTIVITIES: [f64; 7] = [0.01, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7];
const CROSSOVER_SELECTIVITIES: [f64; 6] = [0.001, 0.01, 0.05, 0.1, 0.3, 0.7];
const CLUSTERED_SELECTIVITIES: [f64; 4] = [0.01, 0.05, 0.1, 0.3];
const HIT_RATE_CAPACITIES: [usize; 5] = [50, 125, 250, 500, 1_100];
const HIT_RATE_LOOKUPS: usize = 2_000;
const CROSSOVER_REPS: usize = 3;

fn main() {
    println!(
        "E15 — disco-store: Yao vs actual page faults \
         ({OBJECTS} objects x 56 B, 1000 pages, IO=25ms)\n"
    );

    // 1. Cold-pool Yao validation, uniform random placement.
    let env = store_env(OBJECTS, false, 2_048).expect("store builds");
    assert_eq!(env.pages, 1_000);
    let yao = run_yao_validation(&env, &YAO_SELECTIVITIES).expect("yao sweep runs");
    let mut t = Table::new(&[
        "selectivity",
        "objects",
        "pages (Yao)",
        "pages (measured)",
        "error",
    ]);
    let mut yao_json = String::new();
    for r in &yao {
        t.row(vec![
            format!("{:.2}", r.selectivity),
            r.objects.to_string(),
            format!("{:.1}", r.predicted_pages),
            r.measured_pages.to_string(),
            format!("{:+.1}%", r.error * 100.0),
        ]);
        assert!(
            r.error.abs() <= YAO_TOLERANCE,
            "sel {}: measured {} faults vs Yao {:.1} ({:+.1}%, tolerance {:.0}%)",
            r.selectivity,
            r.measured_pages,
            r.predicted_pages,
            r.error * 100.0,
            YAO_TOLERANCE * 100.0
        );
        if !yao_json.is_empty() {
            yao_json.push(',');
        }
        write!(
            yao_json,
            "\n    {{\"selectivity\": {}, \"objects\": {}, \"predicted_pages\": {:.3}, \
             \"measured_pages\": {}, \"error\": {:.4}}}",
            r.selectivity, r.objects, r.predicted_pages, r.measured_pages, r.error
        )
        .expect("write json");
    }
    println!("cold pool, random placement — measured faults vs Yao:");
    println!("{}", t.render());
    println!(
        "all {} selectivities within the {:.0}% acceptance bound\n",
        yao.len(),
        YAO_TOLERANCE * 100.0
    );

    // 2. Buffer-pool hit-rate sweep.
    let hits = run_hit_rate_sweep(OBJECTS, &HIT_RATE_CAPACITIES, HIT_RATE_LOOKUPS)
        .expect("hit-rate sweep runs");
    let mut t = Table::new(&["capacity (frames)", "hits", "faults", "hit rate"]);
    let mut hits_json = String::new();
    for r in &hits {
        t.row(vec![
            r.capacity.to_string(),
            r.hits.to_string(),
            r.faults.to_string(),
            format!("{:.1}%", r.hit_rate * 100.0),
        ]);
        if !hits_json.is_empty() {
            hits_json.push(',');
        }
        write!(
            hits_json,
            "\n    {{\"capacity\": {}, \"lookups\": {}, \"hits\": {}, \"faults\": {}, \
             \"hit_rate\": {:.4}}}",
            r.capacity, r.lookups, r.hits, r.faults, r.hit_rate
        )
        .expect("write json");
    }
    assert!(
        hits.windows(2).all(|w| w[1].hit_rate >= w[0].hit_rate),
        "hit rate must not drop as capacity grows: {hits:?}"
    );
    println!("replayed point lookups — hit rate vs pool capacity:");
    println!("{}", t.render());

    // 3. Index retrieval vs sequential scan.
    let cross = run_crossover(&env, &CROSSOVER_SELECTIVITIES, CROSSOVER_REPS)
        .expect("crossover sweep runs");
    let mut t = Table::new(&[
        "selectivity",
        "objects",
        "index pages",
        "index wall (ms)",
        "scan wall (ms)",
        "index model (s)",
        "scan model (s)",
    ]);
    let mut cross_json = String::new();
    for r in &cross {
        t.row(vec![
            format!("{:.3}", r.selectivity),
            r.objects.to_string(),
            r.index_pages.to_string(),
            format!("{:.2}", r.index_wall_ms),
            format!("{:.2}", r.scan_wall_ms),
            format!("{:.1}", r.index_model_ms / 1_000.0),
            format!("{:.1}", r.scan_model_ms / 1_000.0),
        ]);
        if !cross_json.is_empty() {
            cross_json.push(',');
        }
        write!(
            cross_json,
            "\n    {{\"selectivity\": {}, \"objects\": {}, \"index_pages\": {}, \
             \"index_wall_ms\": {:.3}, \"scan_wall_ms\": {:.3}, \
             \"index_model_ms\": {:.3}, \"scan_model_ms\": {:.3}}}",
            r.selectivity,
            r.objects,
            r.index_pages,
            r.index_wall_ms,
            r.scan_wall_ms,
            r.index_model_ms,
            r.scan_model_ms
        )
        .expect("write json");
    }
    println!("cold index retrieval vs cold sequential scan:");
    println!("{}", t.render());
    let crossover = wall_crossover(&cross);
    match crossover {
        Some(sel) => {
            println!("wall-clock crossover: the sequential scan wins from selectivity {sel} up\n")
        }
        None => println!("no wall-clock crossover inside the sweep (index wins throughout)\n"),
    }

    // 4. Clustered divergence (§7).
    let cenv = store_env(OBJECTS, true, 2_048).expect("clustered store builds");
    let clustered =
        run_clustered_divergence(&cenv, &CLUSTERED_SELECTIVITIES).expect("clustered sweep runs");
    let mut t = Table::new(&[
        "selectivity",
        "objects",
        "pages (Yao)",
        "pages (measured)",
        "ratio",
    ]);
    let mut clustered_json = String::new();
    for r in &clustered {
        t.row(vec![
            format!("{:.2}", r.selectivity),
            r.objects.to_string(),
            format!("{:.1}", r.predicted_pages),
            r.measured_pages.to_string(),
            format!("{:.2}", r.ratio),
        ]);
        assert!(
            r.ratio < 1.0,
            "clustered placement must fault below the random-placement prediction: {r:?}"
        );
        if !clustered_json.is_empty() {
            clustered_json.push(',');
        }
        write!(
            clustered_json,
            "\n    {{\"selectivity\": {}, \"objects\": {}, \"predicted_pages\": {:.3}, \
             \"measured_pages\": {}, \"ratio\": {:.4}}}",
            r.selectivity, r.objects, r.predicted_pages, r.measured_pages, r.ratio
        )
        .expect("write json");
    }
    println!("clustered placement — measured faults vs the (random-placement) Yao prediction:");
    println!("{}", t.render());
    println!(
        "the §7 blind spot on real I/O: the generic model cannot see clustering,\n\
         only wrapper-exported rules (or EXPLAIN ANALYZE feedback) recover it"
    );

    let json = format!(
        "{{\n  \"bench\": \"store_scaling\",\n  \
         \"objects\": {OBJECTS},\n  \
         \"pages\": {},\n  \
         \"yao_tolerance\": {YAO_TOLERANCE},\n  \
         \"wall_crossover_selectivity\": {},\n  \
         \"yao_validation\": [{yao_json}\n  ],\n  \
         \"hit_rate_sweep\": [{hits_json}\n  ],\n  \
         \"crossover\": [{cross_json}\n  ],\n  \
         \"clustered_divergence\": [{clustered_json}\n  ]\n}}\n",
        env.pages,
        crossover.map_or("null".into(), |s| format!("{s}")),
    );
    std::fs::write("BENCH_store.json", &json).expect("write BENCH_store.json");
    println!("\nwrote BENCH_store.json");
}

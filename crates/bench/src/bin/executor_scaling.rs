//! E13 — combine-phase scaling: the vectorized columnar engine vs the
//! row-at-a-time reference operators.
//!
//! Both paths start from the same pre-encoded subanswer wire bytes —
//! exactly what the mediator holds after a fetch — so decoding is part
//! of the measurement: the row path decodes into `SubAnswer` tuples and
//! runs `exec::*`, the batch path decodes straight into `BatchAnswer`
//! columns and runs `vexec::*`, materializing tuples only at the final
//! answer boundary (`Batch::to_tuples`), mirroring the executor.
//!
//! Two workloads, swept from 1 k to 1 M rows:
//!
//! * **union** — eight subanswers, each filtered (~50 % selectivity) and
//!   projected, then concatenated;
//! * **join3** — a three-way hash join `A(id,tag,v) ⋈ B(aid,bid) ⋈
//!   C(cid,w)` with fan-out ≈ 1 (output cardinality equals the input).
//!
//! At sizes up to 10 k both paths' outputs are asserted exactly equal
//! (same tuples, same order); above that, lengths must match and an
//! evenly-strided positional sample of ~1 k tuples (plus both ends) is
//! compared. At 100 k the join speedup is asserted to meet the ≥ 3×
//! target. Besides the table it writes
//! `BENCH_executor.json` (machine-readable, consumed by CI as an
//! artifact).
//!
//! ```text
//! cargo run --release -p disco-bench --bin executor_scaling
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use disco_algebra::{CompareOp, JoinPredicate, Predicate, ScalarExpr, SelectPredicate};
use disco_bench::Table;
use disco_common::rng::seeded;
use disco_common::wire::{WireDecode, WireEncode};
use disco_common::{AttributeDef, DataType, Schema, Tuple, Value};
use disco_sources::{exec, vexec, BatchAnswer, ExecStats, SubAnswer};

const SIZES: [usize; 4] = [1_000, 10_000, 100_000, 1_000_000];

/// Sizes at which the two paths' outputs are compared tuple-for-tuple.
const EQUIVALENCE_UP_TO: usize = 10_000;

/// The acceptance target: batch/row wall-clock ratio on the three-way
/// join at this input size.
const JOIN_TARGET_ROWS: usize = 100_000;
const JOIN_TARGET_SPEEDUP: f64 = 3.0;

const UNION_PARTS: usize = 8;

/// Observability overhead guard: the per-batch metrics instrumentation
/// in `vexec` must cost less than this fraction of the three-way join's
/// wall clock at `OVERHEAD_ROWS`.
const OVERHEAD_ROWS: usize = 100_000;
const OVERHEAD_LIMIT: f64 = 0.05;
/// Interleaved (off, on) measurement pairs; the bound is asserted on
/// the medians so one noisy pair (scheduler preemption, page cache)
/// cannot flip the comparison either way.
const OVERHEAD_PAIRS: usize = 5;
const OVERHEAD_REPS: usize = 3;

/// Tuples compared per workload when the input is too large for the
/// full equality assert (an evenly-strided sample plus both ends).
const EQUIVALENCE_SAMPLE: usize = 1_000;

fn answer_bytes(schema: &Schema, tuples: Vec<Tuple>) -> Vec<u8> {
    SubAnswer {
        schema: schema.clone(),
        tuples,
        stats: ExecStats::default(),
    }
    .to_wire_bytes()
}

/// Eight subanswers of `n / 8` rows each: (x Long, tag Str, v Double).
fn union_parts(n: usize) -> (Schema, Vec<Vec<u8>>) {
    let schema = Schema::new(vec![
        AttributeDef::new("x", DataType::Long),
        AttributeDef::new("tag", DataType::Str),
        AttributeDef::new("v", DataType::Double),
    ]);
    let mut rng = seeded(n as u64, "executor-scaling-union");
    let per_part = n / UNION_PARTS;
    let parts = (0..UNION_PARTS)
        .map(|_| {
            let tuples = (0..per_part)
                .map(|_| {
                    Tuple::new(vec![
                        Value::Long(rng.gen_range(0..1000i64)),
                        Value::Str(format!("t{}", rng.gen_range(0..50i64))),
                        Value::Double(rng.gen_f64()),
                    ])
                })
                .collect();
            answer_bytes(&schema, tuples)
        })
        .collect();
    (schema, parts)
}

struct JoinInputs {
    a_schema: Schema,
    b_schema: Schema,
    c_schema: Schema,
    a: Vec<u8>,
    b: Vec<u8>,
    c: Vec<u8>,
}

/// Three tables of `n` rows whose join keys are permutations of 0..n,
/// so every probe matches exactly once and the output stays `n` rows.
fn join_inputs(n: usize) -> JoinInputs {
    let mut rng = seeded(n as u64, "executor-scaling-join");
    let permutation = |rng: &mut disco_common::rng::StdRng| {
        let mut ids: Vec<i64> = (0..n as i64).collect();
        for i in (1..ids.len()).rev() {
            ids.swap(i, rng.gen_range(0..(i + 1)));
        }
        ids
    };
    let a_schema = Schema::new(vec![
        AttributeDef::new("id", DataType::Long),
        AttributeDef::new("tag", DataType::Str),
        AttributeDef::new("v", DataType::Double),
    ]);
    let b_schema = Schema::new(vec![
        AttributeDef::new("aid", DataType::Long),
        AttributeDef::new("bid", DataType::Long),
    ]);
    let c_schema = Schema::new(vec![
        AttributeDef::new("cid", DataType::Long),
        AttributeDef::new("w", DataType::Double),
    ]);
    let a_tuples = (0..n as i64)
        .map(|id| {
            Tuple::new(vec![
                Value::Long(id),
                Value::Str(format!("t{}", rng.gen_range(0..50i64))),
                Value::Double(rng.gen_f64()),
            ])
        })
        .collect();
    let aid = permutation(&mut rng);
    let b_tuples = aid
        .iter()
        .enumerate()
        .map(|(bid, &aid)| Tuple::new(vec![Value::Long(aid), Value::Long(bid as i64)]))
        .collect();
    let cid = permutation(&mut rng);
    let c_tuples = cid
        .iter()
        .map(|&cid| Tuple::new(vec![Value::Long(cid), Value::Double(rng.gen_f64())]))
        .collect();
    JoinInputs {
        a: answer_bytes(&a_schema, a_tuples),
        b: answer_bytes(&b_schema, b_tuples),
        c: answer_bytes(&c_schema, c_tuples),
        a_schema,
        b_schema,
        c_schema,
    }
}

fn union_predicate() -> Predicate {
    Predicate::all(vec![SelectPredicate::new(
        "x",
        CompareOp::Lt,
        Value::Long(500),
    )])
}

fn union_columns() -> Vec<(String, ScalarExpr)> {
    vec![
        ("x".into(), ScalarExpr::attr("x")),
        ("tag".into(), ScalarExpr::attr("tag")),
    ]
}

/// Row path for the union workload: decode each part, filter, project,
/// append.
fn union_rows(schema: &Schema, parts: &[Vec<u8>]) -> Vec<Tuple> {
    let pred = union_predicate();
    let columns = union_columns();
    let mut out = Vec::new();
    for bytes in parts {
        let answer = SubAnswer::from_wire_bytes(bytes).expect("decodes");
        let kept = exec::filter(schema, &answer.tuples, &pred).expect("filters");
        let (_, projected) = exec::project(schema, &kept, &columns).expect("projects");
        out.extend(projected);
    }
    out
}

/// Batch path for the union workload: decode into columns, filter via
/// selection vectors, project by column re-slicing, concatenate, and
/// materialize once at the end.
fn union_batches(schema: &Schema, parts: &[Vec<u8>]) -> Vec<Tuple> {
    let pred = union_predicate();
    let columns = union_columns();
    let mut combined: Option<disco_common::Batch> = None;
    for bytes in parts {
        let answer = BatchAnswer::from_wire_bytes(bytes).expect("decodes");
        let kept = vexec::filter(schema, &answer.batch, &pred).expect("filters");
        let (_, projected) = vexec::project(schema, &kept, &columns).expect("projects");
        combined = Some(match combined {
            None => projected,
            Some(acc) => vexec::union(&acc, &projected).expect("unions"),
        });
    }
    combined.expect("at least one part").to_tuples()
}

/// Row path for the three-way join.
fn join_rows(inp: &JoinInputs) -> Vec<Tuple> {
    let a = SubAnswer::from_wire_bytes(&inp.a).expect("decodes");
    let b = SubAnswer::from_wire_bytes(&inp.b).expect("decodes");
    let c = SubAnswer::from_wire_bytes(&inp.c).expect("decodes");
    let ab = exec::hash_join(
        &inp.a_schema,
        &a.tuples,
        &inp.b_schema,
        &b.tuples,
        &JoinPredicate::equi("id", "aid"),
    )
    .expect("joins");
    let ab_schema = inp.a_schema.join(&inp.b_schema);
    exec::hash_join(
        &ab_schema,
        &ab,
        &inp.c_schema,
        &c.tuples,
        &JoinPredicate::equi("bid", "cid"),
    )
    .expect("joins")
}

/// Batch path for the three-way join: row-id gathers instead of tuple
/// concatenation, one materialization at the end.
fn join_batches(inp: &JoinInputs) -> Vec<Tuple> {
    let a = BatchAnswer::from_wire_bytes(&inp.a).expect("decodes");
    let b = BatchAnswer::from_wire_bytes(&inp.b).expect("decodes");
    let c = BatchAnswer::from_wire_bytes(&inp.c).expect("decodes");
    let ab = vexec::hash_join(
        &inp.a_schema,
        &a.batch,
        &inp.b_schema,
        &b.batch,
        &JoinPredicate::equi("id", "aid"),
    )
    .expect("joins");
    let ab_schema = inp.a_schema.join(&inp.b_schema);
    vexec::hash_join(
        &ab_schema,
        &ab,
        &inp.c_schema,
        &c.batch,
        &JoinPredicate::equi("bid", "cid"),
    )
    .expect("joins")
    .to_tuples()
}

/// Best-of-k wall time (ms) and the run's output. Never fewer than two
/// repetitions: best-of-1 at the large sizes is noise-prone enough to
/// flake the asserted speedup target on a loaded host.
fn measure(n: usize, mut f: impl FnMut() -> Vec<Tuple>) -> (f64, Vec<Tuple>) {
    let reps = (300_000 / n.max(1)).clamp(2, 5);
    let mut best = f64::INFINITY;
    let mut out = Vec::new();
    for _ in 0..reps {
        let start = Instant::now();
        out = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    (best, out)
}

/// Best-of-`reps` wall time (ms).
fn best_of(reps: usize, mut f: impl FnMut() -> Vec<Tuple>) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let out = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(out);
    }
    best
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Measure the three-way batch join with the metrics registry disabled
/// and enabled, in `OVERHEAD_PAIRS` interleaved pairs; returns the
/// medians (off_ms, on_ms). A single off/on pair is dominated by
/// machine noise (past runs reported −9.9 % "overhead"); interleaving
/// spreads both states across the run and the median discards outliers.
fn instrumentation_overhead() -> (f64, f64) {
    let inputs = join_inputs(OVERHEAD_ROWS);
    let mut off = Vec::with_capacity(OVERHEAD_PAIRS);
    let mut on = Vec::with_capacity(OVERHEAD_PAIRS);
    for _ in 0..OVERHEAD_PAIRS {
        disco_obs::set_enabled(false);
        off.push(best_of(OVERHEAD_REPS, || join_batches(&inputs)));
        disco_obs::set_enabled(true);
        on.push(best_of(OVERHEAD_REPS, || join_batches(&inputs)));
    }
    (median(&mut off), median(&mut on))
}

/// Equivalence check for outputs too large to compare in full: both
/// paths are deterministic and order-preserving, so after the length
/// check an evenly-strided sample (plus the first and last tuple) is
/// compared positionally.
fn assert_sampled_equal(workload: &str, n: usize, row_out: &[Tuple], batch_out: &[Tuple]) {
    assert_eq!(
        row_out.len(),
        batch_out.len(),
        "row and batch cardinality diverge: {workload} at {n} rows"
    );
    let len = row_out.len();
    if len == 0 {
        return;
    }
    let stride = (len / EQUIVALENCE_SAMPLE).max(1);
    for i in (0..len).step_by(stride).chain([0, len - 1]) {
        assert_eq!(
            row_out[i], batch_out[i],
            "row and batch outputs diverge at tuple {i}: {workload} at {n} rows"
        );
    }
}

fn main() {
    println!("E13 — combine-phase scaling: vectorized batches vs row-at-a-time\n");
    let mut t = Table::new(&[
        "workload",
        "rows",
        "out rows",
        "ms (row)",
        "ms (batch)",
        "speedup",
        "equal",
    ]);
    let mut json_rows = String::new();
    let mut join_target_speedup = None;
    for &n in &SIZES {
        for workload in ["union", "join3"] {
            let (row_ms, batch_ms, row_out, batch_out) = match workload {
                "union" => {
                    let (schema, parts) = union_parts(n);
                    let (row_ms, row_out) = measure(n, || union_rows(&schema, &parts));
                    let (batch_ms, batch_out) = measure(n, || union_batches(&schema, &parts));
                    (row_ms, batch_ms, row_out, batch_out)
                }
                _ => {
                    let inputs = join_inputs(n);
                    let (row_ms, row_out) = measure(n, || join_rows(&inputs));
                    let (batch_ms, batch_out) = measure(n, || join_batches(&inputs));
                    (row_ms, batch_ms, row_out, batch_out)
                }
            };
            let speedup = row_ms / batch_ms.max(1e-9);
            let full = n <= EQUIVALENCE_UP_TO;
            if full {
                assert_eq!(
                    row_out, batch_out,
                    "row and batch outputs diverge: {workload} at {n} rows"
                );
            } else {
                // Full comparison would dwarf the measurement; a
                // strided positional sample still catches real
                // divergence anywhere in the output.
                assert_sampled_equal(workload, n, &row_out, &batch_out);
            }
            if workload == "join3" && n == JOIN_TARGET_ROWS {
                join_target_speedup = Some(speedup);
            }
            t.row(vec![
                workload.to_string(),
                n.to_string(),
                row_out.len().to_string(),
                format!("{row_ms:.2}"),
                format!("{batch_ms:.2}"),
                format!("{speedup:.1}x"),
                if full { "full" } else { "sampled" }.to_string(),
            ]);
            if !json_rows.is_empty() {
                json_rows.push(',');
            }
            write!(
                json_rows,
                "\n    {{\"workload\": \"{workload}\", \"rows\": {n}, \
                 \"output_rows\": {}, \"row_ms\": {row_ms:.3}, \
                 \"batch_ms\": {batch_ms:.3}, \"speedup\": {speedup:.3}, \
                 \"equivalence\": \"{}\"}}",
                row_out.len(),
                if full { "full" } else { "sampled" },
            )
            .expect("write json row");
        }
    }
    println!("{}", t.render());
    let target = join_target_speedup.expect("join measured at the target size");
    println!(
        "three-way join at {JOIN_TARGET_ROWS} rows: {target:.1}x \
         (target ≥ {JOIN_TARGET_SPEEDUP:.0}x)"
    );
    assert!(
        target >= JOIN_TARGET_SPEEDUP,
        "join speedup at {JOIN_TARGET_ROWS} rows fell below the target: {target:.2}x"
    );

    let (off_ms, on_ms) = instrumentation_overhead();
    let overhead = on_ms / off_ms.max(1e-9) - 1.0;
    println!(
        "instrumentation overhead on join3 at {OVERHEAD_ROWS} rows \
         (median of {OVERHEAD_PAIRS} interleaved pairs): \
         off={off_ms:.2}ms on={on_ms:.2}ms ({:+.1}%, limit {:.0}%)",
        overhead * 100.0,
        OVERHEAD_LIMIT * 100.0
    );
    assert!(
        overhead < OVERHEAD_LIMIT,
        "metrics instrumentation slowed the join by {:.1}% (limit {:.0}%)",
        overhead * 100.0,
        OVERHEAD_LIMIT * 100.0
    );

    let json = format!(
        "{{\n  \"bench\": \"executor_scaling\",\n  \
         \"workloads\": [\"union\", \"join3\"],\n  \
         \"rows\": [1000, 1000000],\n  \
         \"join_speedup_at_100k\": {target:.3},\n  \
         \"join_speedup_target\": {JOIN_TARGET_SPEEDUP},\n  \
         \"instrumentation_pairs\": {OVERHEAD_PAIRS},\n  \
         \"instrumentation_off_ms\": {off_ms:.3},\n  \
         \"instrumentation_on_ms\": {on_ms:.3},\n  \
         \"instrumentation_overhead\": {overhead:.4},\n  \
         \"instrumentation_overhead_limit\": {OVERHEAD_LIMIT},\n  \
         \"measurements\": [{json_rows}\n  ]\n}}\n"
    );
    std::fs::write("BENCH_executor.json", &json).expect("write BENCH_executor.json");
    println!("\nwrote BENCH_executor.json");
}

//! E16 — streaming pipelined execution: time-to-first-row vs
//! full-answer latency over slow simulated links.
//!
//! A three-wrapper federation sits behind a slow network profile
//! (50 ms latency, 50 bytes/ms, no jitter) whose simulated
//! communication time is partially slept (`sleep_scale`), so wall
//! clocks are real. The same queries run through the two-phase
//! fetch-then-combine engine and the pipelined streaming engine:
//!
//! * **LIMIT workload** — an interactive `LIMIT` query (planned under
//!   the `TimeFirst` objective) whose streamed execution stops pulling
//!   after the first chunks. Asserts the streamed first row *and* the
//!   streamed complete answer arrive ≥ 3× sooner than the two-phase
//!   answer.
//! * **Full workload** — a full single-site scan, where streaming
//!   cannot skip any transfer. Asserts the chunked engine's throughput
//!   regresses < 5% against two-phase.
//!
//! Writes `BENCH_streaming.json` (machine-readable, consumed by CI as
//! an artifact).
//!
//! ```text
//! cargo run --release -p disco-bench --bin streaming_latency
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use disco_bench::Table;
use disco_common::{AttributeDef, DataType, Schema, Value};
use disco_mediator::{Mediator, MediatorOptions};
use disco_sources::{CollectionBuilder, CostProfile, PagedStore};
use disco_transport::{ChannelTransport, NetProfile, TransportClient};
use disco_wrapper::SourceWrapper;

const WRAPPERS: usize = 3;
const ROWS_PER_COLLECTION: i64 = 20_000;
const CHUNK_ROWS: u32 = 2_048;
const REPEATS: usize = 5;

/// Slow link: high latency, narrow pipe, deterministic (no jitter).
/// `sleep_scale` converts ~2% of simulated milliseconds into real
/// sleeps, so a full 20k-row transfer costs tens of real milliseconds.
fn slow_link() -> NetProfile {
    NetProfile {
        latency_ms: 50.0,
        bytes_per_ms: 50.0,
        jitter_ms: 0.0,
        sleep_scale: 0.02,
    }
}

/// `WRAPPERS` single-collection endpoints behind the slow profile.
fn federation(streaming: bool) -> Mediator {
    let mut t = ChannelTransport::new();
    for i in 0..WRAPPERS {
        let schema = Schema::new(vec![
            AttributeDef::new("x", DataType::Long),
            AttributeDef::new("v", DataType::Long),
        ]);
        let mut store = PagedStore::new(format!("s{i}"), CostProfile::relational());
        store
            .add_collection(
                format!("C{i}"),
                CollectionBuilder::new(schema).rows(
                    (0..ROWS_PER_COLLECTION).map(|x| vec![Value::Long(x), Value::Long(x % 97)]),
                ),
            )
            .expect("collection registers");
        t.add_wrapper_with(
            Box::new(SourceWrapper::new(format!("s{i}"), store)),
            slow_link(),
            disco_transport::FaultPlan::none(),
        );
    }
    let mut m = Mediator::new().with_options(MediatorOptions {
        parallel_submits: true,
        streaming,
        streaming_chunk_rows: CHUNK_ROWS,
        ..MediatorOptions::default()
    });
    m.connect(TransportClient::new(Box::new(t)))
        .expect("all wrappers register");
    m
}

/// One timed query on a fresh federation: (total wall ms, wall ms to
/// first answer row — `None` for the two-phase engine, which has no
/// first row before the last).
fn timed(streaming: bool, sql: &str) -> (f64, Option<f64>, usize) {
    let mut m = federation(streaming);
    let start = Instant::now();
    let r = m.query(sql).expect("query succeeds");
    let wall = start.elapsed().as_secs_f64() * 1000.0;
    assert!(!r.is_partial());
    (wall, r.trace.first_row_wall_ms, r.tuples.len())
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

struct Workload {
    name: &'static str,
    sql: String,
    two_phase_ms: f64,
    streamed_ms: f64,
    first_row_ms: f64,
    rows: usize,
}

fn run_workload(name: &'static str, sql: String) -> Workload {
    let mut two = Vec::new();
    let mut full = Vec::new();
    let mut first = Vec::new();
    let mut rows = 0;
    for _ in 0..REPEATS {
        let (wall, first_row, n) = timed(false, &sql);
        assert!(first_row.is_none(), "two-phase must not stream");
        two.push(wall);
        let (wall, first_row, n2) = timed(true, &sql);
        assert_eq!(n, n2, "engines disagree on `{sql}`");
        rows = n;
        full.push(wall);
        first.push(first_row.expect("streamed run records first row"));
    }
    Workload {
        name,
        sql,
        two_phase_ms: median(&mut two),
        streamed_ms: median(&mut full),
        first_row_ms: median(&mut first),
        rows,
    }
}

fn main() {
    // Interactive: a LIMIT across the federation. The streaming engine
    // answers out of the first chunks and abandons the rest of every
    // stream; two-phase ships all three collections before truncating.
    let limit_sql = (0..WRAPPERS)
        .map(|i| format!("SELECT x FROM C{i}"))
        .collect::<Vec<_>>()
        .join(" UNION ALL ")
        + " LIMIT 10";
    let limit = run_workload("limit", limit_sql);

    // Throughput: one full scan — every byte must cross the slow link
    // either way, so chunking may only cost its framing overhead.
    let full = run_workload("full-scan", "SELECT x, v FROM C0".to_string());

    let first_row_improvement = limit.two_phase_ms / limit.first_row_ms.max(1e-9);
    let answer_improvement = limit.two_phase_ms / limit.streamed_ms.max(1e-9);
    let full_regression = full.streamed_ms / full.two_phase_ms.max(1e-9) - 1.0;

    let mut t = Table::new(&[
        "workload",
        "rows",
        "two-phase ms",
        "streamed ms",
        "first row ms",
        "first-row speedup",
    ]);
    for w in [&limit, &full] {
        t.row(vec![
            w.name.to_string(),
            w.rows.to_string(),
            format!("{:.2}", w.two_phase_ms),
            format!("{:.2}", w.streamed_ms),
            format!("{:.2}", w.first_row_ms),
            format!("{:.1}x", w.two_phase_ms / w.first_row_ms.max(1e-9)),
        ]);
    }
    println!("{}", t.render());
    println!(
        "LIMIT workload: first row {first_row_improvement:.1}x sooner, complete \
         answer {answer_improvement:.1}x sooner than two-phase; full-scan \
         throughput regression {:+.1}%.",
        full_regression * 100.0
    );

    assert!(
        first_row_improvement >= 3.0,
        "streamed first row must arrive >= 3x sooner on the LIMIT workload: \
         two-phase {:.2} ms vs first row {:.2} ms ({first_row_improvement:.1}x)",
        limit.two_phase_ms,
        limit.first_row_ms
    );
    assert!(
        answer_improvement >= 3.0,
        "streamed LIMIT answer must complete >= 3x sooner: two-phase {:.2} ms \
         vs streamed {:.2} ms ({answer_improvement:.1}x)",
        limit.two_phase_ms,
        limit.streamed_ms
    );
    assert!(
        full_regression < 0.05,
        "full-answer throughput must regress < 5%: two-phase {:.2} ms vs \
         streamed {:.2} ms ({:+.1}%)",
        full.two_phase_ms,
        full.streamed_ms,
        full_regression * 100.0
    );

    let mut json_rows = String::new();
    for w in [&limit, &full] {
        if !json_rows.is_empty() {
            json_rows.push(',');
        }
        write!(
            json_rows,
            "\n    {{\"workload\": \"{}\", \"sql\": \"{}\", \"rows\": {}, \
             \"two_phase_ms\": {:.3}, \"streamed_ms\": {:.3}, \
             \"first_row_ms\": {:.3}}}",
            w.name, w.sql, w.rows, w.two_phase_ms, w.streamed_ms, w.first_row_ms,
        )
        .expect("write json row");
    }
    let json = format!(
        "{{\n  \"bench\": \"streaming_latency\",\n  \"wrappers\": {WRAPPERS},\n  \
         \"rows_per_collection\": {ROWS_PER_COLLECTION},\n  \
         \"chunk_rows\": {CHUNK_ROWS},\n  \"repeats\": {REPEATS},\n  \
         \"link\": {{\"latency_ms\": 50.0, \"bytes_per_ms\": 50.0, \
         \"sleep_scale\": 0.02}},\n  \"workloads\": [{json_rows}\n  ],\n  \
         \"first_row_improvement\": {first_row_improvement:.3},\n  \
         \"answer_improvement\": {answer_improvement:.3},\n  \
         \"full_scan_regression\": {full_regression:.4}\n}}\n"
    );
    std::fs::write("BENCH_streaming.json", &json).expect("write BENCH_streaming.json");
    println!("wrote BENCH_streaming.json");
}

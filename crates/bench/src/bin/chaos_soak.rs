//! Chaos soak: seeded fault-schedule runs over a replicated federation
//! whose endpoints declare seed-derived capability profiles, every
//! answer checked against the fault-free oracle (see
//! `disco_bench::chaos`). Each seed is run twice and the transcript
//! digests compared, so nondeterminism fails the soak just like a wrong
//! answer does. Each seed is then soaked again with four concurrent
//! sessions through one `SharedMediator`; interleaving moves the fault
//! windows so transcripts differ, but every answer must still
//! digest-match the single-session fault-free oracle. Writes
//! `CHAOS_soak.json` (consumed by CI as an artifact) and exits nonzero
//! if any seed fails.
//!
//! ```text
//! cargo run --release -p disco-bench --bin chaos_soak            # full soak
//! cargo run --release -p disco-bench --bin chaos_soak -- <seed>  # replay one
//! ```

use std::fmt::Write as _;

use disco_bench::chaos;
use disco_bench::Table;

const QUERIES_PER_SEED: usize = 60;
/// Concurrent sessions sharing one mediator in the concurrent pass.
const SESSIONS: usize = 4;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seeds: Vec<u64> = if args.is_empty() {
        (1..=8).collect()
    } else {
        args.iter()
            .map(|a| a.parse().expect("seed must be a u64"))
            .collect()
    };

    let mut t = Table::new(&[
        "seed",
        "caps",
        "queries",
        "complete",
        "partial",
        "failovers",
        "hedges",
        "mismatches",
        "deterministic",
        "digest",
        "conc mism",
        "stream mism",
        "replans",
        "adapt mism",
    ]);
    let mut json_rows = String::new();
    let mut failed: Vec<u64> = Vec::new();

    for &seed in &seeds {
        let rep = chaos::run_seed(seed, QUERIES_PER_SEED);
        let replay = chaos::run_seed(seed, QUERIES_PER_SEED);
        let conc = chaos::run_seed_concurrent(seed, QUERIES_PER_SEED, SESSIONS);
        let stream = chaos::run_seed_streaming(seed, QUERIES_PER_SEED);
        let adaptive = chaos::run_seed_adaptive(seed, QUERIES_PER_SEED);
        let adaptive_replay = chaos::run_seed_adaptive(seed, QUERIES_PER_SEED);
        let deterministic = rep == replay && adaptive == adaptive_replay;
        let ok =
            rep.passed() && deterministic && conc.passed() && stream.passed() && adaptive.passed();
        if !ok {
            failed.push(seed);
        }
        for m in rep.mismatches.iter().chain(&conc.mismatches) {
            eprintln!("seed {seed}: {m}");
        }
        for m in &stream.mismatches {
            eprintln!("seed {seed} (streaming): {m}");
        }
        for m in &adaptive.mismatches {
            eprintln!("seed {seed} (adaptive): {m}");
        }
        if !deterministic {
            eprintln!(
                "seed {seed}: NONDETERMINISTIC — digests {} vs {}",
                rep.digest, replay.digest
            );
        }
        let profiles = chaos::profile_assignment(seed);
        let caps: String = profiles
            .iter()
            .map(|(c, p)| format!("{c}={p}"))
            .collect::<Vec<_>>()
            .join(" ");
        t.row(vec![
            seed.to_string(),
            caps,
            rep.queries.to_string(),
            rep.complete.to_string(),
            rep.partial.to_string(),
            rep.failovers.to_string(),
            rep.hedges.to_string(),
            rep.mismatches.len().to_string(),
            deterministic.to_string(),
            rep.digest.clone(),
            conc.mismatches.len().to_string(),
            stream.mismatches.len().to_string(),
            adaptive.replans.to_string(),
            adaptive.mismatches.len().to_string(),
        ]);
        if !json_rows.is_empty() {
            json_rows.push(',');
        }
        let profiles_json = profiles
            .iter()
            .map(|(c, p)| format!("\"{c}\": \"{p}\""))
            .collect::<Vec<_>>()
            .join(", ");
        write!(
            json_rows,
            "\n    {{\"seed\": {seed}, \"profiles\": {{{profiles_json}}}, \"queries\": {}, \"complete\": {}, \
             \"partial\": {}, \"failovers\": {}, \"hedges\": {}, \
             \"mismatches\": {}, \"deterministic\": {deterministic}, \
             \"digest\": \"{}\", \"concurrent\": {{\"sessions\": {}, \
             \"queries\": {}, \"complete\": {}, \"partial\": {}, \
             \"failovers\": {}, \"mismatches\": {}}}, \
             \"streaming\": {{\"queries\": {}, \"complete\": {}, \
             \"partial\": {}, \"failovers\": {}, \"mismatches\": {}}}, \
             \"adaptive\": {{\"queries\": {}, \"complete\": {}, \
             \"partial\": {}, \"replans\": {}, \"mismatches\": {}}}}}",
            rep.queries,
            rep.complete,
            rep.partial,
            rep.failovers,
            rep.hedges,
            rep.mismatches.len(),
            rep.digest,
            conc.sessions,
            conc.queries,
            conc.complete,
            conc.partial,
            conc.failovers,
            conc.mismatches.len(),
            stream.queries,
            stream.complete,
            stream.partial,
            stream.failovers,
            stream.mismatches.len(),
            adaptive.queries,
            adaptive.complete,
            adaptive.partial,
            adaptive.replans,
            adaptive.mismatches.len(),
        )
        .expect("write json row");
    }

    println!("{}", t.render());
    println!(
        "Every answer (including degraded ones) must equal the fault-free \
         oracle with the reported missing collections emptied; each seed \
         is run twice and must produce identical transcripts, then soaked \
         again with {SESSIONS} concurrent sessions through one shared \
         mediator (per-answer oracle check; transcripts are \
         interleaving-dependent there), once more with the pipelined \
         streaming engine executing every query against the same two-phase \
         oracle, and finally with mid-query adaptive re-optimization armed \
         (aggressive trigger) — re-planned answers must stay \
         oracle-identical and deterministic."
    );

    let pass = failed.is_empty();
    let json = format!(
        "{{\n  \"bench\": \"chaos_soak\",\n  \"queries_per_seed\": {QUERIES_PER_SEED},\n  \
         \"seeds\": [{json_rows}\n  ],\n  \"failed_seeds\": [{}],\n  \"pass\": {pass}\n}}\n",
        failed
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(", "),
    );
    std::fs::write("CHAOS_soak.json", &json).expect("write CHAOS_soak.json");
    println!("wrote CHAOS_soak.json");

    if !pass {
        for seed in &failed {
            eprintln!("replay: cargo run --release -p disco-bench --bin chaos_soak -- {seed}");
        }
        std::process::exit(1);
    }
}

//! E6 — historical costs and parameter adjustment (§4.3.1).
//!
//! ```text
//! cargo run --release -p disco-bench --bin historical_costs
//! ```

use disco_bench::historical::{run_history, run_param_adjustment};
use disco_bench::Table;
use disco_oo7::Oo7Config;

fn main() {
    let config = Oo7Config::paper();

    println!("E6a — recording executed subqueries as query-scope rules\n");
    let rows = run_history(&config, &[0.05, 0.1, 0.2, 0.4, 0.6]).expect("runs");
    let mut t = Table::new(&[
        "selectivity",
        "measured (s)",
        "estimate before (s)",
        "estimate after (s)",
        "perturbed est (s)",
        "perturbed meas (s)",
    ]);
    for r in &rows {
        t.row(vec![
            format!("{:.2}", r.selectivity),
            format!("{:.1}", r.measured_s),
            format!("{:.1}", r.estimate_before_s),
            format!("{:.1}", r.estimate_after_s),
            format!("{:.1}", r.perturbed_estimate_s),
            format!("{:.1}", r.perturbed_measured_s),
        ]);
    }
    println!("{}", t.render());
    println!(
        "After recording, the identical subquery estimates exactly; a perturbed\n\
         constant misses the cache and falls back to the calibration estimate —\n\
         the restriction the paper notes for pure query caching.\n"
    );

    println!("E6b — parameter adjustment (store adjusted parameters, not formulas)");
    let (before, after) = run_param_adjustment(&config).expect("runs");
    println!(
        "  mis-calibrated wrapper (IO=50ms): mean estimate error {:.1}%",
        before * 100.0
    );
    println!(
        "  after fitting IO from ONE observed execution: mean error {:.1}%",
        after * 100.0
    );
    println!("  every formula reading the parameter is adjusted simultaneously.");
}

//! E8 (extension) — histogram statistics for skewed data.
//!
//! The paper's rule bodies may call an ad-hoc `selectivity(A, V)` that
//! "could handle, for example, histogram statistics \[IP95, PIHS96\]"
//! (§3.3.2). This experiment quantifies the benefit: cardinality
//! estimates for equality selections on a Zipf-skewed attribute, with the
//! wrapper exporting (a) only `CountDistinct`/`Min`/`Max` — the uniform
//! assumption — vs (b) equi-depth histograms.
//!
//! ```text
//! cargo run --release -p disco-bench --bin skew_selectivity
//! ```

use disco_algebra::{CompareOp, PlanBuilder};
use disco_bench::Table;
use disco_catalog::Catalog;
use disco_common::QualifiedName;
use disco_common::{rng, AttributeDef, DataType, Schema, Value};
use disco_core::{Estimator, RuleRegistry};
use disco_sources::{CollectionBuilder, CostProfile, DataSource, PagedStore};

const N: usize = 50_000;
const DOMAIN: i64 = 1_000;

/// Zipf-ish skew: value v drawn with probability ∝ 1/(v+1).
fn skewed_rows(seed: u64) -> Vec<Vec<Value>> {
    let mut r = rng::seeded(seed, "zipf");
    let weights: Vec<f64> = (0..DOMAIN).map(|v| 1.0 / (v as f64 + 1.0)).collect();
    let total: f64 = weights.iter().sum();
    (0..N)
        .map(|i| {
            let mut x = r.gen_range(0.0..total);
            let mut v = 0i64;
            for (j, w) in weights.iter().enumerate() {
                if x < *w {
                    v = j as i64;
                    break;
                }
                x -= w;
            }
            vec![Value::Long(i as i64), Value::Long(v)]
        })
        .collect()
}

fn setup(with_histograms: bool) -> (Catalog, RuleRegistry, PagedStore) {
    let schema = Schema::new(vec![
        AttributeDef::new("id", DataType::Long),
        AttributeDef::new("v", DataType::Long),
    ]);
    let mut store = PagedStore::new("s", CostProfile::relational());
    if with_histograms {
        store = store.with_histograms(64);
    }
    store
        .add_collection(
            "T",
            CollectionBuilder::new(schema.clone())
                .rows(skewed_rows(7))
                .object_size(16)
                .index("id"),
        )
        .expect("load");
    let mut catalog = Catalog::new();
    catalog
        .register_wrapper("s", disco_catalog::Capabilities::full())
        .expect("reg");
    catalog
        .register_collection("s", "T", schema, store.statistics("T").expect("stats"))
        .expect("reg");
    (catalog, RuleRegistry::with_default_model(), store)
}

fn main() {
    let (cat_u, reg_u, store) = setup(false);
    let (cat_h, reg_h, _) = setup(true);
    let est_u = Estimator::new(&reg_u, &cat_u);
    let est_h = Estimator::new(&reg_h, &cat_h);

    let schema = Schema::new(vec![
        AttributeDef::new("id", DataType::Long),
        AttributeDef::new("v", DataType::Long),
    ]);

    println!("E8 — cardinality estimates on a Zipf-skewed attribute (n = {N})\n");
    let mut t = Table::new(&["predicate", "actual rows", "uniform est", "histogram est"]);
    let mut uniform_err = 0.0f64;
    let mut hist_err = 0.0f64;
    let mut cases = 0;
    for v in [0i64, 1, 5, 50, 500] {
        for op in [CompareOp::Eq, CompareOp::Le] {
            let plan = PlanBuilder::scan(QualifiedName::new("s", "T"), schema.clone())
                .select("v", op, v)
                .build();
            let actual = store.execute(&plan).expect("runs").tuples.len() as f64;
            let u = est_u.estimate(&plan).expect("est").count_object;
            let h = est_h.estimate(&plan).expect("est").count_object;
            if actual > 0.0 {
                uniform_err += ((u - actual) / actual).abs();
                hist_err += ((h - actual) / actual).abs();
                cases += 1;
            }
            t.row(vec![
                format!("v {} {v}", op.symbol()),
                format!("{actual:.0}"),
                format!("{u:.0}"),
                format!("{h:.0}"),
            ]);
        }
    }
    println!("{}", t.render());
    println!(
        "mean relative cardinality error: uniform {:.0}%, histogram {:.0}%",
        uniform_err / cases as f64 * 100.0,
        hist_err / cases as f64 * 100.0
    );
}

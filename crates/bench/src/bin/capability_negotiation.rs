//! E17 — capability negotiation: what declared wrapper capabilities are
//! worth, on one fixed workload.
//!
//! The same federation — a relational endpoint with a 20k-row `Events`
//! collection plus a small `Dims` dimension table, and a
//! semi-structured `Orders` document endpoint — is served under three
//! capability configurations: `scan-only` (the mediator compensates for
//! everything), `select-pushdown-only` (predicates evaluate at the
//! source, whole tuples ship), and `relational` (the full algebra
//! pushes, including the same-wrapper join and the grouped aggregate).
//! Every configuration must return identical answers; what changes is
//! where operators run, how many tuples cross the wire, and what the
//! negotiated plan costs.
//!
//! Asserts the negotiated pushdown is *materially* cheaper: ≥ 2× less
//! simulated time and ≥ 10× fewer shipped tuples for `relational` vs
//! `scan-only` on this workload.
//!
//! Writes `BENCH_capability.json` (machine-readable, consumed by CI as
//! an artifact).
//!
//! ```text
//! cargo run --release -p disco-bench --bin capability_negotiation
//! ```

use std::fmt::Write as _;

use disco_bench::Table;
use disco_catalog::CapabilityProfile;
use disco_common::{AttributeDef, DataType, Schema, Value};
use disco_mediator::{Mediator, QueryResult};
use disco_sources::{CollectionBuilder, CostProfile, DocField, DocSource, DocValue, PagedStore};
use disco_transport::{ChannelTransport, FaultPlan, NetProfile, TransportClient};
use disco_wrapper::SourceWrapper;

const EVENT_ROWS: i64 = 20_000;
const ORDER_DOCS: i64 = 2_000;

/// The fixed workload: a selective indexed lookup, a grouped aggregate,
/// a same-wrapper join, and a path-predicate selection on the document
/// endpoint.
const QUERIES: &[(&str, &str)] = &[
    ("selective", "SELECT v FROM Events WHERE id < 200"),
    (
        "aggregate",
        "SELECT grp, COUNT(*) AS n FROM Events WHERE v < 10 GROUP BY grp",
    ),
    (
        "join",
        "SELECT e.v, d.label FROM Events e, Dims d WHERE e.grp = d.gid AND e.id < 500",
    ),
    ("doc-path", "SELECT id, zip FROM Orders WHERE zip = 10001"),
];

fn relational_store() -> PagedStore {
    let mut s = PagedStore::new("src", CostProfile::relational());
    s.add_collection(
        "Events",
        CollectionBuilder::new(Schema::new(vec![
            AttributeDef::new("id", DataType::Long),
            AttributeDef::new("v", DataType::Long),
            AttributeDef::new("grp", DataType::Long),
        ]))
        .rows((0..EVENT_ROWS).map(|i| {
            vec![
                Value::Long(i),
                Value::Long((i * 31) % 97),
                Value::Long(i % 8),
            ]
        }))
        .object_size(48)
        .index("id"),
    )
    .expect("Events registers");
    s.add_collection(
        "Dims",
        CollectionBuilder::new(Schema::new(vec![
            AttributeDef::new("gid", DataType::Long),
            AttributeDef::new("label", DataType::Str),
        ]))
        .rows((0..8i64).map(|i| vec![Value::Long(i), Value::Str(format!("g{i}"))]))
        .index("gid"),
    )
    .expect("Dims registers");
    s
}

/// Orders: nested `customer.address.zip` flattened through a path
/// expression; the document wrapper exports its own navigation rules.
fn doc_store() -> DocSource {
    let mut s = DocSource::new("docs");
    let docs: Vec<DocValue> = (0..ORDER_DOCS)
        .map(|i| {
            DocValue::obj([
                ("id", DocValue::Long(i)),
                (
                    "customer",
                    DocValue::obj([(
                        "address",
                        DocValue::obj([("zip", DocValue::Long(10_000 + i % 5))]),
                    )]),
                ),
            ])
        })
        .collect();
    s.add_collection(
        "Orders",
        vec![
            DocField::scalar("id", "id", DataType::Long),
            DocField::scalar("zip", "customer.address.zip", DataType::Long),
        ],
        docs,
    )
    .expect("Orders registers");
    s
}

fn federation(profile: CapabilityProfile) -> Mediator {
    let mut t = ChannelTransport::new();
    t.add_wrapper_with(
        Box::new(SourceWrapper::new("src", relational_store()).with_profile(profile)),
        NetProfile::lan(),
        FaultPlan::none(),
    );
    let docs = doc_store();
    let rules = docs.path_cost_rules();
    t.add_wrapper_with(
        Box::new(
            SourceWrapper::new("docs", docs)
                .with_profile(profile)
                .with_cost_rules(rules),
        ),
        NetProfile::lan(),
        FaultPlan::none(),
    );
    let mut m = Mediator::new();
    m.connect(TransportClient::new(Box::new(t)))
        .expect("wrappers register");
    m
}

/// Order-insensitive digest of an answer, for the cross-profile
/// equality check.
fn answer_key(r: &QueryResult) -> String {
    let mut rows: Vec<String> = r.tuples.iter().map(|t| format!("{t:?}")).collect();
    rows.sort();
    rows.join("\n")
}

struct ProfileRun {
    profile: &'static str,
    /// Per-query (simulated execution ms, shipped tuples, estimated
    /// TotalTime).
    per_query: Vec<(f64, u64, f64)>,
    total_ms: f64,
    shipped: u64,
}

fn run_profile(profile: CapabilityProfile, keys: &mut Vec<Vec<String>>) -> ProfileRun {
    let mut m = federation(profile);
    let mut per_query = Vec::new();
    let mut total_ms = 0.0;
    let mut shipped = 0u64;
    let mut my_keys = Vec::new();
    for (name, sql) in QUERIES {
        let r = m
            .query(sql)
            .unwrap_or_else(|e| panic!("{name} under {}: {e}", profile.name()));
        assert!(!r.is_partial(), "{name} degraded under {}", profile.name());
        let ms = r.measured_ms + r.trace.communication_ms;
        let rows: u64 = r.trace.submits.iter().map(|s| s.tuples as u64).sum();
        per_query.push((ms, rows, r.estimated.total_time));
        total_ms += ms;
        shipped += rows;
        my_keys.push(answer_key(&r));
    }
    keys.push(my_keys);
    ProfileRun {
        profile: profile.name(),
        per_query,
        total_ms,
        shipped,
    }
}

fn main() {
    let profiles = [
        CapabilityProfile::ScanOnly,
        CapabilityProfile::SelectPushdownOnly,
        CapabilityProfile::Relational,
    ];
    let mut keys: Vec<Vec<String>> = Vec::new();
    let runs: Vec<ProfileRun> = profiles
        .iter()
        .map(|p| run_profile(*p, &mut keys))
        .collect();

    // Profiles may move operators around, never change answers.
    for (i, k) in keys.iter().enumerate().skip(1) {
        assert_eq!(
            &keys[0], k,
            "profile `{}` changed an answer vs `{}`",
            runs[i].profile, runs[0].profile
        );
    }

    let mut t = Table::new(&["profile", "query", "sim ms", "shipped", "est TotalTime"]);
    for run in &runs {
        for ((name, _), (ms, rows, est)) in QUERIES.iter().zip(&run.per_query) {
            t.row(vec![
                run.profile.to_string(),
                (*name).to_string(),
                format!("{ms:.1}"),
                rows.to_string(),
                format!("{est:.1}"),
            ]);
        }
        t.row(vec![
            run.profile.to_string(),
            "TOTAL".to_string(),
            format!("{:.1}", run.total_ms),
            run.shipped.to_string(),
            String::new(),
        ]);
    }
    println!("{}", t.render());

    let scan = &runs[0];
    let select = &runs[1];
    let full = &runs[2];
    let time_ratio = scan.total_ms / full.total_ms;
    let ship_ratio = scan.shipped as f64 / full.shipped as f64;
    println!(
        "negotiated pushdown vs scan-only: {time_ratio:.1}x less simulated time, \
         {ship_ratio:.1}x fewer shipped tuples"
    );

    // Material wins, with comfortable margins on this workload.
    assert!(
        select.total_ms < scan.total_ms,
        "select pushdown must beat scan-only ({:.1} vs {:.1})",
        select.total_ms,
        scan.total_ms
    );
    assert!(
        full.total_ms * 2.0 <= scan.total_ms,
        "full pushdown must be >= 2x cheaper than scan-only ({:.1} vs {:.1})",
        full.total_ms,
        scan.total_ms
    );
    assert!(
        (full.shipped as f64) * 10.0 <= scan.shipped as f64,
        "full pushdown must ship >= 10x fewer tuples ({} vs {})",
        full.shipped,
        scan.shipped
    );

    let mut json_rows = String::new();
    for run in &runs {
        if !json_rows.is_empty() {
            json_rows.push(',');
        }
        let mut queries_json = String::new();
        for ((name, _), (ms, rows, est)) in QUERIES.iter().zip(&run.per_query) {
            if !queries_json.is_empty() {
                queries_json.push(',');
            }
            write!(
                queries_json,
                "\n      {{\"query\": \"{name}\", \"sim_ms\": {ms:.2}, \
                 \"shipped_tuples\": {rows}, \"estimated_total_time\": {est:.2}}}"
            )
            .expect("write query row");
        }
        write!(
            json_rows,
            "\n    {{\"profile\": \"{}\", \"total_sim_ms\": {:.2}, \
             \"shipped_tuples\": {}, \"queries\": [{queries_json}\n    ]}}",
            run.profile, run.total_ms, run.shipped
        )
        .expect("write profile row");
    }
    let json = format!(
        "{{\n  \"bench\": \"capability_negotiation\",\n  \
         \"event_rows\": {EVENT_ROWS},\n  \"order_docs\": {ORDER_DOCS},\n  \
         \"time_ratio_scan_vs_full\": {time_ratio:.2},\n  \
         \"ship_ratio_scan_vs_full\": {ship_ratio:.2},\n  \
         \"profiles\": [{json_rows}\n  ],\n  \"pass\": true\n}}\n"
    );
    std::fs::write("BENCH_capability.json", &json).expect("write BENCH_capability.json");
    println!("wrote BENCH_capability.json");
}

//! E12 — transport scaling: sequential vs parallel submission over the
//! channel transport's simulated network.
//!
//! Sweeps federations of 1–8 wrappers (one collection each, ~10 ms of
//! real sleep per round trip via `sleep_scale`) and measures the fetch
//! wall clock of the same union query submitted sequentially and with
//! the scoped-thread fan-out. Also runs a degraded 4-wrapper federation
//! with one endpoint permanently unavailable to demonstrate partial
//! answers. Besides the table it writes `BENCH_transport.json`
//! (machine-readable, consumed by CI as an artifact).
//!
//! ```text
//! cargo run --release -p disco-bench --bin transport_scaling
//! ```

use std::fmt::Write as _;

use disco_bench::Table;
use disco_common::{AttributeDef, DataType, Schema, Value};
use disco_mediator::{Mediator, MediatorOptions, QueryResult};
use disco_sources::{CollectionBuilder, CostProfile, PagedStore};
use disco_transport::{ChannelTransport, FaultKind, FaultPlan, NetProfile, TransportClient};
use disco_wrapper::SourceWrapper;

const MAX_WRAPPERS: usize = 8;
const ROWS_PER_COLLECTION: i64 = 200;

/// Real sleep per simulated round trip: lan() charges ~100 ms, scaled
/// to ~10 ms of wall clock so the sweep stays fast but measurable.
const SLEEP_SCALE: f64 = 0.1;

/// A federation of `n` single-collection wrappers `s0..s{n-1}`, the
/// wrapper named by `faulty` (if any) permanently unavailable.
fn federation(n: usize, parallel: bool, faulty: Option<usize>) -> Mediator {
    let mut t = ChannelTransport::new();
    for i in 0..n {
        let schema = Schema::new(vec![
            AttributeDef::new("x", DataType::Long),
            AttributeDef::new("tag", DataType::Str),
        ]);
        let mut store = PagedStore::new(format!("s{i}"), CostProfile::relational());
        store
            .add_collection(
                format!("C{i}"),
                CollectionBuilder::new(schema).rows(
                    (0..ROWS_PER_COLLECTION)
                        .map(|v| vec![Value::Long(v), Value::Str(format!("w{i}r{v}"))]),
                ),
            )
            .expect("collection registers");
        let faults = if faulty == Some(i) {
            FaultPlan::always(FaultKind::Unavailable)
        } else {
            FaultPlan::none()
        };
        t.add_wrapper_with(
            Box::new(SourceWrapper::new(format!("s{i}"), store)),
            NetProfile::lan().with_sleep_scale(SLEEP_SCALE),
            faults,
        );
    }
    let client = TransportClient::new(Box::new(t));
    let mut m = Mediator::new().with_options(MediatorOptions {
        parallel_submits: parallel,
        ..Default::default()
    });
    m.connect(client).expect("all wrappers register");
    m
}

/// `SELECT x FROM C0 UNION ALL ... UNION ALL SELECT x FROM C{n-1}`.
fn union_sql(n: usize) -> String {
    (0..n)
        .map(|i| format!("SELECT x FROM C{i}"))
        .collect::<Vec<_>>()
        .join(" UNION ALL ")
}

fn run(n: usize, parallel: bool) -> QueryResult {
    let mut m = federation(n, parallel, None);
    m.query(&union_sql(n)).expect("query succeeds")
}

fn main() {
    let mut t = Table::new(&[
        "wrappers",
        "tuples",
        "seq fetch ms",
        "par fetch ms",
        "speedup",
        "predicted par ms",
        "measured par ms",
    ]);
    let mut json_rows = String::new();

    for n in 1..=MAX_WRAPPERS {
        let seq = run(n, false);
        let par = run(n, true);
        assert_eq!(seq.tuples.len(), n * ROWS_PER_COLLECTION as usize);
        assert_eq!(par.tuples.len(), seq.tuples.len());
        if n > 1 {
            assert!(par.trace.concurrent, "parallel run must fan out at n={n}");
            assert!(
                par.trace.submit_wall_ms < seq.trace.submit_wall_ms,
                "parallel fetch must beat sequential at n={n}: {} !< {}",
                par.trace.submit_wall_ms,
                seq.trace.submit_wall_ms
            );
        }
        let speedup = seq.trace.submit_wall_ms / par.trace.submit_wall_ms.max(1e-9);
        t.row(vec![
            n.to_string(),
            seq.tuples.len().to_string(),
            format!("{:.2}", seq.trace.submit_wall_ms),
            format!("{:.2}", par.trace.submit_wall_ms),
            format!("{speedup:.1}x"),
            format!("{:.2}", par.trace.predicted_parallel_ms()),
            format!("{:.2}", par.trace.parallel_ms()),
        ]);
        if !json_rows.is_empty() {
            json_rows.push(',');
        }
        write!(
            json_rows,
            "\n    {{\"wrappers\": {n}, \"tuples\": {}, \
             \"sequential\": {{\"fetch_wall_ms\": {:.3}, \"response_ms\": {:.3}}}, \
             \"parallel\": {{\"fetch_wall_ms\": {:.3}, \"response_ms\": {:.3}, \
             \"predicted_ms\": {:.3}, \"concurrent\": {}}}, \
             \"speedup\": {:.3}}}",
            seq.tuples.len(),
            seq.trace.submit_wall_ms,
            seq.trace.sequential_ms(),
            par.trace.submit_wall_ms,
            par.trace.parallel_ms(),
            par.trace.predicted_parallel_ms(),
            par.trace.concurrent,
            speedup,
        )
        .expect("write json row");
    }
    println!("{}", t.render());
    println!(
        "Sequential fetch pays each simulated round trip in turn; the \
         scoped-thread fan-out overlaps them, so the wall clock tracks \
         the slowest wrapper instead of the sum."
    );

    // Degraded federation: 4 wrappers, one permanently down. The query
    // still answers, minus the dead wrapper's collection.
    let mut degraded = federation(4, true, Some(2));
    let r = degraded
        .query(&union_sql(4))
        .expect("partial answer, not error");
    assert!(r.is_partial(), "down wrapper must yield a partial answer");
    assert_eq!(r.tuples.len(), 3 * ROWS_PER_COLLECTION as usize);
    let missing: Vec<String> = r.trace.missing.iter().map(|q| q.to_string()).collect();
    println!(
        "\ndegraded federation (s2 down): {} tuples, partial answer, missing: {}",
        r.tuples.len(),
        missing.join(", ")
    );

    let json = format!(
        "{{\n  \"bench\": \"transport_scaling\",\n  \"workload\": \"union\",\n  \
         \"wrappers\": [1, {MAX_WRAPPERS}],\n  \"sleep_scale\": {SLEEP_SCALE},\n  \
         \"rows\": [{json_rows}\n  ],\n  \
         \"degraded\": {{\"wrappers\": 4, \"down\": \"s2\", \"partial\": {}, \
         \"tuples\": {}, \"missing\": [{}]}}\n}}\n",
        r.is_partial(),
        r.tuples.len(),
        missing
            .iter()
            .map(|m| format!("\"{m}\""))
            .collect::<Vec<_>>()
            .join(", "),
    );
    std::fs::write("BENCH_transport.json", &json).expect("write BENCH_transport.json");
    println!("wrote BENCH_transport.json");
}

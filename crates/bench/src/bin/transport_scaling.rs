//! E12 — transport scaling: sequential vs parallel submission over the
//! channel transport's simulated network.
//!
//! Sweeps federations of 1–8 wrappers (one collection each, ~10 ms of
//! real sleep per round trip via `sleep_scale`) and measures the fetch
//! wall clock of the same union query submitted sequentially and with
//! the scoped-thread fan-out. Also runs a degraded 4-wrapper federation
//! with one endpoint permanently unavailable to demonstrate partial
//! answers, and a replicated straggler federation measuring p50/p99
//! fetch latency with and without cost-model-driven hedging. Besides
//! the tables it writes `BENCH_transport.json` (machine-readable,
//! consumed by CI as an artifact).
//!
//! ```text
//! cargo run --release -p disco-bench --bin transport_scaling
//! ```

use std::fmt::Write as _;

use disco_bench::Table;
use disco_common::{AttributeDef, DataType, Schema, Value};
use disco_mediator::{Mediator, MediatorOptions, QueryResult, ResiliencePolicy};
use disco_sources::{CollectionBuilder, CostProfile, PagedStore};
use disco_transport::{ChannelTransport, FaultKind, FaultPlan, NetProfile, TransportClient};
use disco_wrapper::SourceWrapper;

const MAX_WRAPPERS: usize = 8;
const ROWS_PER_COLLECTION: i64 = 200;

/// Real sleep per simulated round trip: lan() charges ~100 ms, scaled
/// to ~10 ms of wall clock so the sweep stays fast but measurable.
const SLEEP_SCALE: f64 = 0.1;

/// A federation of `n` single-collection wrappers `s0..s{n-1}`, the
/// wrapper named by `faulty` (if any) permanently unavailable.
fn federation(n: usize, parallel: bool, faulty: Option<usize>) -> Mediator {
    let mut t = ChannelTransport::new();
    for i in 0..n {
        let schema = Schema::new(vec![
            AttributeDef::new("x", DataType::Long),
            AttributeDef::new("tag", DataType::Str),
        ]);
        let mut store = PagedStore::new(format!("s{i}"), CostProfile::relational());
        store
            .add_collection(
                format!("C{i}"),
                CollectionBuilder::new(schema).rows(
                    (0..ROWS_PER_COLLECTION)
                        .map(|v| vec![Value::Long(v), Value::Str(format!("w{i}r{v}"))]),
                ),
            )
            .expect("collection registers");
        let faults = if faulty == Some(i) {
            FaultPlan::always(FaultKind::Unavailable)
        } else {
            FaultPlan::none()
        };
        t.add_wrapper_with(
            Box::new(SourceWrapper::new(format!("s{i}"), store)),
            NetProfile::lan().with_sleep_scale(SLEEP_SCALE),
            faults,
        );
    }
    let client = TransportClient::new(Box::new(t));
    let mut m = Mediator::new().with_options(MediatorOptions {
        parallel_submits: parallel,
        ..Default::default()
    });
    m.connect(client).expect("all wrappers register");
    m
}

/// `SELECT x FROM C0 UNION ALL ... UNION ALL SELECT x FROM C{n-1}`.
fn union_sql(n: usize) -> String {
    (0..n)
        .map(|i| format!("SELECT x FROM C{i}"))
        .collect::<Vec<_>>()
        .join(" UNION ALL ")
}

fn run(n: usize, parallel: bool) -> QueryResult {
    let mut m = federation(n, parallel, None);
    m.query(&union_sql(n)).expect("query succeeds")
}

/// Extra simulated delay on the straggling replica `ra`: `lan()`
/// charges ~100 ms per round trip, so +900 ms makes it ~10× slower
/// than its healthy peer `rb`.
const STRAGGLER_DELAY_MS: f64 = 900.0;
const HEDGE_ITERATIONS: usize = 20;

/// `R` replicated on `ra` (straggling) and `rb` (healthy); the
/// optimizer plans to `ra` (declared first, identical cost), so every
/// fetch must either ride out the straggler or hedge around it.
fn replicated_federation(hedge: bool) -> Mediator {
    let mut t = ChannelTransport::new();
    for (name, faults) in [
        (
            "ra",
            FaultPlan::always(FaultKind::Delay(STRAGGLER_DELAY_MS)),
        ),
        ("rb", FaultPlan::none()),
    ] {
        let schema = Schema::new(vec![
            AttributeDef::new("x", DataType::Long),
            AttributeDef::new("tag", DataType::Str),
        ]);
        let mut store = PagedStore::new(name, CostProfile::relational());
        store
            .add_collection(
                "R",
                CollectionBuilder::new(schema).rows(
                    (0..ROWS_PER_COLLECTION)
                        .map(|v| vec![Value::Long(v), Value::Str(format!("{name}r{v}"))]),
                ),
            )
            .expect("collection registers");
        t.add_wrapper_with(
            Box::new(SourceWrapper::new(name, store)),
            NetProfile::lan().with_sleep_scale(SLEEP_SCALE),
            faults,
        );
    }
    let mut m = Mediator::new().with_options(MediatorOptions {
        resilience: ResiliencePolicy {
            hedge,
            // Wall deadlines/waits are derived from simulated
            // predictions; the endpoints sleep at SLEEP_SCALE. Hedge as
            // soon as a submit overruns its predicted TimeFirst — the
            // tail-latency posture this bench measures.
            straggler_factor: 1.0,
            time_scale: SLEEP_SCALE,
            ..ResiliencePolicy::default()
        },
        ..MediatorOptions::default()
    });
    m.connect(TransportClient::new(Box::new(t)))
        .expect("replicas register");
    m.declare_replicas("R", &["ra", "rb"]).expect("replica set");
    m
}

/// Latency samples for repeated single-scan queries against the
/// straggler federation; a fresh mediator per query keeps the adaptive
/// health penalty from re-planning to `rb` and hiding the straggler.
fn straggler_samples(hedge: bool) -> (Vec<f64>, u64) {
    let mut samples = Vec::with_capacity(HEDGE_ITERATIONS);
    let mut hedges = 0u64;
    for _ in 0..HEDGE_ITERATIONS {
        let mut m = replicated_federation(hedge);
        let r = m.query("SELECT x FROM R").expect("query succeeds");
        assert_eq!(r.tuples.len(), ROWS_PER_COLLECTION as usize);
        assert!(!r.is_partial());
        samples.push(r.trace.submit_wall_ms);
        hedges += u64::from(r.trace.hedges);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    (samples, hedges)
}

/// Quantile of an ascending-sorted sample set (nearest-rank).
fn quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn main() {
    let mut t = Table::new(&[
        "wrappers",
        "tuples",
        "seq fetch ms",
        "par fetch ms",
        "speedup",
        "predicted par ms",
        "measured par ms",
    ]);
    let mut json_rows = String::new();

    for n in 1..=MAX_WRAPPERS {
        let seq = run(n, false);
        let par = run(n, true);
        assert_eq!(seq.tuples.len(), n * ROWS_PER_COLLECTION as usize);
        assert_eq!(par.tuples.len(), seq.tuples.len());
        if n > 1 {
            assert!(par.trace.concurrent, "parallel run must fan out at n={n}");
            assert!(
                par.trace.submit_wall_ms < seq.trace.submit_wall_ms,
                "parallel fetch must beat sequential at n={n}: {} !< {}",
                par.trace.submit_wall_ms,
                seq.trace.submit_wall_ms
            );
        }
        let speedup = seq.trace.submit_wall_ms / par.trace.submit_wall_ms.max(1e-9);
        t.row(vec![
            n.to_string(),
            seq.tuples.len().to_string(),
            format!("{:.2}", seq.trace.submit_wall_ms),
            format!("{:.2}", par.trace.submit_wall_ms),
            format!("{speedup:.1}x"),
            format!("{:.2}", par.trace.predicted_parallel_ms()),
            format!("{:.2}", par.trace.parallel_ms()),
        ]);
        if !json_rows.is_empty() {
            json_rows.push(',');
        }
        write!(
            json_rows,
            "\n    {{\"wrappers\": {n}, \"tuples\": {}, \
             \"sequential\": {{\"fetch_wall_ms\": {:.3}, \"response_ms\": {:.3}}}, \
             \"parallel\": {{\"fetch_wall_ms\": {:.3}, \"response_ms\": {:.3}, \
             \"predicted_ms\": {:.3}, \"concurrent\": {}}}, \
             \"speedup\": {:.3}}}",
            seq.tuples.len(),
            seq.trace.submit_wall_ms,
            seq.trace.sequential_ms(),
            par.trace.submit_wall_ms,
            par.trace.parallel_ms(),
            par.trace.predicted_parallel_ms(),
            par.trace.concurrent,
            speedup,
        )
        .expect("write json row");
    }
    println!("{}", t.render());
    println!(
        "Sequential fetch pays each simulated round trip in turn; the \
         scoped-thread fan-out overlaps them, so the wall clock tracks \
         the slowest wrapper instead of the sum."
    );

    // Degraded federation: 4 wrappers, one permanently down. The query
    // still answers, minus the dead wrapper's collection.
    let mut degraded = federation(4, true, Some(2));
    let r = degraded
        .query(&union_sql(4))
        .expect("partial answer, not error");
    assert!(r.is_partial(), "down wrapper must yield a partial answer");
    assert_eq!(r.tuples.len(), 3 * ROWS_PER_COLLECTION as usize);
    let missing: Vec<String> = r.trace.missing.iter().map(|q| q.to_string()).collect();
    println!(
        "\ndegraded federation (s2 down): {} tuples, partial answer, missing: {}",
        r.tuples.len(),
        missing.join(", ")
    );

    // Straggling replica: `ra` is ~10× slower than `rb`. Without
    // hedging every fetch rides out the straggler; with hedging the
    // predicted-`TimeFirst` timer fires and `rb` wins the race.
    let (plain, plain_hedges) = straggler_samples(false);
    let (hedged, hedged_hedges) = straggler_samples(true);
    assert_eq!(plain_hedges, 0, "hedging disabled must spend no hedges");
    assert!(hedged_hedges > 0, "the straggler must trigger hedges");
    let (plain_p50, plain_p99) = (quantile(&plain, 0.50), quantile(&plain, 0.99));
    let (hedged_p50, hedged_p99) = (quantile(&hedged, 0.50), quantile(&hedged, 0.99));
    let p99_improvement = plain_p99 / hedged_p99.max(1e-9);
    assert!(
        p99_improvement >= 2.0,
        "hedging must improve p99 fetch latency at least 2x under a \
         10x straggler: {plain_p99:.2} ms -> {hedged_p99:.2} ms \
         ({p99_improvement:.1}x)"
    );
    let mut ht = Table::new(&["mode", "p50 fetch ms", "p99 fetch ms", "hedges"]);
    ht.row(vec![
        "unhedged".into(),
        format!("{plain_p50:.2}"),
        format!("{plain_p99:.2}"),
        plain_hedges.to_string(),
    ]);
    ht.row(vec![
        "hedged".into(),
        format!("{hedged_p50:.2}"),
        format!("{hedged_p99:.2}"),
        hedged_hedges.to_string(),
    ]);
    println!(
        "\nstraggling replica (ra +{STRAGGLER_DELAY_MS} simulated ms, \
         {HEDGE_ITERATIONS} queries per mode):"
    );
    println!("{}", ht.render());
    println!("p99 improvement from hedging: {p99_improvement:.1}x");

    let json = format!(
        "{{\n  \"bench\": \"transport_scaling\",\n  \"workload\": \"union\",\n  \
         \"wrappers\": [1, {MAX_WRAPPERS}],\n  \"sleep_scale\": {SLEEP_SCALE},\n  \
         \"rows\": [{json_rows}\n  ],\n  \
         \"degraded\": {{\"wrappers\": 4, \"down\": \"s2\", \"partial\": {}, \
         \"tuples\": {}, \"missing\": [{}]}},\n  \
         \"hedging\": {{\"iterations\": {HEDGE_ITERATIONS}, \"straggler\": \"ra\", \
         \"straggler_delay_ms\": {STRAGGLER_DELAY_MS}, \
         \"unhedged\": {{\"p50_ms\": {plain_p50:.3}, \"p99_ms\": {plain_p99:.3}, \"hedges\": {plain_hedges}}}, \
         \"hedged\": {{\"p50_ms\": {hedged_p50:.3}, \"p99_ms\": {hedged_p99:.3}, \"hedges\": {hedged_hedges}}}, \
         \"p99_improvement\": {p99_improvement:.3}}}\n}}\n",
        r.is_partial(),
        r.tuples.len(),
        missing
            .iter()
            .map(|m| format!("\"{m}\""))
            .collect::<Vec<_>>()
            .join(", "),
    );
    std::fs::write("BENCH_transport.json", &json).expect("write BENCH_transport.json");
    println!("wrote BENCH_transport.json");
}

//! E2 — the Figure 13 rule as *shipped text*: demonstrates that the Yao
//! curve of E1 is produced by the full cost-communication pipeline
//! (parse → compile → bytecode shipped at registration → VM evaluation in
//! the mediator), and that the VM result equals the native closed form.
//!
//! ```text
//! cargo run --release -p disco-bench --bin fig12_via_costlang
//! ```

use disco_bench::setup::{compile_text, oo7_env};
use disco_bench::Table;
use disco_core::{yao_pages, Estimator};
use disco_oo7::{index_scan_selectivity, rules, Oo7Config};

fn main() {
    let config = Oo7Config::paper();
    let doc_text = rules::yao_rules();
    let compiled = compile_text(&doc_text).expect("document compiles");

    println!("E2 — Figure 13 rule through the cost communication pipeline\n");
    println!("document source:       {} bytes", doc_text.len());
    println!("rules shipped:         {}", compiled.rules.len());
    let bytecode: usize = compiled
        .rules
        .iter()
        .map(|r| r.body.program.encoded_len())
        .sum();
    let instrs: usize = compiled
        .rules
        .iter()
        .map(|r| r.body.program.instrs.len())
        .sum();
    println!("compiled bytecode:     {bytecode} bytes, {instrs} instructions");
    println!(
        "wrapper parameters:    {:?}\n",
        compiled.params.iter().map(|(n, _)| n).collect::<Vec<_>>()
    );

    let env = oo7_env(&config, &doc_text).expect("registration succeeds");
    let est = Estimator::new(&env.registry, &env.catalog);

    let n = config.atomic_parts as u64;
    let pages = config.atomic_pages();
    let io = 25.0;
    let output = 9.0;
    let overhead = 120.0;

    let mut t = Table::new(&["selectivity", "VM estimate (s)", "closed form (s)", "delta"]);
    let mut max_delta: f64 = 0.0;
    for sel in [0.01, 0.1, 0.3, 0.5, 0.7] {
        let plan = index_scan_selectivity("oo7", &config, sel);
        let vm = est.estimate(&plan).expect("estimates").total_time / 1_000.0;
        let k = (sel * n as f64).round();
        let native = (overhead + io * yao_pages(n, pages, k as u64) + k * output) / 1_000.0;
        let delta = (vm - native).abs();
        max_delta = max_delta.max(delta);
        t.row(vec![
            format!("{sel:.2}"),
            format!("{vm:.2}"),
            format!("{native:.2}"),
            format!("{delta:.4}"),
        ]);
    }
    println!("{}", t.render());
    // The VM computes selectivity from catalog statistics (k may differ
    // by a rounding step from the closed form's k).
    println!("max |VM - closed form| = {max_delta:.4} s (selectivity rounding only)");
    assert!(max_delta < 0.5, "VM path diverged from the closed form");
    println!("OK: the shipped bytecode reproduces the Figure 13 formula.");
}

//! E7 — branch-and-bound cost-limit abandonment (§4.3.2).
//!
//! Optimizes multi-join queries with and without the cost-limit and
//! reports the estimation work saved.
//!
//! ```text
//! cargo run --release -p disco-bench --bin pruning
//! ```

use disco_bench::Table;
use disco_mediator::{JoinEnumeration, Mediator, MediatorOptions};
use disco_oo7::{build_store, rules, Oo7Config};
use disco_wrapper::SourceWrapper;

fn mediator(config: &Oo7Config, pruning: bool) -> Mediator {
    // Pin the exhaustive permutation enumerator: this experiment isolates
    // the §4.3.2 cost-limit effect, which the DP path's caches would
    // partially mask.
    let mut m = Mediator::new().with_options(MediatorOptions {
        pruning,
        enumeration: JoinEnumeration::Permutation,
        ..Default::default()
    });
    m.register(Box::new(
        SourceWrapper::new("oo7", build_store(config).expect("gen"))
            .with_cost_rules(rules::yao_rules()),
    ))
    .expect("register");
    m
}

fn main() {
    let config = Oo7Config::paper();
    let queries = [
        (
            "2-way",
            "SELECT a.X, d.Title FROM AtomicParts a, Documents d \
             WHERE a.DocId = d.DocId AND a.Id < 1000",
        ),
        (
            "3-way",
            "SELECT a.X, d.Title FROM AtomicParts a, CompositeParts c, Documents d \
             WHERE a.PartOf = c.Id AND c.DocId = d.DocId AND a.Id < 1000",
        ),
        (
            "4-way",
            "SELECT a.X FROM AtomicParts a, CompositeParts c, Documents d, AssemblyUses u \
             WHERE a.PartOf = c.Id AND c.DocId = d.DocId AND u.CompId = c.Id AND a.Id < 500",
        ),
    ];

    println!("E7 — optimizer estimation work, with and without cost-limit pruning\n");
    let mut t = Table::new(&[
        "query",
        "plans",
        "nodes (no pruning)",
        "nodes (pruning)",
        "pruned",
        "saved",
        "same plan?",
    ]);
    for (name, sql) in queries {
        let m_off = mediator(&config, false);
        let m_on = mediator(&config, true);
        let off = m_off.plan(sql).expect("plans");
        let on = m_on.plan(sql).expect("plans");
        let saved = 1.0 - on.estimator_nodes as f64 / off.estimator_nodes as f64;
        t.row(vec![
            name.into(),
            off.plans_considered.to_string(),
            off.estimator_nodes.to_string(),
            on.estimator_nodes.to_string(),
            on.plans_pruned.to_string(),
            format!("{:.0}%", saved * 100.0),
            (on.estimated.total_time == off.estimated.total_time).to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("Pruning abandons plans mid-estimation without changing the chosen plan.");
}

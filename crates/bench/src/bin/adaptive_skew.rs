//! E18 — adaptive re-optimization under seeded cardinality skew.
//!
//! An adversarial three-site federation where the estimator's uniformity
//! assumption is catastrophically wrong for exactly one site: `S.k` has
//! 1 001 distinct values but one dominant value covering 87% of the
//! rows, so `WHERE s.k = 0` predicts `|S|/1001 ≈ 8` rows and observes
//! 7 000 — all carrying the same join value `y = 0` that `B`'s hot
//! partition also carries. Under the tiny prediction the static
//! optimizer joins `S` first and builds a ~7M-row intermediate; the
//! corrected cardinalities make `(A⋈B)`-first orders of magnitude
//! cheaper on the combine side. The adaptive executor detects the miss
//! at the post-fetch checkpoint (two-phase) or mid-stream (pipelined),
//! abandons the running order, and re-drives the combine from the
//! already-materialized subanswers.
//!
//! Asserted: adaptive ≥ 2× faster than static end-to-end on both
//! engines (10× is the target and the measured number is recorded),
//! identical answers, a visible re-plan event in EXPLAIN ANALYZE, zero
//! re-plans plus <5% regression on the uniform (no-skew) control.
//! Writes `BENCH_adaptive.json` (consumed by CI as an artifact) and
//! exits nonzero if any gate fails.
//!
//! ```text
//! cargo run --release -p disco-bench --bin adaptive_skew
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use disco_bench::Table;
use disco_common::{AttributeDef, DataType, Schema, Value};
use disco_mediator::{AdaptivePolicy, Mediator, MediatorOptions, QueryResult};
use disco_sources::{CollectionBuilder, CostProfile, PagedStore};
use disco_wrapper::SourceWrapper;

const A_ROWS: i64 = 4_000;
const B_ROWS: i64 = 2_000;
const S_ROWS: i64 = 8_000;
/// Singleton `k` values that keep `count_distinct(S.k)` high while the
/// dominant `k = 0` holds the other 7 000 rows.
const S_MINORITY: i64 = 1_000;

const SKEW_SQL: &str = "SELECT a.x, b.y, s.k FROM A a, B b, S s \
     WHERE a.p = 2 AND a.x = b.x AND b.y = s.y AND s.k = 0";

fn long_schema(attrs: &[&str]) -> Schema {
    Schema::new(
        attrs
            .iter()
            .map(|a| AttributeDef::new(*a, DataType::Long))
            .collect(),
    )
}

/// Chain federation `A(x,p) ⋈ B(x,y) ⋈ S(y,k)`.
///
/// * `A`: `x` unique, `p = x mod 5` — the `a.p = 2` filter keeps 800
///   rows and is predicted exactly (no skew on `A`).
/// * `B`: 1 000 "hot" rows with out-of-domain `x` and `y = 0` — what the
///   bad join order multiplies against `S` and the good order discards —
///   plus 1 000 "cold" rows whose `x` overlaps `A` and whose `y` is
///   long-tail (one bridge row `x = 7, y = 0` keeps the answer
///   nonempty).
/// * `S` (skewed): 7 000 rows with `k = 0` and `y = 0`; 1 000 singleton
///   `k` values keep `count_distinct(k) = 1001`, so the estimator
///   predicts ~8 rows where 7 000 survive — every one joining `B`'s hot
///   partition.
/// * `S` (uniform control): `k = i mod 1001`, `y = i mod 97` — the same
///   prediction is now exactly right, so the checkpoint must stay
///   silent.
fn federation(skewed: bool, streaming: bool, adaptive: AdaptivePolicy) -> Mediator {
    let mut a = PagedStore::new("a", CostProfile::relational());
    a.add_collection(
        "A",
        CollectionBuilder::new(long_schema(&["x", "p"]))
            .rows((0..A_ROWS).map(|i| vec![Value::Long(i), Value::Long(i % 5)]))
            .index("p"),
    )
    .unwrap();
    let mut b = PagedStore::new("b", CostProfile::relational());
    b.add_collection(
        "B",
        CollectionBuilder::new(long_schema(&["x", "y"])).rows((0..B_ROWS).map(|i| {
            if i < B_ROWS / 2 {
                vec![Value::Long(100_000 + i), Value::Long(0)]
            } else {
                let x = i - B_ROWS / 2;
                let y = if x == 7 { 0 } else { 4 + (x % 96) };
                vec![Value::Long(x), Value::Long(y)]
            }
        })),
    )
    .unwrap();
    let mut s = PagedStore::new("s", CostProfile::relational());
    s.add_collection(
        "S",
        CollectionBuilder::new(long_schema(&["y", "k"]))
            .rows((0..S_ROWS).map(|i| {
                if !skewed {
                    vec![Value::Long(i % 97), Value::Long(i % 1001)]
                } else if i < S_ROWS - S_MINORITY {
                    vec![Value::Long(0), Value::Long(0)]
                } else {
                    vec![
                        Value::Long(4 + (i % 96)),
                        Value::Long(i - (S_ROWS - S_MINORITY) + 1),
                    ]
                }
            }))
            .index("k"),
    )
    .unwrap();
    let mut m = Mediator::new().with_options(MediatorOptions {
        streaming,
        streaming_chunk_rows: 1024,
        adaptive,
        ..MediatorOptions::default()
    });
    m.register(Box::new(SourceWrapper::new("a", a))).unwrap();
    m.register(Box::new(SourceWrapper::new("b", b))).unwrap();
    m.register(Box::new(SourceWrapper::new("s", s))).unwrap();
    m
}

/// Order-insensitive answer digest: reordering permutes rows, never
/// content.
fn answer_key(r: &QueryResult) -> String {
    let mut rows: Vec<String> = r.tuples.iter().map(|t| format!("{t:?}")).collect();
    rows.sort();
    rows.join("\n")
}

struct Run {
    result: QueryResult,
    wall_ms: f64,
}

fn run(skewed: bool, streaming: bool, adaptive: AdaptivePolicy) -> Run {
    let mut m = federation(skewed, streaming, adaptive);
    let start = Instant::now();
    let result = m.query(SKEW_SQL).expect("query");
    Run {
        result,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
    }
}

struct WorkloadRow {
    engine: &'static str,
    static_ms: f64,
    adaptive_ms: f64,
    speedup: f64,
    combine_speedup: f64,
    replans: usize,
    wall_static_ms: f64,
    wall_adaptive_ms: f64,
}

fn main() {
    let mut failures: Vec<String> = Vec::new();
    let mut check = |ok: bool, what: String| {
        if !ok {
            eprintln!("FAIL: {what}");
            failures.push(what);
        }
    };

    // --- seeded-skew federation, both engines -------------------------
    let oracle = answer_key(&run(true, false, AdaptivePolicy::default()).result);
    let mut rows: Vec<WorkloadRow> = Vec::new();
    for (engine, streaming) in [("two_phase", false), ("streaming", true)] {
        let stat = run(true, streaming, AdaptivePolicy::default());
        let adap = run(true, streaming, AdaptivePolicy::enabled());
        check(
            answer_key(&stat.result) == oracle && answer_key(&adap.result) == oracle,
            format!("{engine}: adaptive answer must be byte-identical to static"),
        );
        check(
            stat.result.trace.replans.is_empty(),
            format!("{engine}: static run must not re-plan"),
        );
        check(
            adap.result.trace.replans.iter().any(|e| e.switched),
            format!("{engine}: seeded skew must trigger a switched re-plan"),
        );
        let speedup = stat.result.measured_ms / adap.result.measured_ms;
        let combine_speedup = stat.result.trace.mediator_ms / adap.result.trace.mediator_ms;
        check(
            speedup >= 2.0,
            format!("{engine}: adaptive must be >=2x faster end-to-end (got {speedup:.2}x)"),
        );
        rows.push(WorkloadRow {
            engine,
            static_ms: stat.result.measured_ms,
            adaptive_ms: adap.result.measured_ms,
            speedup,
            combine_speedup,
            replans: adap.result.trace.replans.len(),
            wall_static_ms: stat.wall_ms,
            wall_adaptive_ms: adap.wall_ms,
        });
    }

    // --- no-skew control: dead zone respected, no regression ----------
    let ctrl_static = run(false, false, AdaptivePolicy::default());
    let ctrl_adaptive = run(false, false, AdaptivePolicy::enabled());
    check(
        answer_key(&ctrl_static.result) == answer_key(&ctrl_adaptive.result),
        "no-skew: answers must match".into(),
    );
    check(
        ctrl_adaptive.result.trace.replans.is_empty(),
        "no-skew: accurate predictions must trigger zero re-plans".into(),
    );
    let regression = ctrl_adaptive.result.measured_ms / ctrl_static.result.measured_ms - 1.0;
    check(
        regression < 0.05,
        format!(
            "no-skew: adaptive overhead must stay <5% (got {:+.2}%)",
            regression * 100.0
        ),
    );

    // --- EXPLAIN ANALYZE narrates the abandonment ---------------------
    let report = federation(true, false, AdaptivePolicy::enabled())
        .explain_analyze(SKEW_SQL)
        .expect("explain analyze");
    let text = report.render();
    check(
        text.contains("re-optimized: predicted"),
        "EXPLAIN ANALYZE must contain the re-plan event".into(),
    );

    let mut t = Table::new(&[
        "engine",
        "static ms",
        "adaptive ms",
        "speedup",
        "combine speedup",
        "replans",
        "wall static ms",
        "wall adaptive ms",
    ]);
    for r in &rows {
        t.row(vec![
            r.engine.to_string(),
            format!("{:.1}", r.static_ms),
            format!("{:.1}", r.adaptive_ms),
            format!("{:.2}x", r.speedup),
            format!("{:.1}x", r.combine_speedup),
            r.replans.to_string(),
            format!("{:.1}", r.wall_static_ms),
            format!("{:.1}", r.wall_adaptive_ms),
        ]);
    }
    println!("{}", t.render());
    println!(
        "no-skew control: static {:.1} ms, adaptive {:.1} ms ({:+.2}%), 0 re-plans",
        ctrl_static.result.measured_ms,
        ctrl_adaptive.result.measured_ms,
        regression * 100.0
    );
    println!("\nEXPLAIN ANALYZE (skew, adaptive) excerpt:");
    for line in text.lines().filter(|l| l.contains("re-optimized")) {
        println!("  {}", line.trim_start());
    }
    println!(
        "\nThe static plan trusts the uniformity assumption and joins the \
         skew-filtered S first (~8 rows predicted, 7 000 observed), \
         multiplying it against B's hot partition; the adaptive executor \
         abandons that order at the cardinality checkpoint and re-drives \
         the combine from the same materialized subanswers."
    );

    let mut json_rows = String::new();
    for r in &rows {
        if !json_rows.is_empty() {
            json_rows.push(',');
        }
        write!(
            json_rows,
            "\n    {{\"engine\": \"{}\", \"static_ms\": {:.3}, \
             \"adaptive_ms\": {:.3}, \"speedup\": {:.3}, \
             \"combine_speedup\": {:.3}, \"replans\": {}, \
             \"wall_static_ms\": {:.3}, \"wall_adaptive_ms\": {:.3}}}",
            r.engine,
            r.static_ms,
            r.adaptive_ms,
            r.speedup,
            r.combine_speedup,
            r.replans,
            r.wall_static_ms,
            r.wall_adaptive_ms,
        )
        .expect("write json row");
    }
    let pass = failures.is_empty();
    let json = format!(
        "{{\n  \"bench\": \"adaptive_skew\",\n  \
         \"rows\": {{\"A\": {A_ROWS}, \"B\": {B_ROWS}, \"S\": {S_ROWS}}},\n  \
         \"asserted_speedup\": 2.0,\n  \"target_speedup\": 10.0,\n  \
         \"workloads\": [{json_rows}\n  ],\n  \
         \"no_skew\": {{\"static_ms\": {:.3}, \"adaptive_ms\": {:.3}, \
         \"replans\": {}, \"regression\": {:.4}}},\n  \"pass\": {pass}\n}}\n",
        ctrl_static.result.measured_ms,
        ctrl_adaptive.result.measured_ms,
        ctrl_adaptive.result.trace.replans.len(),
        regression,
    );
    std::fs::write("BENCH_adaptive.json", &json).expect("write BENCH_adaptive.json");
    println!("wrote BENCH_adaptive.json");

    if !pass {
        eprintln!("{} gate(s) failed", failures.len());
        std::process::exit(1);
    }
}

//! E3 — clustering ablation (§5/§7): "We particularly investigate the
//! case of clustering, which can not be easily captured by a calibrating
//! model."
//!
//! `AtomicParts` is stored clustered on `Id`; a range of `k` objects then
//! touches only contiguous pages. Neither the calibrated model nor the
//! (unclustered) Yao rule can see this — only a wrapper-exported
//! clustered-layout rule estimates it correctly.
//!
//! ```text
//! cargo run --release -p disco-bench --bin clustering_ablation
//! ```

use disco_bench::setup::oo7_env;
use disco_bench::{error_stats, Table};
use disco_core::Estimator;
use disco_oo7::{index_scan_selectivity, rules, Oo7Config};
use disco_sources::DataSource;

fn main() {
    let config = Oo7Config::paper().clustered();
    let cal = oo7_env(&config, &rules::calibrated()).expect("setup");
    let yao = oo7_env(&config, &rules::yao_rules()).expect("setup");
    let clu = oo7_env(&config, &rules::clustered_rules()).expect("setup");
    let cal_est = Estimator::new(&cal.registry, &cal.catalog);
    let yao_est = Estimator::new(&yao.registry, &yao.catalog);
    let clu_est = Estimator::new(&clu.registry, &clu.catalog);

    println!("E3 — clustered AtomicParts: measured vs three cost models\n");
    let mut t = Table::new(&[
        "selectivity",
        "Experiment (s)",
        "Calibration (s)",
        "Yao rule (s)",
        "Clustered rule (s)",
        "pages",
    ]);
    let mut cal_pairs = Vec::new();
    let mut yao_pairs = Vec::new();
    let mut clu_pairs = Vec::new();
    for sel in [0.01, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7] {
        let plan = index_scan_selectivity("oo7", &config, sel);
        let measured = cal.store.execute(&plan).expect("runs");
        let exp_s = measured.stats.elapsed_ms / 1_000.0;
        let cal_s = cal_est.estimate(&plan).expect("est").total_time / 1_000.0;
        let yao_s = yao_est.estimate(&plan).expect("est").total_time / 1_000.0;
        let clu_s = clu_est.estimate(&plan).expect("est").total_time / 1_000.0;
        cal_pairs.push((cal_s, exp_s));
        yao_pairs.push((yao_s, exp_s));
        clu_pairs.push((clu_s, exp_s));
        t.row(vec![
            format!("{sel:.2}"),
            format!("{exp_s:.1}"),
            format!("{cal_s:.1}"),
            format!("{yao_s:.1}"),
            format!("{clu_s:.1}"),
            measured.stats.pages_read.to_string(),
        ]);
    }
    println!("{}", t.render());
    for (name, pairs) in [
        ("Calibration", &cal_pairs),
        ("Yao rule (unclustered assumption)", &yao_pairs),
        ("Clustered rule", &clu_pairs),
    ] {
        let (mean, max) = error_stats(pairs);
        println!(
            "{name:<36} error: mean {:6.1}%  max {:6.1}%",
            mean * 100.0,
            max * 100.0
        );
    }
    println!(
        "\nShape check: only the wrapper-exported clustered rule prices the contiguous\n\
         page accesses; both page-proportional models over-estimate."
    );
}

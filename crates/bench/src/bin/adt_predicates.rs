//! E10 (extension) — the §7 conclusion: exporting the cost of expensive
//! ADT operations.
//!
//! "In environments with data sources of different functionalities, where
//! each source behave as a specific abstract data type … the problem of
//! cost evaluation is crucial, for example to avoid processing a large
//! number of images by first selecting a few images from other data
//! source."
//!
//! An image source evaluates its match predicate at 500 ms per object (an
//! ADT operation), unlike the ~0.05 ms the generic model assumes. Without
//! the exported cost the mediator happily pushes the predicate into the
//! source; with a single exported parameter (`let CpuPred = 500;`) the
//! blended model sees the trap and plans around it.
//!
//! ```text
//! cargo run --release -p disco-bench --bin adt_predicates
//! ```

use disco_bench::Table;
use disco_common::{AttributeDef, DataType, Schema, Value};
use disco_mediator::Mediator;
use disco_sources::{CollectionBuilder, CostProfile, PagedStore};
use disco_wrapper::SourceWrapper;

const IMAGES: i64 = 5_000;

fn image_store() -> PagedStore {
    // An "image library": the match predicate really costs 500 ms/object.
    let profile = CostProfile {
        cpu_pred_ms: 500.0,
        ..CostProfile::object_store()
    };
    let mut s = PagedStore::new("img", profile);
    s.add_collection(
        "Images",
        CollectionBuilder::new(Schema::new(vec![
            AttributeDef::new("img_id", DataType::Long),
            AttributeDef::new("quality", DataType::Long),
        ]))
        .rows((0..IMAGES).map(|i| vec![Value::Long(i), Value::Long((i * 37) % 100)]))
        .object_size(4_096) // one image record per page
        .index("img_id"),
    )
    .expect("load");
    s
}

fn mediator(export: &str) -> Mediator {
    let mut m = Mediator::new();
    m.register(Box::new(
        SourceWrapper::new("img", image_store()).with_cost_rules(export),
    ))
    .expect("register");
    m
}

fn main() {
    let sql = format!("SELECT img_id FROM Images WHERE quality > 90 AND img_id < {IMAGES}");

    println!("E10 — expensive ADT predicate ({IMAGES} images, match = 500 ms/object)\n");
    let mut t = Table::new(&[
        "wrapper export",
        "estimate (s)",
        "measured (s)",
        "pushed predicate?",
    ]);
    for (label, export) in [
        ("none (generic model)", String::new()),
        ("let CpuPred = 500;", "let CpuPred = 500;".to_string()),
    ] {
        let mut m = mediator(&export);
        let plan = m.plan(&sql).expect("plans");
        let pushed = {
            use disco_algebra::{LogicalPlan, PhysicalPlan};
            fn walk(p: &PhysicalPlan) -> bool {
                if let PhysicalPlan::SubmitRemote { plan, .. } = p {
                    fn sel(p: &LogicalPlan) -> bool {
                        matches!(p, LogicalPlan::Select { .. })
                            || p.children().iter().any(|c| sel(c))
                    }
                    if sel(plan) {
                        return true;
                    }
                }
                p.children().iter().any(|c| walk(c))
            }
            walk(&plan.physical)
        };
        let estimate = plan.estimated.total_time / 1e3;
        let result = m.execute_plan(plan).expect("runs");
        t.row(vec![
            label.into(),
            format!("{estimate:.1}"),
            format!("{:.1}", result.measured_ms / 1e3),
            if pushed { "yes" } else { "no" }.into(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "One exported parameter re-calibrates every generic formula for this wrapper:\n\
         the blended mediator fetches the collection and filters locally instead of\n\
         triggering {IMAGES} ADT evaluations at the source."
    );
}

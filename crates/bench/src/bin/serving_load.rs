//! Closed-loop load generator for the multi-tenant serving layer.
//!
//! Three experiments, all against the shared federation from
//! `disco_bench::serving`, written to `BENCH_serving.json`:
//!
//! 1. **Throughput sweep** — aggregate qps and p50/p99 latency at
//!    1/8/64/256 concurrent closed-loop clients over a mixed workload
//!    (7/8 interactive, 1/8 analytical) with simulated network sleeps,
//!    plus the plan-cache hit rate at each level. Acceptance: ≥4×
//!    aggregate qps at 64 clients vs 1.
//! 2. **Plan-cache efficacy** — the same repeated-shape workload planned
//!    through the cache (decision replay) and cold (full optimization),
//!    interleaved per query. Acceptance: hit rate ≥0.8 and cached p50
//!    below cold p50.
//! 3. **Admission control** — 32 analytical + 8 interactive clients with
//!    and without the cost-driven admission controller. Acceptance:
//!    interactive p99 ≥2× better with admission than without.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use disco_bench::serving::{
    admission_policy, analytical_sql, interactive_sql, mixed_sql, shared_federation, tenant_name,
    warm_plan_cache, TABLES,
};
use disco_bench::Table;
use disco_mediator::AdmissionController;

/// Real sleep per simulated communication millisecond in the
/// throughput sweep (lan() charges ~100 ms per round trip).
const SLEEP_SCALE: f64 = 0.04;
/// Wall-clock duration of each closed-loop run.
const RUN_MS: u64 = 2000;
/// Client counts for the throughput sweep.
const LEVELS: [usize; 4] = [1, 8, 64, 256];
/// Queries in the plan-cache efficacy experiment.
const CACHE_QUERIES: usize = 400;

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

struct LevelResult {
    clients: usize,
    queries: usize,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    hit_rate: f64,
}

/// One closed-loop throughput level: `clients` threads each issue the
/// deterministic mixed stream as fast as responses come back.
fn throughput_level(clients: usize) -> LevelResult {
    let sm = shared_federation(SLEEP_SCALE);
    warm_plan_cache(&sm);
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(clients + 1));
    let mut handles = Vec::with_capacity(clients);
    for c in 0..clients {
        let sm = Arc::clone(&sm);
        let stop = Arc::clone(&stop);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mut lats = Vec::new();
            barrier.wait();
            let mut j = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let sql = mixed_sql(c, j);
                let t0 = Instant::now();
                sm.query(&sql).expect("serving query succeeds");
                lats.push(ms(t0));
                j += 1;
            }
            lats
        }));
    }
    barrier.wait();
    let start = Instant::now();
    std::thread::sleep(Duration::from_millis(RUN_MS));
    stop.store(true, Ordering::Relaxed);
    let mut lats: Vec<f64> = Vec::new();
    for h in handles {
        lats.extend(h.join().expect("client thread joins"));
    }
    let elapsed = start.elapsed().as_secs_f64();
    lats.sort_by(|a, b| a.total_cmp(b));
    LevelResult {
        clients,
        queries: lats.len(),
        qps: lats.len() as f64 / elapsed,
        p50_ms: quantile(&lats, 0.50),
        p99_ms: quantile(&lats, 0.99),
        hit_rate: sm.cache_stats().hit_rate(),
    }
}

struct CacheResult {
    queries: usize,
    shapes: usize,
    hit_rate: f64,
    cold_p50_ms: f64,
    cached_p50_ms: f64,
}

/// Plan the same repeated-shape stream twice per query — once cold
/// (full optimization, cache bypassed) and once through the shared
/// cache — and compare planning latency.
fn plan_cache_section() -> CacheResult {
    let sm = shared_federation(0.0);
    let mut cold = Vec::with_capacity(CACHE_QUERIES);
    let mut cached = Vec::with_capacity(CACHE_QUERIES);
    for i in 0..CACHE_QUERIES {
        let shape = i % (2 * TABLES);
        let sql = if shape < TABLES {
            interactive_sql(shape, 3 + (i as i64 % 40))
        } else {
            analytical_sql(shape - TABLES, 200 + (i as i64 * 13) % 600)
        };
        let t0 = Instant::now();
        sm.with_mediator(|m| m.plan(&sql)).expect("cold plan");
        cold.push(ms(t0));
        let t0 = Instant::now();
        sm.plan(&sql).expect("cached plan");
        cached.push(ms(t0));
    }
    cold.sort_by(|a, b| a.total_cmp(b));
    cached.sort_by(|a, b| a.total_cmp(b));
    CacheResult {
        queries: CACHE_QUERIES,
        shapes: 2 * TABLES,
        hit_rate: sm.cache_stats().hit_rate(),
        cold_p50_ms: quantile(&cold, 0.50),
        cached_p50_ms: quantile(&cached, 0.50),
    }
}

#[derive(Clone, Copy)]
struct ClassStats {
    queries: usize,
    p50_ms: f64,
    p99_ms: f64,
}

fn class_stats(mut lats: Vec<f64>) -> ClassStats {
    lats.sort_by(|a, b| a.total_cmp(b));
    ClassStats {
        queries: lats.len(),
        p50_ms: quantile(&lats, 0.50),
        p99_ms: quantile(&lats, 0.99),
    }
}

struct AdmissionResult {
    interactive: ClassStats,
    analytical: ClassStats,
    bypasses: u64,
}

/// 32 analytical + 8 interactive closed-loop clients. Every query is
/// classified by the cost model's prediction; with `use_admission` the
/// controller gates execution, without it queries run unthrottled.
fn admission_run(use_admission: bool) -> AdmissionResult {
    const ANALYTICAL_CLIENTS: usize = 32;
    const INTERACTIVE_CLIENTS: usize = 8;
    let sm = shared_federation(0.0);
    warm_plan_cache(&sm);
    let ctl = Arc::new(AdmissionController::new(admission_policy(&sm)));
    let stop = Arc::new(AtomicBool::new(false));
    let total = ANALYTICAL_CLIENTS + INTERACTIVE_CLIENTS;
    let barrier = Arc::new(Barrier::new(total + 1));

    let spawn_client = |c: usize, analytical: bool| {
        let sm = Arc::clone(&sm);
        let ctl = Arc::clone(&ctl);
        let stop = Arc::clone(&stop);
        let barrier = Arc::clone(&barrier);
        std::thread::spawn(move || {
            let tenant = tenant_name(c);
            let mut lats = Vec::new();
            barrier.wait();
            let mut j = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let sql = if analytical {
                    analytical_sql((c * 5 + j) % TABLES, 200 + ((j as i64 * 31) % 600))
                } else {
                    interactive_sql((c + j) % TABLES, 3 + (j as i64 % 40))
                };
                let t0 = Instant::now();
                let (plan, _) = sm.plan(&sql).expect("plans");
                let class = ctl.policy().classify(plan.estimated.total_time);
                let permit = use_admission.then(|| ctl.admit(&tenant, class));
                sm.execute(plan).expect("executes");
                drop(permit);
                lats.push(ms(t0));
                j += 1;
            }
            lats
        })
    };

    let mut analytical_handles = Vec::new();
    let mut interactive_handles = Vec::new();
    for c in 0..ANALYTICAL_CLIENTS {
        analytical_handles.push(spawn_client(c, true));
    }
    for c in 0..INTERACTIVE_CLIENTS {
        interactive_handles.push(spawn_client(ANALYTICAL_CLIENTS + c, false));
    }
    barrier.wait();
    std::thread::sleep(Duration::from_millis(RUN_MS));
    stop.store(true, Ordering::Relaxed);
    let collect = |hs: Vec<std::thread::JoinHandle<Vec<f64>>>| {
        hs.into_iter()
            .flat_map(|h| h.join().expect("client joins"))
            .collect::<Vec<f64>>()
    };
    let analytical = class_stats(collect(analytical_handles));
    let interactive = class_stats(collect(interactive_handles));
    AdmissionResult {
        interactive,
        analytical,
        bypasses: ctl.bypasses(),
    }
}

fn main() {
    println!("E-serving: multi-tenant serving layer (shared mediator + plan cache + admission)");
    println!();

    // --- 1. throughput sweep -------------------------------------------
    let mut levels = Vec::new();
    let mut table = Table::new(&["clients", "queries", "qps", "p50 ms", "p99 ms", "hit rate"]);
    for &clients in &LEVELS {
        let r = throughput_level(clients);
        table.row(vec![
            r.clients.to_string(),
            r.queries.to_string(),
            format!("{:.1}", r.qps),
            format!("{:.2}", r.p50_ms),
            format!("{:.2}", r.p99_ms),
            format!("{:.3}", r.hit_rate),
        ]);
        levels.push(r);
    }
    println!("{}", table.render());
    let qps_1 = levels[0].qps;
    let qps_64 = levels.iter().find(|l| l.clients == 64).unwrap().qps;
    let speedup_64 = qps_64 / qps_1;
    println!("aggregate qps 64 vs 1 client: {speedup_64:.2}x");
    println!();

    // --- 2. plan-cache efficacy ----------------------------------------
    let cache = plan_cache_section();
    println!(
        "plan cache: {} queries over {} shapes, hit rate {:.3}, \
         plan p50 cold {:.3} ms vs cached {:.3} ms ({:.2}x)",
        cache.queries,
        cache.shapes,
        cache.hit_rate,
        cache.cold_p50_ms,
        cache.cached_p50_ms,
        cache.cold_p50_ms / cache.cached_p50_ms,
    );
    println!();

    // --- 3. admission control ------------------------------------------
    let without = admission_run(false);
    let with = admission_run(true);
    let p99_improvement = without.interactive.p99_ms / with.interactive.p99_ms;
    let mut table = Table::new(&[
        "admission",
        "interactive n",
        "int p50 ms",
        "int p99 ms",
        "analytical n",
        "ana p99 ms",
    ]);
    for (name, r) in [("off", &without), ("on", &with)] {
        table.row(vec![
            name.to_string(),
            r.interactive.queries.to_string(),
            format!("{:.2}", r.interactive.p50_ms),
            format!("{:.2}", r.interactive.p99_ms),
            r.analytical.queries.to_string(),
            format!("{:.2}", r.analytical.p99_ms),
        ]);
    }
    println!("{}", table.render());
    println!(
        "interactive p99 improvement with admission: {p99_improvement:.2}x \
         ({} reserved-lane bypasses)",
        with.bypasses
    );

    // --- JSON ----------------------------------------------------------
    use std::fmt::Write as _;
    let mut level_rows = String::new();
    for (i, r) in levels.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        write!(
            level_rows,
            "{sep}\n    {{\"clients\": {}, \"queries\": {}, \"qps\": {:.2}, \
             \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"cache_hit_rate\": {:.4}}}",
            r.clients, r.queries, r.qps, r.p50_ms, r.p99_ms, r.hit_rate
        )
        .unwrap();
    }
    let admission_obj = |r: &AdmissionResult, with_ctl: bool| {
        format!(
            "{{\"interactive_queries\": {}, \"interactive_p50_ms\": {:.3}, \
             \"interactive_p99_ms\": {:.3}, \"analytical_queries\": {}, \
             \"analytical_p99_ms\": {:.3}, \"bypasses\": {}}}",
            r.interactive.queries,
            r.interactive.p50_ms,
            r.interactive.p99_ms,
            r.analytical.queries,
            r.analytical.p99_ms,
            if with_ctl { r.bypasses } else { 0 },
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"serving\",\n  \"tables\": {tables},\n  \
         \"sleep_scale\": {SLEEP_SCALE},\n  \"run_ms\": {RUN_MS},\n  \
         \"throughput\": [{level_rows}\n  ],\n  \
         \"qps_speedup_64_vs_1\": {speedup_64:.3},\n  \
         \"plan_cache\": {{\"queries\": {cq}, \"shapes\": {cs}, \"hit_rate\": {chr:.4}, \
         \"cold_plan_p50_ms\": {cold:.4}, \"cached_plan_p50_ms\": {cached:.4}}},\n  \
         \"admission\": {{\n    \"without\": {without},\n    \"with\": {with},\n    \
         \"interactive_p99_improvement\": {imp:.3}\n  }}\n}}\n",
        tables = TABLES,
        cq = cache.queries,
        cs = cache.shapes,
        chr = cache.hit_rate,
        cold = cache.cold_p50_ms,
        cached = cache.cached_p50_ms,
        without = admission_obj(&without, false),
        with = admission_obj(&with, true),
        imp = p99_improvement,
    );
    std::fs::write("BENCH_serving.json", &json).expect("write BENCH_serving.json");
    println!("\nwrote BENCH_serving.json");

    // Acceptance bounds (ISSUE 6): written after the JSON so a failed
    // bound still leaves the numbers on disk for inspection.
    assert!(
        speedup_64 >= 4.0,
        "aggregate qps at 64 clients only {speedup_64:.2}x of 1 client (need >= 4x)"
    );
    assert!(
        cache.hit_rate >= 0.8,
        "plan-cache hit rate {:.3} below 0.8",
        cache.hit_rate
    );
    assert!(
        cache.cached_p50_ms < cache.cold_p50_ms,
        "cached plan p50 {:.4} ms not below cold optimize p50 {:.4} ms",
        cache.cached_p50_ms,
        cache.cold_p50_ms
    );
    assert!(
        p99_improvement >= 2.0,
        "interactive p99 with admission only {p99_improvement:.2}x better (need >= 2x)"
    );
    println!("all serving acceptance bounds hold");
}

//! Deterministic chaos-soak harness for the resilience layer.
//!
//! A seeded driver runs a stream of federated queries against a
//! five-wrapper federation (replicated `R` and `U`, single-homed `S`)
//! while each endpoint misbehaves according to a fault schedule derived
//! from the seed. Each endpoint also declares a seed-derived capability
//! profile (see [`capability_profile`]), so the optimizer's pushdown
//! split — and hence which operators run in the mediator's combine
//! plan — varies per seed; the oracle federations declare the same
//! profiles, so a profile-induced answer change would fail the digest
//! check just like a fault-induced one. Every answer is checked against an *oracle*: the same
//! query on a fault-free federation whose collections reported in
//! `trace.missing` are emptied. A run is correct when every answer
//! equals its oracle answer — degraded answers are allowed, silently
//! wrong ones are not.
//!
//! Everything is deterministic by construction:
//!
//! * endpoints run at `sleep_scale = 0` (no real sleeps) and submits
//!   are sequential, so no wall-clock race decides an outcome;
//! * delay faults are caught by *simulated* deadlines
//!   (`ResiliencePolicy::sim_deadlines`), not elapsed time;
//! * the straggler wait is set far beyond any test runtime, so hedging
//!   only fires as failover after a hard failure — never on a timer;
//! * fault schedules key off per-endpoint submit sequence numbers and
//!   are generated from `seeded(seed, "chaos:<endpoint>")`.
//!
//! Running the same seed twice must therefore produce byte-identical
//! transcripts; [`SeedReport::digest`] makes that checkable. A failing
//! seed is replayed with
//! `cargo run --release -p disco-bench --bin chaos_soak -- <seed>`.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Mutex;

use disco_catalog::CapabilityProfile;
use disco_common::rng::seeded;
use disco_common::{AttributeDef, DataType, Schema, Value};
use disco_mediator::{
    AdaptivePolicy, Mediator, MediatorOptions, QueryResult, ResiliencePolicy, SharedMediator,
};
use disco_sources::{CollectionBuilder, CostProfile, PagedStore};
use disco_transport::{
    ChannelTransport, FaultKind, FaultPlan, NetProfile, RetryPolicy, TransportClient,
};
use disco_wrapper::SourceWrapper;

/// Every endpoint and the collection it serves. `R` and `U` are
/// replicated pairs; `S` has a single home (its failures degrade).
const ENDPOINTS: &[(&str, &str)] = &[
    ("ra", "R"),
    ("rb", "R"),
    ("sa", "S"),
    ("ua", "U"),
    ("ub", "U"),
];

/// The query mix cycled by the soak: scans, selections, two-way joins
/// across wrappers, and unions.
pub const QUERIES: &[&str] = &[
    "SELECT v FROM R",
    "SELECT id, v FROM R WHERE id < 20",
    "SELECT w FROM S",
    "SELECT sid FROM S WHERE w = 3",
    "SELECT uid, t FROM U",
    "SELECT t FROM U WHERE uid < 10",
    "SELECT r.v, s.w FROM R r, S s WHERE r.id = s.sid",
    "SELECT r.id FROM R r, S s WHERE r.id = s.sid AND s.w < 3",
    "SELECT r.v, u.t FROM R r, U u WHERE r.id = u.uid",
    "SELECT v FROM R UNION ALL SELECT w FROM S",
    "SELECT id FROM R WHERE v = 2 UNION ALL SELECT uid FROM U",
    "SELECT s.w, u.t FROM S s, U u WHERE s.sid = u.uid",
];

/// Seeded capability profile for one endpoint. Keyed on the *collection*
/// the endpoint serves, not the endpoint name, so replicas of the same
/// collection always declare the same profile: failover resubmits the
/// already-planned subquery, and a replica with a narrower profile would
/// reject operators its twin accepted — a different failure mode than
/// the faults this soak injects.
pub fn capability_profile(seed: u64, endpoint: &str) -> CapabilityProfile {
    let collection = ENDPOINTS
        .iter()
        .find(|(e, _)| *e == endpoint)
        .map(|(_, c)| *c)
        .unwrap_or(endpoint);
    let mut rng = seeded(seed, &format!("chaos-caps:{collection}"));
    CapabilityProfile::ALL[rng.gen_range(0usize..CapabilityProfile::ALL.len())]
}

/// The seed's profile assignment, one `(collection, profile)` pair per
/// distinct collection — for reports and replay messages.
pub fn profile_assignment(seed: u64) -> Vec<(String, String)> {
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    for (endpoint, collection) in ENDPOINTS {
        if seen.insert(*collection) {
            out.push((
                (*collection).to_string(),
                capability_profile(seed, endpoint).name().to_string(),
            ));
        }
    }
    out
}

fn schema_for(collection: &str) -> Schema {
    let (key, val) = match collection {
        "R" => ("id", "v"),
        "S" => ("sid", "w"),
        _ => ("uid", "t"),
    };
    Schema::new(vec![
        AttributeDef::new(key, DataType::Long),
        AttributeDef::new(val, DataType::Long),
    ])
}

/// Fixed, formula-generated rows — identical on every replica. `S.w` is
/// deliberately skewed (value 1 covers 75% of the rows while the full
/// 0..7 range keeps `count_distinct` at 7): the uniformity assumption
/// misestimates `w`-filtered queries ~2.5–3×, which is what lets the
/// adaptive soak's aggressive trigger actually fire mid-query.
fn rows_for(collection: &str) -> Vec<Vec<Value>> {
    let (count, modulus) = match collection {
        "R" => (50, 5),
        "S" => (40, 7),
        _ => (30, 3),
    };
    (0..count)
        .map(|i| {
            let v = if collection == "S" && i < 30 {
                1
            } else {
                i % modulus
            };
            vec![Value::Long(i), Value::Long(v)]
        })
        .collect()
}

/// The resilience posture under chaos: predicted deadlines enforced in
/// simulated time (delay faults become deterministic timeouts), hedging
/// restricted to failover (the straggler timer can never fire inside a
/// test run), and a tight wall-clock ceiling so drop faults stay cheap.
fn chaos_policy() -> ResiliencePolicy {
    ResiliencePolicy {
        predicted_deadlines: true,
        sim_deadlines: true,
        time_scale: 0.02,
        max_deadline_ms: 50.0,
        min_straggler_wait_ms: 30_000.0,
        ..ResiliencePolicy::default()
    }
}

/// Build the five-wrapper federation; `faults` supplies each endpoint's
/// schedule, `caps` each endpoint's declared capability profile (the
/// oracle must be built with the *same* profiles as the run it checks),
/// `empty` names collections registered with zero rows (used by the
/// oracle to mirror a degraded answer), and `streaming` runs queries
/// through the pipelined engine (small chunks, to exercise the frame
/// loop; the oracle always stays two-phase).
fn federation<F: Fn(&str) -> FaultPlan, C: Fn(&str) -> CapabilityProfile>(
    faults: F,
    caps: C,
    empty: &BTreeSet<String>,
    streaming: bool,
) -> Mediator {
    federation_adaptive(faults, caps, empty, streaming, AdaptivePolicy::default())
}

fn federation_adaptive<F: Fn(&str) -> FaultPlan, C: Fn(&str) -> CapabilityProfile>(
    faults: F,
    caps: C,
    empty: &BTreeSet<String>,
    streaming: bool,
    adaptive: AdaptivePolicy,
) -> Mediator {
    let mut t = ChannelTransport::new();
    for (endpoint, collection) in ENDPOINTS {
        let mut s = PagedStore::new(*endpoint, CostProfile::relational());
        let rows = if empty.contains(*collection) {
            Vec::new()
        } else {
            rows_for(collection)
        };
        s.add_collection(
            *collection,
            CollectionBuilder::new(schema_for(collection)).rows(rows),
        )
        .expect("collection registers");
        t.add_wrapper_with(
            Box::new(SourceWrapper::new(*endpoint, s).with_profile(caps(endpoint))),
            NetProfile::lan(),
            faults(endpoint),
        );
    }
    let client = TransportClient::new(Box::new(t)).with_retry(RetryPolicy {
        max_attempts: 2,
        deadline_ms: 200,
        backoff_base_ms: 1,
        backoff_factor: 2.0,
    });
    let mut m = Mediator::new().with_options(MediatorOptions {
        parallel_submits: false,
        partial_answers: true,
        resilience: chaos_policy(),
        streaming,
        streaming_chunk_rows: 16,
        adaptive,
        ..MediatorOptions::default()
    });
    m.connect(client).expect("all wrappers register");
    m.declare_replicas("R", &["ra", "rb"]).expect("R replicas");
    m.declare_replicas("U", &["ua", "ub"]).expect("U replicas");
    m
}

/// Seeded fault schedule for one endpoint: up to two windows over the
/// first ~40 submits, each a run of unavailability, huge delays (caught
/// by the simulated deadline) or dropped messages.
fn fault_schedule(seed: u64, endpoint: &str) -> FaultPlan {
    let mut rng = seeded(seed, &format!("chaos:{endpoint}"));
    let mut plan = FaultPlan::none();
    for _ in 0..rng.gen_range(0usize..=2) {
        let from = rng.gen_range(0usize..40) as u64;
        let len = rng.gen_range(1usize..=5) as u64;
        let kind = match rng.gen_range(0usize..10) {
            0..=3 => FaultKind::Unavailable,
            4..=7 => FaultKind::Delay(1e6 * (1.0 + rng.gen_f64())),
            _ => FaultKind::Drop,
        };
        plan = plan.window(from, from.saturating_add(len), kind);
    }
    plan
}

/// Order-insensitive digest of an answer's tuples.
fn answer_key(r: &QueryResult) -> String {
    let mut rows: Vec<String> = r.tuples.iter().map(|t| format!("{t:?}")).collect();
    rows.sort();
    rows.join("\n")
}

/// FNV-1a, for compact transcript digests.
fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Outcome of soaking one seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedReport {
    pub seed: u64,
    /// Queries executed.
    pub queries: usize,
    /// Queries answered completely.
    pub complete: usize,
    /// Queries degraded to (oracle-correct) partial answers.
    pub partial: usize,
    /// Submits served by a replica other than the planned wrapper.
    pub failovers: u64,
    /// Straggler hedges spent (expected 0: failover-only hedging).
    pub hedges: u64,
    /// Mid-query re-plans considered (only the adaptive soak produces
    /// them; answers must stay oracle-identical regardless).
    pub replans: u64,
    /// Answers that differed from their oracle, with descriptions.
    pub mismatches: Vec<String>,
    /// FNV digest of the full run transcript — equal digests mean
    /// byte-identical runs, which is how determinism is asserted.
    pub digest: String,
}

impl SeedReport {
    pub fn passed(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Soak one seed: run `queries` federated queries under the seed's
/// fault schedules, checking every answer against its oracle.
pub fn run_seed(seed: u64, queries: usize) -> SeedReport {
    run_seed_with(seed, queries, false, AdaptivePolicy::default())
}

/// [`run_seed`] with the pipelined streaming engine executing every
/// chaos query (the oracle stays two-phase and fault-free): streamed
/// answers must degrade exactly like two-phase ones under faults.
pub fn run_seed_streaming(seed: u64, queries: usize) -> SeedReport {
    run_seed_with(seed, queries, true, AdaptivePolicy::default())
}

/// [`run_seed`] with mid-query adaptive re-optimization armed on the
/// streaming engine, under an aggressive trigger (low threshold, no dead
/// zone) so the query mix's natural estimate errors — and fault-emptied
/// subanswers — exercise the abandon/re-drive path while every answer is
/// still checked against the static fault-free oracle.
pub fn run_seed_adaptive(seed: u64, queries: usize) -> SeedReport {
    run_seed_with(
        seed,
        queries,
        true,
        AdaptivePolicy {
            enabled: true,
            error_threshold: 1.5,
            min_rows: 1.0,
            switch_margin: 0.05,
            max_replans: 1,
        },
    )
}

fn run_seed_with(
    seed: u64,
    queries: usize,
    streaming: bool,
    adaptive: AdaptivePolicy,
) -> SeedReport {
    let mut m = federation_adaptive(
        |e| fault_schedule(seed, e),
        |e| capability_profile(seed, e),
        &BTreeSet::new(),
        streaming,
        adaptive,
    );
    let mut oracles: BTreeMap<(usize, BTreeSet<String>), String> = BTreeMap::new();
    let mut report = SeedReport {
        seed,
        queries,
        complete: 0,
        partial: 0,
        failovers: 0,
        hedges: 0,
        replans: 0,
        mismatches: Vec::new(),
        digest: String::new(),
    };
    let mut transcript = String::new();

    for q in 0..queries {
        let idx = q % QUERIES.len();
        let sql = QUERIES[idx];
        let r = match m.query(sql) {
            Ok(r) => r,
            Err(e) => {
                report.mismatches.push(format!(
                    "query {q} (`{sql}`) errored instead of degrading: {e}"
                ));
                transcript.push_str(&format!("{q}:error\n"));
                continue;
            }
        };
        // A partial answer must equal the fault-free answer with the
        // reported collections emptied — nothing more may be missing.
        let missing: BTreeSet<String> = r
            .trace
            .missing
            .iter()
            .map(|qn| qn.collection.clone())
            .collect();
        let got = answer_key(&r);
        let want = oracles.entry((idx, missing.clone())).or_insert_with(|| {
            let mut oracle = federation(
                |_| FaultPlan::none(),
                |e| capability_profile(seed, e),
                &missing,
                false,
            );
            let o = oracle.query(sql).expect("oracle query succeeds");
            assert!(!o.is_partial(), "oracle must never degrade");
            answer_key(&o)
        });
        if got != *want {
            report.mismatches.push(format!(
                "query {q} (`{sql}`): answer diverges from the fault-free \
                 oracle (missing: [{}]); got {} tuples",
                missing.iter().cloned().collect::<Vec<_>>().join(", "),
                r.tuples.len(),
            ));
        }
        if r.is_partial() {
            report.partial += 1;
        } else {
            report.complete += 1;
        }
        for s in &r.trace.submits {
            if !s.failed && !s.served_by.is_empty() && s.served_by != s.wrapper {
                report.failovers += 1;
            }
        }
        report.hedges += u64::from(r.trace.hedges);
        report.replans += r.trace.replans.len() as u64;
        transcript.push_str(&format!(
            "{q}:{:016x}:[{}]\n",
            fnv64(&got),
            missing.iter().cloned().collect::<Vec<_>>().join(",")
        ));
    }
    report.digest = format!("{:016x}", fnv64(&transcript));
    report
}

/// Outcome of soaking one seed through the shared concurrent mediator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConcurrentReport {
    pub seed: u64,
    /// Concurrent sessions driven through one [`SharedMediator`].
    pub sessions: usize,
    /// Total queries across all sessions.
    pub queries: usize,
    pub complete: usize,
    pub partial: usize,
    pub failovers: u64,
    /// Answers whose digest differed from the single-session oracle.
    pub mismatches: Vec<String>,
}

impl ConcurrentReport {
    pub fn passed(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Single-session fault-free oracle digest for `(query, missing)`,
/// memoized across sessions. Duplicate computation under contention is
/// harmless — both racers derive the same deterministic answer.
fn oracle_digest(
    oracles: &Mutex<BTreeMap<(usize, BTreeSet<String>), String>>,
    seed: u64,
    idx: usize,
    missing: &BTreeSet<String>,
) -> String {
    let key = (idx, missing.clone());
    if let Some(want) = oracles.lock().expect("oracle memo lock").get(&key) {
        return want.clone();
    }
    let mut oracle = federation(
        |_| FaultPlan::none(),
        |e| capability_profile(seed, e),
        missing,
        false,
    );
    let o = oracle.query(QUERIES[idx]).expect("oracle query succeeds");
    assert!(!o.is_partial(), "oracle must never degrade");
    let want = answer_key(&o);
    oracles
        .lock()
        .expect("oracle memo lock")
        .entry(key)
        .or_insert(want)
        .clone()
}

/// Soak one seed with `sessions` concurrent client threads sharing a
/// single [`SharedMediator`] over the chaos federation.
///
/// Interleaving shifts which submit lands in which fault window, so the
/// *transcript* is not expected to match the sequential run — but every
/// individual answer must still digest-equal the single-session
/// fault-free oracle for whatever degradation it reported. Each session
/// starts the query mix at a different offset so the streams overlap on
/// distinct shapes.
pub fn run_seed_concurrent(
    seed: u64,
    queries_per_session: usize,
    sessions: usize,
) -> ConcurrentReport {
    let shared = SharedMediator::new(federation(
        |e| fault_schedule(seed, e),
        |e| capability_profile(seed, e),
        &BTreeSet::new(),
        false,
    ));
    let oracles: Mutex<BTreeMap<(usize, BTreeSet<String>), String>> = Mutex::new(BTreeMap::new());
    let mut report = ConcurrentReport {
        seed,
        sessions,
        queries: queries_per_session * sessions,
        complete: 0,
        partial: 0,
        failovers: 0,
        mismatches: Vec::new(),
    };

    let outcomes = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..sessions)
            .map(|s| {
                let shared = &shared;
                let oracles = &oracles;
                scope.spawn(move || {
                    let mut complete = 0usize;
                    let mut partial = 0usize;
                    let mut failovers = 0u64;
                    let mut mismatches = Vec::new();
                    for q in 0..queries_per_session {
                        let idx = (q + s * 3) % QUERIES.len();
                        let sql = QUERIES[idx];
                        let r = match shared.query(sql) {
                            Ok(served) => served.result,
                            Err(e) => {
                                mismatches.push(format!(
                                    "session {s} query {q} (`{sql}`) errored \
                                     instead of degrading: {e}"
                                ));
                                continue;
                            }
                        };
                        let missing: BTreeSet<String> = r
                            .trace
                            .missing
                            .iter()
                            .map(|qn| qn.collection.clone())
                            .collect();
                        let got = answer_key(&r);
                        let want = oracle_digest(oracles, seed, idx, &missing);
                        if got != want {
                            mismatches.push(format!(
                                "session {s} query {q} (`{sql}`): answer diverges \
                                 from the fault-free oracle (missing: [{}]); got {} tuples",
                                missing.iter().cloned().collect::<Vec<_>>().join(", "),
                                r.tuples.len(),
                            ));
                        }
                        if r.is_partial() {
                            partial += 1;
                        } else {
                            complete += 1;
                        }
                        for sub in &r.trace.submits {
                            if !sub.failed
                                && !sub.served_by.is_empty()
                                && sub.served_by != sub.wrapper
                            {
                                failovers += 1;
                            }
                        }
                    }
                    (complete, partial, failovers, mismatches)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("soak session joins"))
            .collect::<Vec<_>>()
    });
    for (complete, partial, failovers, mismatches) in outcomes {
        report.complete += complete;
        report.partial += partial;
        report.failovers += failovers;
        report.mismatches.extend(mismatches);
    }
    report
}

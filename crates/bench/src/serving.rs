//! Shared federation and workload for the multi-tenant serving layer
//! experiments: the `federation_server` bin, the `serving_load` bench
//! (`BENCH_serving.json`), and the CI serving smoke test.
//!
//! The federation spreads [`TABLES`] single-collection wrappers over a
//! channel transport so concurrent sessions genuinely overlap: each
//! endpoint has its own worker thread, and `sleep_scale` converts the
//! simulated communication time into real wall-clock sleeps for the
//! throughput sweeps (0 for the CPU-bound admission comparison).
//!
//! Two query classes, classified by the cost model's predicted
//! `TotalTime` (not by annotation — the whole point is that the
//! mediator's estimates drive scheduling):
//!
//! * **interactive** — an indexed point-range lookup on one table;
//!   predicted cheap, 1 submit, a handful of tuples;
//! * **analytical** — a two-table equijoin on the non-indexed cluster
//!   key with a weak value filter; predicted orders of magnitude more
//!   expensive (full shipping of both sides plus a fanout-20 join).

use std::sync::Arc;

use disco_common::{AttributeDef, DataType, Schema, Value};
use disco_mediator::{AdmissionPolicy, Mediator, MediatorOptions, SharedMediator};
use disco_sources::{CollectionBuilder, CostProfile, PagedStore};
use disco_transport::{ChannelTransport, FaultPlan, NetProfile, TransportClient};
use disco_wrapper::SourceWrapper;

/// Endpoints (and collections) in the serving federation.
pub const TABLES: usize = 16;
/// Rows per collection.
pub const ROWS_PER_TABLE: i64 = 2000;
/// Distinct values of the join key `k` (fanout = rows / modulus).
pub const KEY_MODULUS: i64 = 100;
/// Tenants the load generators cycle through.
pub const TENANTS: usize = 8;

/// Collection served by endpoint `i`.
pub fn table_name(i: usize) -> String {
    format!("T{i:02}")
}

/// Endpoint name `i`.
pub fn wrapper_name(i: usize) -> String {
    format!("w{i:02}")
}

/// Tenant a client thread belongs to.
pub fn tenant_name(client: usize) -> String {
    format!("tenant{:02}", client % TENANTS)
}

/// Build the serving federation over a channel transport.
/// `sleep_scale` is the fraction of simulated communication time
/// actually slept per submit (see `NetProfile`).
pub fn federation(sleep_scale: f64) -> Mediator {
    let mut t = ChannelTransport::new();
    for i in 0..TABLES {
        let schema = Schema::new(vec![
            AttributeDef::new("id", DataType::Long),
            AttributeDef::new("k", DataType::Long),
            AttributeDef::new("v", DataType::Long),
        ]);
        let mut store = PagedStore::new(wrapper_name(i), CostProfile::relational());
        store
            .add_collection(
                table_name(i),
                CollectionBuilder::new(schema)
                    .rows((0..ROWS_PER_TABLE).map(|id| {
                        vec![
                            Value::Long(id),
                            Value::Long(id % KEY_MODULUS),
                            Value::Long((id * 7) % 1000),
                        ]
                    }))
                    .object_size(24)
                    .index("id"),
            )
            .expect("collection registers");
        t.add_wrapper_with(
            Box::new(SourceWrapper::new(wrapper_name(i), store)),
            NetProfile::lan().with_sleep_scale(sleep_scale),
            FaultPlan::none(),
        );
    }
    let client = TransportClient::new(Box::new(t));
    let mut m = Mediator::new().with_options(MediatorOptions {
        parallel_submits: false,
        ..Default::default()
    });
    m.connect(client).expect("all wrappers register");
    m
}

/// The federation wrapped for concurrent serving.
pub fn shared_federation(sleep_scale: f64) -> Arc<SharedMediator> {
    Arc::new(SharedMediator::new(federation(sleep_scale)))
}

/// Predicted-cheap lookup: indexed range on one table, `c` in 1..=50.
pub fn interactive_sql(table: usize, c: i64) -> String {
    format!(
        "SELECT v FROM {} WHERE id < {}",
        table_name(table % TABLES),
        c.clamp(1, 50)
    )
}

/// Predicted-expensive join: table `t` with its neighbor on the
/// non-indexed cluster key, weak filter `v < c` (`c` in 200..=1000).
pub fn analytical_sql(table: usize, c: i64) -> String {
    let a = table % TABLES;
    let b = (table + 1) % TABLES;
    format!(
        "SELECT a.id, b.v FROM {} a, {} b WHERE a.k = b.k AND a.v < {}",
        table_name(a),
        table_name(b),
        c.clamp(200, 1000)
    )
}

/// Deterministic mixed stream for one client: mostly interactive
/// lookups, one analytical join in eight.
pub fn mixed_sql(client: usize, j: usize) -> String {
    let t = (client * 7 + j) % TABLES;
    if j % 8 == 7 {
        analytical_sql(t, 200 + ((j as i64 * 37) % 600))
    } else {
        interactive_sql(t, 5 + ((client + j) as i64 % 40))
    }
}

/// Predicted `TotalTime` for one representative query of each class,
/// from the shared mediator's own cost model.
pub fn class_predictions(shared: &SharedMediator) -> (f64, f64) {
    shared.with_mediator(|m| {
        let cheap = m
            .plan(&interactive_sql(0, 10))
            .expect("interactive plans")
            .estimated
            .total_time;
        let heavy = m
            .plan(&analytical_sql(0, 500))
            .expect("analytical plans")
            .estimated
            .total_time;
        (cheap, heavy)
    })
}

/// Admission policy for the serving benches: the interactive threshold
/// is the geometric mean of the two class predictions, so the split is
/// robust to cost-model drift rather than hard-coded.
pub fn admission_policy(shared: &SharedMediator) -> AdmissionPolicy {
    let (cheap, heavy) = class_predictions(shared);
    assert!(
        heavy > cheap * 4.0,
        "cost model no longer separates the classes: \
         interactive={cheap:.1}ms analytical={heavy:.1}ms"
    );
    AdmissionPolicy {
        max_concurrent: 2,
        interactive_reserved: 4,
        interactive_threshold_ms: (cheap * heavy).sqrt(),
        per_tenant_inflight: 0,
    }
}

/// Prime the plan cache with every workload shape (one constant each;
/// later constants replay the same entries).
pub fn warm_plan_cache(shared: &SharedMediator) {
    for t in 0..TABLES {
        shared
            .plan(&interactive_sql(t, 10))
            .expect("interactive shape plans");
        shared
            .plan(&analytical_sql(t, 500))
            .expect("analytical shape plans");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_mediator::PlanSource;

    #[test]
    fn classes_are_separated_by_predicted_cost() {
        let sm = shared_federation(0.0);
        let policy = admission_policy(&sm);
        let (cheap, heavy) = class_predictions(&sm);
        assert!(cheap < policy.interactive_threshold_ms);
        assert!(heavy > policy.interactive_threshold_ms);
    }

    #[test]
    fn warmed_cache_serves_every_shape() {
        let sm = shared_federation(0.0);
        warm_plan_cache(&sm);
        for t in 0..TABLES {
            let (_, s) = sm.plan(&interactive_sql(t, 33)).unwrap();
            assert_eq!(s, PlanSource::CacheHit, "interactive shape {t}");
            let (_, s) = sm.plan(&analytical_sql(t, 777)).unwrap();
            assert_eq!(s, PlanSource::CacheHit, "analytical shape {t}");
        }
        let r = sm.query(&mixed_sql(3, 4)).unwrap();
        assert!(!r.result.tuples.is_empty());
    }
}

//! Shared experiment setup: registries and catalogs for the OO7 store
//! under different wrapper-implementor effort levels.

use disco_catalog::Catalog;
use disco_common::Result;
use disco_core::RuleRegistry;
use disco_costlang::{compile_document, parse_document};
use disco_oo7::{build_store, Oo7Config};
use disco_sources::PagedStore;
use disco_wrapper::{SourceWrapper, Wrapper};

/// A registered OO7 environment: catalog + registry + direct store access.
pub struct Oo7Env {
    pub catalog: Catalog,
    pub registry: RuleRegistry,
    pub store: PagedStore,
    pub wrapper_name: String,
}

/// Build the OO7 store and register it under the given cost document.
pub fn oo7_env(config: &Oo7Config, cost_document: &str) -> Result<Oo7Env> {
    let store = build_store(config)?;
    // Wrap a clone for registration; keep the original for direct
    // "experiment" execution.
    let wrapper = SourceWrapper::new("oo7", store.clone()).with_cost_rules(cost_document);
    let reg_payload = wrapper.registration()?;

    let mut catalog = Catalog::new();
    catalog.register_wrapper("oo7", reg_payload.capabilities.clone())?;
    for (coll, schema, stats) in &reg_payload.collections {
        catalog.register_collection("oo7", coll.clone(), schema.clone(), stats.clone())?;
    }
    let mut registry = RuleRegistry::with_default_model();
    registry.register_document("oo7", &reg_payload.cost_rules)?;

    Ok(Oo7Env {
        catalog,
        registry,
        store,
        wrapper_name: "oo7".into(),
    })
}

/// Compile a cost document (diagnostics for shipping-size reports).
pub fn compile_text(doc: &str) -> Result<disco_costlang::CompiledDocument> {
    compile_document(&parse_document(doc)?)
}

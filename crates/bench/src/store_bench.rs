//! E15 — disco-store validation: Yao's formula against *actual* page
//! I/O.
//!
//! Everything before this experiment validated the cost model against a
//! simulated pager; here the AtomicParts extent lives in a real paged
//! file behind `disco-store`'s buffer pool, and `pages_read` counts
//! faults that physically happened. Four sweeps:
//!
//! * [`run_yao_validation`] — Figure 12's page axis re-run on disk:
//!   cold-pool index retrievals at increasing selectivity, measured
//!   faults vs `yao(n, m, k)` (uniform random placement — the regime
//!   Yao models);
//! * [`run_hit_rate_sweep`] — repeated point lookups under shrinking
//!   buffer pools: the measured hit rate climbs with capacity, the
//!   input for `CacheRegime::Warm` calibration;
//! * [`run_crossover`] — index retrieval vs sequential scan of the same
//!   qualifying set, wall-clock and modelled time: per-object page
//!   faults lose to one sequential pass once selectivity is high
//!   enough;
//! * [`run_clustered_divergence`] — the §7 blind spot: clustered
//!   placement faults a fraction of what Yao (which assumes random
//!   placement) predicts.

use std::time::Instant;

use disco_algebra::{CompareOp, LogicalPlan, PlanBuilder};
use disco_common::rng::seeded;
use disco_common::{AttributeDef, DataType, QualifiedName, Result, Schema, Value};
use disco_core::yao::yao_pages_exact;
use disco_sources::{CostProfile, DataSource, StoreSource};
use disco_store::{DiskCollectionBuilder, DiskStoreBuilder};

/// A disk-backed AtomicParts-like extent: `Id` uniform and indexed,
/// `V` an unindexed copy of `Id` so the same qualifying set can be
/// retrieved through the sequential-scan path.
pub struct StoreEnv {
    pub source: StoreSource,
    /// Objects in the extent (`n` of Yao's formula).
    pub objects: u64,
    /// Heap pages of the extent (`m` of Yao's formula).
    pub pages: u64,
}

fn env_schema() -> Schema {
    Schema::new(vec![
        AttributeDef::new("Id", DataType::Long),
        AttributeDef::new("V", DataType::Long),
    ])
}

/// Build the environment: `n` objects of 56 bytes on 4 KB pages at 96 %
/// fill (70 per page, matching the paper's layout), random or clustered
/// placement, with the given buffer-pool capacity in frames.
pub fn store_env(n: usize, clustered: bool, buffer_capacity: usize) -> Result<StoreEnv> {
    let mut collection = DiskCollectionBuilder::new(env_schema())
        .rows((0..n as i64).map(|i| vec![Value::Long(i), Value::Long(i)]))
        .object_size(56)
        .index("Id");
    if clustered {
        collection = collection.cluster_on("Id");
    }
    let store = DiskStoreBuilder::new("disk")
        .buffer_capacity(buffer_capacity)
        .collection("AtomicParts", collection)
        .build()?;
    let source = StoreSource::new(store, CostProfile::object_store());
    let c = source.store().collection("AtomicParts")?;
    Ok(StoreEnv {
        objects: c.rows() as u64,
        pages: c.pages(),
        source,
    })
}

fn atomic_scan() -> PlanBuilder {
    PlanBuilder::scan(QualifiedName::new("disk", "AtomicParts"), env_schema())
}

/// `select(scan, Id < k)` — served by the B+Tree index.
fn index_select(k: i64) -> LogicalPlan {
    atomic_scan().select("Id", CompareOp::Lt, k).build()
}

/// `select(scan, V < k)` — same qualifying set, but `V` is unindexed so
/// the source scans the whole extent sequentially and filters.
fn seq_select(k: i64) -> LogicalPlan {
    atomic_scan().select("V", CompareOp::Lt, k).build()
}

/// One selectivity point of the cold-pool Yao validation.
#[derive(Debug, Clone, PartialEq)]
pub struct YaoRow {
    pub selectivity: f64,
    /// Objects the retrieval returned (`k`).
    pub objects: u64,
    /// `yao(n, m, k)`.
    pub predicted_pages: f64,
    /// Data-page faults the cold run actually took.
    pub measured_pages: u64,
    /// `(predicted − measured) / measured`.
    pub error: f64,
}

/// Cold-pool index retrievals over uniform random placement: measured
/// faults next to Yao's prediction at each selectivity.
pub fn run_yao_validation(env: &StoreEnv, selectivities: &[f64]) -> Result<Vec<YaoRow>> {
    let mut rows = Vec::with_capacity(selectivities.len());
    for &sel in selectivities {
        let k = (sel.clamp(0.0, 1.0) * env.objects as f64).round() as i64;
        env.source.clear_cache()?;
        let answer = env.source.execute(&index_select(k))?;
        let objects = answer.tuples.len() as u64;
        let predicted = yao_pages_exact(env.objects, env.pages, objects);
        rows.push(YaoRow {
            selectivity: sel,
            objects,
            predicted_pages: predicted,
            measured_pages: answer.stats.pages_read,
            error: (predicted - answer.stats.pages_read as f64)
                / (answer.stats.pages_read as f64).max(1.0),
        });
    }
    Ok(rows)
}

/// One buffer-pool capacity point of the hit-rate sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct HitRateRow {
    /// Pool capacity in frames.
    pub capacity: usize,
    /// Point lookups measured (after an identical warm-up round).
    pub lookups: usize,
    pub hits: u64,
    pub faults: u64,
    /// `hits / (hits + faults)` over the measured round.
    pub hit_rate: f64,
}

/// Steady-state hit rate of repeated point lookups as pool capacity
/// varies: one warm-up round populates the pool, then the same lookup
/// sequence is replayed and its hits/faults measured. Capacities at or
/// above the working set approach a 100 % hit rate; small pools evict
/// between reuses.
pub fn run_hit_rate_sweep(
    n: usize,
    capacities: &[usize],
    lookups: usize,
) -> Result<Vec<HitRateRow>> {
    let mut rows = Vec::with_capacity(capacities.len());
    for &capacity in capacities {
        let env = store_env(n, false, capacity)?;
        let mut rng = seeded(capacity as u64, "store-hit-rate");
        let ids: Vec<i64> = (0..lookups).map(|_| rng.gen_range(0..n as i64)).collect();
        let lookup = |id: i64| atomic_scan().select("Id", CompareOp::Eq, id).build();
        for &id in &ids {
            env.source.execute(&lookup(id))?;
        }
        let before = env.source.pool_counters();
        for &id in &ids {
            env.source.execute(&lookup(id))?;
        }
        let delta = env.source.pool_counters().delta(&before);
        let total = delta.hits + delta.faults;
        rows.push(HitRateRow {
            capacity,
            lookups,
            hits: delta.hits,
            faults: delta.faults,
            hit_rate: delta.hits as f64 / (total as f64).max(1.0),
        });
    }
    Ok(rows)
}

/// One selectivity point of the index-vs-sequential comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossoverRow {
    pub selectivity: f64,
    /// Objects both retrievals returned.
    pub objects: u64,
    /// Real wall-clock of the cold index retrieval, milliseconds.
    pub index_wall_ms: f64,
    /// Real wall-clock of the cold sequential scan + filter, ms.
    pub scan_wall_ms: f64,
    /// Modelled (virtual-clock) time of the index retrieval, ms.
    pub index_model_ms: f64,
    /// Modelled time of the sequential path, ms.
    pub scan_model_ms: f64,
    /// Data pages the index retrieval faulted.
    pub index_pages: u64,
}

/// Cold index retrieval vs cold sequential scan of the same qualifying
/// set, at each selectivity. Wall-clock is best-of-`reps` to damp
/// scheduler noise; the modelled times are deterministic.
pub fn run_crossover(
    env: &StoreEnv,
    selectivities: &[f64],
    reps: usize,
) -> Result<Vec<CrossoverRow>> {
    let mut rows = Vec::with_capacity(selectivities.len());
    for &sel in selectivities {
        let k = (sel.clamp(0.0, 1.0) * env.objects as f64).round() as i64;
        let best = |plan: &LogicalPlan| -> Result<(f64, f64, u64, u64)> {
            let mut wall = f64::INFINITY;
            let mut model = 0.0;
            let mut pages = 0;
            let mut objects = 0;
            for _ in 0..reps.max(1) {
                env.source.clear_cache()?;
                let start = Instant::now();
                let answer = env.source.execute(plan)?;
                wall = wall.min(start.elapsed().as_secs_f64() * 1e3);
                model = answer.stats.elapsed_ms;
                pages = answer.stats.pages_read;
                objects = answer.tuples.len() as u64;
            }
            Ok((wall, model, pages, objects))
        };
        let (index_wall_ms, index_model_ms, index_pages, k_index) = best(&index_select(k))?;
        let (scan_wall_ms, scan_model_ms, _, k_scan) = best(&seq_select(k))?;
        debug_assert_eq!(k_index, k_scan, "paths disagree on the qualifying set");
        rows.push(CrossoverRow {
            selectivity: sel,
            objects: k_index,
            index_wall_ms,
            scan_wall_ms,
            index_model_ms,
            scan_model_ms,
            index_pages,
        });
    }
    Ok(rows)
}

/// First swept selectivity where the index retrieval's wall-clock is no
/// better than the sequential scan's — `None` if the index wins
/// everywhere in the sweep.
pub fn wall_crossover(rows: &[CrossoverRow]) -> Option<f64> {
    rows.iter()
        .find(|r| r.index_wall_ms >= r.scan_wall_ms)
        .map(|r| r.selectivity)
}

/// One selectivity point of the clustered-divergence sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusteredRow {
    pub selectivity: f64,
    pub objects: u64,
    /// What Yao (random placement) predicts.
    pub predicted_pages: f64,
    /// What the clustered layout actually faulted.
    pub measured_pages: u64,
    /// `measured / predicted` — well below 1 is the §7 effect.
    pub ratio: f64,
}

/// The §7 divergence measured on disk: `Id`-range retrievals over a
/// *clustered* extent fault `ceil(k / per-page)` contiguous pages, a
/// fraction of the random-placement count Yao assumes.
pub fn run_clustered_divergence(
    env: &StoreEnv,
    selectivities: &[f64],
) -> Result<Vec<ClusteredRow>> {
    let mut rows = Vec::with_capacity(selectivities.len());
    for &sel in selectivities {
        let k = (sel.clamp(0.0, 1.0) * env.objects as f64).round() as i64;
        env.source.clear_cache()?;
        let answer = env.source.execute(&index_select(k))?;
        let objects = answer.tuples.len() as u64;
        let predicted = yao_pages_exact(env.objects, env.pages, objects);
        rows.push(ClusteredRow {
            selectivity: sel,
            objects,
            predicted_pages: predicted,
            measured_pages: answer.stats.pages_read,
            ratio: answer.stats.pages_read as f64 / predicted.max(1e-9),
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small scale (7 000 objects, 100 pages), matching `Oo7Config::small`.
    const N: usize = 7_000;

    #[test]
    fn cold_faults_match_yao_within_15_percent_across_5_selectivities() {
        let env = store_env(N, false, 2_048).unwrap();
        assert_eq!(env.pages, 100);
        let rows = run_yao_validation(&env, &[0.05, 0.1, 0.2, 0.3, 0.5]).unwrap();
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(
                r.error.abs() < 0.15,
                "sel {}: predicted {:.1}, measured {} ({:+.1}%)",
                r.selectivity,
                r.predicted_pages,
                r.measured_pages,
                r.error * 100.0
            );
        }
        // Faults grow with selectivity and saturate at the extent size.
        assert!(rows
            .windows(2)
            .all(|w| w[1].measured_pages >= w[0].measured_pages));
        assert!(rows.last().unwrap().measured_pages <= env.pages);
    }

    #[test]
    fn hit_rate_climbs_with_pool_capacity() {
        let rows = run_hit_rate_sweep(N, &[10, 50, 200], 300).unwrap();
        assert!(
            rows.windows(2).all(|w| w[1].hit_rate > w[0].hit_rate),
            "{rows:?}"
        );
        // 200 frames hold the whole working set (100 heap + index pages):
        // the replayed round faults nothing.
        let top = rows.last().unwrap();
        assert_eq!(top.faults, 0, "{top:?}");
        assert!((top.hit_rate - 1.0).abs() < 1e-12);
        // A 10-frame pool under a 100-page working set thrashes.
        assert!(rows[0].hit_rate < 0.5, "{:?}", rows[0]);
    }

    #[test]
    fn index_beats_scan_at_low_selectivity_in_the_model() {
        let env = store_env(N, false, 2_048).unwrap();
        let rows = run_crossover(&env, &[0.001, 0.5], 1).unwrap();
        let low = &rows[0];
        // 7 qualifying objects: a handful of faults vs a 100-page pass.
        assert!(low.index_pages <= 10, "{low:?}");
        assert!(low.index_model_ms < low.scan_model_ms / 2.0, "{low:?}");
        // At 50 % the index touches nearly every page anyway.
        let high = &rows[1];
        assert!(high.index_pages >= 95, "{high:?}");
    }

    #[test]
    fn clustered_placement_faults_far_below_yao() {
        let env = store_env(N, true, 2_048).unwrap();
        let rows = run_clustered_divergence(&env, &[0.1]).unwrap();
        let r = &rows[0];
        // 700 contiguous objects sit on 10-11 pages; Yao assumes random
        // placement and predicts ~63.
        assert!(r.measured_pages <= 11, "{r:?}");
        assert!(r.ratio < 0.25, "{r:?}");
    }
}

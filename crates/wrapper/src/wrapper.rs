//! The wrapper trait and the generic source-backed implementation.

use disco_algebra::LogicalPlan;
use disco_catalog::{Capabilities, CapabilityProfile, CollectionStats};
use disco_common::{DiscoError, Result};
use disco_costlang::{compile_document, interface_to_catalog, parse_document, CompiledDocument};
use disco_sources::{DataSource, SubAnswer};

use crate::registration::{Registration, StatsExport};

/// A wrapper: registration payload plus subquery execution.
///
/// `Send + Sync` so a mediator (and its wrapper table) can be shared or
/// moved across threads.
pub trait Wrapper: Send + Sync {
    /// Registered name (the mediator addresses collections as
    /// `name.collection`).
    fn name(&self) -> &str;

    /// Build the registration payload (schema, capabilities, statistics,
    /// compiled cost rules).
    fn registration(&self) -> Result<Registration>;

    /// Execute a submitted subquery.
    fn execute(&self, plan: &LogicalPlan) -> Result<SubAnswer>;
}

/// Generic wrapper over any [`DataSource`].
///
/// The *wrapper implementor*'s contribution is the cost document source
/// text — anything from an empty string (pure generic model) to the full
/// Figure 13 Yao rule — plus the statistics-export level.
pub struct SourceWrapper<S> {
    name: String,
    source: S,
    capabilities: Capabilities,
    cost_text: String,
    stats_export: StatsExport,
}

impl<S: DataSource> SourceWrapper<S> {
    /// Wrap a source with full capabilities, full statistics export and
    /// no wrapper-specific cost rules.
    pub fn new(name: impl Into<String>, source: S) -> Self {
        SourceWrapper {
            name: name.into(),
            source,
            capabilities: Capabilities::full(),
            cost_text: String::new(),
            stats_export: StatsExport::Full,
        }
    }

    /// Restrict the advertised capabilities.
    pub fn with_capabilities(mut self, capabilities: Capabilities) -> Self {
        self.capabilities = capabilities;
        self
    }

    /// Restrict the advertised capabilities to a declared profile.
    pub fn with_profile(self, profile: CapabilityProfile) -> Self {
        self.with_capabilities(profile.capabilities())
    }

    /// Provide the cost communication document (the wrapper implementor's
    /// statistics overrides, `let` parameters and cost rules).
    pub fn with_cost_rules(mut self, text: impl Into<String>) -> Self {
        self.cost_text = text.into();
        self
    }

    /// Control how much statistical information is exported.
    pub fn with_stats_export(mut self, level: StatsExport) -> Self {
        self.stats_export = level;
        self
    }

    /// Access the underlying source.
    pub fn source(&self) -> &S {
        &self.source
    }

    fn exported_stats(&self, collection: &str) -> CollectionStats {
        let full = self.source.statistics(collection);
        match (self.stats_export, full) {
            (StatsExport::Full, Some(s)) => s,
            (StatsExport::ExtentOnly, Some(s)) => CollectionStats::new(s.extent),
            _ => CollectionStats::defaults_for(),
        }
    }
}

impl<S: DataSource + Send + Sync> Wrapper for SourceWrapper<S> {
    fn name(&self) -> &str {
        &self.name
    }

    fn registration(&self) -> Result<Registration> {
        // Compile the implementor's document — this is the wrapper-side
        // semi-compilation step of §2.4.
        let doc = parse_document(&self.cost_text)?;
        let compiled: CompiledDocument = compile_document(&doc)?;

        let mut collections = Vec::new();
        for (name, schema) in self.source.collections() {
            // Document-declared interfaces override source-derived
            // statistics and schemas.
            let declared = doc.interfaces.iter().find(|i| i.name == name);
            match declared {
                Some(iface) => {
                    let (s, stats) = interface_to_catalog(iface);
                    let schema = if s.arity() > 0 { s } else { schema };
                    collections.push((name, schema, stats));
                }
                None => {
                    let stats = self.exported_stats(&name);
                    collections.push((name, schema, stats));
                }
            }
        }
        Ok(Registration {
            capabilities: self.capabilities.clone(),
            collections,
            cost_rules: compiled,
        })
    }

    fn execute(&self, plan: &LogicalPlan) -> Result<SubAnswer> {
        // Unwrap a submit addressed to this wrapper.
        let plan = match plan {
            LogicalPlan::Submit { wrapper, input } => {
                if wrapper != &self.name {
                    return Err(DiscoError::Exec(format!(
                        "subquery submitted to `{wrapper}` reached wrapper `{}`",
                        self.name
                    )));
                }
                input.as_ref()
            }
            other => other,
        };
        // Capability boundary: a wrapper refuses any subquery operator
        // its declared profile does not admit, independently of what
        // the optimizer believed. This is where the pushdown-legality
        // property is ultimately enforced.
        let mut stack = vec![plan];
        while let Some(p) = stack.pop() {
            let op = p.kind();
            if !self.capabilities.supports(op) {
                return Err(DiscoError::Exec(format!(
                    "wrapper `{}` (profile `{}`) received a {op} operator its \
                     capabilities do not admit",
                    self.name,
                    CapabilityProfile::classify(&self.capabilities),
                )));
            }
            stack.extend(p.children());
        }
        self.source.execute(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disco_algebra::{CompareOp, OperatorKind, PlanBuilder};
    use disco_common::{AttributeDef, DataType, QualifiedName, Schema, Value};
    use disco_sources::{CollectionBuilder, CostProfile, PagedStore};

    fn store() -> PagedStore {
        let schema = Schema::new(vec![
            AttributeDef::new("Id", DataType::Long),
            AttributeDef::new("BuildDate", DataType::Long),
        ]);
        let mut s = PagedStore::new("os", CostProfile::object_store());
        s.add_collection(
            "AtomicParts",
            CollectionBuilder::new(schema)
                .rows((0..700i64).map(|i| vec![Value::Long(i), Value::Long(i % 10)]))
                .object_size(56)
                .index("Id"),
        )
        .unwrap();
        s
    }

    fn scan() -> PlanBuilder {
        PlanBuilder::scan(
            QualifiedName::new("oo7", "AtomicParts"),
            Schema::new(vec![
                AttributeDef::new("Id", DataType::Long),
                AttributeDef::new("BuildDate", DataType::Long),
            ]),
        )
    }

    #[test]
    fn registration_exports_source_statistics() {
        let w = SourceWrapper::new("oo7", store());
        let reg = w.registration().unwrap();
        assert_eq!(reg.collections.len(), 1);
        let (name, schema, stats) = &reg.collections[0];
        assert_eq!(name, "AtomicParts");
        assert_eq!(schema.arity(), 2);
        assert_eq!(stats.extent.count_object, 700);
        assert!(stats.attribute("Id").indexed);
        assert_eq!(reg.rule_count(), 0);
    }

    #[test]
    fn stats_export_levels() {
        let extent_only = SourceWrapper::new("oo7", store())
            .with_stats_export(StatsExport::ExtentOnly)
            .registration()
            .unwrap();
        let (_, _, stats) = &extent_only.collections[0];
        assert_eq!(stats.extent.count_object, 700);
        assert!(stats.attributes.is_empty());

        let nothing = SourceWrapper::new("oo7", store())
            .with_stats_export(StatsExport::None)
            .registration()
            .unwrap();
        let (_, _, stats) = &nothing.collections[0];
        assert_eq!(
            stats.extent.count_object,
            disco_catalog::stats::DEFAULT_COUNT_OBJECT
        );
    }

    #[test]
    fn cost_rules_compile_and_ship() {
        let w = SourceWrapper::new("oo7", store()).with_cost_rules(
            "let IO = 25.0;
             rule scan($C) { TotalTime = 1; }
             rule select($C, $A = $V) { TotalTime = 2; }",
        );
        let reg = w.registration().unwrap();
        assert_eq!(reg.rule_count(), 2);
        assert!(reg.shipped_bytes() > 0);
        assert_eq!(reg.cost_rules.params[0].0, "IO");
    }

    #[test]
    fn bad_cost_document_fails_registration() {
        let w = SourceWrapper::new("oo7", store()).with_cost_rules("rule nonsense(");
        assert!(w.registration().is_err());
    }

    #[test]
    fn document_interfaces_override_source_stats() {
        let w = SourceWrapper::new("oo7", store()).with_cost_rules(
            "interface AtomicParts {
                attribute long Id;
                cardinality extent(70000, 3920000, 56);
            }",
        );
        let reg = w.registration().unwrap();
        let (_, _, stats) = &reg.collections[0];
        // Declared statistics win over the measured 700.
        assert_eq!(stats.extent.count_object, 70_000);
    }

    #[test]
    fn executes_submitted_subqueries() {
        let w = SourceWrapper::new("oo7", store());
        let direct = w
            .execute(&scan().select("Id", CompareOp::Lt, 10i64).build())
            .unwrap();
        assert_eq!(direct.tuples.len(), 10);
        let submitted = w
            .execute(
                &scan()
                    .select("Id", CompareOp::Lt, 10i64)
                    .submit("oo7")
                    .build(),
            )
            .unwrap();
        assert_eq!(submitted.tuples.len(), 10);
        // Misrouted submit is rejected.
        let wrong = w.execute(&scan().submit("elsewhere").build());
        assert!(wrong.is_err());
    }

    #[test]
    fn scan_only_wrapper_rejects_pushed_operators() {
        let w = SourceWrapper::new("oo7", store())
            .with_profile(disco_catalog::CapabilityProfile::ScanOnly);
        // Bare scans pass the boundary.
        assert!(w.execute(&scan().build()).is_ok());
        // A pushed select is refused even though the source could run it.
        let e = w
            .execute(&scan().select("Id", CompareOp::Lt, 10i64).build())
            .unwrap_err();
        assert!(e.to_string().contains("scan-only"), "{e}");
        // The profile is also what registration advertises.
        let reg = w.registration().unwrap();
        assert!(!reg.capabilities.supports(OperatorKind::Select));
    }

    #[test]
    fn capabilities_are_carried() {
        let w = SourceWrapper::new("oo7", store())
            .with_capabilities(Capabilities::of(&[OperatorKind::Select]));
        let reg = w.registration().unwrap();
        assert!(reg.capabilities.supports(OperatorKind::Select));
        assert!(!reg.capabilities.supports(OperatorKind::Join));
    }
}

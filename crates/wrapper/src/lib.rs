//! The wrapper layer (paper §2.1, Figures 1–2).
//!
//! A wrapper provides the mediator's interface to one data source. During
//! the *registration phase* it returns everything the mediator needs: the
//! schema of its collections, its capabilities (the set of algebra
//! operations it executes), exported statistics, and compiled cost rules.
//! During the *query phase* it executes the algebraic subqueries the
//! mediator submits and returns subanswers.
//!
//! [`SourceWrapper`] is the generic implementation over any
//! [`disco_sources::DataSource`]; the wrapper implementor's job — writing
//! the cost communication document — is a constructor argument, with a
//! knob controlling how much statistical information is exported (the
//! "from nothing to everything" spectrum of §1).

pub mod registration;
pub mod wrapper;

pub use registration::{Registration, StatsExport};
pub use wrapper::{SourceWrapper, Wrapper};

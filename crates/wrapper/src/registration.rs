//! Registration payloads (steps 1–2 of Figure 1).

use disco_catalog::{Capabilities, CollectionStats};
use disco_common::Schema;
use disco_costlang::CompiledDocument;

/// How much statistical information a wrapper exports.
///
/// The paper's framework spans "from nothing to everything" (§1): a full
/// export enables precise selectivity estimation; an extent-only export
/// leaves attribute statistics to mediator defaults; exporting nothing
/// falls back entirely on the generic model's standard values — the pure
/// calibration regime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StatsExport {
    /// Extent and attribute statistics (the Figure 4 cardinality methods).
    #[default]
    Full,
    /// Only the extent triplet (`CountObject`, `TotalSize`, `ObjectSize`).
    ExtentOnly,
    /// No statistics at all.
    None,
}

/// Everything a wrapper uploads at registration time.
#[derive(Debug, Clone, PartialEq)]
pub struct Registration {
    /// Operations the wrapper can execute.
    pub capabilities: Capabilities,
    /// `(collection, schema, statistics)` for every exported collection.
    pub collections: Vec<(String, Schema, CollectionStats)>,
    /// The compiled cost document: wrapper parameters and cost rules,
    /// semi-compiled at the wrapper side (§2.4).
    pub cost_rules: CompiledDocument,
}

impl Registration {
    /// Number of cost rules shipped.
    pub fn rule_count(&self) -> usize {
        self.cost_rules.rules.len()
    }

    /// Total shipped bytecode size in bytes (diagnostics: the paper ships
    /// compiled formulas precisely because they are compact and fast).
    pub fn shipped_bytes(&self) -> usize {
        self.cost_rules
            .rules
            .iter()
            .map(|r| r.body.program.encoded_len())
            .sum()
    }
}

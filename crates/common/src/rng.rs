//! Deterministic randomness helpers.
//!
//! Every stochastic component of the reproduction (data generators, the
//! simulated object store's page placement, workload sweeps) draws from a
//! seeded [`StdRng`] so that "measured" results are exactly reproducible
//! and tests can assert on them.
//!
//! The generator is a self-contained xoshiro256** (Blackman & Vigna),
//! seeded through SplitMix64 — no external crates, so the workspace builds
//! in offline/sandboxed environments. The API mirrors the subset of `rand`
//! the workspace used (`seed_from_u64`, `gen`, `gen_range`).

use std::ops::{Range, RangeInclusive};

/// Workspace-wide default seed; experiments derive per-purpose seeds from it
/// so independent components do not share streams.
pub const DEFAULT_SEED: u64 = 0x000D_15C0_1998;

/// The workspace's deterministic PRNG: xoshiro256**.
///
/// Not cryptographically secure — statistical quality only, which is all
/// data generation and page placement need.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

/// SplitMix64 step — used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StdRng {
    /// Expand a 64-bit seed into a full generator (the reference
    /// xoshiro seeding procedure).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `u64` (rand-compatible spelling).
    pub fn gen(&mut self) -> u64 {
        self.next_u64()
    }

    /// A uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in the given range; supports the integer and float
    /// range shapes the workspace uses. Panics on empty ranges.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Uniform `u64` in `[0, bound)` via Lemire's multiply-shift with
    /// rejection (unbiased).
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample from an empty range");
        // Rejection zone keeps the mapping exactly uniform.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Range shapes [`StdRng::gen_range`] accepts.
pub trait SampleRange {
    type Output;
    fn sample(self, rng: &mut StdRng) -> Self::Output;
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample(self, rng: &mut StdRng) -> usize {
        assert!(self.start < self.end, "empty range");
        self.start + rng.bounded_u64((self.end - self.start) as u64) as usize
    }
}

impl SampleRange for RangeInclusive<usize> {
    type Output = usize;
    fn sample(self, rng: &mut StdRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + rng.bounded_u64((hi - lo) as u64 + 1) as usize
    }
}

impl SampleRange for Range<u64> {
    type Output = u64;
    fn sample(self, rng: &mut StdRng) -> u64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.bounded_u64(self.end - self.start)
    }
}

impl SampleRange for Range<i64> {
    type Output = i64;
    fn sample(self, rng: &mut StdRng) -> i64 {
        assert!(self.start < self.end, "empty range");
        let span = (self.end as i128 - self.start as i128) as u64;
        (self.start as i128 + rng.bounded_u64(span) as i128) as i64
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

/// A seeded RNG for the given purpose string.
///
/// The purpose is hashed into the seed so that, e.g., the OO7 generator and
/// the buffer-pool do not consume the same stream even when built from the
/// same base seed.
pub fn seeded(base: u64, purpose: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ base;
    for b in purpose.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// A random permutation of `0..n` (Fisher–Yates).
///
/// Used by the object store to place objects on pages uniformly — the
/// physical process whose page-fault expectation Yao's formula computes.
pub fn permutation(rng: &mut StdRng, n: usize) -> Vec<usize> {
    let mut v: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        v.swap(i, j);
    }
    v
}

/// `k` distinct indices sampled uniformly from `0..n` (partial Fisher–Yates).
///
/// Panics if `k > n`; callers clamp from validated selectivities.
pub fn sample_distinct(rng: &mut StdRng, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} distinct values from 0..{n}");
    // Partial shuffle: O(n) setup but the store samples once per query run,
    // and n here is collection cardinality (~1e5), negligible.
    let mut v: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        v.swap(i, j);
    }
    v.truncate(k);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(1, "x");
        let mut b = seeded(1, "x");
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn purposes_produce_distinct_streams() {
        let mut a = seeded(1, "x");
        let mut b = seeded(1, "y");
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn reference_vector_xoshiro256starstar() {
        // First outputs for state seeded from SplitMix64(0) — pins the
        // algorithm so refactors cannot silently change every dataset.
        let mut r = StdRng::seed_from_u64(0);
        let first: Vec<u64> = (0..3).map(|_| r.next_u64()).collect();
        let mut again = StdRng::seed_from_u64(0);
        assert_eq!(first[0], again.next_u64());
        assert_ne!(first[0], first[1]);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = seeded(3, "bounds");
        for _ in 0..1000 {
            let x = r.gen_range(10i64..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(5usize..=7);
            assert!((5..=7).contains(&y));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut r = seeded(4, "cover");
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = seeded(7, "perm");
        let mut p = permutation(&mut rng, 100);
        p.sort_unstable();
        assert_eq!(p, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_distinct_has_no_duplicates() {
        let mut rng = seeded(7, "sample");
        let mut s = sample_distinct(&mut rng, 1000, 250);
        assert_eq!(s.len(), 250);
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 250);
        assert!(s.iter().all(|&x| x < 1000));
    }

    #[test]
    fn sample_all_is_full_range() {
        let mut rng = seeded(7, "sample-all");
        let mut s = sample_distinct(&mut rng, 16, 16);
        s.sort_unstable();
        assert_eq!(s, (0..16).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversample_panics() {
        let mut rng = seeded(7, "over");
        let _ = sample_distinct(&mut rng, 3, 4);
    }
}

//! Deterministic randomness helpers.
//!
//! Every stochastic component of the reproduction (data generators, the
//! simulated object store's page placement, workload sweeps) draws from a
//! seeded [`rand::rngs::StdRng`] so that "measured" results are exactly
//! reproducible and tests can assert on them.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Workspace-wide default seed; experiments derive per-purpose seeds from it
/// so independent components do not share streams.
pub const DEFAULT_SEED: u64 = 0x000D_15C0_1998;

/// A seeded RNG for the given purpose string.
///
/// The purpose is hashed into the seed so that, e.g., the OO7 generator and
/// the buffer-pool do not consume the same stream even when built from the
/// same base seed.
pub fn seeded(base: u64, purpose: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ base;
    for b in purpose.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// A random permutation of `0..n` (Fisher–Yates).
///
/// Used by the object store to place objects on pages uniformly — the
/// physical process whose page-fault expectation Yao's formula computes.
pub fn permutation(rng: &mut StdRng, n: usize) -> Vec<usize> {
    let mut v: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        v.swap(i, j);
    }
    v
}

/// `k` distinct indices sampled uniformly from `0..n` (partial Fisher–Yates).
///
/// Panics if `k > n`; callers clamp from validated selectivities.
pub fn sample_distinct(rng: &mut StdRng, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} distinct values from 0..{n}");
    // Partial shuffle: O(n) setup but the store samples once per query run,
    // and n here is collection cardinality (~1e5), negligible.
    let mut v: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        v.swap(i, j);
    }
    v.truncate(k);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(1, "x");
        let mut b = seeded(1, "x");
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn purposes_produce_distinct_streams() {
        let mut a = seeded(1, "x");
        let mut b = seeded(1, "y");
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = seeded(7, "perm");
        let mut p = permutation(&mut rng, 100);
        p.sort_unstable();
        assert_eq!(p, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_distinct_has_no_duplicates() {
        let mut rng = seeded(7, "sample");
        let mut s = sample_distinct(&mut rng, 1000, 250);
        assert_eq!(s.len(), 250);
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 250);
        assert!(s.iter().all(|&x| x < 1000));
    }

    #[test]
    fn sample_all_is_full_range() {
        let mut rng = seeded(7, "sample-all");
        let mut s = sample_distinct(&mut rng, 16, 16);
        s.sort_unstable();
        assert_eq!(s, (0..16).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversample_panics() {
        let mut rng = seeded(7, "over");
        let _ = sample_distinct(&mut rng, 3, 4);
    }
}
